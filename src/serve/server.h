#ifndef GROUPSA_SERVE_SERVER_H_
#define GROUPSA_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/debug_mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/virtual_clock.h"
#include "core/fallback_recommender.h"
#include "core/groupsa_model.h"
#include "core/item_index.h"
#include "core/quantized.h"
#include "data/interaction_matrix.h"
#include "data/types.h"
#include "serve/circuit_breaker.h"

namespace groupsa::serve {

// ---------------------------------------------------------------------------
// groupsa_serve — the queue-driven concurrent request pipeline.
//
// The library's InferenceEngine and FallbackRecommender answer one call at a
// time on the caller's thread; this daemon turns them into a process that
// admits concurrent traffic:
//
//   Submit() ──► bounded admission queue ──► W worker loops (pool threads)
//       │               │                        │
//       │ invalid:      │ full: overload policy  │ serve via the current
//       │ reject        ▼                        ▼ model generation
//       │        shed → popularity        FallbackRecommender → engine
//       ▼
//   expired: resolve without ranking
//
// Worker loops run on a dedicated groupsa::parallel::ThreadPool (never raw
// std::thread — the determinism linter bans those); each popped request is
// answered through the generation's shared FallbackRecommender, whose
// InferenceEngine keeps one value-version-keyed representation cache that
// all workers share. Scoring inside a worker that fans out through the
// global pool runs inline (nested ParallelFor), so responses are
// bit-identical at any worker count and any global pool width.
//
// Hot reload: Reload(path) stages a complete new model generation off to
// the side (factory + checkpoint v2 all-or-nothing load) and then swaps one
// shared_ptr. In-flight and queued requests keep the generation they
// grabbed alive through the shared_ptr, so a reload never drops, blocks or
// corrupts a request; each response records the generation that served it.
// A failed reload (missing/torn checkpoint, injected fault) leaves the old
// generation serving, bumps a counter, and — when ServeConfig::
// reload_retries > 0 — arms a bounded background retry that re-attempts
// the load after an exponential-backoff delay measured on the virtual
// clock (i.e. after that much more traffic has flowed).
//
// Resilience layer (see DESIGN.md §13):
//
//  * Time is virtual. The server owns a VirtualClock whose tick advances
//    once per submission and once per worker completion — never from a
//    wall clock, which the determinism linter bans in src/. Deadlines,
//    backoff delays and circuit-breaker cool-downs are all measured in
//    these ticks, so every timing decision is a pure function of the
//    request schedule.
//  * Requests carry deadlines (absolute tick, or a tick budget resolved at
//    admission). An already-expired request is resolved at the door; a
//    request whose deadline passed while it sat in the queue is resolved
//    the moment a worker pops it, before any scoring work.
//  * Transient model-path faults (failpoint "serve.worker", chaos bits)
//    retry with exponential backoff and deterministic jitter. A retry does
//    not sleep: its backoff delay is charged against the request's own
//    deadline budget, so retrying requests expire sooner.
//  * A circuit breaker watches request-final model-path outcomes and, once
//    a rolling window trips, short-circuits the model path to the
//    popularity fallback until half-open probes re-admit it.
//  * Workers are supervised. Each worker owns a slot recording the job it
//    is processing; a supervisor loop detects a hung worker (failpoint
//    "serve.worker.hang" or a chaos bit), steals the job back, requeues it
//    at the front and restarts the worker. Stealing is safe because a
//    response is a pure function of (request, generation): whichever side
//    wins the slot ownership race resolves the promise exactly once.
//
// Failure behavior: the daemon degrades, never crashes. Malformed requests
// (out-of-range ids, empty/duplicate member lists, k < 1) resolve as
// structured rejections at the door; admission overflow sheds to the
// popularity path (or rejects, per policy); worker-side faults degrade (or
// retry, then degrade) that one response; reload faults keep the last good
// generation. Every submitted request resolves its future exactly once —
// including requests still queued at Stop(), which are drained, requests
// held by a hung worker at Stop(), which the release path serves, and
// requests submitted after Stop(), which resolve as rejected.
//
// Determinism: the daemon itself never reads a clock or ad-hoc randomness;
// a response is a pure function of (request, model generation) and every
// timing decision a pure function of the request schedule. That is what
// makes the stress/soak suite, the seeded chaos suite and the serve-mode
// golden test byte-reproducible at any worker count.
// ---------------------------------------------------------------------------

// A recommend request: one of the three entity kinds the engine serves.
struct Request {
  enum class Kind { kUser, kGroup, kMembers };
  Kind kind = Kind::kUser;
  data::UserId user = 0;       // kUser
  data::GroupId group = 0;     // kGroup
  std::vector<data::UserId> members;  // kMembers (ad-hoc / occasional group)
  int k = 10;
  // Apply the server's exclude matrices (seen-item filtering) to this
  // request: the user matrix for kUser/kMembers, the group matrix for
  // kGroup.
  bool exclude_seen = false;

  // Deadline, on the server's virtual clock. `deadline_tick` is absolute
  // (a client-carried end-to-end deadline); when 0, `deadline_ticks` is a
  // budget resolved against the clock at admission; when both are 0 the
  // server-wide ServeConfig::deadline_ticks budget applies (0 = none).
  uint64_t deadline_tick = 0;
  uint64_t deadline_ticks = 0;

  // Deterministic fault injection, set per-request by the chaos harness
  // (serve/harness.h) so that which requests fault is a pure function of
  // the chaos seed, not of thread interleaving the way hit-counted
  // failpoints are.
  struct Chaos {
    uint8_t fault_attempts = 0;  // first N model attempts fault (transient)
    bool hang = false;           // the worker serving this request hangs
  };
  Chaos chaos;
};

struct Response {
  uint64_t id = 0;  // submission ticket (monotone per server)
  std::vector<std::pair<data::ItemId, double>> items;
  bool degraded = false;  // popularity path answered (model bypassed)
  bool shed = false;      // admission control answered; never reached a worker
  bool rejected = false;  // no ranking at all (policy kReject, invalid, stopped)
  bool expired = false;   // deadline passed before any scoring work
  int retries = 0;        // model attempts beyond the first this answer took
  std::string error;      // why, when degraded/shed/rejected/expired
  uint64_t generation = 0;  // model generation that served it (0 = none)
};

// Monotone ops counters (and two gauges at the bottom). Conservation
// invariant, checked by the stress and chaos suites:
//   submitted == admitted + shed + rejected + expired
// and once the server is stopped admitted == completed (the queue is
// drained, never dropped; a queued request whose deadline passed still
// completes — as an expired response, counted in expired_queue).
struct ServerStats {
  int64_t submitted = 0;
  int64_t admitted = 0;   // made it into the queue
  int64_t shed = 0;       // overload policy served popularity at the door
  int64_t rejected = 0;   // resolved with no ranking
  int64_t expired = 0;    // dead on arrival at the door (absolute deadline)
  int64_t completed = 0;  // answered by a worker
  int64_t degraded = 0;   // worker answers that fell back to popularity
  int64_t invalid = 0;        // validation rejections (subset of rejected)
  int64_t expired_queue = 0;  // admitted, but expired by pop or mid-retry
  int64_t retries = 0;        // retry attempts issued
  int64_t worker_faults = 0;  // transient model-path faults observed
  int64_t hangs_rescued = 0;    // jobs stolen back from hung workers
  int64_t worker_restarts = 0;  // replacement worker loops started
  int64_t reloads = 0;
  int64_t failed_reloads = 0;
  int64_t reload_retry_attempts = 0;  // background re-attempts of a reload
  int64_t breaker_trips = 0;    // closed -> open
  int64_t breaker_reopens = 0;  // half-open -> open (probe failed)
  int64_t breaker_closes = 0;   // half-open -> closed
  int64_t breaker_probes = 0;   // probe requests admitted
  int64_t peak_queue_depth = 0;
  // Gauges (not monotone).
  int breaker_state = 0;  // BreakerState as int (0 closed, 1 open, 2 half)
  uint64_t now_tick = 0;  // virtual clock reading
};

struct ServeConfig {
  int workers = 2;       // scoring worker loops (>= 1)
  int queue_depth = 64;  // admission queue bound (>= 1)
  enum class OverloadPolicy {
    kShedToFallback,  // full queue: answer popularity on the caller thread
    kReject,          // full queue: resolve as rejected, no ranking
  };
  OverloadPolicy overload = OverloadPolicy::kShedToFallback;
  // Retrieval mode for every generation's engine. Under kIvf each
  // generation's item index is built EAGERLY inside BuildGeneration — off
  // the serving path, before the generation swap — so neither Start() nor a
  // hot Reload() ever runs a k-means build on a request thread, and reloads
  // keep their zero-dropped-requests guarantee.
  core::TopKMode topk = core::TopKMode::kExact;
  core::ItemIndexConfig index;  // build/query knobs when topk == kIvf
  // Candidate-scan precision for every generation's engine. Under kInt8 the
  // quantized item tables are built EAGERLY inside BuildGeneration — same
  // contract as the IVF index above: never on a request thread, and hot
  // reloads keep the zero-dropped-requests guarantee. Composes with kIvf.
  core::ScoreMode score = core::ScoreMode::kExact;
  core::Int8Config int8;  // scan/re-rank knobs when score == kInt8

  // ---- Resilience knobs (all off by default: with none of them set the
  // server behaves exactly like the pre-resilience pipeline). ----
  // Default per-request deadline budget in virtual ticks (0 = no deadline).
  uint64_t deadline_ticks = 0;
  // Retry policy for transient model-path faults; backoff.max_retries is
  // the retry count, delays are charged against the request's deadline.
  BackoffPolicy backoff;
  // Background re-attempts after a failed Reload (0 = none). Attempt n
  // waits BackoffDelayTicks(backoff, 0, n) virtual ticks of traffic.
  int reload_retries = 0;
  // Circuit breaker over the model path (disabled by default).
  BreakerConfig breaker;
  // Worker supervision: hung-worker detection, job rescue, restart.
  bool supervise = true;
  // Wall interval between supervisor sweeps. Wall time here is safe: the
  // supervisor only affects WHEN a hung job is rescued, never what any
  // response contains.
  int supervisor_poll_ms = 2;
};

// Point-in-time operational snapshot (the `health` command of the serve
// daemon). Unlike ServerStats this includes per-worker liveness.
struct ServerHealth {
  bool running = false;
  bool accepting = false;  // queue open (false once stopping)
  bool paused = false;
  int queue_depth = 0;
  uint64_t now_tick = 0;
  uint64_t generation = 0;
  BreakerState breaker = BreakerState::kClosed;
  bool reload_retry_pending = false;
  struct Worker {
    int slot = 0;
    bool alive = false;    // a worker loop currently owns the slot
    bool busy = false;     // a job is installed in the slot
    bool hanging = false;  // owner is parked in a simulated hang
    uint64_t job_id = 0;   // ticket of the installed job (0 = idle)
    int64_t restarts = 0;  // times the supervisor replaced this slot's owner
  };
  std::vector<Worker> workers;
};

class Server {
 public:
  // Builds the model for one checkpoint generation. Called once by Start()
  // and once per Reload(); runs off the serving path, so a slow build never
  // stalls traffic. Returning an error keeps the previous generation (at
  // Start: fails Start). Returning Ok with a null model is the explicit
  // "serve permanently degraded" state (popularity only) — the factory
  // decides whether a bad checkpoint is fatal or degradable.
  using ModelFactory =
      std::function<Status(const std::string& checkpoint_path,
                           std::unique_ptr<core::GroupSaModel>*)>;

  // `popularity` seeds the fallback ranking (training interactions);
  // `num_users` / `num_groups` bound the entity ids request validation
  // accepts (pass 0 to leave that id space unchecked); `user_exclude` /
  // `group_exclude` are the seen-item matrices consulted when
  // Request::exclude_seen is set (either may be null). The matrices must
  // outlive the server.
  Server(const ServeConfig& config, ModelFactory factory,
         std::string checkpoint_path, const data::EdgeList& popularity,
         int num_users, int num_groups, int num_items,
         const data::InteractionMatrix* user_exclude,
         const data::InteractionMatrix* group_exclude);
  ~Server();  // Stop()s if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Builds generation 1 via the factory and starts the worker loops (and
  // the supervisor, when configured).
  Status Start();

  // Closes admission, drains every queued request through the workers and
  // joins them. Hung workers are released and serve their held job before
  // exiting; a Reload racing Stop() can no longer swap a generation in
  // after the drain (it fails with an error instead). Idempotent. After
  // Stop(), Submit() resolves as rejected.
  void Stop();

  bool running() const;

  // Admits `req` and returns a future that resolves exactly once, whatever
  // happens (served, degraded, shed, rejected, expired, drained at
  // shutdown).
  std::future<Response> Submit(Request req);

  // Submit + wait: the synchronous convenience used by tools and tests.
  Response Call(Request req);

  // Atomically swaps in a freshly built model generation (see the class
  // comment). Safe to call concurrently with traffic; concurrent Reloads
  // serialize. On error the previous generation keeps serving (and a
  // background retry is armed when reload_retries > 0). A successful swap
  // resets the circuit breaker: a fresh model deserves a fresh window.
  Status Reload(const std::string& checkpoint_path);

  // Maintenance window: Pause() parks the worker loops after their current
  // request; admission keeps queueing (and the overload policy keeps
  // applying), so a paused server backs up deterministically — which is
  // also how the admission-control tests fill the queue without racing the
  // workers, and how the deadline tests age queued requests. Resume()
  // releases the loops; Stop() resumes implicitly so shutdown always
  // drains.
  void Pause();
  void Resume();

  ServerStats stats() const;
  ServerHealth Health() const;
  uint64_t generation() const;
  uint64_t now_tick() const { return clock_.Now(); }

 private:
  // One model generation: the model (owns its InferenceEngine and therefore
  // the shared value-version-keyed representation cache) plus the fallback
  // front-end every worker answers through. `model` is null in the
  // permanently-degraded state; `fallback` never is.
  struct Generation {
    std::unique_ptr<core::GroupSaModel> model;
    std::unique_ptr<core::FallbackRecommender> fallback;
    uint64_t number = 0;
  };

  struct Job {
    Request request;
    uint64_t id = 0;
    uint64_t deadline_tick = 0;  // absolute, resolved at admission (0 = none)
    std::promise<Response> promise;
  };

  // Per-worker supervision slot. Ownership protocol: a worker installs the
  // job it is processing under `mu` and takes it back before resolving;
  // the supervisor may steal an installed job from a hanging owner (and
  // bump `epoch` to abandon that owner). Whoever holds the Job resolves
  // it — exactly once, whatever the race.
  struct Slot {
    DebugMutex mu{"serve.slot"};
    DebugCondVar cv;
    bool alive GROUPSA_GUARDED_BY(mu) = false;    // a loop owns this slot
    bool hanging GROUPSA_GUARDED_BY(mu) = false;  // parked in simulated hang
    bool has_job GROUPSA_GUARDED_BY(mu) = false;  // `job` is installed
    Job job GROUPSA_GUARDED_BY(mu);
    bool release GROUPSA_GUARDED_BY(mu) = false;  // shutdown: unstick owner
    uint64_t epoch GROUPSA_GUARDED_BY(mu) = 0;    // bumped per restart
    int64_t restarts GROUPSA_GUARDED_BY(mu) = 0;
  };

  enum class PushResult { kOk, kFull, kClosed };

  // Builds a Generation from `checkpoint_path` via the factory.
  Status BuildGeneration(const std::string& checkpoint_path,
                         std::shared_ptr<Generation>* out);

  std::shared_ptr<Generation> CurrentGeneration() const;

  // Queue operations (bounded deque + cv under one mutex).
  PushResult TryPush(Job* job);
  bool PopBlocking(Job* out);  // false once closed and drained
  void CloseQueue();
  // Puts a rescued job back at the head of the queue; if the queue closed
  // in the meantime, serves it on the calling (supervisor) thread instead.
  void RequeueFront(Job job);

  // Structured validation: returns an empty string for a well-formed
  // request, else the rejection reason.
  std::string ValidateRequest(const Request& request) const;

  void WorkerLoop(int slot_index, uint64_t epoch);
  void SupervisorLoop();
  // One supervisor sweep: rescue hung workers, fire a due reload retry.
  void SuperviseOnce();

  // Serves one dequeued job (pop-time expiry check, then Process) and
  // resolves its promise with full counter bookkeeping.
  void CompleteJob(Job job);
  // Pop-time expiry check + model path with breaker routing and retries.
  Response AnswerJob(const Request& request, uint64_t id,
                     uint64_t deadline_tick);
  Response Process(const Request& request, uint64_t id,
                   uint64_t deadline_tick);

  // Popularity-only answer with per-kind exclude-row semantics (shed,
  // breaker-open and injected-fault paths).
  Response DegradedAnswer(const std::shared_ptr<Generation>& gen,
                          const Request& request, uint64_t id,
                          std::string reason) const;

  // Reload guts shared by the public call and the background retry.
  Status ReloadOnce(const std::string& checkpoint_path);
  void ArmReloadRetry(const std::string& checkpoint_path);

  const ServeConfig config_;
  const ModelFactory factory_;
  const std::string checkpoint_path_;
  const data::EdgeList popularity_;
  const int num_users_;
  const int num_groups_;
  const int num_items_;
  const data::InteractionMatrix* const user_exclude_;
  const data::InteractionMatrix* const group_exclude_;

  // Internally synchronized (their own atomics / DebugMutex).
  VirtualClock clock_ GROUPSA_NOT_GUARDED("internally synchronized");
  CircuitBreaker breaker_ GROUPSA_NOT_GUARDED("internally synchronized");

  mutable DebugMutex gen_mu_{"serve.generation"};
  // null until Start()
  std::shared_ptr<Generation> generation_ GROUPSA_GUARDED_BY(gen_mu_);
  uint64_t next_generation_ GROUPSA_GUARDED_BY(gen_mu_) = 0;
  // set by Stop() before the drain; bars late swaps
  bool stopping_ GROUPSA_GUARDED_BY(gen_mu_) = false;
  // Serializes Reload() bodies; a reload holds it across its generation
  // swap (gen_mu_) and its retry re-arm (supervisor_mu_).
  DebugMutex reload_mu_ GROUPSA_ACQUIRED_BEFORE(gen_mu_, supervisor_mu_){
      "serve.reload"};

  mutable DebugMutex queue_mu_{"serve.queue"};
  DebugCondVar queue_cv_;
  std::deque<Job> queue_ GROUPSA_GUARDED_BY(queue_mu_);
  bool queue_closed_ GROUPSA_GUARDED_BY(queue_mu_) = true;  // opened by Start
  bool paused_ GROUPSA_GUARDED_BY(queue_mu_) = false;

  // One per worker, fixed at Start: the vector is written only before the
  // worker loops exist (Start) and after they joined (Stop); each Slot
  // guards its own fields.
  std::vector<std::unique_ptr<Slot>> slots_ GROUPSA_NOT_GUARDED(
      "resized only before workers start / after they join");

  // Supervisor state: sweep wake-ups plus the pending background reload
  // retry (armed by a failed Reload, fired once its due tick passes).
  mutable DebugMutex supervisor_mu_{"serve.supervisor"};
  DebugCondVar supervisor_cv_;
  bool supervisor_stop_ GROUPSA_GUARDED_BY(supervisor_mu_) = false;
  struct PendingReload {
    bool active = false;
    std::string path;
    int attempt = 0;        // next attempt number (1-based)
    uint64_t due_tick = 0;  // fire once clock_.Now() >= due_tick
  };
  PendingReload pending_reload_ GROUPSA_GUARDED_BY(supervisor_mu_);

  // Created by Start() before any loop runs, destroyed by Stop() after
  // every loop joined; the pool synchronizes its own queue.
  std::unique_ptr<parallel::ThreadPool> pool_ GROUPSA_NOT_GUARDED(
      "Start/Stop protocol");
  std::atomic<bool> running_{false};

  std::atomic<uint64_t> next_id_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> invalid_{0};
  std::atomic<int64_t> expired_queue_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> worker_faults_{0};
  std::atomic<int64_t> hangs_rescued_{0};
  std::atomic<int64_t> worker_restarts_{0};
  std::atomic<int64_t> reloads_{0};
  std::atomic<int64_t> failed_reloads_{0};
  std::atomic<int64_t> reload_retry_attempts_{0};
  std::atomic<int64_t> peak_queue_depth_{0};
};

}  // namespace groupsa::serve

#endif  // GROUPSA_SERVE_SERVER_H_
