#ifndef GROUPSA_SERVE_SERVER_H_
#define GROUPSA_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/fallback_recommender.h"
#include "core/groupsa_model.h"
#include "core/item_index.h"
#include "data/interaction_matrix.h"
#include "data/types.h"

namespace groupsa::serve {

// ---------------------------------------------------------------------------
// groupsa_serve — the queue-driven concurrent request pipeline.
//
// The library's InferenceEngine and FallbackRecommender answer one call at a
// time on the caller's thread; this daemon turns them into a process that
// admits concurrent traffic:
//
//   Submit() ──► bounded admission queue ──► W worker loops (pool threads)
//                      │                        │
//                      │ full: overload policy  │ serve via the current
//                      ▼                        ▼ model generation
//               shed → popularity        FallbackRecommender → engine
//
// Worker loops run on a dedicated groupsa::parallel::ThreadPool (never raw
// std::thread — the determinism linter bans those); each popped request is
// answered through the generation's shared FallbackRecommender, whose
// InferenceEngine keeps one value-version-keyed representation cache that
// all workers share. Scoring inside a worker that fans out through the
// global pool runs inline (nested ParallelFor), so responses are
// bit-identical at any worker count and any global pool width.
//
// Hot reload: Reload(path) stages a complete new model generation off to
// the side (factory + checkpoint v2 all-or-nothing load) and then swaps one
// shared_ptr. In-flight and queued requests keep the generation they
// grabbed alive through the shared_ptr, so a reload never drops, blocks or
// corrupts a request; each response records the generation that served it.
// A failed reload (missing/torn checkpoint, injected fault) leaves the old
// generation serving and only bumps a counter.
//
// Failure behavior: the daemon degrades, never crashes. Admission overflow
// sheds to the popularity path (or rejects, per policy); worker-side faults
// (failpoint "serve.worker") degrade that one response; reload faults
// ("serve.reload.build" / "serve.reload.swap") keep the last good
// generation. Every submitted request resolves its future exactly once —
// including requests still queued at Stop(), which are drained, and
// requests submitted after Stop(), which resolve as rejected.
//
// Determinism: the daemon itself never reads a clock or ad-hoc randomness;
// a response is a pure function of (request, model generation). That is
// what makes the stress/soak suite and the serve-mode golden test
// byte-reproducible at any worker count.
// ---------------------------------------------------------------------------

// A recommend request: one of the three entity kinds the engine serves.
struct Request {
  enum class Kind { kUser, kGroup, kMembers };
  Kind kind = Kind::kUser;
  data::UserId user = 0;       // kUser
  data::GroupId group = 0;     // kGroup
  std::vector<data::UserId> members;  // kMembers (ad-hoc / occasional group)
  int k = 10;
  // Apply the server's exclude matrices (seen-item filtering) to this
  // request: the user matrix for kUser/kMembers, the group matrix for
  // kGroup.
  bool exclude_seen = false;
};

struct Response {
  uint64_t id = 0;  // submission ticket (monotone per server)
  std::vector<std::pair<data::ItemId, double>> items;
  bool degraded = false;  // popularity path answered (model bypassed)
  bool shed = false;      // admission control answered; never reached a worker
  bool rejected = false;  // no ranking at all (policy kReject or stopped)
  std::string error;      // why, when degraded/shed/rejected
  uint64_t generation = 0;  // model generation that served it (0 = none)
};

// Monotone ops counters. Conservation invariant, checked by the stress
// suite: submitted == admitted + shed + rejected, and once the server is
// stopped admitted == completed (the queue is drained, never dropped).
struct ServerStats {
  int64_t submitted = 0;
  int64_t admitted = 0;   // made it into the queue
  int64_t shed = 0;       // overload policy served popularity at the door
  int64_t rejected = 0;   // resolved with no ranking
  int64_t completed = 0;  // answered by a worker
  int64_t degraded = 0;   // worker answers that fell back to popularity
  int64_t reloads = 0;
  int64_t failed_reloads = 0;
  int64_t peak_queue_depth = 0;
};

struct ServeConfig {
  int workers = 2;       // scoring worker loops (>= 1)
  int queue_depth = 64;  // admission queue bound (>= 1)
  enum class OverloadPolicy {
    kShedToFallback,  // full queue: answer popularity on the caller thread
    kReject,          // full queue: resolve as rejected, no ranking
  };
  OverloadPolicy overload = OverloadPolicy::kShedToFallback;
  // Retrieval mode for every generation's engine. Under kIvf each
  // generation's item index is built EAGERLY inside BuildGeneration — off
  // the serving path, before the generation swap — so neither Start() nor a
  // hot Reload() ever runs a k-means build on a request thread, and reloads
  // keep their zero-dropped-requests guarantee.
  core::TopKMode topk = core::TopKMode::kExact;
  core::ItemIndexConfig index;  // build/query knobs when topk == kIvf
};

class Server {
 public:
  // Builds the model for one checkpoint generation. Called once by Start()
  // and once per Reload(); runs off the serving path, so a slow build never
  // stalls traffic. Returning an error keeps the previous generation (at
  // Start: fails Start). Returning Ok with a null model is the explicit
  // "serve permanently degraded" state (popularity only) — the factory
  // decides whether a bad checkpoint is fatal or degradable.
  using ModelFactory =
      std::function<Status(const std::string& checkpoint_path,
                           std::unique_ptr<core::GroupSaModel>*)>;

  // `popularity` seeds the fallback ranking (training interactions);
  // `user_exclude` / `group_exclude` are the seen-item matrices consulted
  // when Request::exclude_seen is set (either may be null). The matrices
  // must outlive the server.
  Server(const ServeConfig& config, ModelFactory factory,
         std::string checkpoint_path, const data::EdgeList& popularity,
         int num_items, const data::InteractionMatrix* user_exclude,
         const data::InteractionMatrix* group_exclude);
  ~Server();  // Stop()s if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Builds generation 1 via the factory and starts the worker loops.
  Status Start();

  // Closes admission, drains every queued request through the workers and
  // joins them. Idempotent. After Stop(), Submit() resolves as rejected.
  void Stop();

  bool running() const;

  // Admits `req` and returns a future that resolves exactly once, whatever
  // happens (served, degraded, shed, rejected, drained at shutdown).
  std::future<Response> Submit(Request req);

  // Submit + wait: the synchronous convenience used by tools and tests.
  Response Call(Request req);

  // Atomically swaps in a freshly built model generation (see the class
  // comment). Safe to call concurrently with traffic; concurrent Reloads
  // serialize. On error the previous generation keeps serving.
  Status Reload(const std::string& checkpoint_path);

  // Maintenance window: Pause() parks the worker loops after their current
  // request; admission keeps queueing (and the overload policy keeps
  // applying), so a paused server backs up deterministically — which is
  // also how the admission-control tests fill the queue without racing the
  // workers. Resume() releases the loops; Stop() resumes implicitly so
  // shutdown always drains.
  void Pause();
  void Resume();

  ServerStats stats() const;
  uint64_t generation() const;

 private:
  // One model generation: the model (owns its InferenceEngine and therefore
  // the shared value-version-keyed representation cache) plus the fallback
  // front-end every worker answers through. `model` is null in the
  // permanently-degraded state; `fallback` never is.
  struct Generation {
    std::unique_ptr<core::GroupSaModel> model;
    std::unique_ptr<core::FallbackRecommender> fallback;
    uint64_t number = 0;
  };

  struct Job {
    Request request;
    uint64_t id = 0;
    std::promise<Response> promise;
  };

  enum class PushResult { kOk, kFull, kClosed };

  // Builds a Generation from `checkpoint_path` via the factory.
  Status BuildGeneration(const std::string& checkpoint_path,
                         std::shared_ptr<Generation>* out);

  std::shared_ptr<Generation> CurrentGeneration() const;

  // Queue operations (bounded deque + cv under one mutex).
  PushResult TryPush(Job* job);
  bool PopBlocking(Job* out);  // false once closed and drained
  void CloseQueue();

  void WorkerLoop();
  Response Process(const Request& request, uint64_t id);

  // Popularity-only answer with per-kind exclude-row semantics (shed and
  // injected-fault paths).
  Response DegradedAnswer(const std::shared_ptr<Generation>& gen,
                          const Request& request, uint64_t id,
                          std::string reason) const;

  const ServeConfig config_;
  const ModelFactory factory_;
  const std::string checkpoint_path_;
  const data::EdgeList popularity_;
  const int num_items_;
  const data::InteractionMatrix* const user_exclude_;
  const data::InteractionMatrix* const group_exclude_;

  mutable std::mutex gen_mu_;
  std::shared_ptr<Generation> generation_;  // null until Start()
  uint64_t next_generation_ = 0;
  std::mutex reload_mu_;  // serializes Reload() bodies

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool queue_closed_ = true;  // opened by Start()
  bool paused_ = false;

  std::unique_ptr<parallel::ThreadPool> pool_;  // workers + 1
  bool running_ = false;

  std::atomic<uint64_t> next_id_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> reloads_{0};
  std::atomic<int64_t> failed_reloads_{0};
  std::atomic<int64_t> peak_queue_depth_{0};
};

}  // namespace groupsa::serve

#endif  // GROUPSA_SERVE_SERVER_H_
