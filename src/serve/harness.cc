#include "serve/harness.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/macros.h"
#include "common/thread_pool.h"

namespace groupsa::serve {
namespace {

std::string FormatScore(double score) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", score);
  return buffer;
}

std::string JoinIds(const std::vector<data::UserId>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i]);
  }
  return out;
}

}  // namespace

std::vector<Request> BuildSchedule(const ScheduleConfig& config) {
  GROUPSA_CHECK(config.num_users >= 1 && config.num_groups >= 1,
                "schedule needs at least one user and one group");
  GROUPSA_CHECK(config.max_k >= 1, "schedule needs max_k >= 1");
  Rng rng(config.seed);
  std::vector<Request> schedule;
  schedule.reserve(static_cast<size_t>(std::max(0, config.num_requests)));
  for (int i = 0; i < config.num_requests; ++i) {
    Request request;
    const double kind_draw = rng.NextDouble();
    if (kind_draw < config.group_fraction) {
      request.kind = Request::Kind::kGroup;
      request.group = rng.NextInt(config.num_groups);
    } else if (kind_draw < config.group_fraction + config.members_fraction) {
      request.kind = Request::Kind::kMembers;
      const int count =
          1 + rng.NextInt(std::min(config.max_members, config.num_users));
      for (int index : rng.SampleWithoutReplacement(config.num_users, count))
        request.members.push_back(index);
    } else {
      request.kind = Request::Kind::kUser;
      request.user = rng.NextInt(config.num_users);
    }
    request.k = 1 + rng.NextInt(config.max_k);
    request.exclude_seen = rng.NextBernoulli(config.exclude_fraction);
    schedule.push_back(std::move(request));
  }
  return schedule;
}

void ApplyChaos(const ChaosConfig& config, std::vector<Request>* schedule) {
  GROUPSA_CHECK(schedule != nullptr, "ApplyChaos needs a schedule");
  GROUPSA_CHECK(config.max_fault_attempts >= 1 &&
                    config.max_fault_attempts <= 255,
                "ChaosConfig::max_fault_attempts must be in [1, 255]");
  GROUPSA_CHECK(config.min_deadline_ticks >= 1 &&
                    config.min_deadline_ticks <= config.max_deadline_ticks,
                "ChaosConfig deadline range must satisfy 1 <= min <= max");
  // One decorrelated stream per slot: the bits a request draws depend only
  // on (seed, slot index), never on what earlier slots drew, so trimming
  // or reordering phases of a schedule does not reshuffle the chaos.
  for (size_t i = 0; i < schedule->size(); ++i) {
    Rng rng(Rng::StreamSeed(config.seed, static_cast<uint64_t>(i)));
    Request& request = (*schedule)[i];
    if (rng.NextBernoulli(config.fault_fraction)) {
      request.chaos.fault_attempts = static_cast<uint8_t>(
          1 + rng.NextInt(config.max_fault_attempts));
    }
    if (rng.NextBernoulli(config.hang_fraction)) request.chaos.hang = true;
    if (rng.NextBernoulli(config.deadline_fraction)) {
      const int span = static_cast<int>(config.max_deadline_ticks -
                                        config.min_deadline_ticks) +
                       1;
      request.deadline_ticks =
          config.min_deadline_ticks +
          static_cast<uint64_t>(rng.NextInt(span));
    }
  }
}

DriveReport DriveSchedule(Server* server, const std::vector<Request>& schedule,
                          const DriveOptions& options) {
  DriveReport report;
  report.responses.resize(schedule.size());
  const int64_t n = static_cast<int64_t>(schedule.size());
  if (n == 0) return report;
  const int lanes = std::max(1, options.client_lanes);
  std::atomic<int64_t> reload_attempts{0};
  std::atomic<int64_t> reload_failures{0};
  // A dedicated pool: client lanes must not contend with the server's
  // worker pool (or the global pool) for threads, or a closed-loop lane
  // could starve the very workers it is waiting on.
  parallel::ThreadPool pool(lanes);
  const int64_t grain = (n + lanes - 1) / lanes;
  pool.ParallelFor(0, n, grain, [&](int64_t begin, int64_t end) {
    int issued = 0;
    for (int64_t i = begin; i < end; ++i) {
      report.responses[static_cast<size_t>(i)] =
          server->Call(schedule[static_cast<size_t>(i)]);
      ++issued;
      if (begin == 0 && options.reload_every > 0 &&
          issued % options.reload_every == 0) {
        reload_attempts.fetch_add(1, std::memory_order_relaxed);
        if (!server->Reload(options.reload_path).ok())
          reload_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  report.reload_attempts = reload_attempts.load(std::memory_order_relaxed);
  report.reload_failures = reload_failures.load(std::memory_order_relaxed);
  return report;
}

std::string FormatRequest(const Request& request) {
  std::string out;
  switch (request.kind) {
    case Request::Kind::kUser:
      out = "user " + std::to_string(request.user);
      break;
    case Request::Kind::kGroup:
      out = "group " + std::to_string(request.group);
      break;
    case Request::Kind::kMembers:
      out = "members " + JoinIds(request.members);
      break;
  }
  out += " k=" + std::to_string(request.k);
  out += " x=" + std::to_string(request.exclude_seen ? 1 : 0);
  // Resilience fields print only when non-default, so pre-resilience
  // transcripts (and the serve-mode goldens) render unchanged.
  if (request.deadline_tick != 0)
    out += " dlt=" + std::to_string(request.deadline_tick);
  if (request.deadline_ticks != 0)
    out += " dl=" + std::to_string(request.deadline_ticks);
  if (request.chaos.fault_attempts != 0)
    out += " fa=" + std::to_string(request.chaos.fault_attempts);
  if (request.chaos.hang) out += " hang=1";
  return out;
}

std::string FormatResponse(const Response& response) {
  std::string out = "gen=" + std::to_string(response.generation);
  out += " deg=" + std::to_string(response.degraded ? 1 : 0);
  out += " shed=" + std::to_string(response.shed ? 1 : 0);
  out += " rej=" + std::to_string(response.rejected ? 1 : 0);
  if (response.expired) out += " exp=1";
  if (response.retries > 0) out += " try=" + std::to_string(response.retries);
  if (!response.error.empty()) out += " err=[" + response.error + "]";
  out += " items=";
  for (size_t i = 0; i < response.items.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(response.items[i].first) + ":" +
           FormatScore(response.items[i].second);
  }
  return out;
}

std::string FormatDrive(const std::vector<Request>& schedule,
                        const DriveReport& report) {
  GROUPSA_CHECK(schedule.size() == report.responses.size(),
                "drive report does not match its schedule");
  std::string out;
  for (size_t i = 0; i < schedule.size(); ++i) {
    out += FormatRequest(schedule[i]) + " -> " +
           FormatResponse(report.responses[i]) + "\n";
  }
  return out;
}

std::string CheckConservation(const DriveReport& report,
                              const ServerStats& stats, bool stopped) {
  std::vector<uint64_t> ids;
  ids.reserve(report.responses.size());
  for (size_t i = 0; i < report.responses.size(); ++i) {
    const Response& r = report.responses[i];
    if (r.id == 0)
      return "slot " + std::to_string(i) + " never received a response";
    ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] == ids[i - 1])
      return "response id " + std::to_string(ids[i]) +
             " delivered to two schedule slots";
  }
  if (stats.submitted !=
      stats.admitted + stats.shed + stats.rejected + stats.expired)
    return "submitted " + std::to_string(stats.submitted) +
           " != admitted " + std::to_string(stats.admitted) + " + shed " +
           std::to_string(stats.shed) + " + rejected " +
           std::to_string(stats.rejected) + " + expired " +
           std::to_string(stats.expired);
  if (stopped && stats.admitted != stats.completed)
    return "stopped server left " +
           std::to_string(stats.admitted - stats.completed) +
           " admitted request(s) unanswered";
  return "";
}

}  // namespace groupsa::serve
