#include "serve/circuit_breaker.h"

#include <algorithm>

#include "common/macros.h"

namespace groupsa::serve {

std::string BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config) : config_(config) {
  if (config_.enabled) {
    GROUPSA_CHECK(config_.window >= 1, "BreakerConfig::window must be >= 1");
    GROUPSA_CHECK(config_.threshold >= 1 &&
                      config_.threshold <= config_.window,
                  "BreakerConfig::threshold must be in [1, window]");
    GROUPSA_CHECK(config_.probes >= 1, "BreakerConfig::probes must be >= 1");
  }
}

CircuitBreaker::Route CircuitBreaker::Admit(uint64_t now) {
  if (!config_.enabled) return Route::kModel;
  std::lock_guard<DebugMutex> lock(mu_);
  if (state_ == BreakerState::kOpen && now >= half_open_at_) {
    state_ = BreakerState::kHalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  switch (state_) {
    case BreakerState::kClosed:
      return Route::kModel;
    case BreakerState::kOpen:
      return Route::kFallback;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ < config_.probes) {
        ++probes_in_flight_;
        ++counters_.probes;
        return Route::kProbe;
      }
      return Route::kFallback;
  }
  return Route::kModel;
}

void CircuitBreaker::TripLocked(uint64_t now, bool reopen) {
  state_ = BreakerState::kOpen;
  half_open_at_ = now + config_.open_ticks;
  window_.clear();
  window_failures_ = 0;
  if (reopen) {
    ++counters_.reopens;
  } else {
    ++counters_.trips;
  }
}

void CircuitBreaker::RecordWindowed(bool failure, uint64_t now) {
  window_.push_back(failure);
  if (failure) ++window_failures_;
  while (static_cast<int>(window_.size()) > config_.window) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
  if (window_failures_ >= config_.threshold)
    TripLocked(now, /*reopen=*/false);
}

void CircuitBreaker::RecordSuccess(Route route) {
  if (!config_.enabled || route == Route::kFallback) return;
  std::lock_guard<DebugMutex> lock(mu_);
  if (route == Route::kProbe) {
    // A probe admitted under a previous half-open episode may report after
    // the breaker moved on (reopened by a sibling probe, or reset by a
    // generation swap); its outcome no longer applies.
    if (state_ != BreakerState::kHalfOpen) return;
    probes_in_flight_ = std::max(0, probes_in_flight_ - 1);
    if (++probe_successes_ >= config_.probes) {
      state_ = BreakerState::kClosed;
      window_.clear();
      window_failures_ = 0;
      ++counters_.closes;
    }
    return;
  }
  if (state_ == BreakerState::kClosed)
    RecordWindowed(/*failure=*/false, /*now=*/0);
}

void CircuitBreaker::RecordFailure(Route route, uint64_t now) {
  if (!config_.enabled || route == Route::kFallback) return;
  std::lock_guard<DebugMutex> lock(mu_);
  if (route == Route::kProbe) {
    if (state_ != BreakerState::kHalfOpen) return;
    TripLocked(now, /*reopen=*/true);
    return;
  }
  if (state_ == BreakerState::kClosed)
    RecordWindowed(/*failure=*/true, now);
}

void CircuitBreaker::Reset() {
  std::lock_guard<DebugMutex> lock(mu_);
  state_ = BreakerState::kClosed;
  window_.clear();
  window_failures_ = 0;
  half_open_at_ = 0;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<DebugMutex> lock(mu_);
  return state_;
}

CircuitBreaker::Counters CircuitBreaker::counters() const {
  std::lock_guard<DebugMutex> lock(mu_);
  return counters_;
}

}  // namespace groupsa::serve
