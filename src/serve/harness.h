#ifndef GROUPSA_SERVE_HARNESS_H_
#define GROUPSA_SERVE_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/server.h"

namespace groupsa::serve {

// Deterministic in-process client harness. Concurrency tests (and the load
// bench) must be reproducible, so the traffic they drive is never ad-hoc:
// a seeded ScheduleConfig expands to the exact same request sequence every
// run, DriveSchedule fans it across client lanes with a fixed
// lane-to-request partition, and FormatResponse renders answers into
// byte-stable text so whole runs can be compared with a string equality.

struct ScheduleConfig {
  int num_requests = 100;
  uint64_t seed = 1;
  // Entity id ranges of the world being served.
  int num_users = 1;
  int num_groups = 1;
  // Request mix; the remainder of the mass is kUser requests.
  double group_fraction = 0.4;
  double members_fraction = 0.2;
  int max_members = 5;  // kMembers draws 1..max_members distinct users
  int max_k = 10;       // k drawn uniformly in 1..max_k
  double exclude_fraction = 0.5;  // probability a request sets exclude_seen
};

// Expands the config into its request sequence (pure function of the
// config; same seed, same schedule).
std::vector<Request> BuildSchedule(const ScheduleConfig& config);

// Seeded chaos overlay: stamps deterministic fault/hang/deadline bits onto
// an existing schedule. This is how the chaos suite drives the resilience
// layer — per-request chaos bits are a pure function of (schedule, seed),
// unlike hit-counted failpoints whose victims depend on which worker
// reaches the site first. Overlaying instead of generating keeps the
// underlying request mix identical with chaos on or off.
struct ChaosConfig {
  uint64_t seed = 7;
  // Fraction of requests whose first 1..max_fault_attempts model attempts
  // fault transiently (retry fodder / breaker fodder).
  double fault_fraction = 0.0;
  int max_fault_attempts = 2;
  // Fraction of requests that hang the worker serving them (supervisor
  // fodder).
  double hang_fraction = 0.0;
  // Fraction of requests that carry a deadline budget, drawn uniformly in
  // [min_deadline_ticks, max_deadline_ticks].
  double deadline_fraction = 0.0;
  uint64_t min_deadline_ticks = 8;
  uint64_t max_deadline_ticks = 64;
};
void ApplyChaos(const ChaosConfig& config, std::vector<Request>* schedule);

struct DriveOptions {
  // Client lanes submitting concurrently. Lane L owns the contiguous slice
  // of the schedule ParallelFor assigns it; each lane is closed-loop
  // (submit, wait, next), so `client_lanes` bounds the harness's own
  // in-flight requests.
  int client_lanes = 1;
  // Control-plane interleaving: when > 0, the lane that owns schedule index
  // 0 issues Server::Reload(reload_path) after every `reload_every`-th of
  // its own requests — hot reloads land mid-flight relative to the other
  // lanes' traffic.
  int reload_every = 0;
  std::string reload_path;
};

struct DriveReport {
  // responses[i] answers schedule[i]; every slot is filled exactly once.
  std::vector<Response> responses;
  int64_t reload_attempts = 0;
  int64_t reload_failures = 0;
};

// Drives the schedule against the server and blocks until every request has
// resolved. Lanes run on a dedicated thread pool sized to `client_lanes`.
DriveReport DriveSchedule(Server* server, const std::vector<Request>& schedule,
                          const DriveOptions& options);

// Byte-stable rendering of a request/response pair: fixed field order,
// scores in %.17g (round-trip exact for double), no timestamps. Two
// serving runs agree byte-for-byte iff every response agrees bit-for-bit.
std::string FormatRequest(const Request& request);
std::string FormatResponse(const Response& response);

// Renders a whole drive: one "<request> -> <response>" line per schedule
// slot, in schedule order (independent of completion order).
std::string FormatDrive(const std::vector<Request>& schedule,
                        const DriveReport& report);

// Checks the no-lost/no-duplicated-response invariant over a drive: one
// response per slot, ids unique, and the server's conservation identity
// (submitted == admitted + shed + rejected + expired; admitted ==
// completed once stopped — queued requests whose deadline passed still
// complete, as expired responses). Returns an empty string when everything
// holds, else a description of the first violation.
std::string CheckConservation(const DriveReport& report,
                              const ServerStats& stats, bool stopped);

}  // namespace groupsa::serve

#endif  // GROUPSA_SERVE_HARNESS_H_
