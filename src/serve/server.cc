#include "serve/server.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/macros.h"
#include "core/inference_engine.h"

namespace groupsa::serve {
namespace {

// Exclude-matrix rows a degraded answer must respect, mirroring the rows
// the model path would have consulted (user row / group row / every member
// row).
std::vector<int32_t> ExcludeRows(const Request& request) {
  switch (request.kind) {
    case Request::Kind::kUser:
      return {request.user};
    case Request::Kind::kGroup:
      return {request.group};
    case Request::Kind::kMembers:
      return std::vector<int32_t>(request.members.begin(),
                                  request.members.end());
  }
  return {};
}

}  // namespace

Server::Server(const ServeConfig& config, ModelFactory factory,
               std::string checkpoint_path, const data::EdgeList& popularity,
               int num_items, const data::InteractionMatrix* user_exclude,
               const data::InteractionMatrix* group_exclude)
    : config_(config),
      factory_(std::move(factory)),
      checkpoint_path_(std::move(checkpoint_path)),
      popularity_(popularity),
      num_items_(num_items),
      user_exclude_(user_exclude),
      group_exclude_(group_exclude) {
  GROUPSA_CHECK(config_.workers >= 1, "ServeConfig::workers must be >= 1");
  GROUPSA_CHECK(config_.queue_depth >= 1,
                "ServeConfig::queue_depth must be >= 1");
  GROUPSA_CHECK(factory_ != nullptr, "Server requires a model factory");
}

Server::~Server() { Stop(); }

Status Server::BuildGeneration(const std::string& checkpoint_path,
                               std::shared_ptr<Generation>* out) {
  std::unique_ptr<core::GroupSaModel> model;
  GROUPSA_RETURN_IF_ERROR_CTX(factory_(checkpoint_path, &model),
                              "build model generation");
  auto gen = std::make_shared<Generation>();
  core::InferenceEngine* engine =
      model != nullptr ? &model->inference() : nullptr;
  if (engine != nullptr && config_.topk == core::TopKMode::kIvf) {
    engine->set_index_config(config_.index);
    engine->set_topk_mode(core::TopKMode::kIvf);
    // Pay the k-means build here, while the previous generation (if any) is
    // still serving; the swap publishes a generation whose index is warm.
    engine->GetOrBuildIndex();
  }
  gen->model = std::move(model);
  gen->fallback = std::make_unique<core::FallbackRecommender>(
      engine, popularity_, num_items_);
  *out = std::move(gen);
  return Status::Ok();
}

Status Server::Start() {
  GROUPSA_CHECK(!running_, "Server::Start on a running server");
  std::shared_ptr<Generation> gen;
  GROUPSA_RETURN_IF_ERROR_CTX(BuildGeneration(checkpoint_path_, &gen),
                              "serve start");
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    gen->number = ++next_generation_;
    generation_ = std::move(gen);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = false;
  }
  pool_ = std::make_unique<parallel::ThreadPool>(config_.workers + 1);
  for (int i = 0; i < config_.workers; ++i)
    pool_->Post([this] { WorkerLoop(); });
  running_ = true;
  return Status::Ok();
}

void Server::Stop() {
  if (!running_) return;
  CloseQueue();
  // Worker loops drain the queue and return; the pool destructor joins them.
  pool_.reset();
  running_ = false;
}

bool Server::running() const { return running_; }

std::shared_ptr<Server::Generation> Server::CurrentGeneration() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return generation_;
}

uint64_t Server::generation() const {
  const std::shared_ptr<Generation> gen = CurrentGeneration();
  return gen == nullptr ? 0 : gen->number;
}

// ---------------------------------------------------------------------------
// Bounded admission queue
// ---------------------------------------------------------------------------

Server::PushResult Server::TryPush(Job* job) {
  int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_closed_) return PushResult::kClosed;
    if (static_cast<int>(queue_.size()) >= config_.queue_depth)
      return PushResult::kFull;
    queue_.push_back(std::move(*job));
    depth = static_cast<int64_t>(queue_.size());
  }
  // Monotone max over racing updates.
  int64_t seen = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !peak_queue_depth_.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
  queue_cv_.notify_one();
  return PushResult::kOk;
}

bool Server::PopBlocking(Job* out) {
  std::unique_lock<std::mutex> lock(queue_mu_);
  // A paused worker parks here even with work queued; closing the queue
  // overrides the pause so shutdown always drains.
  queue_cv_.wait(lock, [this] {
    return queue_closed_ || (!paused_ && !queue_.empty());
  });
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Server::Pause() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  paused_ = true;
}

void Server::Resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void Server::CloseQueue() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Request path
// ---------------------------------------------------------------------------

std::future<Response> Server::Submit(Request req) {
  Job job;
  job.request = std::move(req);
  job.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<Response> future = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // Front-door fault injection: an error here models a failure before the
  // request ever reaches the queue (a torn read off the wire). The request
  // still resolves — rejected, never dropped.
  if (GROUPSA_FAILPOINT("serve.submit") != failpoint::Action::kNone) {
    Response r;
    r.id = job.id;
    r.rejected = true;
    r.error = "injected fault at serve.submit";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(r));
    return future;
  }

  switch (TryPush(&job)) {
    case PushResult::kOk:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return future;
    case PushResult::kFull: {
      if (config_.overload == ServeConfig::OverloadPolicy::kShedToFallback) {
        // Shed on the caller thread: popularity is O(items log k) with no
        // model work, so the overload path stays cheap under pressure.
        Response r = DegradedAnswer(CurrentGeneration(), job.request, job.id,
                                    "admission queue full");
        r.shed = true;
        shed_.fetch_add(1, std::memory_order_relaxed);
        job.promise.set_value(std::move(r));
      } else {
        Response r;
        r.id = job.id;
        r.rejected = true;
        r.error = "admission queue full";
        rejected_.fetch_add(1, std::memory_order_relaxed);
        job.promise.set_value(std::move(r));
      }
      return future;
    }
    case PushResult::kClosed: {
      Response r;
      r.id = job.id;
      r.rejected = true;
      r.error = "server not running";
      rejected_.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(std::move(r));
      return future;
    }
  }
  GROUPSA_CHECK(false, "unreachable TryPush result");
  return future;
}

Response Server::Call(Request req) { return Submit(std::move(req)).get(); }

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    if (!PopBlocking(&job)) return;
    Response r = Process(job.request, job.id);
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (r.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(r));
  }
}

Response Server::DegradedAnswer(const std::shared_ptr<Generation>& gen,
                                const Request& request, uint64_t id,
                                std::string reason) const {
  const data::InteractionMatrix* exclude = nullptr;
  if (request.exclude_seen) {
    exclude = request.kind == Request::Kind::kGroup ? group_exclude_
                                                    : user_exclude_;
  }
  const core::FallbackRecommender::Response fr = gen->fallback->ServeDegraded(
      std::move(reason), request.k, exclude, ExcludeRows(request));
  Response r;
  r.id = id;
  r.items = fr.items;
  r.degraded = true;
  r.error = fr.error;
  r.generation = gen->number;
  return r;
}

Response Server::Process(const Request& request, uint64_t id) {
  const std::shared_ptr<Generation> gen = CurrentGeneration();
  // Worker-side fault injection: the daemon degrades this one response
  // instead of crashing (error and corrupt both map to "the model path is
  // unusable for this request"; kill is the crash-test hammer and never
  // returns).
  if (GROUPSA_FAILPOINT("serve.worker") != failpoint::Action::kNone)
    return DegradedAnswer(gen, request, id, "injected fault at serve.worker");

  const data::InteractionMatrix* user_ex =
      request.exclude_seen ? user_exclude_ : nullptr;
  const data::InteractionMatrix* group_ex =
      request.exclude_seen ? group_exclude_ : nullptr;
  core::FallbackRecommender::Response fr;
  switch (request.kind) {
    case Request::Kind::kUser:
      fr = gen->fallback->RecommendForUser(request.user, request.k, user_ex);
      break;
    case Request::Kind::kGroup:
      fr = gen->fallback->RecommendForGroup(request.group, request.k,
                                            group_ex);
      break;
    case Request::Kind::kMembers:
      fr = gen->fallback->RecommendForMembers(request.members, request.k,
                                              user_ex);
      break;
  }
  Response r;
  r.id = id;
  r.items = std::move(fr.items);
  r.degraded = fr.degraded;
  r.error = std::move(fr.error);
  r.generation = gen->number;
  return r;
}

// ---------------------------------------------------------------------------
// Hot reload
// ---------------------------------------------------------------------------

Status Server::Reload(const std::string& checkpoint_path) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  // Build-phase fault: a reload that cannot stage its new generation
  // (missing/torn checkpoint, injected error) leaves the old one serving.
  if (GROUPSA_FAILPOINT("serve.reload.build") != failpoint::Action::kNone) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Error("injected fault at serve.reload.build");
  }
  std::shared_ptr<Generation> gen;
  if (Status s = BuildGeneration(checkpoint_path, &gen); !s.ok()) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return s.WithContext("serve reload");
  }
  // The swap site: a kill here models a crash mid-swap. The staged
  // generation is process-local, so the checkpoint on disk — written
  // atomically by checkpoint v2 — stays the restart's last good state.
  GROUPSA_FAILPOINT("serve.reload.swap");
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    gen->number = ++next_generation_;
    generation_ = std::move(gen);
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.failed_reloads = failed_reloads_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace groupsa::serve
