#include "serve/server.h"

#include <algorithm>
#include <chrono>

#include "common/failpoint.h"
#include "common/macros.h"
#include "core/inference_engine.h"

namespace groupsa::serve {
namespace {

// Exclude-matrix rows a degraded answer must respect, mirroring the rows
// the model path would have consulted (user row / group row / every member
// row).
std::vector<int32_t> ExcludeRows(const Request& request) {
  switch (request.kind) {
    case Request::Kind::kUser:
      return {request.user};
    case Request::Kind::kGroup:
      return {request.group};
    case Request::Kind::kMembers:
      return std::vector<int32_t>(request.members.begin(),
                                  request.members.end());
  }
  return {};
}

}  // namespace

Server::Server(const ServeConfig& config, ModelFactory factory,
               std::string checkpoint_path, const data::EdgeList& popularity,
               int num_users, int num_groups, int num_items,
               const data::InteractionMatrix* user_exclude,
               const data::InteractionMatrix* group_exclude)
    : config_(config),
      factory_(std::move(factory)),
      checkpoint_path_(std::move(checkpoint_path)),
      popularity_(popularity),
      num_users_(num_users),
      num_groups_(num_groups),
      num_items_(num_items),
      user_exclude_(user_exclude),
      group_exclude_(group_exclude),
      breaker_(config.breaker) {
  GROUPSA_CHECK(config_.workers >= 1, "ServeConfig::workers must be >= 1");
  GROUPSA_CHECK(config_.queue_depth >= 1,
                "ServeConfig::queue_depth must be >= 1");
  GROUPSA_CHECK(config_.reload_retries >= 0,
                "ServeConfig::reload_retries must be >= 0");
  GROUPSA_CHECK(factory_ != nullptr, "Server requires a model factory");
}

Server::~Server() { Stop(); }

Status Server::BuildGeneration(const std::string& checkpoint_path,
                               std::shared_ptr<Generation>* out) {
  std::unique_ptr<core::GroupSaModel> model;
  GROUPSA_RETURN_IF_ERROR_CTX(factory_(checkpoint_path, &model),
                              "build model generation");
  auto gen = std::make_shared<Generation>();
  core::InferenceEngine* engine =
      model != nullptr ? &model->inference() : nullptr;
  if (engine != nullptr && config_.topk == core::TopKMode::kIvf) {
    engine->set_index_config(config_.index);
    engine->set_topk_mode(core::TopKMode::kIvf);
    // Pay the k-means build here, while the previous generation (if any) is
    // still serving; the swap publishes a generation whose index is warm.
    engine->GetOrBuildIndex();
  }
  if (engine != nullptr && config_.score == core::ScoreMode::kInt8) {
    engine->set_int8_config(config_.int8);
    engine->set_score_mode(core::ScoreMode::kInt8);
    // Same eager-build contract as the IVF index: quantize the item tables
    // before the swap so no request thread ever pays for it.
    engine->GetQuantState();
  }
  gen->model = std::move(model);
  gen->fallback = std::make_unique<core::FallbackRecommender>(
      engine, popularity_, num_items_);
  *out = std::move(gen);
  return Status::Ok();
}

Status Server::Start() {
  GROUPSA_CHECK(!running_, "Server::Start on a running server");
  std::shared_ptr<Generation> gen;
  GROUPSA_RETURN_IF_ERROR_CTX(BuildGeneration(checkpoint_path_, &gen),
                              "serve start");
  {
    std::lock_guard<DebugMutex> lock(gen_mu_);
    stopping_ = false;
    gen->number = ++next_generation_;
    generation_ = std::move(gen);
  }
  {
    std::lock_guard<DebugMutex> lock(queue_mu_);
    queue_closed_ = false;
  }
  {
    std::lock_guard<DebugMutex> lock(supervisor_mu_);
    supervisor_stop_ = false;
    pending_reload_.active = false;
  }
  slots_.clear();
  for (int i = 0; i < config_.workers; ++i) {
    auto slot = std::make_unique<Slot>();
    {
      // Uncontended (no worker loop exists yet), but guarded state.
      std::lock_guard<DebugMutex> lock(slot->mu);
      slot->alive = true;
      slot->epoch = 1;
    }
    slots_.push_back(std::move(slot));
  }
  // Pool width: W worker loops + the supervisor + one spare, so that a
  // replacement WorkerLoop posted mid-rescue never has to wait for the
  // thread of the very worker it is replacing. ThreadPool(n) spawns n-1
  // workers and Post() needs a spawned worker, hence the +3.
  pool_ = std::make_unique<parallel::ThreadPool>(config_.workers + 3);
  for (int i = 0; i < config_.workers; ++i)
    pool_->Post([this, i] { WorkerLoop(i, /*epoch=*/1); });
  if (config_.supervise) pool_->Post([this] { SupervisorLoop(); });
  running_ = true;
  return Status::Ok();
}

void Server::Stop() {
  if (!running_) return;
  {
    // Bars any in-flight Reload from swapping a generation in after the
    // drain: once this flag is up, "the generation that served last" is
    // final.
    std::lock_guard<DebugMutex> lock(gen_mu_);
    stopping_ = true;
  }
  {
    std::lock_guard<DebugMutex> lock(supervisor_mu_);
    supervisor_stop_ = true;
    pending_reload_.active = false;
  }
  supervisor_cv_.notify_all();
  CloseQueue();
  // Worker loops drain the queue and return (hung owners were released by
  // CloseQueue and self-serve their held job); the pool destructor joins
  // them along with the supervisor.
  pool_.reset();
  running_ = false;
}

bool Server::running() const { return running_; }

std::shared_ptr<Server::Generation> Server::CurrentGeneration() const {
  std::lock_guard<DebugMutex> lock(gen_mu_);
  return generation_;
}

uint64_t Server::generation() const {
  const std::shared_ptr<Generation> gen = CurrentGeneration();
  return gen == nullptr ? 0 : gen->number;
}

// ---------------------------------------------------------------------------
// Bounded admission queue
// ---------------------------------------------------------------------------

Server::PushResult Server::TryPush(Job* job) {
  int64_t depth = 0;
  {
    std::lock_guard<DebugMutex> lock(queue_mu_);
    if (queue_closed_) return PushResult::kClosed;
    if (static_cast<int>(queue_.size()) >= config_.queue_depth)
      return PushResult::kFull;
    queue_.push_back(std::move(*job));
    depth = static_cast<int64_t>(queue_.size());
  }
  // Monotone max over racing updates.
  int64_t seen = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !peak_queue_depth_.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
  queue_cv_.notify_one();
  return PushResult::kOk;
}

bool Server::PopBlocking(Job* out) {
  std::unique_lock<DebugMutex> lock(queue_mu_);
  // A paused worker parks here even with work queued; closing the queue
  // overrides the pause so shutdown always drains.
  queue_cv_.wait(lock, [this] {
    return queue_closed_ || (!paused_ && !queue_.empty());
  });
  if (queue_.empty()) return false;  // closed and drained
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Server::Pause() {
  std::lock_guard<DebugMutex> lock(queue_mu_);
  paused_ = true;
}

void Server::Resume() {
  {
    std::lock_guard<DebugMutex> lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void Server::CloseQueue() {
  {
    std::lock_guard<DebugMutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  // Release hung owners: a worker parked in a simulated hang wakes, finds
  // its job still installed, and serves it before exiting — shutdown never
  // strands a request inside a slot.
  for (const std::unique_ptr<Slot>& slot : slots_) {
    {
      std::lock_guard<DebugMutex> lock(slot->mu);
      slot->release = true;
    }
    slot->cv.notify_all();
  }
}

void Server::RequeueFront(Job job) {
  {
    std::unique_lock<DebugMutex> lock(queue_mu_);
    if (!queue_closed_) {
      queue_.push_front(std::move(job));
      lock.unlock();
      queue_cv_.notify_one();
      return;
    }
  }
  // Shutdown raced the rescue: the drain may already be past this job's
  // place in line, so serve it right here on the supervisor thread. The
  // supervisor owns the Job, so exactly-once resolution still holds.
  CompleteJob(std::move(job));
}

// ---------------------------------------------------------------------------
// Request path
// ---------------------------------------------------------------------------

std::string Server::ValidateRequest(const Request& request) const {
  if (request.k < 1)
    return "invalid request: k must be >= 1 (got " +
           std::to_string(request.k) + ")";
  switch (request.kind) {
    case Request::Kind::kUser:
      if (request.user < 0 ||
          (num_users_ > 0 && request.user >= num_users_))
        return "invalid request: user id " + std::to_string(request.user) +
               " out of range";
      break;
    case Request::Kind::kGroup:
      if (request.group < 0 ||
          (num_groups_ > 0 && request.group >= num_groups_))
        return "invalid request: group id " + std::to_string(request.group) +
               " out of range";
      break;
    case Request::Kind::kMembers: {
      if (request.members.empty())
        return "invalid request: members list is empty";
      for (data::UserId member : request.members) {
        if (member < 0 || (num_users_ > 0 && member >= num_users_))
          return "invalid request: member id " + std::to_string(member) +
                 " out of range";
      }
      std::vector<data::UserId> sorted = request.members;
      std::sort(sorted.begin(), sorted.end());
      const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
      if (dup != sorted.end())
        return "invalid request: duplicate member id " + std::to_string(*dup);
      break;
    }
  }
  return "";
}

std::future<Response> Server::Submit(Request req) {
  Job job;
  job.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<Response> future = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Every submission is one tick of virtual time — the clock measures
  // traffic, never the wall.
  const uint64_t now = clock_.Advance();

  const auto resolve = [&job](Response r) {
    r.id = job.id;
    job.promise.set_value(std::move(r));
  };

  // Front-door fault injection: an error here models a failure before the
  // request ever reaches the queue (a torn read off the wire). The request
  // still resolves — rejected, never dropped.
  if (GROUPSA_FAILPOINT("serve.submit") != failpoint::Action::kNone) {
    Response r;
    r.rejected = true;
    r.error = "injected fault at serve.submit";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    resolve(std::move(r));
    return future;
  }

  // Structured validation: a malformed request gets a reason, not a crash
  // deeper in the stack and not a silent degraded ranking for an entity
  // that does not exist.
  if (std::string reason = ValidateRequest(req); !reason.empty()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.rejected = true;
    r.error = std::move(reason);
    resolve(std::move(r));
    return future;
  }

  // Resolve the deadline: client absolute tick wins, then the request's
  // own budget, then the server-wide default.
  uint64_t deadline_tick = req.deadline_tick;
  if (deadline_tick == 0) {
    const uint64_t budget =
        req.deadline_ticks != 0 ? req.deadline_ticks : config_.deadline_ticks;
    deadline_tick = DeadlineFromBudget(now, budget);
  }
  if (DeadlineExpired(deadline_tick, now)) {
    // Dead on arrival: the carried deadline already passed. Cheapest
    // possible resolution — no queue slot, no worker, no ranking.
    expired_.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.expired = true;
    r.error = DescribeExpiry(deadline_tick);
    resolve(std::move(r));
    return future;
  }

  job.request = std::move(req);
  job.deadline_tick = deadline_tick;
  switch (TryPush(&job)) {
    case PushResult::kOk:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return future;
    case PushResult::kFull: {
      if (config_.overload == ServeConfig::OverloadPolicy::kShedToFallback) {
        // Shed on the caller thread: popularity is O(items log k) with no
        // model work, so the overload path stays cheap under pressure.
        Response r = DegradedAnswer(CurrentGeneration(), job.request, job.id,
                                    "admission queue full");
        r.shed = true;
        shed_.fetch_add(1, std::memory_order_relaxed);
        job.promise.set_value(std::move(r));
      } else {
        Response r;
        r.rejected = true;
        r.error = "admission queue full";
        rejected_.fetch_add(1, std::memory_order_relaxed);
        resolve(std::move(r));
      }
      return future;
    }
    case PushResult::kClosed: {
      Response r;
      r.rejected = true;
      r.error = "server not running";
      rejected_.fetch_add(1, std::memory_order_relaxed);
      resolve(std::move(r));
      return future;
    }
  }
  GROUPSA_CHECK(false, "unreachable TryPush result");
  return future;
}

Response Server::Call(Request req) { return Submit(std::move(req)).get(); }

void Server::WorkerLoop(int slot_index, uint64_t epoch) {
  Slot& slot = *slots_[static_cast<size_t>(slot_index)];
  for (;;) {
    Job job;
    if (!PopBlocking(&job)) break;
    // Decide the hang simulation before installing the job: once installed
    // it belongs to the slot and the supervisor may steal it at any time.
    const bool hang =
        job.request.chaos.hang ||
        GROUPSA_FAILPOINT("serve.worker.hang") != failpoint::Action::kNone;
    const Request request = job.request;
    const uint64_t id = job.id;
    const uint64_t deadline_tick = job.deadline_tick;
    {
      std::lock_guard<DebugMutex> lock(slot.mu);
      slot.job = std::move(job);
      slot.has_job = true;
    }
    if (hang) {
      // Simulated stuck worker: park on the slot until the supervisor
      // steals the job (and abandons this owner) or shutdown releases us.
      std::unique_lock<DebugMutex> lock(slot.mu);
      slot.hanging = true;
      slot.cv.wait(lock, [&] {
        return slot.release || !slot.has_job || slot.epoch != epoch;
      });
      if (slot.epoch != epoch) return;  // abandoned: a replacement owns this slot
      slot.hanging = false;
      if (!slot.has_job) continue;  // stolen without a restart (defensive)
      // Released at shutdown: fall through and self-serve the held job.
    }
    Response r = AnswerJob(request, id, deadline_tick);
    Job reclaimed;
    {
      std::lock_guard<DebugMutex> lock(slot.mu);
      if (slot.epoch != epoch) return;  // abandoned mid-flight
      if (!slot.has_job) continue;      // stolen mid-flight; discard ours
      reclaimed = std::move(slot.job);
      slot.has_job = false;
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (r.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
    clock_.Advance();  // every completion is the other tick of virtual time
    reclaimed.promise.set_value(std::move(r));
  }
  std::lock_guard<DebugMutex> lock(slot.mu);
  if (slot.epoch == epoch) slot.alive = false;
}

void Server::CompleteJob(Job job) {
  Response r = AnswerJob(job.request, job.id, job.deadline_tick);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (r.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
  clock_.Advance();
  job.promise.set_value(std::move(r));
}

Response Server::AnswerJob(const Request& request, uint64_t id,
                           uint64_t deadline_tick) {
  // Pop-time expiry: a request that outlived its deadline in the queue is
  // resolved before any scoring work — the whole point of a deadline is
  // not to burn model time on an answer nobody is waiting for.
  if (DeadlineExpired(deadline_tick, clock_.Now())) {
    expired_queue_.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.id = id;
    r.expired = true;
    r.error = DescribeExpiry(deadline_tick);
    return r;
  }
  return Process(request, id, deadline_tick);
}

Response Server::DegradedAnswer(const std::shared_ptr<Generation>& gen,
                                const Request& request, uint64_t id,
                                std::string reason) const {
  const data::InteractionMatrix* exclude = nullptr;
  if (request.exclude_seen) {
    exclude = request.kind == Request::Kind::kGroup ? group_exclude_
                                                    : user_exclude_;
  }
  const core::FallbackRecommender::Response fr = gen->fallback->ServeDegraded(
      std::move(reason), request.k, exclude, ExcludeRows(request));
  Response r;
  r.id = id;
  r.items = fr.items;
  r.degraded = true;
  r.error = fr.error;
  r.generation = gen->number;
  return r;
}

Response Server::Process(const Request& request, uint64_t id,
                         uint64_t deadline_tick) {
  const std::shared_ptr<Generation> gen = CurrentGeneration();

  // Circuit breaker routing. An open breaker short-circuits the whole
  // model path (retries included) to the popularity fallback; half-open
  // admits a bounded number of probes.
  const CircuitBreaker::Route route = breaker_.Admit(clock_.Now());
  if (route == CircuitBreaker::Route::kFallback)
    return DegradedAnswer(gen, request, id, "circuit breaker open");

  const int max_retries = std::max(0, config_.backoff.max_retries);
  uint64_t backoff_spent = 0;  // virtual ticks this request burned waiting
  for (int attempt = 0;; ++attempt) {
    // Transient model-path faults come from the deterministic per-request
    // chaos bits (first N attempts fault) or the hit-counted
    // "serve.worker" failpoint (error and corrupt both map to "the model
    // path is unusable for this attempt"; kill is the crash-test hammer
    // and never returns).
    const bool injected =
        attempt < static_cast<int>(request.chaos.fault_attempts) ||
        GROUPSA_FAILPOINT("serve.worker") != failpoint::Action::kNone;
    if (!injected) {
      const data::InteractionMatrix* user_ex =
          request.exclude_seen ? user_exclude_ : nullptr;
      const data::InteractionMatrix* group_ex =
          request.exclude_seen ? group_exclude_ : nullptr;
      core::FallbackRecommender::Response fr;
      switch (request.kind) {
        case Request::Kind::kUser:
          fr = gen->fallback->RecommendForUser(request.user, request.k,
                                               user_ex);
          break;
        case Request::Kind::kGroup:
          fr = gen->fallback->RecommendForGroup(request.group, request.k,
                                                group_ex);
          break;
        case Request::Kind::kMembers:
          fr = gen->fallback->RecommendForMembers(request.members, request.k,
                                                  user_ex);
          break;
      }
      // Request-final outcome for the breaker. An engine error is evidence
      // against the model; an absent engine (permanently degraded) is the
      // configured steady state, not a model failure — counting it would
      // trip the breaker on a server that is behaving exactly as asked.
      // Engine errors are deterministic for a given request, so they are
      // not retried: the retry budget exists for transient faults.
      if (fr.source ==
          core::FallbackRecommender::Response::Source::kEngineError) {
        breaker_.RecordFailure(route, clock_.Now());
      } else {
        breaker_.RecordSuccess(route);
      }
      Response r;
      r.id = id;
      r.items = std::move(fr.items);
      r.degraded = fr.degraded;
      r.retries = attempt;
      r.error = std::move(fr.error);
      r.generation = gen->number;
      return r;
    }
    worker_faults_.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= max_retries) {
      breaker_.RecordFailure(route, clock_.Now());
      Response r =
          DegradedAnswer(gen, request, id, "injected fault at serve.worker");
      r.retries = attempt;
      return r;
    }
    // Retry with backoff. The delay does not sleep: it is charged against
    // the request's own deadline budget, so a retrying request is strictly
    // closer to expiry than one that succeeded first try.
    retries_.fetch_add(1, std::memory_order_relaxed);
    backoff_spent += BackoffDelayTicks(config_.backoff, id, attempt);
    if (DeadlineExpired(deadline_tick, clock_.Now() + backoff_spent)) {
      breaker_.RecordFailure(route, clock_.Now());
      expired_queue_.fetch_add(1, std::memory_order_relaxed);
      Response r;
      r.id = id;
      r.expired = true;
      r.retries = attempt;
      r.error = DescribeExpiry(deadline_tick) + " during retry backoff";
      return r;
    }
  }
}

// ---------------------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------------------

void Server::SupervisorLoop() {
  const auto poll =
      std::chrono::milliseconds(std::max(1, config_.supervisor_poll_ms));
  for (;;) {
    {
      std::unique_lock<DebugMutex> lock(supervisor_mu_);
      supervisor_cv_.wait_for(lock, poll);
      if (supervisor_stop_) return;
    }
    SuperviseOnce();
  }
}

void Server::SuperviseOnce() {
  // Rescue hung workers: steal the installed job back, requeue it at the
  // front (it has already waited its turn once), abandon the stuck owner
  // and post a replacement loop for the slot. Double processing is
  // impossible — the job moves under the slot mutex — and even a lost
  // race would be harmless, because a response is a pure function of
  // (request, generation).
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    Job job;
    uint64_t new_epoch = 0;
    {
      std::lock_guard<DebugMutex> lock(slot.mu);
      if (!slot.alive || !slot.hanging || slot.release || !slot.has_job)
        continue;
      job = std::move(slot.job);
      slot.has_job = false;
      slot.hanging = false;
      new_epoch = ++slot.epoch;
      ++slot.restarts;
    }
    // Wake the abandoned owner so its thread returns to the pool.
    slot.cv.notify_all();
    hangs_rescued_.fetch_add(1, std::memory_order_relaxed);
    worker_restarts_.fetch_add(1, std::memory_order_relaxed);
    // The hang modeled a stuck *worker*, not a poisoned request: the
    // rescued job must not hang whoever serves it next.
    job.request.chaos.hang = false;
    RequeueFront(std::move(job));
    const int slot_index = static_cast<int>(i);
    pool_->Post(
        [this, slot_index, new_epoch] { WorkerLoop(slot_index, new_epoch); });
  }

  // Fire a due background reload retry.
  std::string path;
  int attempt = 0;
  {
    std::lock_guard<DebugMutex> lock(supervisor_mu_);
    if (!pending_reload_.active || clock_.Now() < pending_reload_.due_tick)
      return;
    path = pending_reload_.path;
    attempt = pending_reload_.attempt;
    pending_reload_.active = false;
  }
  reload_retry_attempts_.fetch_add(1, std::memory_order_relaxed);
  Status s;
  {
    std::lock_guard<DebugMutex> reload_lock(reload_mu_);
    s = ReloadOnce(path);
  }
  if (!s.ok() && attempt < config_.reload_retries) {
    std::lock_guard<DebugMutex> lock(supervisor_mu_);
    // A newer explicit Reload may have re-armed the slot in the meantime;
    // its schedule wins.
    if (!pending_reload_.active) {
      pending_reload_.active = true;
      pending_reload_.path = path;
      pending_reload_.attempt = attempt + 1;
      pending_reload_.due_tick =
          clock_.Now() + BackoffDelayTicks(config_.backoff, /*key=*/0, attempt);
    }
  }
}

// ---------------------------------------------------------------------------
// Hot reload
// ---------------------------------------------------------------------------

Status Server::ReloadOnce(const std::string& checkpoint_path) {
  // Build-phase fault: a reload that cannot stage its new generation
  // (missing/torn checkpoint, injected error) leaves the old one serving.
  if (GROUPSA_FAILPOINT("serve.reload.build") != failpoint::Action::kNone) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Error("injected fault at serve.reload.build");
  }
  std::shared_ptr<Generation> gen;
  if (Status s = BuildGeneration(checkpoint_path, &gen); !s.ok()) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return s.WithContext("serve reload");
  }
  // The swap site: a kill here models a crash mid-swap (the staged
  // generation is process-local, and checkpoint v2's atomic write keeps
  // the on-disk state the restart's last good version); an error action
  // models the swap itself failing — all-or-nothing, the old generation
  // keeps serving.
  if (GROUPSA_FAILPOINT("serve.reload.swap") != failpoint::Action::kNone) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Error("injected fault at serve.reload.swap");
  }
  {
    std::lock_guard<DebugMutex> lock(gen_mu_);
    // Reload vs Stop: once Stop() has begun the drain, no new generation
    // may swap in — workers may already be gone, and a generation that
    // never serves a request must not become "current".
    if (stopping_) {
      failed_reloads_.fetch_add(1, std::memory_order_relaxed);
      return Status::Error("reload abandoned: server stopping");
    }
    gen->number = ++next_generation_;
    generation_ = std::move(gen);
  }
  // A fresh model deserves a fresh window: breaker state reflects the
  // current generation only (the trip/close counters are lifetime-scoped
  // and survive the reset).
  breaker_.Reset();
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void Server::ArmReloadRetry(const std::string& checkpoint_path) {
  // Retries fire from the supervisor loop, so they need one to be running.
  if (config_.reload_retries < 1 || !config_.supervise) return;
  {
    std::lock_guard<DebugMutex> lock(gen_mu_);
    if (stopping_) return;
  }
  std::lock_guard<DebugMutex> lock(supervisor_mu_);
  pending_reload_.active = true;
  pending_reload_.path = checkpoint_path;
  pending_reload_.attempt = 1;
  pending_reload_.due_tick =
      clock_.Now() + BackoffDelayTicks(config_.backoff, /*key=*/0, 0);
}

Status Server::Reload(const std::string& checkpoint_path) {
  std::lock_guard<DebugMutex> reload_lock(reload_mu_);
  {
    // A fresh explicit reload supersedes any pending background retry.
    std::lock_guard<DebugMutex> lock(supervisor_mu_);
    pending_reload_.active = false;
  }
  Status s = ReloadOnce(checkpoint_path);
  if (!s.ok()) ArmReloadRetry(checkpoint_path);
  return s;
}

// ---------------------------------------------------------------------------
// Stats and health
// ---------------------------------------------------------------------------

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.expired_queue = expired_queue_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.worker_faults = worker_faults_.load(std::memory_order_relaxed);
  s.hangs_rescued = hangs_rescued_.load(std::memory_order_relaxed);
  s.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.failed_reloads = failed_reloads_.load(std::memory_order_relaxed);
  s.reload_retry_attempts =
      reload_retry_attempts_.load(std::memory_order_relaxed);
  const CircuitBreaker::Counters breaker = breaker_.counters();
  s.breaker_trips = breaker.trips;
  s.breaker_reopens = breaker.reopens;
  s.breaker_closes = breaker.closes;
  s.breaker_probes = breaker.probes;
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  s.breaker_state = static_cast<int>(breaker_.state());
  s.now_tick = clock_.Now();
  return s;
}

ServerHealth Server::Health() const {
  ServerHealth h;
  h.running = running_;
  {
    std::lock_guard<DebugMutex> lock(queue_mu_);
    h.accepting = !queue_closed_;
    h.paused = paused_;
    h.queue_depth = static_cast<int>(queue_.size());
  }
  h.now_tick = clock_.Now();
  h.generation = generation();
  h.breaker = breaker_.state();
  {
    std::lock_guard<DebugMutex> lock(supervisor_mu_);
    h.reload_retry_pending = pending_reload_.active;
  }
  h.workers.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const std::unique_ptr<Slot>& slot = slots_[i];
    std::lock_guard<DebugMutex> lock(slot->mu);
    ServerHealth::Worker w;
    w.slot = static_cast<int>(i);
    w.alive = slot->alive;
    w.busy = slot->has_job;
    w.hanging = slot->hanging;
    w.job_id = slot->has_job ? slot->job.id : 0;
    w.restarts = slot->restarts;
    h.workers.push_back(w);
  }
  return h;
}

}  // namespace groupsa::serve
