#ifndef GROUPSA_SERVE_CIRCUIT_BREAKER_H_
#define GROUPSA_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/debug_mutex.h"

namespace groupsa::serve {

// Circuit breaker over the serving model path.
//
// A persistently failing model (torn reload, poisoned parameters, an index
// whose catalog no longer matches the world) makes every request pay the
// full scoring cost *and* the retry budget before degrading. The breaker
// watches a rolling window of model-path outcomes and, once failures cross
// the threshold, short-circuits the whole path to the popularity fallback
// — requests stop burning retries on a model that is known-bad. After a
// cool-down measured on the serve daemon's VirtualClock (never a wall
// clock) the breaker lets a bounded number of probe requests through; if
// enough probes succeed the engine is re-admitted, one probe failure snaps
// it back open.
//
//          failures in window >= threshold
//   kClosed ───────────────────────────────► kOpen
//      ▲                                       │ now >= trip + open_ticks
//      │ probe successes >= probes             ▼
//      └────────────────────────────────── kHalfOpen
//                 (one probe failure reopens: kHalfOpen ► kOpen)
//
// Outcomes are *request-final*: a transient fault that a retry absorbed is
// a success (the request was served by the model), only a request that
// exhausted its retries counts as a failure. That keeps recoverable blips
// from tripping the breaker while retries are doing their job.
//
// Determinism: state transitions depend only on the sequence of recorded
// outcomes and the virtual ticks passed to Admit/RecordFailure — both pure
// functions of the request schedule — so a seeded chaos run trips and
// recovers identically at any worker count.
struct BreakerConfig {
  bool enabled = false;
  // Rolling outcome window and the failure count within it that trips the
  // breaker open.
  int window = 16;
  int threshold = 8;
  // Virtual ticks from a trip (or a reopen) until probes are admitted.
  uint64_t open_ticks = 32;
  // Half-open: at most this many probes in flight at once, and this many
  // probe successes close the breaker.
  int probes = 2;
};

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

// Stable one-word names for stats output and error strings.
std::string BreakerStateName(BreakerState state);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config);
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // How one model-path request should be routed at virtual time `now`:
  //   kModel     breaker closed — serve through the engine.
  //   kProbe     half-open probe slot — serve through the engine and report
  //              the outcome with the kProbe route.
  //   kFallback  breaker open (or probe slots taken) — serve popularity.
  // A disabled breaker always routes kModel.
  enum class Route { kModel, kProbe, kFallback };
  Route Admit(uint64_t now);

  // Request-final outcome of a kModel / kProbe route. kFallback routes
  // record nothing (the model was never consulted).
  void RecordSuccess(Route route);
  void RecordFailure(Route route, uint64_t now);

  // Forgets everything, back to kClosed. Called on generation swap: a
  // fresh model deserves a fresh window.
  void Reset();

  BreakerState state() const;

  struct Counters {
    int64_t trips = 0;    // kClosed -> kOpen transitions
    int64_t reopens = 0;  // kHalfOpen -> kOpen (a probe failed)
    int64_t closes = 0;   // kHalfOpen -> kClosed (probes succeeded)
    int64_t probes = 0;   // probe requests admitted
  };
  Counters counters() const;

 private:
  // Pushes one outcome into the rolling window; trips if the failure count
  // crosses the threshold.
  void RecordWindowed(bool failure, uint64_t now) GROUPSA_REQUIRES(mu_);
  void TripLocked(uint64_t now, bool reopen) GROUPSA_REQUIRES(mu_);

  const BreakerConfig config_;
  mutable DebugMutex mu_{"serve.breaker"};
  BreakerState state_ GROUPSA_GUARDED_BY(mu_) = BreakerState::kClosed;
  std::deque<bool> window_ GROUPSA_GUARDED_BY(mu_);  // true = failure
  int window_failures_ GROUPSA_GUARDED_BY(mu_) = 0;
  uint64_t half_open_at_ GROUPSA_GUARDED_BY(mu_) = 0;  // valid while kOpen
  int probes_in_flight_ GROUPSA_GUARDED_BY(mu_) = 0;   // while kHalfOpen
  int probe_successes_ GROUPSA_GUARDED_BY(mu_) = 0;    // while kHalfOpen
  Counters counters_ GROUPSA_GUARDED_BY(mu_);
};

}  // namespace groupsa::serve

#endif  // GROUPSA_SERVE_CIRCUIT_BREAKER_H_
