#include "baselines/bpr.h"

#include <algorithm>

namespace groupsa::baselines {

double FitBprEpoch(const TripleLossFn& triple_loss, nn::Optimizer* optimizer,
                   const data::EdgeList& train,
                   const data::NegativeSampler& sampler,
                   const BprFitOptions& options, Rng* rng) {
  std::vector<data::Edge> order(train);
  rng->Shuffle(&order);
  double total_loss = 0.0;
  size_t next = 0;
  while (next < order.size()) {
    ag::Tape tape;
    std::vector<ag::TensorPtr> losses;
    const size_t batch_end = std::min(
        order.size(), next + static_cast<size_t>(options.batch_size));
    for (; next < batch_end; ++next) {
      const data::Edge& edge = order[next];
      losses.push_back(triple_loss(
          &tape, edge.row, edge.item,
          sampler.SampleMany(edge.row, options.num_negatives, rng), rng));
    }
    ag::TensorPtr stacked = ag::ConcatRows(&tape, losses);
    ag::TensorPtr loss = ag::Scale(&tape, ag::SumAll(&tape, stacked),
                                   1.0f / static_cast<float>(losses.size()));
    total_loss += loss->scalar() * static_cast<double>(losses.size());
    tape.Backward(loss);
    optimizer->Step();
  }
  return train.empty() ? 0.0
                       : total_loss / static_cast<double>(train.size());
}

double FitBpr(const TripleLossFn& triple_loss,
              const std::vector<nn::ParamEntry>& params,
              const data::EdgeList& train,
              const data::InteractionMatrix* observed,
              const BprFitOptions& options, Rng* rng) {
  nn::Adam optimizer(params, options.learning_rate, options.weight_decay);
  data::NegativeSampler sampler(observed);
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    last_epoch_loss =
        FitBprEpoch(triple_loss, &optimizer, train, sampler, options, rng);
  }
  return last_epoch_loss;
}

}  // namespace groupsa::baselines
