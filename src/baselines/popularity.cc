#include "baselines/popularity.h"

#include "common/macros.h"

namespace groupsa::baselines {

void Popularity::Fit(const std::vector<const data::EdgeList*>& sources,
                     int num_items) {
  counts_.assign(num_items, 0);
  for (const data::EdgeList* edges : sources) {
    GROUPSA_CHECK(edges != nullptr, "null edge list");
    for (const data::Edge& e : *edges) {
      GROUPSA_CHECK(e.item >= 0 && e.item < num_items, "item out of range");
      ++counts_[e.item];
    }
  }
}

std::vector<double> Popularity::ScoreItems(
    const std::vector<data::ItemId>& items) const {
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items)
    scores.push_back(static_cast<double>(CountOf(item)));
  return scores;
}

int64_t Popularity::CountOf(data::ItemId item) const {
  GROUPSA_CHECK(item >= 0 && item < static_cast<int>(counts_.size()),
                "item out of range");
  return counts_[item];
}

}  // namespace groupsa::baselines
