#include "baselines/agree.h"

namespace groupsa::baselines {

Agree::Agree(const Options& options, int num_users, int num_items,
             int num_groups, const data::GroupTable* groups, Rng* rng)
    : options_(options), groups_(groups) {
  GROUPSA_CHECK(groups_ != nullptr, "Agree requires a group table");
  const int d = options.embedding_dim;
  user_emb_ = std::make_unique<nn::Embedding>("user_emb", num_users, d, rng);
  item_emb_ = std::make_unique<nn::Embedding>("item_emb", num_items, d, rng);
  group_emb_ =
      std::make_unique<nn::Embedding>("group_emb", num_groups, d, rng);
  member_pool_ = std::make_unique<nn::AttentionPool>(
      "member_pool", d, d, options.attention_hidden, rng);
  std::vector<int> dims = {2 * d};
  for (int h : options.predictor_hidden) dims.push_back(h);
  dims.push_back(1);
  tower_ = std::make_unique<nn::Mlp>("tower", dims, rng,
                                     nn::Activation::kRelu,
                                     nn::Activation::kNone);
  RegisterSubmodule("user_emb", user_emb_.get());
  RegisterSubmodule("item_emb", item_emb_.get());
  RegisterSubmodule("group_emb", group_emb_.get());
  RegisterSubmodule("member_pool", member_pool_.get());
  RegisterSubmodule("tower", tower_.get());
}

ag::TensorPtr Agree::ScoreUserItem(ag::Tape* tape, data::UserId user,
                                   data::ItemId item, bool training,
                                   Rng* rng) {
  ag::TensorPtr joined = ag::ConcatCols(
      tape, {user_emb_->Lookup(tape, user), item_emb_->Lookup(tape, item)});
  joined = ag::Dropout(tape, joined, options_.dropout_ratio, training, rng);
  return tower_->Forward(tape, joined);
}

ag::TensorPtr Agree::ScoreGroupItem(ag::Tape* tape, data::GroupId group,
                                    data::ItemId item, bool training,
                                    Rng* rng) {
  const std::vector<data::UserId>& members = groups_->Members(group);
  std::vector<int> ids(members.begin(), members.end());
  ag::TensorPtr member_embs = user_emb_->Forward(tape, ids);  // l x d
  ag::TensorPtr item_embedding = item_emb_->Lookup(tape, item);
  nn::AttentionPoolOutput pooled =
      member_pool_->Forward(tape, item_embedding, member_embs);
  // g(t, v) = sum_i alpha_i u_i + q_t  (member aggregation + group
  // preference embedding).
  ag::TensorPtr rep =
      ag::Add(tape, pooled.pooled, group_emb_->Lookup(tape, group));
  ag::TensorPtr joined = ag::ConcatCols(tape, {rep, item_embedding});
  joined = ag::Dropout(tape, joined, options_.dropout_ratio, training, rng);
  return tower_->Forward(tape, joined);
}

std::vector<double> Agree::ScoreItemsForUser(
    data::UserId user, const std::vector<data::ItemId>& items) {
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        ScoreUserItem(nullptr, user, item, false, nullptr)->scalar());
  }
  return scores;
}

std::vector<double> Agree::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items) {
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        ScoreGroupItem(nullptr, group, item, false, nullptr)->scalar());
  }
  return scores;
}

void Agree::Fit(const data::EdgeList& user_train,
                const data::EdgeList& group_train,
                const data::InteractionMatrix* ui_observed,
                const data::InteractionMatrix* gi_observed,
                const BprFitOptions& options, Rng* rng) {
  // Alternate the two tasks epoch by epoch (shared embeddings see both
  // signals throughout), keeping one Adam state across all passes.
  nn::Adam optimizer(Parameters(), options.learning_rate,
                     options.weight_decay);
  data::NegativeSampler user_sampler(ui_observed);
  data::NegativeSampler group_sampler(gi_observed);
  const TripleLossFn user_loss = [this](ag::Tape* tape, int row,
                                        data::ItemId pos,
                                        const std::vector<data::ItemId>& negs,
                                        Rng* batch_rng) {
    ag::TensorPtr p = ScoreUserItem(tape, row, pos, true, batch_rng);
    std::vector<ag::TensorPtr> n;
    for (data::ItemId neg : negs)
      n.push_back(ScoreUserItem(tape, row, neg, true, batch_rng));
    return ag::BprLoss(tape, p, ag::ConcatRows(tape, n));
  };
  const TripleLossFn group_loss = [this](ag::Tape* tape, int row,
                                         data::ItemId pos,
                                         const std::vector<data::ItemId>& negs,
                                         Rng* batch_rng) {
    ag::TensorPtr p = ScoreGroupItem(tape, row, pos, true, batch_rng);
    std::vector<ag::TensorPtr> n;
    for (data::ItemId neg : negs)
      n.push_back(ScoreGroupItem(tape, row, neg, true, batch_rng));
    return ag::BprLoss(tape, p, ag::ConcatRows(tape, n));
  };
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    FitBprEpoch(user_loss, &optimizer, user_train, user_sampler, options,
                rng);
    FitBprEpoch(group_loss, &optimizer, group_train, group_sampler, options,
                rng);
  }
}

}  // namespace groupsa::baselines
