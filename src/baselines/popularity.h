#ifndef GROUPSA_BASELINES_POPULARITY_H_
#define GROUPSA_BASELINES_POPULARITY_H_

#include <vector>

#include "data/types.h"

namespace groupsa::baselines {

// Non-personalized popularity baseline (Pop in Tables II/III): items are
// scored by their training-set interaction count, identically for every user
// and group.
class Popularity {
 public:
  Popularity() = default;

  // Counts interactions per item over one or more training edge lists.
  void Fit(const std::vector<const data::EdgeList*>& sources, int num_items);

  std::vector<double> ScoreItems(const std::vector<data::ItemId>& items) const;

  int64_t CountOf(data::ItemId item) const;

 private:
  std::vector<int64_t> counts_;
};

}  // namespace groupsa::baselines

#endif  // GROUPSA_BASELINES_POPULARITY_H_
