#ifndef GROUPSA_BASELINES_AGREE_H_
#define GROUPSA_BASELINES_AGREE_H_

#include <memory>
#include <vector>

#include "baselines/bpr.h"
#include "data/group_table.h"
#include "nn/attention_pool.h"
#include "nn/embedding.h"
#include "nn/mlp.h"

namespace groupsa::baselines {

// AGREE (Cao et al., SIGIR'18): attentive group recommendation. The group
// representation is a vanilla attention aggregation of the member
// embeddings, guided by the target item, plus a learned group-preference
// embedding; user and group scores share one NCF-style prediction tower and
// the user-item task is trained jointly. Unlike GroupSA it has no member
// interaction modeling, no social information and no sparsity treatment.
class Agree : public nn::Module {
 public:
  struct Options {
    int embedding_dim = 32;
    int attention_hidden = 32;
    std::vector<int> predictor_hidden = {32, 16};
    float dropout_ratio = 0.1f;
  };

  Agree(const Options& options, int num_users, int num_items, int num_groups,
        const data::GroupTable* groups, Rng* rng);

  ag::TensorPtr ScoreUserItem(ag::Tape* tape, data::UserId user,
                              data::ItemId item, bool training, Rng* rng);
  ag::TensorPtr ScoreGroupItem(ag::Tape* tape, data::GroupId group,
                               data::ItemId item, bool training, Rng* rng);

  std::vector<double> ScoreItemsForUser(data::UserId user,
                                        const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForGroup(
      data::GroupId group, const std::vector<data::ItemId>& items);

  // Joint training: per epoch one pass over the user-item edges and one over
  // the group-item edges, as in the original implementation.
  void Fit(const data::EdgeList& user_train,
           const data::EdgeList& group_train,
           const data::InteractionMatrix* ui_observed,
           const data::InteractionMatrix* gi_observed,
           const BprFitOptions& options, Rng* rng);

 private:
  Options options_;
  const data::GroupTable* groups_;
  std::unique_ptr<nn::Embedding> user_emb_;
  std::unique_ptr<nn::Embedding> item_emb_;
  std::unique_ptr<nn::Embedding> group_emb_;
  std::unique_ptr<nn::AttentionPool> member_pool_;
  std::unique_ptr<nn::Mlp> tower_;  // shared predictor
};

}  // namespace groupsa::baselines

#endif  // GROUPSA_BASELINES_AGREE_H_
