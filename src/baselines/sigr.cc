#include "baselines/sigr.h"

namespace groupsa::baselines {

Sigr::Sigr(const Options& options, int num_users, int num_items,
           const data::GroupTable* groups, const data::SocialGraph* social,
           Rng* rng)
    : options_(options), groups_(groups), social_(social) {
  GROUPSA_CHECK(groups_ != nullptr && social_ != nullptr,
                "Sigr requires groups and social graph");
  const int d = options.embedding_dim;
  user_emb_ = std::make_unique<nn::Embedding>("user_emb", num_users, d, rng);
  item_emb_ = std::make_unique<nn::Embedding>("item_emb", num_items, d, rng);
  influence_ = std::make_unique<nn::Embedding>("influence", num_users, 1, rng);
  influence_->table()->mutable_value().SetZero();
  att_hidden_ = std::make_unique<nn::Linear>("att_hidden", 2 * d,
                                             options.attention_hidden, rng);
  att_out_ = std::make_unique<nn::Linear>("att_out",
                                          options.attention_hidden, 1, rng);
  group_proj_ = std::make_unique<nn::Linear>("group_proj", d, d, rng);
  std::vector<int> dims = {2 * d};
  for (int h : options.predictor_hidden) dims.push_back(h);
  dims.push_back(1);
  tower_ = std::make_unique<nn::Mlp>("tower", dims, rng,
                                     nn::Activation::kRelu,
                                     nn::Activation::kNone);
  RegisterSubmodule("user_emb", user_emb_.get());
  RegisterSubmodule("item_emb", item_emb_.get());
  RegisterSubmodule("influence", influence_.get());
  RegisterSubmodule("att_hidden", att_hidden_.get());
  RegisterSubmodule("att_out", att_out_.get());
  RegisterSubmodule("group_proj", group_proj_.get());
  RegisterSubmodule("tower", tower_.get());
}

double Sigr::PretrainSocial(Rng* rng) {
  // First-order LINE: for every social edge (u, v), maximize
  // log sigmoid(u . v) against `graph_negatives` uniformly sampled
  // non-neighbors. Only the user table takes gradients here.
  nn::Adam optimizer(user_emb_->Parameters(), options_.graph_learning_rate,
                     0.0f);
  const int num_users = user_emb_->count();
  double last_loss = 0.0;
  for (int epoch = 0; epoch < options_.graph_epochs; ++epoch) {
    double total = 0.0;
    int64_t count = 0;
    for (data::UserId u = 0; u < num_users; ++u) {
      for (data::UserId v : social_->Neighbors(u)) {
        if (v < u) continue;  // each undirected edge once
        ag::Tape tape;
        ag::TensorPtr eu = user_emb_->Lookup(&tape, u);
        ag::TensorPtr ev = user_emb_->Lookup(&tape, v);
        ag::TensorPtr pos =
            ag::MatMul(&tape, eu, ev, false, /*transpose_b=*/true);
        std::vector<ag::TensorPtr> neg_scores;
        for (int s = 0; s < options_.graph_negatives; ++s) {
          data::UserId n = rng->NextInt(num_users);
          while (n == u || social_->Connected(u, n)) n = rng->NextInt(num_users);
          neg_scores.push_back(ag::MatMul(&tape, eu,
                                          user_emb_->Lookup(&tape, n), false,
                                          true));
        }
        ag::TensorPtr loss =
            ag::BprLoss(&tape, pos, ag::ConcatRows(&tape, neg_scores));
        total += loss->scalar();
        ++count;
        tape.Backward(loss);
        optimizer.Step();
      }
    }
    last_loss = count > 0 ? total / static_cast<double>(count) : 0.0;
  }
  return last_loss;
}

ag::TensorPtr Sigr::ScoreUserItem(ag::Tape* tape, data::UserId user,
                                  data::ItemId item, bool training,
                                  Rng* rng) {
  ag::TensorPtr joined = ag::ConcatCols(
      tape, {user_emb_->Lookup(tape, user), item_emb_->Lookup(tape, item)});
  joined = ag::Dropout(tape, joined, options_.dropout_ratio, training, rng);
  return tower_->Forward(tape, joined);
}

ag::TensorPtr Sigr::ScoreGroupItem(ag::Tape* tape, data::GroupId group,
                                   data::ItemId item, bool training,
                                   Rng* rng) {
  const std::vector<data::UserId>& members = groups_->Members(group);
  const int l = static_cast<int>(members.size());
  std::vector<int> ids(members.begin(), members.end());
  ag::TensorPtr member_embs = user_emb_->Forward(tape, ids);     // l x d
  ag::TensorPtr item_embedding = item_emb_->Lookup(tape, item);  // 1 x d

  // Attention logits: MLP over [item (+) member] plus the learned social
  // influence of the member, adapted per group through the softmax.
  ag::TensorPtr tiled = ag::BroadcastRow(tape, item_embedding, l);
  ag::TensorPtr hidden = ag::Relu(
      tape,
      att_hidden_->Forward(tape, ag::ConcatCols(tape, {tiled, member_embs})));
  ag::TensorPtr logits = att_out_->Forward(tape, hidden);         // l x 1
  logits = ag::Add(tape, logits, influence_->Forward(tape, ids));  // + s_u
  ag::TensorPtr weights =
      ag::SoftmaxRows(tape, ag::Transpose(tape, logits));          // 1 x l
  ag::TensorPtr rep = ag::Relu(
      tape, group_proj_->Forward(tape, ag::MatMul(tape, weights, member_embs)));

  ag::TensorPtr joined = ag::ConcatCols(tape, {rep, item_embedding});
  joined = ag::Dropout(tape, joined, options_.dropout_ratio, training, rng);
  return tower_->Forward(tape, joined);
}

std::vector<double> Sigr::ScoreItemsForUser(
    data::UserId user, const std::vector<data::ItemId>& items) {
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        ScoreUserItem(nullptr, user, item, false, nullptr)->scalar());
  }
  return scores;
}

std::vector<double> Sigr::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items) {
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        ScoreGroupItem(nullptr, group, item, false, nullptr)->scalar());
  }
  return scores;
}

void Sigr::Fit(const data::EdgeList& user_train,
               const data::EdgeList& group_train,
               const data::InteractionMatrix* ui_observed,
               const data::InteractionMatrix* gi_observed,
               const BprFitOptions& options, Rng* rng) {
  PretrainSocial(rng);
  nn::Adam optimizer(Parameters(), options.learning_rate,
                     options.weight_decay);
  data::NegativeSampler user_sampler(ui_observed);
  data::NegativeSampler group_sampler(gi_observed);
  const TripleLossFn user_loss = [this](ag::Tape* tape, int row,
                                        data::ItemId pos,
                                        const std::vector<data::ItemId>& negs,
                                        Rng* batch_rng) {
    ag::TensorPtr p = ScoreUserItem(tape, row, pos, true, batch_rng);
    std::vector<ag::TensorPtr> n;
    for (data::ItemId neg : negs)
      n.push_back(ScoreUserItem(tape, row, neg, true, batch_rng));
    return ag::BprLoss(tape, p, ag::ConcatRows(tape, n));
  };
  const TripleLossFn group_loss = [this](ag::Tape* tape, int row,
                                         data::ItemId pos,
                                         const std::vector<data::ItemId>& negs,
                                         Rng* batch_rng) {
    ag::TensorPtr p = ScoreGroupItem(tape, row, pos, true, batch_rng);
    std::vector<ag::TensorPtr> n;
    for (data::ItemId neg : negs)
      n.push_back(ScoreGroupItem(tape, row, neg, true, batch_rng));
    return ag::BprLoss(tape, p, ag::ConcatRows(tape, n));
  };
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    FitBprEpoch(user_loss, &optimizer, user_train, user_sampler, options,
                rng);
    FitBprEpoch(group_loss, &optimizer, group_train, group_sampler, options,
                rng);
  }
}

}  // namespace groupsa::baselines
