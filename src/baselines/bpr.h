#ifndef GROUPSA_BASELINES_BPR_H_
#define GROUPSA_BASELINES_BPR_H_

#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "data/interaction_matrix.h"
#include "data/negative_sampler.h"
#include "nn/optimizer.h"

namespace groupsa::baselines {

// Shared mini-batch BPR fitting loop used by the baseline models. The model
// supplies a per-triple loss builder so it can share expensive row-side
// computation between the positive and its negatives.
struct BprFitOptions {
  int epochs = 10;
  float learning_rate = 0.005f;
  float weight_decay = 1e-6f;
  int num_negatives = 1;
  int batch_size = 64;
};

// Builds the scalar BPR loss for one (row, positive, negatives) triple on
// `tape`.
using TripleLossFn = std::function<ag::TensorPtr(
    ag::Tape* tape, int row, data::ItemId positive,
    const std::vector<data::ItemId>& negatives, Rng* rng)>;

// Runs `options.epochs` shuffled passes over `train`, sampling negatives
// from the complement of `observed`, optimizing `params` with Adam. Returns
// the average loss of the final epoch.
double FitBpr(const TripleLossFn& triple_loss,
              const std::vector<nn::ParamEntry>& params,
              const data::EdgeList& train,
              const data::InteractionMatrix* observed,
              const BprFitOptions& options, Rng* rng);

// One shuffled epoch with a caller-owned optimizer (used by models that
// interleave several tasks and must keep Adam state across passes). Returns
// the average loss over the epoch.
double FitBprEpoch(const TripleLossFn& triple_loss, nn::Optimizer* optimizer,
                   const data::EdgeList& train,
                   const data::NegativeSampler& sampler,
                   const BprFitOptions& options, Rng* rng);

}  // namespace groupsa::baselines

#endif  // GROUPSA_BASELINES_BPR_H_
