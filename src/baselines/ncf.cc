#include "baselines/ncf.h"

namespace groupsa::baselines {

Ncf::Ncf(const Options& options, int num_rows, int num_items, Rng* rng)
    : options_(options) {
  const int d = options.embedding_dim;
  row_gmf_ = std::make_unique<nn::Embedding>("row_gmf", num_rows, d, rng);
  item_gmf_ = std::make_unique<nn::Embedding>("item_gmf", num_items, d, rng);
  row_mlp_ = std::make_unique<nn::Embedding>("row_mlp", num_rows, d, rng);
  item_mlp_ = std::make_unique<nn::Embedding>("item_mlp", num_items, d, rng);
  std::vector<int> dims = {2 * d};
  for (int h : options.mlp_hidden) dims.push_back(h);
  tower_ = std::make_unique<nn::Mlp>("tower", dims, rng,
                                     nn::Activation::kRelu,
                                     nn::Activation::kRelu);
  fuse_ = std::make_unique<nn::Linear>("fuse", d + dims.back(), 1, rng);
  RegisterSubmodule("row_gmf", row_gmf_.get());
  RegisterSubmodule("item_gmf", item_gmf_.get());
  RegisterSubmodule("row_mlp", row_mlp_.get());
  RegisterSubmodule("item_mlp", item_mlp_.get());
  RegisterSubmodule("tower", tower_.get());
  RegisterSubmodule("fuse", fuse_.get());
}

ag::TensorPtr Ncf::Score(ag::Tape* tape, int row, data::ItemId item,
                         bool training, Rng* rng) {
  ag::TensorPtr gmf = ag::Mul(tape, row_gmf_->Lookup(tape, row),
                              item_gmf_->Lookup(tape, item));
  ag::TensorPtr joined = ag::ConcatCols(
      tape, {row_mlp_->Lookup(tape, row), item_mlp_->Lookup(tape, item)});
  joined = ag::Dropout(tape, joined, options_.dropout_ratio, training, rng);
  ag::TensorPtr mlp_out = tower_->Forward(tape, joined);
  return fuse_->Forward(tape, ag::ConcatCols(tape, {gmf, mlp_out}));
}

std::vector<double> Ncf::ScoreItems(int row,
                                    const std::vector<data::ItemId>& items) {
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        Score(nullptr, row, item, /*training=*/false, nullptr)->scalar());
  }
  return scores;
}

double Ncf::Fit(const data::EdgeList& train,
                const data::InteractionMatrix* observed,
                const BprFitOptions& options, Rng* rng) {
  return FitBpr(
      [this](ag::Tape* tape, int row, data::ItemId pos,
             const std::vector<data::ItemId>& negs, Rng* batch_rng) {
        ag::TensorPtr pos_score = Score(tape, row, pos, true, batch_rng);
        std::vector<ag::TensorPtr> neg_scores;
        for (data::ItemId neg : negs)
          neg_scores.push_back(Score(tape, row, neg, true, batch_rng));
        return ag::BprLoss(tape, pos_score,
                           ag::ConcatRows(tape, neg_scores));
      },
      Parameters(), train, observed, options, rng);
}

}  // namespace groupsa::baselines
