#ifndef GROUPSA_BASELINES_SIGR_H_
#define GROUPSA_BASELINES_SIGR_H_

#include <memory>
#include <vector>

#include "baselines/bpr.h"
#include "data/group_table.h"
#include "data/social_graph.h"
#include "nn/attention_pool.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace groupsa::baselines {

// SIGR (Yin et al., ICDE'19) approximation: social influence-based group
// representation learning. The original is closed source; this variant keeps
// its two load-bearing ideas (see DESIGN.md §1):
//   1. user vectors pre-trained on the social graph (first-order LINE-style
//      skip-gram with negative sampling), injecting global social structure;
//   2. member aggregation by vanilla attention whose logits carry a learned
//      per-user *social influence* bias adapted across groups.
// Like AGREE it trains the user-item task jointly; unlike GroupSA it has no
// member-to-member interaction modeling.
class Sigr : public nn::Module {
 public:
  struct Options {
    int embedding_dim = 32;
    int attention_hidden = 32;
    std::vector<int> predictor_hidden = {32, 16};
    float dropout_ratio = 0.1f;
    // Social pre-training.
    int graph_epochs = 5;
    float graph_learning_rate = 0.02f;
    int graph_negatives = 2;
  };

  Sigr(const Options& options, int num_users, int num_items,
       const data::GroupTable* groups, const data::SocialGraph* social,
       Rng* rng);

  // Stage 0: LINE-style first-order embedding of the social graph into the
  // user table. Returns the final average loss.
  double PretrainSocial(Rng* rng);

  ag::TensorPtr ScoreUserItem(ag::Tape* tape, data::UserId user,
                              data::ItemId item, bool training, Rng* rng);
  ag::TensorPtr ScoreGroupItem(ag::Tape* tape, data::GroupId group,
                               data::ItemId item, bool training, Rng* rng);

  std::vector<double> ScoreItemsForUser(data::UserId user,
                                        const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForGroup(
      data::GroupId group, const std::vector<data::ItemId>& items);

  // Full pipeline: social pre-training, then joint user/group BPR epochs.
  void Fit(const data::EdgeList& user_train,
           const data::EdgeList& group_train,
           const data::InteractionMatrix* ui_observed,
           const data::InteractionMatrix* gi_observed,
           const BprFitOptions& options, Rng* rng);

 private:
  Options options_;
  const data::GroupTable* groups_;
  const data::SocialGraph* social_;
  std::unique_ptr<nn::Embedding> user_emb_;
  std::unique_ptr<nn::Embedding> item_emb_;
  std::unique_ptr<nn::Embedding> influence_;  // per-user scalar bias
  // Item-guided member attention with the influence bias folded into the
  // logits (AttentionPool cannot express the bias, so the net is inlined).
  std::unique_ptr<nn::Linear> att_hidden_;
  std::unique_ptr<nn::Linear> att_out_;
  std::unique_ptr<nn::Linear> group_proj_;
  std::unique_ptr<nn::Mlp> tower_;
};

}  // namespace groupsa::baselines

#endif  // GROUPSA_BASELINES_SIGR_H_
