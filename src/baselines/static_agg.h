#ifndef GROUPSA_BASELINES_STATIC_AGG_H_
#define GROUPSA_BASELINES_STATIC_AGG_H_

#include <string>
#include <vector>

#include "core/groupsa_model.h"

namespace groupsa::baselines {

// Predefined score aggregation strategies (late aggregation, Sec. VI-A).
// Following the paper's protocol these run on top of a trained GroupSA: each
// member's personal preference scores are predicted first, then combined
// with a static rule (Group+avg / Group+lm / Group+ms in Tables II/III).
enum class ScoreAggregation {
  kAverage,          // equal contribution
  kLeastMisery,      // min over members
  kMaxSatisfaction,  // max over members
};

std::string ToString(ScoreAggregation aggregation);

// Combines a [member][item] score matrix into per-item group scores.
std::vector<double> AggregateMemberScores(
    const std::vector<std::vector<double>>& member_scores,
    ScoreAggregation aggregation);

// Group scorer over a trained GroupSA model.
class StaticAggRecommender {
 public:
  StaticAggRecommender(core::GroupSaModel* model,
                       ScoreAggregation aggregation)
      : model_(model), aggregation_(aggregation) {}

  std::vector<double> ScoreItemsForGroup(
      data::GroupId group, const std::vector<data::ItemId>& items) const;
  std::vector<double> ScoreItemsForMembers(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items) const;

  ScoreAggregation aggregation() const { return aggregation_; }

 private:
  core::GroupSaModel* model_;
  ScoreAggregation aggregation_;
};

}  // namespace groupsa::baselines

#endif  // GROUPSA_BASELINES_STATIC_AGG_H_
