#include "baselines/static_agg.h"

#include <algorithm>

#include "common/macros.h"

namespace groupsa::baselines {

std::string ToString(ScoreAggregation aggregation) {
  switch (aggregation) {
    case ScoreAggregation::kAverage:
      return "Group+avg";
    case ScoreAggregation::kLeastMisery:
      return "Group+lm";
    case ScoreAggregation::kMaxSatisfaction:
      return "Group+ms";
  }
  return "?";
}

std::vector<double> AggregateMemberScores(
    const std::vector<std::vector<double>>& member_scores,
    ScoreAggregation aggregation) {
  GROUPSA_CHECK(!member_scores.empty(), "no member scores");
  const size_t num_items = member_scores[0].size();
  std::vector<double> out(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    double acc = member_scores[0][i];
    for (size_t m = 1; m < member_scores.size(); ++m) {
      GROUPSA_CHECK(member_scores[m].size() == num_items,
                    "ragged member score matrix");
      const double s = member_scores[m][i];
      switch (aggregation) {
        case ScoreAggregation::kAverage:
          acc += s;
          break;
        case ScoreAggregation::kLeastMisery:
          acc = std::min(acc, s);
          break;
        case ScoreAggregation::kMaxSatisfaction:
          acc = std::max(acc, s);
          break;
      }
    }
    if (aggregation == ScoreAggregation::kAverage)
      acc /= static_cast<double>(member_scores.size());
    out[i] = acc;
  }
  return out;
}

std::vector<double> StaticAggRecommender::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items) const {
  return ScoreItemsForMembers(model_->model_data().groups->Members(group),
                              items);
}

std::vector<double> StaticAggRecommender::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) const {
  return AggregateMemberScores(model_->MemberItemScores(members, items),
                               aggregation_);
}

}  // namespace groupsa::baselines
