#ifndef GROUPSA_BASELINES_NCF_H_
#define GROUPSA_BASELINES_NCF_H_

#include <memory>
#include <vector>

#include "baselines/bpr.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace groupsa::baselines {

// Neural Collaborative Filtering (He et al., WWW'17) in its NeuMF form: a
// GMF branch (element-wise product of row/item embeddings) and an MLP branch
// over their concatenation, fused by a final linear layer. For the group
// task the paper treats each group as a virtual user ("row" here is a
// UserId or GroupId depending on what the instance is trained on), ignoring
// membership — which is exactly why it collapses under group-item sparsity.
class Ncf : public nn::Module {
 public:
  struct Options {
    int embedding_dim = 32;
    std::vector<int> mlp_hidden = {32, 16};
    float dropout_ratio = 0.1f;
  };

  Ncf(const Options& options, int num_rows, int num_items, Rng* rng);

  // Differentiable score for training.
  ag::TensorPtr Score(ag::Tape* tape, int row, data::ItemId item,
                      bool training, Rng* rng);

  // Inference scores (null tape).
  std::vector<double> ScoreItems(int row,
                                 const std::vector<data::ItemId>& items);

  // BPR fit on the given edges.
  double Fit(const data::EdgeList& train,
             const data::InteractionMatrix* observed,
             const BprFitOptions& options, Rng* rng);

 private:
  Options options_;
  std::unique_ptr<nn::Embedding> row_gmf_;
  std::unique_ptr<nn::Embedding> item_gmf_;
  std::unique_ptr<nn::Embedding> row_mlp_;
  std::unique_ptr<nn::Embedding> item_mlp_;
  std::unique_ptr<nn::Mlp> tower_;
  std::unique_ptr<nn::Linear> fuse_;  // [gmf (+) mlp_out] -> 1
};

}  // namespace groupsa::baselines

#endif  // GROUPSA_BASELINES_NCF_H_
