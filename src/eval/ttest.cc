#include "eval/ttest.h"

#include <cmath>

#include "common/macros.h"

namespace groupsa::eval {
namespace {

double LogGamma(double x) { return std::lgamma(x); }

// Lentz's continued fraction for the incomplete beta function.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kTiny = 1e-30;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  GROUPSA_CHECK(x >= 0.0 && x <= 1.0, "incomplete beta domain");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedP(double t, double df) {
  GROUPSA_CHECK(df > 0.0, "degrees of freedom must be positive");
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double Mean(const std::vector<double>& values) {
  GROUPSA_CHECK(!values.empty(), "Mean of empty vector");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double SampleStdDev(const std::vector<double>& values) {
  GROUPSA_CHECK(values.size() >= 2, "stddev needs >= 2 samples");
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  GROUPSA_CHECK(a.size() == b.size(), "paired t-test size mismatch");
  GROUPSA_CHECK(a.size() >= 2, "paired t-test needs >= 2 pairs");
  const size_t n = a.size();
  std::vector<double> diff(n);
  for (size_t i = 0; i < n; ++i) diff[i] = a[i] - b[i];

  TTestResult result;
  result.mean_difference = Mean(diff);
  result.degrees_of_freedom = static_cast<double>(n - 1);
  const double sd = SampleStdDev(diff);
  if (sd == 0.0) {
    result.t_statistic =
        result.mean_difference == 0.0
            ? 0.0
            : std::copysign(1e9, result.mean_difference);
    result.p_value = result.mean_difference == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic =
      result.mean_difference / (sd / std::sqrt(static_cast<double>(n)));
  result.p_value =
      StudentTTwoSidedP(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace groupsa::eval
