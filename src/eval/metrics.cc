#include "eval/metrics.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace groupsa::eval {

double HitRatioAtK(int rank, int k) { return rank < k ? 1.0 : 0.0; }

double NdcgAtK(int rank, int k) {
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

double MrrAtK(int rank, int k) {
  if (rank >= k) return 0.0;
  return 1.0 / (static_cast<double>(rank) + 1.0);
}

double PrecisionAtK(int rank, int k) {
  if (rank >= k) return 0.0;
  return 1.0 / static_cast<double>(k);
}

int RankOfPositive(double positive_score,
                   const std::vector<double>& candidate_scores) {
  int rank = 0;
  for (double s : candidate_scores) {
    if (s >= positive_score) ++rank;
  }
  return rank;
}

double EvalResult::HitRatio(int k) const {
  for (const MetricsAtK& m : at_k) {
    if (m.k == k) return m.hit_ratio;
  }
  GROUPSA_CHECK(false, "HitRatio: cutoff not evaluated");
  return 0.0;
}

double EvalResult::Ndcg(int k) const {
  for (const MetricsAtK& m : at_k) {
    if (m.k == k) return m.ndcg;
  }
  GROUPSA_CHECK(false, "Ndcg: cutoff not evaluated");
  return 0.0;
}

double EvalResult::Mrr(int k) const {
  for (const MetricsAtK& m : at_k) {
    if (m.k == k) return m.mrr;
  }
  GROUPSA_CHECK(false, "Mrr: cutoff not evaluated");
  return 0.0;
}

double EvalResult::Precision(int k) const {
  for (const MetricsAtK& m : at_k) {
    if (m.k == k) return m.precision;
  }
  GROUPSA_CHECK(false, "Precision: cutoff not evaluated");
  return 0.0;
}

std::string EvalResult::ToString() const {
  std::string out = StrFormat("n=%d", num_cases);
  for (const MetricsAtK& m : at_k) {
    out += StrFormat("  HR@%d=%.4f NDCG@%d=%.4f", m.k, m.hit_ratio, m.k,
                     m.ndcg);
  }
  return out;
}

EvalResult AggregateRanks(const std::vector<int>& ranks,
                          const std::vector<int>& ks) {
  EvalResult result;
  result.num_cases = static_cast<int>(ranks.size());
  for (int k : ks) {
    MetricsAtK m;
    m.k = k;
    if (!ranks.empty()) {
      double hr = 0.0;
      double ndcg = 0.0;
      double mrr = 0.0;
      double precision = 0.0;
      for (int rank : ranks) {
        hr += HitRatioAtK(rank, k);
        ndcg += NdcgAtK(rank, k);
        mrr += MrrAtK(rank, k);
        precision += PrecisionAtK(rank, k);
      }
      const double n = static_cast<double>(ranks.size());
      m.hit_ratio = hr / n;
      m.ndcg = ndcg / n;
      m.mrr = mrr / n;
      m.precision = precision / n;
    }
    result.at_k.push_back(m);
  }
  return result;
}

}  // namespace groupsa::eval
