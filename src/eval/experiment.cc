#include "eval/experiment.h"

#include "common/macros.h"

namespace groupsa::eval {

void MultiSeedResult::Add(const std::string& metric, double value) {
  samples_[metric].push_back(value);
}

const std::vector<double>& MultiSeedResult::Samples(
    const std::string& metric) const {
  auto it = samples_.find(metric);
  GROUPSA_CHECK(it != samples_.end(), "unknown metric");
  return it->second;
}

double MultiSeedResult::MeanOf(const std::string& metric) const {
  return Mean(Samples(metric));
}

double MultiSeedResult::StdDevOf(const std::string& metric) const {
  const auto& s = Samples(metric);
  if (s.size() < 2) return 0.0;
  return SampleStdDev(s);
}

bool MultiSeedResult::Has(const std::string& metric) const {
  return samples_.count(metric) > 0;
}

std::vector<std::string> MultiSeedResult::MetricNames() const {
  std::vector<std::string> names;
  names.reserve(samples_.size());
  for (const auto& [name, values] : samples_) names.push_back(name);
  return names;
}

TTestResult MultiSeedResult::Compare(const std::string& metric_a,
                                     const std::string& metric_b) const {
  return PairedTTest(Samples(metric_a), Samples(metric_b));
}

MultiSeedResult RunSeeds(int num_seeds, uint64_t base_seed,
                         const SeedRun& run) {
  MultiSeedResult result;
  for (int i = 0; i < num_seeds; ++i) {
    // Decorrelated per-seed streams.
    const uint64_t rng_seed = base_seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    run(i, rng_seed, &result);
  }
  return result;
}

}  // namespace groupsa::eval
