#include "eval/evaluator.h"

#include "common/macros.h"
#include "common/thread_pool.h"
#include "data/candidates.h"

namespace groupsa::eval {

std::vector<RankingCase> BuildRankingCases(
    const data::EdgeList& test_edges,
    const data::InteractionMatrix& observed_all, int num_candidates,
    Rng* rng) {
  std::vector<RankingCase> cases;
  cases.reserve(test_edges.size());
  for (const data::Edge& e : test_edges) {
    const int free_items =
        observed_all.num_cols() - observed_all.RowDegree(e.row);
    if (free_items < num_candidates) continue;
    RankingCase c;
    c.entity = e.row;
    c.positive = e.item;
    c.candidates =
        data::SampleCandidates(observed_all, e.row, num_candidates, rng);
    cases.push_back(std::move(c));
  }
  return cases;
}

EvalResult EvaluateRanking(const std::vector<RankingCase>& cases,
                           const Scorer& scorer, const std::vector<int>& ks) {
  return EvaluateRankingFiltered(cases, scorer, ks,
                                 [](int32_t) { return true; });
}

EvalResult EvaluateRankingFiltered(const std::vector<RankingCase>& cases,
                                   const Scorer& scorer,
                                   const std::vector<int>& ks,
                                   const std::function<bool(int32_t)>& keep) {
  // Cases are independent, so they fan out across the pool; each case
  // writes its rank into its own slot and the slots are compacted in case
  // order afterwards, which makes the aggregate bit-identical to a serial
  // pass at any thread count. `scorer` must be thread-safe when the global
  // pool is wider than 1 (the library's no-tape model scorers are pure).
  std::vector<int> ranks_by_case(cases.size(), -1);
  parallel::ParallelFor(
      0, static_cast<int64_t>(cases.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const RankingCase& c = cases[i];
          if (!keep(c.entity)) continue;
          std::vector<data::ItemId> items;
          items.reserve(c.candidates.size() + 1);
          items.push_back(c.positive);
          items.insert(items.end(), c.candidates.begin(),
                       c.candidates.end());
          const std::vector<double> scores = scorer(c.entity, items);
          GROUPSA_CHECK(scores.size() == items.size(),
                        "scorer returned wrong number of scores");
          const std::vector<double> candidate_scores(scores.begin() + 1,
                                                     scores.end());
          ranks_by_case[i] = RankOfPositive(scores[0], candidate_scores);
        }
      });
  std::vector<int> ranks;
  ranks.reserve(cases.size());
  for (int rank : ranks_by_case)
    if (rank >= 0) ranks.push_back(rank);
  return AggregateRanks(ranks, ks);
}

}  // namespace groupsa::eval
