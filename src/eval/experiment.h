#ifndef GROUPSA_EVAL_EXPERIMENT_H_
#define GROUPSA_EVAL_EXPERIMENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "eval/ttest.h"

namespace groupsa::eval {

// Collects metric samples across repeated runs (the paper repeats every
// setting 5 times and reports averages, Sec. III-E).
class MultiSeedResult {
 public:
  void Add(const std::string& metric, double value);

  const std::vector<double>& Samples(const std::string& metric) const;
  double MeanOf(const std::string& metric) const;
  double StdDevOf(const std::string& metric) const;
  bool Has(const std::string& metric) const;
  std::vector<std::string> MetricNames() const;

  // Paired t-test between two metric series collected over the same seeds.
  TTestResult Compare(const std::string& metric_a,
                      const std::string& metric_b) const;

 private:
  std::map<std::string, std::vector<double>> samples_;
};

// Runs `run(seed_index, rng_seed)` for `num_seeds` repetitions, letting the
// callback record into the shared result.
using SeedRun = std::function<void(int seed_index, uint64_t rng_seed,
                                   MultiSeedResult* result)>;
MultiSeedResult RunSeeds(int num_seeds, uint64_t base_seed,
                         const SeedRun& run);

}  // namespace groupsa::eval

#endif  // GROUPSA_EVAL_EXPERIMENT_H_
