#ifndef GROUPSA_EVAL_EVALUATOR_H_
#define GROUPSA_EVAL_EVALUATOR_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "data/interaction_matrix.h"
#include "data/types.h"
#include "eval/metrics.h"

namespace groupsa::eval {

// One leave-out ranking case: rank `positive` against `candidates` (100
// unobserved items in the paper's protocol) for `entity` (a user or group).
struct RankingCase {
  int32_t entity = 0;
  data::ItemId positive = 0;
  std::vector<data::ItemId> candidates;
};

// Builds one RankingCase per held-out test edge. `observed_all` must contain
// ALL interactions of each row (train + validation + test) so sampled
// candidates are genuine negatives. Rows whose free-item pool is smaller
// than `num_candidates` are skipped.
std::vector<RankingCase> BuildRankingCases(
    const data::EdgeList& test_edges,
    const data::InteractionMatrix& observed_all, int num_candidates,
    Rng* rng);

// Batch scorer: returns one score per item, higher = more preferred. The
// item list contains the positive and all candidates of one case, so
// implementations can amortize per-entity work (e.g. build the group
// representation once). Evaluation fans cases out across the global thread
// pool, so scorers must be thread-safe (pure w.r.t. shared state) whenever
// the pool is wider than 1; all no-tape model scorers in this library are.
using Scorer =
    std::function<std::vector<double>(int32_t entity,
                                      const std::vector<data::ItemId>& items)>;

// Ranks every case with `scorer` and aggregates HR/NDCG at `ks`.
EvalResult EvaluateRanking(const std::vector<RankingCase>& cases,
                           const Scorer& scorer, const std::vector<int>& ks);

// Same, restricted to cases for which `keep(entity)` is true (used by the
// Table IX group-size bins).
EvalResult EvaluateRankingFiltered(const std::vector<RankingCase>& cases,
                                   const Scorer& scorer,
                                   const std::vector<int>& ks,
                                   const std::function<bool(int32_t)>& keep);

}  // namespace groupsa::eval

#endif  // GROUPSA_EVAL_EVALUATOR_H_
