#ifndef GROUPSA_EVAL_METRICS_H_
#define GROUPSA_EVAL_METRICS_H_

#include <string>
#include <vector>

namespace groupsa::eval {

// Top-K ranking metrics over the leave-out protocol (Sec. III-C). `rank` is
// the 0-based position of the held-out positive among the scored candidate
// list (0 = ranked first).

// Hit Ratio: 1 when the positive lands in the top K.
double HitRatioAtK(int rank, int k);

// NDCG with a single relevant item: 1/log2(rank + 2) when rank < k, else 0
// (the single-positive case makes the ideal DCG 1).
double NdcgAtK(int rank, int k);

// Reciprocal rank truncated at K: 1/(rank + 1) when rank < k, else 0.
double MrrAtK(int rank, int k);

// Precision with a single relevant item: 1/k when the positive is in the
// top K, else 0.
double PrecisionAtK(int rank, int k);

// Computes the 0-based rank of `positive_score` within `candidate_scores`
// (the positive itself is not in the list). Ties are counted against the
// positive (pessimistic), which avoids inflated metrics from degenerate
// constant scorers.
int RankOfPositive(double positive_score,
                   const std::vector<double>& candidate_scores);

// HR/NDCG averaged over many test cases at several cutoffs.
struct MetricsAtK {
  int k = 0;
  double hit_ratio = 0.0;
  double ndcg = 0.0;
  double mrr = 0.0;
  double precision = 0.0;
};

struct EvalResult {
  std::vector<MetricsAtK> at_k;
  int num_cases = 0;

  double HitRatio(int k) const;
  double Ndcg(int k) const;
  double Mrr(int k) const;
  double Precision(int k) const;
  std::string ToString() const;
};

// Aggregates per-case positive ranks into an EvalResult at the given
// cutoffs.
EvalResult AggregateRanks(const std::vector<int>& ranks,
                          const std::vector<int>& ks);

}  // namespace groupsa::eval

#endif  // GROUPSA_EVAL_METRICS_H_
