#ifndef GROUPSA_EVAL_TTEST_H_
#define GROUPSA_EVAL_TTEST_H_

#include <vector>

namespace groupsa::eval {

// Result of a paired two-sided t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
  double mean_difference = 0.0;
};

// Paired two-sided t-test over matched samples (the paper reports p < 0.01
// over 5 repetitions, Sec. III-E). Requires a.size() == b.size() >= 2. A
// zero-variance difference returns p = 0 when the mean difference is
// non-zero and p = 1 otherwise.
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

// Student t distribution two-sided tail probability P(|T| > t) with `df`
// degrees of freedom, via the regularized incomplete beta function.
double StudentTTwoSidedP(double t, double df);

// Regularized incomplete beta function I_x(a, b) (continued fraction).
double RegularizedIncompleteBeta(double a, double b, double x);

// Sample mean / unbiased standard deviation helpers.
double Mean(const std::vector<double>& values);
double SampleStdDev(const std::vector<double>& values);

}  // namespace groupsa::eval

#endif  // GROUPSA_EVAL_TTEST_H_
