#include "data/negative_sampler.h"

#include "common/macros.h"

namespace groupsa::data {

NegativeSampler::NegativeSampler(const InteractionMatrix* observed)
    : observed_(observed) {
  GROUPSA_CHECK(observed_ != nullptr, "NegativeSampler requires matrix");
}

ItemId NegativeSampler::Sample(int row, Rng* rng) const {
  const int num_items = observed_->num_cols();
  GROUPSA_CHECK(observed_->RowDegree(row) < num_items,
                "row has interacted with every item");
  while (true) {
    const ItemId candidate = rng->NextInt(num_items);
    if (!observed_->Has(row, candidate)) return candidate;
  }
}

std::vector<ItemId> NegativeSampler::SampleMany(int row, int n,
                                                Rng* rng) const {
  std::vector<ItemId> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(Sample(row, rng));
  return out;
}

}  // namespace groupsa::data
