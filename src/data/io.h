#ifndef GROUPSA_DATA_IO_H_
#define GROUPSA_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace groupsa::data {

// Persists a dataset as four TSV files in `directory` (created by the
// caller): user_item.tsv, group_item.tsv, social.tsv, groups.tsv (group id,
// then comma-separated members). A meta.tsv records counts and name.
Status SaveDataset(const Dataset& dataset, const std::string& directory);

// Loads a dataset previously written by SaveDataset.
Status LoadDataset(const std::string& directory, Dataset* dataset);

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_IO_H_
