#include "data/group_table.h"

#include <algorithm>

#include "common/macros.h"

namespace groupsa::data {

GroupTable::GroupTable(std::vector<std::vector<UserId>> members)
    : members_(std::move(members)) {
  for (auto& group : members_) {
    GROUPSA_CHECK(!group.empty(), "empty group");
    std::sort(group.begin(), group.end());
    group.erase(std::unique(group.begin(), group.end()), group.end());
  }
}

const std::vector<UserId>& GroupTable::Members(GroupId group) const {
  GROUPSA_CHECK(group >= 0 && group < num_groups(), "group out of range");
  return members_[group];
}

double GroupTable::AvgGroupSize() const {
  if (members_.empty()) return 0.0;
  int64_t total = 0;
  for (const auto& group : members_) total += group.size();
  return static_cast<double>(total) / static_cast<double>(members_.size());
}

}  // namespace groupsa::data
