#ifndef GROUPSA_DATA_INTERACTION_MATRIX_H_
#define GROUPSA_DATA_INTERACTION_MATRIX_H_

#include <vector>

#include "data/types.h"

namespace groupsa::data {

// Sparse binary interaction matrix in adjacency-list form (rows -> sorted,
// deduplicated item lists), the R^U and R^G of the paper. Immutable after
// construction.
class InteractionMatrix {
 public:
  InteractionMatrix() = default;
  InteractionMatrix(int num_rows, int num_cols, const EdgeList& edges);

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }
  // Total interactions after deduplication.
  int64_t num_interactions() const { return num_interactions_; }

  // Sorted unique items of `row`.
  const std::vector<ItemId>& Row(int row) const;

  // True when (row, item) is observed. O(log degree).
  bool Has(int row, ItemId item) const;

  int RowDegree(int row) const {
    return static_cast<int>(Row(row).size());
  }
  // Number of rows interacting with `item` (the item's popularity / document
  // frequency for TF-IDF).
  int ColDegree(ItemId item) const;

  double AvgRowDegree() const;

 private:
  int num_rows_ = 0;
  int num_cols_ = 0;
  int64_t num_interactions_ = 0;
  std::vector<std::vector<ItemId>> rows_;
  std::vector<int> col_degree_;
};

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_INTERACTION_MATRIX_H_
