#ifndef GROUPSA_DATA_TFIDF_H_
#define GROUPSA_DATA_TFIDF_H_

#include <vector>

#include "data/interaction_matrix.h"
#include "data/social_graph.h"

namespace groupsa::data {

// TF-IDF neighbourhood truncation (Sec. II-D): the paper ranks a user's
// interacted items (and friends) by TF-IDF and keeps the Top-H for the
// aggregation networks. With implicit binary feedback the term frequency is
// 1, so the ranking reduces to inverse document frequency: rarer
// items/friends characterize a user more sharply.

// For every user, the up-to-H interacted items with the highest
// idf = log(num_users / (1 + item popularity)), most informative first.
// Users with no interactions get an empty list (the caller falls back to the
// plain embedding).
std::vector<std::vector<ItemId>> TopItemsPerUser(const InteractionMatrix& ui,
                                                 int top_h);

// For every user, the up-to-H friends with the highest
// idf = log(num_users / (1 + friend degree)).
std::vector<std::vector<UserId>> TopFriendsPerUser(const SocialGraph& graph,
                                                   int top_h);

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_TFIDF_H_
