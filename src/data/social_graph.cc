#include "data/social_graph.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace groupsa::data {

SocialGraph::SocialGraph(int num_users,
                         const std::vector<std::pair<UserId, UserId>>& edges)
    : num_users_(num_users) {
  adjacency_.resize(num_users);
  for (const auto& [a, b] : edges) {
    GROUPSA_CHECK(a >= 0 && a < num_users && b >= 0 && b < num_users,
                  "social edge endpoint out of range");
    if (a == b) continue;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    num_edges_ += static_cast<int64_t>(neighbors.size());
  }
  num_edges_ /= 2;
}

const std::vector<UserId>& SocialGraph::Neighbors(UserId user) const {
  GROUPSA_CHECK(user >= 0 && user < num_users_, "user out of range");
  return adjacency_[user];
}

bool SocialGraph::Connected(UserId a, UserId b) const {
  const auto& neighbors = Neighbors(a);
  return std::binary_search(neighbors.begin(), neighbors.end(), b);
}

double SocialGraph::AvgDegree() const {
  if (num_users_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) / num_users_;
}

namespace {

// Applies `fn` to every element of the (sorted) intersection of a and b.
template <typename Fn>
void ForEachCommon(const std::vector<UserId>& a, const std::vector<UserId>& b,
                   Fn fn) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

int SocialGraph::CommonNeighbors(UserId a, UserId b) const {
  int count = 0;
  ForEachCommon(Neighbors(a), Neighbors(b), [&](UserId) { ++count; });
  return count;
}

double SocialGraph::JaccardCoefficient(UserId a, UserId b) const {
  const int common = CommonNeighbors(a, b);
  const int unions = Degree(a) + Degree(b) - common;
  return unions == 0 ? 0.0 : static_cast<double>(common) / unions;
}

double SocialGraph::AdamicAdar(UserId a, UserId b) const {
  double total = 0.0;
  ForEachCommon(Neighbors(a), Neighbors(b), [&](UserId z) {
    total += 1.0 / std::log(1.0 + static_cast<double>(Degree(z)));
  });
  return total;
}

}  // namespace groupsa::data
