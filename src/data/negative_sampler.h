#ifndef GROUPSA_DATA_NEGATIVE_SAMPLER_H_
#define GROUPSA_DATA_NEGATIVE_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "data/interaction_matrix.h"

namespace groupsa::data {

// Uniform negative sampling over the unobserved items of a row (Sec. II-E):
// at each gradient step the trainer draws N items the user/group never
// interacted with.
class NegativeSampler {
 public:
  // `observed` must outlive the sampler.
  explicit NegativeSampler(const InteractionMatrix* observed);

  // One unobserved item for `row`. Rejection-samples; the observed row must
  // leave at least one item free.
  ItemId Sample(int row, Rng* rng) const;

  // `n` unobserved items (with replacement across draws, which matches the
  // paper's independent sampling; duplicates are possible but rare).
  std::vector<ItemId> SampleMany(int row, int n, Rng* rng) const;

 private:
  const InteractionMatrix* observed_;
};

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_NEGATIVE_SAMPLER_H_
