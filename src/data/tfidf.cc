#include "data/tfidf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace groupsa::data {
namespace {

// Keeps the `top_h` ids with the largest scores, stably (score desc, id asc).
template <typename Scorer>
std::vector<int32_t> TopByScore(const std::vector<int32_t>& ids, int top_h,
                                const Scorer& score) {
  std::vector<std::pair<double, int32_t>> scored;
  scored.reserve(ids.size());
  for (int32_t id : ids) scored.emplace_back(score(id), id);
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const int keep = std::min<int>(top_h, static_cast<int>(scored.size()));
  std::vector<int32_t> out;
  out.reserve(keep);
  for (int i = 0; i < keep; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace

std::vector<std::vector<ItemId>> TopItemsPerUser(const InteractionMatrix& ui,
                                                 int top_h) {
  GROUPSA_CHECK(top_h > 0, "top_h must be positive");
  const double num_users = std::max(1, ui.num_rows());
  std::vector<std::vector<ItemId>> out(ui.num_rows());
  for (int u = 0; u < ui.num_rows(); ++u) {
    out[u] = TopByScore(ui.Row(u), top_h, [&](ItemId item) {
      return std::log(num_users / (1.0 + ui.ColDegree(item)));
    });
  }
  return out;
}

std::vector<std::vector<UserId>> TopFriendsPerUser(const SocialGraph& graph,
                                                   int top_h) {
  GROUPSA_CHECK(top_h > 0, "top_h must be positive");
  const double num_users = std::max(1, graph.num_users());
  std::vector<std::vector<UserId>> out(graph.num_users());
  for (UserId u = 0; u < graph.num_users(); ++u) {
    out[u] = TopByScore(graph.Neighbors(u), top_h, [&](UserId friend_id) {
      return std::log(num_users / (1.0 + graph.Degree(friend_id)));
    });
  }
  return out;
}

}  // namespace groupsa::data
