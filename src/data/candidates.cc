#include "data/candidates.h"

#include <unordered_set>

#include "common/macros.h"

namespace groupsa::data {

std::vector<ItemId> SampleCandidates(const InteractionMatrix& observed,
                                     int row, int num_candidates, Rng* rng) {
  const int num_items = observed.num_cols();
  const int free_items = num_items - observed.RowDegree(row);
  GROUPSA_CHECK(num_candidates <= free_items,
                "not enough unobserved items for candidate sampling");
  std::unordered_set<ItemId> chosen;
  std::vector<ItemId> out;
  out.reserve(num_candidates);
  while (static_cast<int>(out.size()) < num_candidates) {
    const ItemId candidate = rng->NextInt(num_items);
    if (observed.Has(row, candidate)) continue;
    if (!chosen.insert(candidate).second) continue;
    out.push_back(candidate);
  }
  return out;
}

}  // namespace groupsa::data
