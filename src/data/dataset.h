#ifndef GROUPSA_DATA_DATASET_H_
#define GROUPSA_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/group_table.h"
#include "data/interaction_matrix.h"
#include "data/social_graph.h"
#include "data/types.h"

namespace groupsa::data {

// Aggregate statistics in the shape of the paper's Table I.
struct DatasetStats {
  int num_users = 0;
  int num_items = 0;
  int num_groups = 0;
  double avg_group_size = 0.0;
  double avg_interactions_per_user = 0.0;
  double avg_friends_per_user = 0.0;
  double avg_interactions_per_group = 0.0;

  std::string ToString() const;
};

// A complete group-recommendation dataset: the three interaction sources of
// the task definition (Sec. II-A) plus group membership. Edges are the raw
// (pre-split) observations; splitting lives in data/split.h.
struct Dataset {
  std::string name;
  int num_users = 0;
  int num_items = 0;

  EdgeList user_item;   // rows are UserIds
  EdgeList group_item;  // rows are GroupIds
  SocialGraph social;
  GroupTable groups;

  DatasetStats ComputeStats() const;

  // Builds the adjacency view of the user-item / group-item edges.
  InteractionMatrix UserItemMatrix() const {
    return InteractionMatrix(num_users, num_items, user_item);
  }
  InteractionMatrix GroupItemMatrix() const {
    return InteractionMatrix(groups.num_groups(), num_items, group_item);
  }
};

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_DATASET_H_
