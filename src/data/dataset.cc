#include "data/dataset.h"

#include "common/string_util.h"

namespace groupsa::data {

std::string DatasetStats::ToString() const {
  std::string out;
  out += StrFormat("# Users                        %d\n", num_users);
  out += StrFormat("# Items/Events                 %d\n", num_items);
  out += StrFormat("# Groups                       %d\n", num_groups);
  out += StrFormat("Avg. group size                %.2f\n", avg_group_size);
  out += StrFormat("Avg. # interactions per user   %.2f\n",
                   avg_interactions_per_user);
  out += StrFormat("Avg. # friends per user        %.2f\n",
                   avg_friends_per_user);
  out += StrFormat("Avg. # interactions per group  %.2f",
                   avg_interactions_per_group);
  return out;
}

DatasetStats Dataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_users = num_users;
  stats.num_items = num_items;
  stats.num_groups = groups.num_groups();
  stats.avg_group_size = groups.AvgGroupSize();
  stats.avg_interactions_per_user = UserItemMatrix().AvgRowDegree();
  stats.avg_friends_per_user = social.AvgDegree();
  stats.avg_interactions_per_group = GroupItemMatrix().AvgRowDegree();
  return stats;
}

}  // namespace groupsa::data
