#include "data/split.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace groupsa::data {

Split SplitEdges(const EdgeList& edges, double test_fraction,
                 double validation_fraction, Rng* rng) {
  GROUPSA_CHECK(test_fraction >= 0.0 && test_fraction < 1.0,
                "test_fraction out of range");
  GROUPSA_CHECK(validation_fraction >= 0.0 && validation_fraction < 1.0,
                "validation_fraction out of range");

  std::map<int32_t, std::vector<ItemId>> per_row;
  for (const Edge& e : edges) per_row[e.row].push_back(e.item);

  Split split;
  for (auto& [row, items] : per_row) {
    rng->Shuffle(&items);
    const int n = static_cast<int>(items.size());
    // Round to nearest but never take every interaction of a row into test.
    int num_test = static_cast<int>(n * test_fraction + 0.5);
    num_test = std::min(num_test, n - 1);
    num_test = std::max(num_test, 0);
    const int num_train_pool = n - num_test;
    int num_validation =
        static_cast<int>(num_train_pool * validation_fraction + 0.5);
    num_validation = std::min(num_validation, num_train_pool - 1);
    num_validation = std::max(num_validation, 0);

    int idx = 0;
    for (; idx < num_test; ++idx) split.test.push_back({row, items[idx]});
    for (; idx < num_test + num_validation; ++idx)
      split.validation.push_back({row, items[idx]});
    for (; idx < n; ++idx) split.train.push_back({row, items[idx]});
  }
  return split;
}

Split GlobalSplitEdges(const EdgeList& edges, double test_fraction,
                       double validation_fraction, Rng* rng) {
  GROUPSA_CHECK(test_fraction >= 0.0 && test_fraction < 1.0,
                "test_fraction out of range");
  GROUPSA_CHECK(validation_fraction >= 0.0 && validation_fraction < 1.0,
                "validation_fraction out of range");
  EdgeList shuffled(edges);
  rng->Shuffle(&shuffled);
  const int n = static_cast<int>(shuffled.size());
  const int num_test = static_cast<int>(n * test_fraction + 0.5);
  const int num_validation =
      static_cast<int>((n - num_test) * validation_fraction + 0.5);
  Split split;
  int idx = 0;
  for (; idx < num_test; ++idx) split.test.push_back(shuffled[idx]);
  for (; idx < num_test + num_validation; ++idx)
    split.validation.push_back(shuffled[idx]);
  for (; idx < n; ++idx) split.train.push_back(shuffled[idx]);
  return split;
}

}  // namespace groupsa::data
