#ifndef GROUPSA_DATA_SPLIT_H_
#define GROUPSA_DATA_SPLIT_H_

#include "common/rng.h"
#include "data/types.h"

namespace groupsa::data {

// Train/validation/test partition of an edge list.
struct Split {
  EdgeList train;
  EdgeList validation;
  EdgeList test;
};

// Randomly assigns edges to train/validation/test following the paper's
// protocol (Sec. III-C): `test_fraction` (20%) of interactions held out for
// testing, `validation_fraction` (10%) of the remaining training records as
// validation. The split is per row: each row's edges are shuffled and
// partitioned so that every row with >= 2 interactions keeps at least one
// training interaction (rows with a single interaction stay in train, since
// an entity absent from training cannot be ranked meaningfully).
Split SplitEdges(const EdgeList& edges, double test_fraction,
                 double validation_fraction, Rng* rng);

// Global (not per-row) random partition. This is the right protocol for the
// sparse group-item interactions: most occasional groups have a single
// observed interaction, and holding it out yields a *cold* group — exactly
// the OGR setting, which member-based models handle and pseudo-user models
// do not.
Split GlobalSplitEdges(const EdgeList& edges, double test_fraction,
                       double validation_fraction, Rng* rng);

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_SPLIT_H_
