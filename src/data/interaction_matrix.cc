#include "data/interaction_matrix.h"

#include <algorithm>

#include "common/macros.h"

namespace groupsa::data {

InteractionMatrix::InteractionMatrix(int num_rows, int num_cols,
                                     const EdgeList& edges)
    : num_rows_(num_rows), num_cols_(num_cols) {
  rows_.resize(num_rows);
  col_degree_.assign(num_cols, 0);
  for (const Edge& e : edges) {
    GROUPSA_CHECK(e.row >= 0 && e.row < num_rows, "edge row out of range");
    GROUPSA_CHECK(e.item >= 0 && e.item < num_cols, "edge item out of range");
    rows_[e.row].push_back(e.item);
  }
  for (int r = 0; r < num_rows; ++r) {
    auto& items = rows_[r];
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    num_interactions_ += static_cast<int64_t>(items.size());
    for (ItemId item : items) ++col_degree_[item];
  }
}

const std::vector<ItemId>& InteractionMatrix::Row(int row) const {
  GROUPSA_CHECK(row >= 0 && row < num_rows_, "row out of range");
  return rows_[row];
}

bool InteractionMatrix::Has(int row, ItemId item) const {
  const auto& items = Row(row);
  return std::binary_search(items.begin(), items.end(), item);
}

int InteractionMatrix::ColDegree(ItemId item) const {
  GROUPSA_CHECK(item >= 0 && item < num_cols_, "item out of range");
  return col_degree_[item];
}

double InteractionMatrix::AvgRowDegree() const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(num_interactions_) / num_rows_;
}

}  // namespace groupsa::data
