#ifndef GROUPSA_DATA_GROUP_TABLE_H_
#define GROUPSA_DATA_GROUP_TABLE_H_

#include <vector>

#include "data/types.h"

namespace groupsa::data {

// Membership table for occasional groups: group id -> ordered member list.
class GroupTable {
 public:
  GroupTable() = default;
  explicit GroupTable(std::vector<std::vector<UserId>> members);

  int num_groups() const { return static_cast<int>(members_.size()); }
  const std::vector<UserId>& Members(GroupId group) const;
  int GroupSize(GroupId group) const {
    return static_cast<int>(Members(group).size());
  }
  double AvgGroupSize() const;

 private:
  std::vector<std::vector<UserId>> members_;
};

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_GROUP_TABLE_H_
