#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/macros.h"

namespace groupsa::data {
namespace {

// L2-normalizes each row in place.
void NormalizeRows(tensor::Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->RowPtr(r);
    double norm = 0.0;
    for (int c = 0; c < m->cols(); ++c) norm += static_cast<double>(row[c]) * row[c];
    norm = std::sqrt(std::max(norm, 1e-12));
    for (int c = 0; c < m->cols(); ++c)
      row[c] = static_cast<float>(row[c] / norm);
  }
}

// Draws a small positive count with the given mean (>= 1): 1 + Poisson-ish
// via geometric mixture, clamped.
int DrawCount(double mean, int max_value, Rng* rng) {
  GROUPSA_DCHECK(mean >= 1.0, "DrawCount mean must be >= 1");
  // Poisson via Knuth; mean - 1 extra on top of the guaranteed 1.
  const double lambda = mean - 1.0;
  int k = 0;
  if (lambda > 0.0) {
    const double limit = std::exp(-lambda);
    double product = rng->NextDouble();
    while (product > limit && k < max_value) {
      ++k;
      product *= rng->NextDouble();
    }
  }
  return std::min(1 + k, max_value);
}

}  // namespace

SyntheticWorldConfig SyntheticWorldConfig::YelpLike() {
  SyntheticWorldConfig c;
  c.name = "yelp-like";
  c.num_users = 1200;
  c.num_items = 800;
  c.num_groups = 850;  // attendance echo ~4 events/user, like the crawl
  c.avg_interactions_per_user = 14.0;
  c.avg_friends_per_user = 12.0;
  c.avg_interactions_per_group = 1.3;
  c.avg_group_size = 4.45;
  c.seed = 7;
  return c;
}

SyntheticWorldConfig SyntheticWorldConfig::DoubanEventLike() {
  SyntheticWorldConfig c;
  c.name = "douban-event-like";
  c.num_users = 1000;
  c.num_items = 1000;
  c.num_groups = 650;
  c.avg_interactions_per_user = 17.0;
  c.avg_friends_per_user = 16.0;
  c.avg_interactions_per_group = 1.5;
  c.avg_group_size = 4.84;
  c.num_topics = 10;
  c.seed = 11;
  return c;
}

SyntheticWorldConfig SyntheticWorldConfig::Tiny() {
  SyntheticWorldConfig c;
  c.name = "tiny";
  c.num_users = 120;
  c.num_items = 90;
  c.num_groups = 60;
  c.num_topics = 4;
  c.avg_interactions_per_user = 8.0;
  c.avg_friends_per_user = 6.0;
  c.avg_interactions_per_group = 1.5;
  c.avg_group_size = 3.5;
  c.max_group_size = 6;
  c.seed = 3;
  return c;
}

SyntheticWorld GenerateWorld(const SyntheticWorldConfig& config) {
  GROUPSA_CHECK(config.num_users > 2 && config.num_items > 2 &&
                    config.num_groups > 0 && config.num_topics > 0,
                "invalid synthetic config");
  Rng rng(config.seed);
  SyntheticWorld world;
  world.config = config;

  const int topics = config.num_topics;
  const int dim = config.latent_dim;

  // 1. Topic centroids.
  tensor::Matrix centroids(topics, dim);
  centroids.FillGaussian(&rng, 0.0f, 1.0f);
  NormalizeRows(&centroids);

  // 2. Users: primary topic, latent vector near its centroid, expertise.
  // Experts are behaviourally distinctive (the paper's "food critic"): their
  // latent vector sits closer to the topic centroid, and below they interact
  // more and more consistently — so expertise is *identifiable* from
  // observed behaviour, which is what lets attention-based models learn
  // member weights. Non-experts are noisier.
  world.user_topic.resize(config.num_users);
  world.user_is_expert.assign(config.num_users, false);
  world.user_vectors.Resize(config.num_users, dim);
  world.user_expertise.Resize(config.num_users, topics);
  std::vector<std::vector<UserId>> topic_users(topics);
  for (int u = 0; u < config.num_users; ++u) {
    const int z = rng.NextInt(topics);
    world.user_topic[u] = z;
    topic_users[z].push_back(u);
    const bool expert = rng.NextBernoulli(config.expert_fraction);
    world.user_is_expert[u] = expert;
    const double spread = expert ? 0.15 : 0.45;
    for (int c = 0; c < dim; ++c) {
      world.user_vectors.At(u, c) =
          centroids.At(z, c) +
          static_cast<float>(rng.NextGaussian(0.0, spread));
    }
    // Expertise: low base everywhere; experts get a strong boost on their
    // primary topic, which later dominates group votes on that topic.
    for (int k = 0; k < topics; ++k) {
      world.user_expertise.At(u, k) =
          static_cast<float>(rng.NextUniform(0.0, 0.2));
    }
    if (expert) {
      world.user_expertise.At(u, z) =
          static_cast<float>(rng.NextUniform(0.8, 1.0));
    }
  }
  NormalizeRows(&world.user_vectors);

  // 3. Items: topic, latent vector, Zipf popularity.
  world.item_topic.resize(config.num_items);
  world.item_vectors.Resize(config.num_items, dim);
  world.item_popularity.resize(config.num_items);
  std::vector<std::vector<ItemId>> topic_items(topics);
  for (int v = 0; v < config.num_items; ++v) {
    const int z = rng.NextInt(topics);
    world.item_topic[v] = z;
    topic_items[z].push_back(v);
    for (int c = 0; c < dim; ++c) {
      world.item_vectors.At(v, c) =
          centroids.At(z, c) + static_cast<float>(rng.NextGaussian(0.0, 0.35));
    }
    // Zipf-like exposure: rank within the shuffled global order.
    world.item_popularity[v] =
        1.0 / std::pow(1.0 + rng.NextInt(config.num_items),
                       config.popularity_alpha);
  }
  NormalizeRows(&world.item_vectors);
  // Every topic must own at least one item so votes can resolve.
  for (int k = 0; k < topics; ++k) {
    if (topic_items[k].empty()) {
      const ItemId v = rng.NextInt(config.num_items);
      world.item_topic[v] = k;
      topic_items[k].push_back(v);
    }
  }

  // Per-user topic affinity used by both individual and group choices.
  auto topic_weights_for_vector = [&](const tensor::Matrix& vec, int row,
                                      double concentration) {
    std::vector<double> w(topics);
    for (int k = 0; k < topics; ++k) {
      double dot = 0.0;
      for (int c = 0; c < dim; ++c)
        dot += static_cast<double>(vec.At(row, c)) * centroids.At(k, c);
      w[k] = std::exp(concentration * dot);
    }
    return w;
  };
  auto sample_item_in_topic = [&](int k, Rng* r) {
    const auto& pool = topic_items[k];
    std::vector<double> w(pool.size());
    for (size_t i = 0; i < pool.size(); ++i)
      w[i] = world.item_popularity[pool[i]];
    return pool[r->NextWeighted(w)];
  };

  // 4. Social network: homophilous degree-targeted edges.
  std::vector<std::pair<UserId, UserId>> social_edges;
  for (int u = 0; u < config.num_users; ++u) {
    // Each endpoint initiates half its target degree; symmetrization doubles.
    const int want = DrawCount(
        std::max(1.0, config.avg_friends_per_user / 2.0),
        config.num_users - 1, &rng);
    for (int i = 0; i < want; ++i) {
      UserId friend_id;
      const auto& same_topic = topic_users[world.user_topic[u]];
      if (rng.NextBernoulli(config.homophily) && same_topic.size() > 1) {
        friend_id = same_topic[rng.NextInt(static_cast<int>(same_topic.size()))];
      } else {
        friend_id = rng.NextInt(config.num_users);
      }
      if (friend_id != u) social_edges.emplace_back(u, friend_id);
    }
  }
  SocialGraph social(config.num_users, social_edges);

  // 5. Groups grown from social neighbourhoods (the paper's datasets define
  // groups as socially connected users attending the same event).
  std::vector<std::vector<UserId>> group_members(config.num_groups);
  for (int g = 0; g < config.num_groups; ++g) {
    const int target_size =
        std::clamp(DrawCount(config.avg_group_size, config.max_group_size,
                             &rng),
                   config.min_group_size, config.max_group_size);
    std::vector<UserId> members;
    std::unordered_set<UserId> in_group;
    UserId seed_user = rng.NextInt(config.num_users);
    members.push_back(seed_user);
    in_group.insert(seed_user);
    int attempts = 0;
    while (static_cast<int>(members.size()) < target_size &&
           attempts < 20 * target_size) {
      ++attempts;
      // Expand from a random current member's friends; fall back to the
      // member's topic community, then to uniform.
      const UserId anchor =
          members[rng.NextInt(static_cast<int>(members.size()))];
      const auto& friends = social.Neighbors(anchor);
      UserId candidate;
      if (!friends.empty() && rng.NextBernoulli(config.group_social_bias)) {
        candidate = friends[rng.NextInt(static_cast<int>(friends.size()))];
      } else {
        // Topically unconstrained join: keeps groups heterogeneous.
        candidate = rng.NextInt(config.num_users);
      }
      if (in_group.insert(candidate).second) members.push_back(candidate);
    }
    // Guarantee the minimum size even in degenerate neighbourhoods.
    while (static_cast<int>(members.size()) < config.min_group_size) {
      const UserId candidate = rng.NextInt(config.num_users);
      if (in_group.insert(candidate).second) members.push_back(candidate);
    }
    group_members[g] = std::move(members);
  }
  GroupTable groups(std::move(group_members));

  // 6. Group-item interactions via expertise-weighted voting: each member
  // votes for topics with weight exp(sharpness * expertise[topic]); the
  // group samples a topic from the weighted average of member affinities,
  // then an item within that topic by popularity. Experts therefore steer
  // decisions on their topic -- exactly the non-uniform influence GroupSA
  // is designed to learn.
  EdgeList group_item;
  for (int g = 0; g < groups.num_groups(); ++g) {
    const auto& members = groups.Members(g);
    std::vector<double> group_topic_w(topics, 0.0);
    for (int k = 0; k < topics; ++k) {
      double weight_sum = 0.0;
      double pref_sum = 0.0;
      for (UserId u : members) {
        const double vote_weight =
            std::exp(config.expertise_sharpness * world.user_expertise.At(u, k));
        double affinity = 0.0;
        for (int c = 0; c < dim; ++c)
          affinity +=
              static_cast<double>(world.user_vectors.At(u, c)) * centroids.At(k, c);
        weight_sum += vote_weight;
        pref_sum += vote_weight * affinity;
      }
      const double consensus = pref_sum / weight_sum;
      group_topic_w[k] =
          std::exp(config.group_choice_concentration * consensus);
    }
    const int count = DrawCount(config.avg_interactions_per_group, 6, &rng);
    std::unordered_set<ItemId> seen;
    for (int i = 0; i < count; ++i) {
      ItemId item;
      if (rng.NextBernoulli(config.noise)) {
        item = rng.NextInt(config.num_items);
      } else {
        item = sample_item_in_topic(rng.NextWeighted(group_topic_w), &rng);
      }
      if (seen.insert(item).second) group_item.push_back({g, item});
    }
  }

  // 7. User-item interactions. Two sources, mirroring how the paper's
  // datasets were crawled: (a) every group activity is also an individual
  // attendance of each member (a group restaurant visit IS each member
  // visiting that restaurant), and (b) solo interactions drawn from the
  // user's own topic affinity. Experts interact more (activity boost) and
  // more consistently (concentration boost), making expertise identifiable
  // from observed behaviour (the paper's "food critic" is a heavy,
  // consistent rater).
  EdgeList user_item;
  std::vector<std::unordered_set<ItemId>> user_seen(config.num_users);
  for (const Edge& e : group_item) {
    for (UserId u : groups.Members(e.row)) {
      if (user_seen[u].insert(e.item).second) user_item.push_back({u, e.item});
    }
  }
  for (int u = 0; u < config.num_users; ++u) {
    const bool expert = world.user_is_expert[u];
    const int count = DrawCount(
        std::max(1.0, config.avg_interactions_per_user * (expert ? 1.6 : 0.8) -
                          static_cast<double>(user_seen[u].size())),
        config.num_items / 2, &rng);
    std::vector<double> topic_w = topic_weights_for_vector(
        world.user_vectors, u,
        config.user_topic_concentration * (expert ? 2.0 : 1.0));
    for (int i = 0; i < count; ++i) {
      ItemId item;
      if (rng.NextBernoulli(config.noise)) {
        item = rng.NextInt(config.num_items);
      } else {
        item = sample_item_in_topic(rng.NextWeighted(topic_w), &rng);
      }
      if (user_seen[u].insert(item).second) user_item.push_back({u, item});
    }
  }

  world.dataset.name = config.name;
  world.dataset.num_users = config.num_users;
  world.dataset.num_items = config.num_items;
  world.dataset.user_item = std::move(user_item);
  world.dataset.group_item = std::move(group_item);
  world.dataset.social = std::move(social);
  world.dataset.groups = std::move(groups);
  return world;
}

}  // namespace groupsa::data
