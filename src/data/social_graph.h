#ifndef GROUPSA_DATA_SOCIAL_GRAPH_H_
#define GROUPSA_DATA_SOCIAL_GRAPH_H_

#include <utility>
#include <vector>

#include "data/types.h"

namespace groupsa::data {

// Undirected user-user social network, the R^S of the paper. Edges are
// symmetrized and deduplicated at construction; self-loops are dropped.
class SocialGraph {
 public:
  SocialGraph() = default;
  SocialGraph(int num_users,
              const std::vector<std::pair<UserId, UserId>>& edges);

  int num_users() const { return num_users_; }
  // Number of undirected edges.
  int64_t num_edges() const { return num_edges_; }

  // Sorted unique neighbor list of `user`.
  const std::vector<UserId>& Neighbors(UserId user) const;

  // True when a direct social connection exists (the f(i,j)=1 predicate of
  // Eq. 5).
  bool Connected(UserId a, UserId b) const;

  int Degree(UserId user) const {
    return static_cast<int>(Neighbors(user).size());
  }
  // Average number of friends per user.
  double AvgDegree() const;

  // Graph-proximity scores usable as the paper's f(i,j) closeness function
  // (Sec. II-C: "f(i,j) can be computed by any real-valued score function").
  // All return 0 for unrelated pairs and are symmetric.

  // |N(a) ∩ N(b)|.
  int CommonNeighbors(UserId a, UserId b) const;
  // |N(a) ∩ N(b)| / |N(a) ∪ N(b)| in [0, 1].
  double JaccardCoefficient(UserId a, UserId b) const;
  // Σ_{z ∈ N(a) ∩ N(b)} 1 / log(1 + deg(z)) — Adamic-Adar, which discounts
  // promiscuous mutual friends.
  double AdamicAdar(UserId a, UserId b) const;

 private:
  int num_users_ = 0;
  int64_t num_edges_ = 0;
  std::vector<std::vector<UserId>> adjacency_;
};

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_SOCIAL_GRAPH_H_
