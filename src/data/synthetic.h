#ifndef GROUPSA_DATA_SYNTHETIC_H_
#define GROUPSA_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/matrix.h"

namespace groupsa::data {

// Configuration of the synthetic group-recommendation world used in place of
// the (unavailable) Yelp / Douban-Event crawls. The generator is a latent
// topic model whose causal structure matches the mechanisms GroupSA claims
// to exploit; see DESIGN.md §1 for the substitution argument. Scales are
// reduced so CPU training finishes quickly; the paper-matching quantities are
// the *ratios* of Table I (group size, interactions per user/group, friends
// per user).
struct SyntheticWorldConfig {
  std::string name = "synthetic";
  int num_users = 1000;
  int num_items = 700;
  int num_groups = 550;
  int num_topics = 8;
  int latent_dim = 16;

  // Table I ratio targets.
  double avg_interactions_per_user = 14.0;
  double avg_friends_per_user = 12.0;
  double avg_interactions_per_group = 1.4;
  double avg_group_size = 4.45;
  int min_group_size = 2;
  int max_group_size = 12;

  // Behavioural knobs.
  // Sharpness of a user's topic preference when choosing items (higher =
  // users stay closer to their own topic).
  double user_topic_concentration = 2.5;
  // Fraction of social edges drawn within the same topic community.
  double homophily = 0.8;
  // Probability that group growth follows a social edge; the complement
  // draws a uniformly random member. Lower values give topically mixed
  // groups, where expertise-weighted voting diverges most from averaging
  // (the paper's "food critic" motivation).
  double group_social_bias = 0.65;
  // Probability that a user is an expert on her primary topic; experts
  // dominate group votes on their topic (the personal-impact effect of
  // Sec. I / Table IV).
  double expert_fraction = 0.35;
  // Temperature of the expertise-weighted group vote; 0 degrades the world
  // to uniform (average) aggregation. At the default an expert's vote
  // outweighs a non-expert's by ~e^6, so the expert effectively dictates
  // the consensus on her topic.
  double expertise_sharpness = 8.0;
  // Concentration of the group's topic choice around the voted consensus;
  // higher makes group decisions nearly deterministic given the expert
  // structure (the regime where learned member weighting beats averaging).
  double group_choice_concentration = 4.0;
  // Zipf exponent of item exposure popularity.
  double popularity_alpha = 0.8;
  // Probability of an off-model uniform interaction (noise floor).
  double noise = 0.05;

  uint64_t seed = 7;

  // Presets mirroring the two evaluation datasets at reduced scale.
  static SyntheticWorldConfig YelpLike();
  static SyntheticWorldConfig DoubanEventLike();
  // A tiny world for unit tests and the quickstart example.
  static SyntheticWorldConfig Tiny();
};

// A generated world: the observable dataset plus the generative ground truth
// (used by tests and analysis, never by models).
struct SyntheticWorld {
  SyntheticWorldConfig config;
  Dataset dataset;

  // Ground truth.
  std::vector<int> user_topic;          // primary topic per user
  std::vector<bool> user_is_expert;     // expert on their primary topic
  std::vector<int> item_topic;          // topic per item
  tensor::Matrix user_vectors;          // num_users x latent_dim
  tensor::Matrix item_vectors;          // num_items x latent_dim
  tensor::Matrix user_expertise;        // num_users x num_topics
  std::vector<double> item_popularity;  // exposure weight per item
};

// Deterministically generates a world from `config` (seed included).
SyntheticWorld GenerateWorld(const SyntheticWorldConfig& config);

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_SYNTHETIC_H_
