#include "data/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace groupsa::data {
namespace {

Status WriteEdges(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open for write: " + path);
  for (const Edge& e : edges) out << e.row << '\t' << e.item << '\n';
  return out ? Status::Ok() : Status::Error("write failed: " + path);
}

Status ReadEdges(const std::string& path, EdgeList* edges) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open for read: " + path);
  edges->clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    Edge e;
    if (!(ss >> e.row >> e.item))
      return Status::Error("malformed edge line in " + path + ": " + line);
    edges->push_back(e);
  }
  return Status::Ok();
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& directory) {
  if (Status s = WriteEdges(dataset.user_item, directory + "/user_item.tsv");
      !s.ok())
    return s;
  if (Status s = WriteEdges(dataset.group_item, directory + "/group_item.tsv");
      !s.ok())
    return s;

  {
    std::ofstream out(directory + "/social.tsv");
    if (!out) return Status::Error("cannot write social.tsv");
    for (UserId u = 0; u < dataset.social.num_users(); ++u) {
      for (UserId v : dataset.social.Neighbors(u)) {
        if (u < v) out << u << '\t' << v << '\n';  // each edge once
      }
    }
  }
  {
    std::ofstream out(directory + "/groups.tsv");
    if (!out) return Status::Error("cannot write groups.tsv");
    for (GroupId g = 0; g < dataset.groups.num_groups(); ++g) {
      out << g << '\t';
      const auto& members = dataset.groups.Members(g);
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out << ',';
        out << members[i];
      }
      out << '\n';
    }
  }
  {
    std::ofstream out(directory + "/meta.tsv");
    if (!out) return Status::Error("cannot write meta.tsv");
    out << "name\t" << dataset.name << '\n';
    out << "num_users\t" << dataset.num_users << '\n';
    out << "num_items\t" << dataset.num_items << '\n';
  }
  return Status::Ok();
}

Status LoadDataset(const std::string& directory, Dataset* dataset) {
  // meta.tsv first: counts are needed to build the graphs.
  {
    std::ifstream in(directory + "/meta.tsv");
    if (!in) return Status::Error("cannot read meta.tsv in " + directory);
    std::string line;
    while (std::getline(in, line)) {
      const auto parts = StrSplit(line, '\t');
      if (parts.size() != 2) continue;
      if (parts[0] == "name") dataset->name = parts[1];
      if (parts[0] == "num_users") dataset->num_users = std::stoi(parts[1]);
      if (parts[0] == "num_items") dataset->num_items = std::stoi(parts[1]);
    }
    if (dataset->num_users <= 0 || dataset->num_items <= 0)
      return Status::Error("meta.tsv missing counts");
  }
  if (Status s = ReadEdges(directory + "/user_item.tsv", &dataset->user_item);
      !s.ok())
    return s;
  if (Status s =
          ReadEdges(directory + "/group_item.tsv", &dataset->group_item);
      !s.ok())
    return s;
  {
    std::ifstream in(directory + "/social.tsv");
    if (!in) return Status::Error("cannot read social.tsv");
    std::vector<std::pair<UserId, UserId>> edges;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ss(line);
      UserId a;
      UserId b;
      if (!(ss >> a >> b))
        return Status::Error("malformed social line: " + line);
      edges.emplace_back(a, b);
    }
    dataset->social = SocialGraph(dataset->num_users, edges);
  }
  {
    std::ifstream in(directory + "/groups.tsv");
    if (!in) return Status::Error("cannot read groups.tsv");
    std::vector<std::vector<UserId>> members;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto parts = StrSplit(line, '\t');
      if (parts.size() != 2)
        return Status::Error("malformed group line: " + line);
      std::vector<UserId> group;
      for (const std::string& tok : StrSplit(parts[1], ',')) {
        if (!tok.empty()) group.push_back(std::stoi(tok));
      }
      if (group.empty()) return Status::Error("empty group line: " + line);
      members.push_back(std::move(group));
    }
    dataset->groups = GroupTable(std::move(members));
  }
  return Status::Ok();
}

}  // namespace groupsa::data
