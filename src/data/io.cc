#include "data/io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/status.h"
#include "common/string_util.h"

namespace groupsa::data {
namespace {

// Parses a whole token as a base-10 int32. No exceptions, no partial
// matches, no silent overflow — malformed dataset files must fail with a
// Status naming the offending line, never crash or truncate.
bool ParseInt(const std::string& token, int32_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) return false;
  if (value < std::numeric_limits<int32_t>::min() ||
      value > std::numeric_limits<int32_t>::max()) {
    return false;
  }
  *out = static_cast<int32_t>(value);
  return true;
}

Status WriteEdges(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Error("cannot open for write: " + path);
  for (const Edge& e : edges) out << e.row << '\t' << e.item << '\n';
  return out ? Status::Ok() : Status::Error("write failed: " + path);
}

// Reads a (row, item) TSV, validating every id against the dataset bounds.
// `row_kind`/`num_rows` name and bound the row id space ("user" or "group").
Status ReadEdges(const std::string& path, const char* row_kind, int num_rows,
                 int num_items, EdgeList* edges) {
  std::ifstream in(path);
  if (!in) return Status::Error("cannot open for read: " + path);
  edges->clear();
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto parts = StrSplit(line, '\t');
    Edge e;
    if (parts.size() != 2 || !ParseInt(parts[0], &e.row) ||
        !ParseInt(parts[1], &e.item)) {
      return Status::Error(StrFormat("%s:%d: malformed edge line: '%s'",
                                     path.c_str(), line_no, line.c_str()));
    }
    if (e.row < 0 || e.row >= num_rows) {
      return Status::Error(StrFormat("%s:%d: %s id %d out of range [0, %d)",
                                     path.c_str(), line_no, row_kind, e.row,
                                     num_rows));
    }
    if (e.item < 0 || e.item >= num_items) {
      return Status::Error(StrFormat("%s:%d: item id %d out of range [0, %d)",
                                     path.c_str(), line_no, e.item,
                                     num_items));
    }
    edges->push_back(e);
  }
  return Status::Ok();
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& directory) {
  GROUPSA_RETURN_IF_ERROR(
      WriteEdges(dataset.user_item, directory + "/user_item.tsv"));
  GROUPSA_RETURN_IF_ERROR(
      WriteEdges(dataset.group_item, directory + "/group_item.tsv"));

  {
    std::ofstream out(directory + "/social.tsv");
    if (!out) return Status::Error("cannot write social.tsv");
    for (UserId u = 0; u < dataset.social.num_users(); ++u) {
      for (UserId v : dataset.social.Neighbors(u)) {
        if (u < v) out << u << '\t' << v << '\n';  // each edge once
      }
    }
  }
  {
    std::ofstream out(directory + "/groups.tsv");
    if (!out) return Status::Error("cannot write groups.tsv");
    for (GroupId g = 0; g < dataset.groups.num_groups(); ++g) {
      out << g << '\t';
      const auto& members = dataset.groups.Members(g);
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out << ',';
        out << members[i];
      }
      out << '\n';
    }
  }
  {
    std::ofstream out(directory + "/meta.tsv");
    if (!out) return Status::Error("cannot write meta.tsv");
    out << "name\t" << dataset.name << '\n';
    out << "num_users\t" << dataset.num_users << '\n';
    out << "num_items\t" << dataset.num_items << '\n';
  }
  return Status::Ok();
}

Status LoadDataset(const std::string& directory, Dataset* dataset) {
  // meta.tsv first: the counts bound every id that follows.
  {
    const std::string path = directory + "/meta.tsv";
    std::ifstream in(path);
    if (!in) return Status::Error("cannot read meta.tsv in " + directory);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      const auto parts = StrSplit(line, '\t');
      if (parts.size() != 2) continue;
      if (parts[0] == "name") dataset->name = parts[1];
      if (parts[0] == "num_users" || parts[0] == "num_items") {
        int32_t value = 0;
        if (!ParseInt(parts[1], &value)) {
          return Status::Error(StrFormat("%s:%d: malformed %s value: '%s'",
                                         path.c_str(), line_no,
                                         parts[0].c_str(), parts[1].c_str()));
        }
        (parts[0] == "num_users" ? dataset->num_users : dataset->num_items) =
            value;
      }
    }
    if (dataset->num_users <= 0 || dataset->num_items <= 0)
      return Status::Error("meta.tsv missing counts in " + directory);
  }
  {
    const std::string path = directory + "/social.tsv";
    std::ifstream in(path);
    if (!in) return Status::Error("cannot read social.tsv in " + directory);
    std::vector<std::pair<UserId, UserId>> edges;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      const auto parts = StrSplit(line, '\t');
      UserId a = 0;
      UserId b = 0;
      if (parts.size() != 2 || !ParseInt(parts[0], &a) ||
          !ParseInt(parts[1], &b)) {
        return Status::Error(StrFormat("%s:%d: malformed social line: '%s'",
                                       path.c_str(), line_no, line.c_str()));
      }
      for (UserId u : {a, b}) {
        if (u < 0 || u >= dataset->num_users) {
          return Status::Error(
              StrFormat("%s:%d: user id %d out of range [0, %d)", path.c_str(),
                        line_no, u, dataset->num_users));
        }
      }
      edges.emplace_back(a, b);
    }
    dataset->social = SocialGraph(dataset->num_users, edges);
  }
  // groups.tsv before group_item.tsv: the group count bounds its row ids.
  {
    const std::string path = directory + "/groups.tsv";
    std::ifstream in(path);
    if (!in) return Status::Error("cannot read groups.tsv in " + directory);
    std::vector<std::vector<UserId>> members;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      const auto parts = StrSplit(line, '\t');
      GroupId id = -1;
      if (parts.size() != 2 || !ParseInt(parts[0], &id)) {
        return Status::Error(StrFormat("%s:%d: malformed group line: '%s'",
                                       path.c_str(), line_no, line.c_str()));
      }
      // Group ids are dense and 0-based; anything else (duplicates, gaps,
      // reordering) silently remaps every group-item edge, so reject it.
      if (id != static_cast<GroupId>(members.size())) {
        return Status::Error(StrFormat(
            "%s:%d: group id %d out of order (expected %d; ids must be "
            "dense, 0-based and ascending)",
            path.c_str(), line_no, id,
            static_cast<GroupId>(members.size())));
      }
      std::vector<UserId> group;
      for (const std::string& tok : StrSplit(parts[1], ',')) {
        if (tok.empty()) continue;
        UserId member = 0;
        if (!ParseInt(tok, &member)) {
          return Status::Error(StrFormat("%s:%d: malformed member id: '%s'",
                                         path.c_str(), line_no, tok.c_str()));
        }
        if (member < 0 || member >= dataset->num_users) {
          return Status::Error(
              StrFormat("%s:%d: member id %d out of range [0, %d)",
                        path.c_str(), line_no, member, dataset->num_users));
        }
        group.push_back(member);
      }
      if (group.empty()) {
        return Status::Error(
            StrFormat("%s:%d: empty group %d", path.c_str(), line_no, id));
      }
      members.push_back(std::move(group));
    }
    dataset->groups = GroupTable(std::move(members));
  }
  GROUPSA_RETURN_IF_ERROR(ReadEdges(directory + "/user_item.tsv", "user",
                                    dataset->num_users, dataset->num_items,
                                    &dataset->user_item));
  GROUPSA_RETURN_IF_ERROR(ReadEdges(directory + "/group_item.tsv", "group",
                                    dataset->groups.num_groups(),
                                    dataset->num_items,
                                    &dataset->group_item));
  return Status::Ok();
}

}  // namespace groupsa::data
