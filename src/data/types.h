#ifndef GROUPSA_DATA_TYPES_H_
#define GROUPSA_DATA_TYPES_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace groupsa::data {

// Dense 0-based ids. Users, items and groups each live in their own id
// space.
using UserId = int32_t;
using ItemId = int32_t;
using GroupId = int32_t;

// A generic (row entity, item) implicit interaction; `row` is a UserId for
// user-item data and a GroupId for group-item data.
struct Edge {
  int32_t row = 0;
  ItemId item = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.row == b.row && a.item == b.item;
  }
};

using EdgeList = std::vector<Edge>;

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_TYPES_H_
