#ifndef GROUPSA_DATA_CANDIDATES_H_
#define GROUPSA_DATA_CANDIDATES_H_

#include <vector>

#include "common/rng.h"
#include "data/interaction_matrix.h"

namespace groupsa::data {

// Samples `num_candidates` distinct items that `row` has never interacted
// with (Sec. III-C evaluation protocol: 100 unobserved items ranked together
// with the held-out positive). `observed` must cover ALL interactions of the
// row (train + validation + test) so candidates are true negatives.
std::vector<ItemId> SampleCandidates(const InteractionMatrix& observed,
                                     int row, int num_candidates, Rng* rng);

}  // namespace groupsa::data

#endif  // GROUPSA_DATA_CANDIDATES_H_
