#ifndef GROUPSA_COMMON_FAILPOINT_H_
#define GROUPSA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace groupsa::failpoint {

// Fault-injection points for testing the crash/resume and torn-write paths
// against real process death and real I/O errors, not just unit mocks.
//
// A failpoint is a named site in the code (e.g. "checkpoint.write",
// "trainer.batch") that consults the registry every time it is passed. When
// the site is unarmed — the production state — the entire consultation is one
// relaxed atomic load of a global counter (see GROUPSA_FAILPOINT below), so
// leaving the hooks compiled into release binaries costs nothing measurable.
//
// Arming uses a spec string, either programmatically (tests) or via the
// GROUPSA_FAILPOINTS environment variable (CLI runs under tools/ci.sh):
//
//   GROUPSA_FAILPOINTS="checkpoint.write=error@2;trainer.batch=kill@12"
//
// Grammar: `name=action[@n[+]]` entries separated by ';'. With no `@n` the
// action fires on every hit (a persistently failing disk); `@n` fires only
// on the n-th hit (1-based — one poisoned batch, one torn write); `@n+`
// fires on every hit from the n-th on. Actions:
//
//   error    Hit() returns kError; the site maps it to a Status failure
//            (I/O sites simulate a failed write/rename this way).
//   kill     the process dies immediately via SIGKILL — no destructors, no
//            atexit, exactly like `kill -9` mid-run.
//   corrupt  Hit() returns kCorrupt; the site applies a site-specific
//            corruption (the trainer poisons the batch loss with NaN, the
//            checkpoint writer flips a payload bit).
//
// Thread-safety: Arm/Disarm must not race with hits (arm before starting
// work); hit counting itself is atomic and may be reached from pool threads.
enum class Action {
  kNone = 0,
  kError,
  kKill,
  kCorrupt,
};

// Number of armed failpoints. Internal — sites go through GROUPSA_FAILPOINT.
extern std::atomic<int> g_armed_count;

// Parses and arms one `name=action[@n[+]]` spec. Returns false on a
// malformed spec (unknown action, bad count). Re-arming a name replaces its
// spec and resets its counters.
bool Arm(const std::string& spec);

// Arms every entry of a ';'-separated spec list. Returns false if any entry
// is malformed (valid entries before it stay armed).
bool ArmList(const std::string& specs);

// Arms from the GROUPSA_FAILPOINTS environment variable; no-op when unset.
// Called once by CLI binaries at startup. Returns false on a malformed list.
bool ArmFromEnv();

// Disarms one site / all sites and resets their hit counters.
void Disarm(const std::string& name);
void DisarmAll();

// Slow path: records a hit on `name` and returns the action to apply now.
// kKill never returns — the process is killed on the spot. Call through
// GROUPSA_FAILPOINT so unarmed builds stay on the one-load fast path.
Action HitSlow(const char* name);

// Times a site was actually fired (test introspection).
int64_t FireCount(const std::string& name);

}  // namespace groupsa::failpoint

// Evaluates to the Action for this hit of `name` — kNone on the fast path
// with a single relaxed load when nothing is armed anywhere.
#define GROUPSA_FAILPOINT(name)                                      \
  (::groupsa::failpoint::g_armed_count.load(std::memory_order_relaxed) == 0 \
       ? ::groupsa::failpoint::Action::kNone                         \
       : ::groupsa::failpoint::HitSlow(name))

#endif  // GROUPSA_COMMON_FAILPOINT_H_
