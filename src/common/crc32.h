#ifndef GROUPSA_COMMON_CRC32_H_
#define GROUPSA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace groupsa {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same checksum
// zlib computes. Used by the checkpoint format to detect torn writes and
// bit rot; 4 bytes per record is cheap insurance for multi-hour training
// runs whose only artifact is the checkpoint file.
//
// Incremental use: seed with `Crc32::kInit`, fold in chunks with Update(),
// then finalize with Finalize(). Crc32Of() does all three for one buffer.
class Crc32 {
 public:
  static constexpr uint32_t kInit = 0xFFFFFFFFu;

  // Folds `len` bytes into the running value (which must have started at
  // kInit and not yet been finalized).
  static uint32_t Update(uint32_t crc, const void* data, size_t len);

  static constexpr uint32_t Finalize(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }
};

// One-shot CRC-32 of a buffer.
uint32_t Crc32Of(const void* data, size_t len);

}  // namespace groupsa

#endif  // GROUPSA_COMMON_CRC32_H_
