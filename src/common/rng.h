#ifndef GROUPSA_COMMON_RNG_H_
#define GROUPSA_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace groupsa {

// Deterministic, fast pseudo-random number generator (xoshiro256** seeded via
// splitmix64). Every stochastic component in the library draws from an Rng
// passed in explicitly, so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();
  float NextFloat();

  // Uniform integer in [0, bound). `bound` must be positive.
  int NextInt(int bound);

  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal via Box-Muller.
  double NextGaussian();
  // Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  // Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  // Samples an index in [0, weights.size()) with probability proportional to
  // weights[i]. Weights must be non-negative with a positive sum.
  int NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int i = static_cast<int>(values->size()) - 1; i > 0; --i) {
      int j = NextInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) uniformly (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Complete generator state, for crash-safe training snapshots: restoring a
  // saved state resumes the exact draw sequence, including a cached
  // Box-Muller half if one was pending.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

  // Derives an independent generator; useful for giving each experiment
  // repetition its own stream.
  Rng Fork();

  // Mixes (seed, stream) into a decorrelated seed via splitmix64, so that
  // stream i of a given seed is a fixed, reproducible function of the two.
  // The parallel trainer keys each minibatch shard's generator off
  // (batch_seed, shard_index), which is what makes stochastic training
  // invariant to thread count: the draws depend on the shard structure, not
  // on which thread runs the shard.
  static uint64_t StreamSeed(uint64_t seed, uint64_t stream);

  // Splits `seed` into `n` independent generators, stream i seeded with
  // StreamSeed(seed, i). Streams are reproducible (same seed and n give the
  // same generators) and, by xoshiro's full-period state mixing, do not
  // collide in practice.
  static std::vector<Rng> Split(uint64_t seed, int n);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace groupsa

#endif  // GROUPSA_COMMON_RNG_H_
