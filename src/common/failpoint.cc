#include "common/failpoint.h"

#include <csignal>
#include <cstdlib>
#include <map>

#include "common/debug_mutex.h"
#include "common/string_util.h"

namespace groupsa::failpoint {
namespace {

struct Point {
  Action action = Action::kNone;
  int64_t fire_at = 0;     // 0 = every hit; else 1-based trigger ordinal
  bool persistent = true;  // `@n+`/no-@: keep firing; `@n`: fire once
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> fires{0};
};

// Registry keyed by site name. The map itself only changes under Arm/Disarm
// (which must not race with hits); per-point counters are atomic so pool
// threads can hit a site concurrently.
DebugMutex g_mu{"failpoint.registry"};
std::map<std::string, Point>& Registry() {
  static auto* registry = new std::map<std::string, Point>();
  return *registry;
}

bool ParseAction(const std::string& text, Action* action) {
  if (text == "error") {
    *action = Action::kError;
  } else if (text == "kill") {
    *action = Action::kKill;
  } else if (text == "corrupt") {
    *action = Action::kCorrupt;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::atomic<int> g_armed_count{0};

bool Arm(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string name = StrTrim(spec.substr(0, eq));
  std::string action_text = StrTrim(spec.substr(eq + 1));
  int64_t fire_at = 0;
  bool persistent = true;
  if (const size_t at = action_text.find('@'); at != std::string::npos) {
    std::string count_text = action_text.substr(at + 1);
    if (!count_text.empty() && count_text.back() == '+') {
      count_text.pop_back();
    } else {
      persistent = false;
    }
    char* end = nullptr;
    fire_at = std::strtoll(count_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || end == count_text.c_str() ||
        fire_at < 1) {
      return false;
    }
    action_text = action_text.substr(0, at);
  }
  Action action = Action::kNone;
  if (!ParseAction(action_text, &action)) return false;

  std::lock_guard<DebugMutex> lock(g_mu);
  auto [it, inserted] = Registry().try_emplace(name);
  it->second.action = action;
  it->second.fire_at = fire_at;
  it->second.persistent = persistent;
  it->second.hits.store(0);
  it->second.fires.store(0);
  if (inserted) g_armed_count.fetch_add(1);
  return true;
}

bool ArmList(const std::string& specs) {
  bool ok = true;
  for (const std::string& entry : StrSplit(specs, ';')) {
    const std::string trimmed = StrTrim(entry);
    if (trimmed.empty()) continue;
    ok = Arm(trimmed) && ok;
  }
  return ok;
}

bool ArmFromEnv() {
  const char* env = std::getenv("GROUPSA_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return true;
  return ArmList(env);
}

void Disarm(const std::string& name) {
  std::lock_guard<DebugMutex> lock(g_mu);
  if (Registry().erase(name) > 0) g_armed_count.fetch_sub(1);
}

void DisarmAll() {
  std::lock_guard<DebugMutex> lock(g_mu);
  g_armed_count.fetch_sub(static_cast<int>(Registry().size()));
  Registry().clear();
}

Action HitSlow(const char* name) {
  Point* point = nullptr;
  {
    std::lock_guard<DebugMutex> lock(g_mu);
    auto it = Registry().find(name);
    if (it == Registry().end()) return Action::kNone;
    point = &it->second;
  }
  const int64_t hit = point->hits.fetch_add(1) + 1;
  if (point->fire_at > 0 &&
      (point->persistent ? hit < point->fire_at : hit != point->fire_at)) {
    return Action::kNone;
  }
  point->fires.fetch_add(1);
  if (point->action == Action::kKill) {
    // Die exactly like `kill -9`: no destructors, no buffered-FILE flushes —
    // the torn-write scenario the checkpoint format must survive.
    std::raise(SIGKILL);
    std::abort();  // unreachable; SIGKILL cannot be handled
  }
  return point->action;
}

int64_t FireCount(const std::string& name) {
  std::lock_guard<DebugMutex> lock(g_mu);
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.fires.load();
}

}  // namespace groupsa::failpoint
