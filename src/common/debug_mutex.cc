#include "common/debug_mutex.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

namespace groupsa::lockdep {

#if GROUPSA_DEBUG_MUTEX_ENABLED

namespace {

// One entry of a thread's held-lock stack.
struct Held {
  const void* instance = nullptr;
  int cls = 0;
  const char* name = "";
};

// The per-thread held-lock stack. Deliberately a trivially-destructible
// fixed-size POD rather than a std::vector: a vector's TLS destructor runs
// (via __call_tls_dtors) *before* atexit handlers, and static singletons
// such as the global thread pool still lock DebugMutexes from atexit — a
// vector here is a heap-use-after-free at shutdown. A POD thread_local
// registers no destructor, so it stays valid for the thread's whole life.
struct HeldStack {
  static constexpr size_t kCapacity = 64;
  Held items[kCapacity];
  size_t size;
};

// Acquisition-order graph over lock classes, plus the evidence needed for a
// two-sided report: each edge keeps a rendering of the held stack that first
// recorded it. Everything below g_mu; the per-thread stack needs none.
struct Graph {
  // Guards every member. A plain std::mutex on purpose: the detector must
  // not recurse into itself, and this file is the naked-mutex rule's one
  // sanctioned home.
  std::mutex mu;
  std::map<std::string, int> class_ids;
  std::vector<std::string> class_names;                // id -> name
  std::map<int, std::map<int, std::string>> edges;     // from -> to -> stack
  std::function<void(const std::string&)> handler;     // test override
};

Graph& G() {
  // Leaked: threads may still release locks while static destructors run.
  static auto* graph = new Graph();
  return *graph;
}

thread_local HeldStack t_held;

std::string RenderStack(const HeldStack& held, const char* acquiring) {
  std::ostringstream out;
  out << "[thread " << std::this_thread::get_id() << "] holds {";
  for (size_t i = 0; i < held.size; ++i) {
    if (i > 0) out << " -> ";
    out << held.items[i].name;
  }
  out << "}";
  if (acquiring != nullptr) out << " acquiring " << acquiring;
  return out.str();
}

// Caller holds G().mu (or is mid-report, where racing reads are moot).
void Fail(const std::string& report) {
  std::function<void(const std::string&)> handler = G().handler;
  if (handler) {
    handler(report);
    return;
  }
  std::fprintf(stderr, "%s\n", report.c_str());
  std::abort();
}

int ClassIdLocked(const char* name) {
  Graph& g = G();
  auto [it, inserted] =
      g.class_ids.try_emplace(name, static_cast<int>(g.class_names.size()));
  if (inserted) g.class_names.push_back(name);
  return it->second;
}

// Path from `from` to `to` in the edge graph, as a class-id sequence
// (inclusive of both ends); empty when unreachable. Plain DFS — the graph
// has one node per lock *class*, a handful in this codebase.
std::vector<int> FindPathLocked(int from, int to) {
  Graph& g = G();
  std::vector<int> stack{from};
  std::map<int, int> parent;  // node -> predecessor
  std::set<int> visited{from};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == to) {
      std::vector<int> path{to};
      for (int at = to; at != from;) {
        at = parent.at(at);
        path.push_back(at);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    const auto it = g.edges.find(node);
    if (it == g.edges.end()) continue;
    for (const auto& [next, unused] : it->second) {
      if (visited.insert(next).second) {
        parent[next] = node;
        stack.push_back(next);
      }
    }
  }
  return {};
}

}  // namespace

void OnAcquire(const void* instance, const char* name, AcquireKind kind) {
  // Recursion: the same instance twice on one thread is UB on std::mutex
  // and a guaranteed self-deadlock semantically — report it for every kind,
  // including try_lock (whose std::mutex try would also be UB).
  for (size_t i = 0; i < t_held.size; ++i) {
    if (t_held.items[i].instance == instance) {
      Fail("DebugMutex: recursive acquisition of \"" + std::string(name) +
           "\"\n  " + RenderStack(t_held, name));
      break;
    }
  }

  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  const int cls = ClassIdLocked(name);
  // Order rules apply only when something else is already held, and not to
  // try-locks (the deadlock-avoidance idiom backs off instead of blocking).
  if (t_held.size > 0 && kind != AcquireKind::kTry) {
    const Held& top = t_held.items[t_held.size - 1];
    if (top.cls == cls) {
      Fail("DebugMutex: nested acquisition of two \"" + std::string(name) +
           "\" locks — same-class order is undefined, so some interleaving "
           "deadlocks\n  " +
           RenderStack(t_held, name));
    } else if (g.edges[top.cls].find(cls) == g.edges[top.cls].end()) {
      // New edge top.cls -> cls. If cls already reaches top.cls, this
      // acquisition closes a cycle: report both sides — this thread's stack
      // and the recorded stack of each edge on the reverse path.
      const std::vector<int> path = FindPathLocked(cls, top.cls);
      if (!path.empty()) {
        std::ostringstream out;
        out << "DebugMutex: lock-order inversion — acquiring \"" << name
            << "\" while holding \"" << top.name
            << "\", but the acquisition-order graph already requires \""
            << name << "\" before \"" << top.name << "\"\n"
            << "  this thread:  " << RenderStack(t_held, name) << "\n";
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          out << "  recorded " << g.class_names[static_cast<size_t>(path[i])]
              << " -> " << g.class_names[static_cast<size_t>(path[i + 1])]
              << " by: " << g.edges[path[i]][path[i + 1]] << "\n";
        }
        Fail(out.str());
      } else {
        g.edges[top.cls][cls] = RenderStack(t_held, name);
      }
    }
  }
  if (t_held.size == HeldStack::kCapacity) {
    Fail("DebugMutex: more than " + std::to_string(HeldStack::kCapacity) +
         " locks held by one thread\n  " + RenderStack(t_held, name));
    return;  // test handler resumed past the report; drop rather than smash
  }
  t_held.items[t_held.size++] = {instance, cls, name};
}

void OnRelease(const void* instance) {
  // Releases may be non-LIFO (unique_lock::unlock mid-scope), so search
  // from the most recent acquisition down.
  for (size_t i = t_held.size; i > 0; --i) {
    if (t_held.items[i - 1].instance == instance) {
      for (size_t j = i - 1; j + 1 < t_held.size; ++j)
        t_held.items[j] = t_held.items[j + 1];
      --t_held.size;
      return;
    }
  }
  // Unlocking something never locked: std::mutex UB. Report it.
  Fail("DebugMutex: release of a lock this thread does not hold\n  " +
       RenderStack(t_held, nullptr));
}

std::vector<std::string> HeldLockNames() {
  std::vector<std::string> names;
  names.reserve(t_held.size);
  for (size_t i = 0; i < t_held.size; ++i)
    names.emplace_back(t_held.items[i].name);
  return names;
}

GraphStats Stats() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  GraphStats stats;
  stats.classes = static_cast<int>(g.class_names.size());
  for (const auto& [from, tos] : g.edges)
    stats.edges += static_cast<int>(tos.size());
  return stats;
}

void SetFailureHandlerForTest(
    std::function<void(const std::string&)> handler) {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.handler = std::move(handler);
}

void ResetGraphForTest() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.class_ids.clear();
  g.class_names.clear();
  g.edges.clear();
}

#else  // !GROUPSA_DEBUG_MUTEX_ENABLED

// Release build: DebugMutex must be layout-identical to a bare std::mutex —
// the zero-overhead claim the `locks` CI lane bench-gates.
static_assert(sizeof(groupsa::DebugMutex) == sizeof(std::mutex),
              "release DebugMutex must add nothing to std::mutex");
static_assert(sizeof(groupsa::DebugSharedMutex) == sizeof(std::shared_mutex),
              "release DebugSharedMutex must add nothing to std::shared_mutex");

void OnAcquire(const void*, const char*, AcquireKind) {}
void OnRelease(const void*) {}
std::vector<std::string> HeldLockNames() { return {}; }
GraphStats Stats() { return {}; }
void SetFailureHandlerForTest(std::function<void(const std::string&)>) {}
void ResetGraphForTest() {}

#endif  // GROUPSA_DEBUG_MUTEX_ENABLED

}  // namespace groupsa::lockdep
