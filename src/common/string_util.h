#ifndef GROUPSA_COMMON_STRING_UTIL_H_
#define GROUPSA_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace groupsa {

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& separator);

// Splits `text` on `delimiter`; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& text, char delimiter);

// Removes leading/trailing whitespace.
std::string StrTrim(const std::string& text);

}  // namespace groupsa

#endif  // GROUPSA_COMMON_STRING_UTIL_H_
