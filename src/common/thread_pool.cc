#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "common/macros.h"

namespace groupsa::parallel {
namespace {

thread_local bool tls_on_worker_thread = false;

// Shared state of one blocking ParallelFor region. Chunks self-schedule off
// `next`; the region is done when every enlisted runner (workers + caller)
// has drained the counter and decremented `pending`.
struct ForState {
  std::atomic<int64_t> next{0};
  int64_t end GROUPSA_NOT_GUARDED("set before helpers start") = 0;
  int64_t grain GROUPSA_NOT_GUARDED("set before helpers start") = 1;
  const std::function<void(int64_t, int64_t)>* fn
      GROUPSA_NOT_GUARDED("set before helpers start") = nullptr;

  DebugMutex mu{"parallel.for_state"};
  DebugCondVar done_cv;
  int pending GROUPSA_GUARDED_BY(mu) = 0;   // helper tasks not yet finished
  std::exception_ptr error GROUPSA_GUARDED_BY(mu);  // first thrown by fn

  void RunChunks() {
    for (;;) {
      const int64_t chunk_begin = next.fetch_add(grain);
      if (chunk_begin >= end) return;
      const int64_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        (*fn)(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<DebugMutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<DebugMutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  tls_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<DebugMutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<DebugMutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Post(std::function<void()> task) {
  GROUPSA_CHECK(num_threads_ > 1,
                "ThreadPool::Post on a width-1 pool: no spawned worker could "
                "ever run the task");
  Enqueue(std::move(task));
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  // Serial fast paths: width-1 pool, range fits in one chunk, or a nested
  // call from a worker (running inline keeps workers from blocking on each
  // other, which is what makes nested submission deadlock-free).
  if (num_threads_ <= 1 || end - begin <= grain || OnWorkerThread()) {
    fn(begin, end);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->next.store(begin);
  state->end = end;
  state->grain = grain;
  state->fn = &fn;

  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  // The caller takes one lane; helpers cover the rest, capped by chunks.
  const int helpers = static_cast<int>(
      std::min<int64_t>(workers_.size(), num_chunks - 1));
  {
    // Uncontended (no helper is queued yet), but pending is guarded state.
    std::lock_guard<DebugMutex> lock(state->mu);
    state->pending = helpers;
  }
  for (int i = 0; i < helpers; ++i) {
    Enqueue([state] {
      state->RunChunks();
      std::lock_guard<DebugMutex> lock(state->mu);
      if (--state->pending == 0) state->done_cv.notify_all();
    });
  }

  state->RunChunks();
  std::unique_lock<DebugMutex> lock(state->mu);
  state->done_cv.wait(lock, [&state] { return state->pending == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

// ---------------- Global pool ----------------

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

DebugMutex& GlobalPoolMutex() {
  static DebugMutex mu{"parallel.global_pool"};
  return mu;
}

int DefaultThreads() {
  const char* env = std::getenv("GROUPSA_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 1;
}

}  // namespace

ThreadPool* GlobalPool() {
  std::lock_guard<DebugMutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (!pool) pool = std::make_unique<ThreadPool>(DefaultThreads());
  return pool.get();
}

void SetGlobalThreads(int num_threads) {
  GROUPSA_CHECK(!ThreadPool::OnWorkerThread(),
                "SetGlobalThreads called from inside a parallel region");
  std::lock_guard<DebugMutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool && pool->size() == std::max(1, num_threads)) return;
  pool = std::make_unique<ThreadPool>(num_threads);
}

int GlobalThreads() { return GlobalPool()->size(); }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  GlobalPool()->ParallelFor(begin, end, grain, fn);
}

}  // namespace groupsa::parallel
