#include "common/virtual_clock.h"

#include <string>

namespace groupsa {

std::string DescribeExpiry(uint64_t deadline_tick) {
  return "deadline tick " + std::to_string(deadline_tick) + " expired";
}

}  // namespace groupsa
