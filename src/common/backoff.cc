#include "common/backoff.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace groupsa {

uint64_t BackoffDelayTicks(const BackoffPolicy& policy, uint64_t key,
                           int attempt) {
  if (attempt < 0) attempt = 0;
  const uint64_t base = std::max<uint64_t>(1, policy.base_ticks);
  const uint64_t cap = std::max<uint64_t>(base, policy.max_ticks);
  // Saturating base << attempt: past 63 shifts (or once the shifted value
  // clears the cap) the exponential phase is over and the cap holds.
  uint64_t delay = cap;
  if (attempt < 63) {
    const uint64_t shifted = base << attempt;
    // Overflow check: an overflowing shift loses its high bits, so undo it.
    delay = (shifted >> attempt) == base ? std::min(shifted, cap) : cap;
  }
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter > 0.0 && delay > 1) {
    // One decorrelated stream per (key, attempt): the draw is the first
    // double of a generator seeded by mixing the two through StreamSeed
    // twice, so neighbouring keys and attempts share no structure.
    Rng rng(Rng::StreamSeed(Rng::StreamSeed(policy.seed, key),
                            static_cast<uint64_t>(attempt)));
    const double scale = 1.0 - jitter * rng.NextDouble();
    const double jittered =
        std::ceil(static_cast<double>(delay) * scale);
    delay = std::max<uint64_t>(1, static_cast<uint64_t>(jittered));
  }
  return delay;
}

uint64_t TotalBackoffTicks(const BackoffPolicy& policy, uint64_t key,
                           int attempts) {
  uint64_t total = 0;
  for (int attempt = 0; attempt < attempts; ++attempt)
    total += BackoffDelayTicks(policy, key, attempt);
  return total;
}

}  // namespace groupsa
