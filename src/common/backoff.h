#ifndef GROUPSA_COMMON_BACKOFF_H_
#define GROUPSA_COMMON_BACKOFF_H_

#include <cstdint>

namespace groupsa {

// Retry with exponential backoff and *deterministic* jitter.
//
// Backoff delays here are measured in VirtualClock ticks, not wall time:
// a retry does not sleep, it spends ticks of the request's deadline budget
// (so a request that retries is strictly closer to expiry than one that
// succeeded first try — backoff has teeth without a wall clock). Jitter
// exists for the usual reason — decorrelating retry storms — but is drawn
// from the library's seeded Rng streams (`Rng::StreamSeed`), never from
// ad-hoc randomness: the delay for (policy, key, attempt) is a pure
// function of those three values, identical at any thread count, which is
// what the race-labelled determinism tests pin.
struct BackoffPolicy {
  // Retries allowed after the first attempt; 0 disables retrying.
  int max_retries = 0;
  // Delay for attempt a (0-based retry index) before jitter:
  //   min(max_ticks, base_ticks << a)
  uint64_t base_ticks = 1;
  uint64_t max_ticks = 64;
  // Fraction of the delay that jitter may remove: the jittered delay lies
  // in [ceil(delay * (1 - jitter)), delay]. 0 disables jitter; values are
  // clamped to [0, 1]. Delays never jitter below 1 tick.
  double jitter = 0.5;
  // Seed of the jitter stream; mixed with (key, attempt) via
  // Rng::StreamSeed so every request draws from its own decorrelated
  // stream.
  uint64_t seed = 0x5eed0fbac0ffULL;
};

// The jittered delay, in ticks, before retry `attempt` (0-based) of the
// work identified by `key` (the serve daemon keys by request ticket).
// Pure function of its arguments. `attempt` values beyond 62 saturate the
// shift rather than overflow.
uint64_t BackoffDelayTicks(const BackoffPolicy& policy, uint64_t key,
                           int attempt);

// Sum of BackoffDelayTicks over attempts [0, attempts): the total budget a
// request that retried `attempts` times has spent waiting.
uint64_t TotalBackoffTicks(const BackoffPolicy& policy, uint64_t key,
                           int attempts);

}  // namespace groupsa

#endif  // GROUPSA_COMMON_BACKOFF_H_
