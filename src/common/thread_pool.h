#ifndef GROUPSA_COMMON_THREAD_POOL_H_
#define GROUPSA_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/debug_mutex.h"

namespace groupsa::parallel {

// Fixed-size thread pool underlying ParallelFor. The pool is deliberately
// simple (single shared queue, no work stealing): every parallel region in
// the library is a blocking ParallelFor whose chunks self-schedule off one
// atomic counter, so a stealing scheduler would buy nothing.
//
// Determinism contract: ParallelFor partitions [begin, end) into fixed
// `grain`-sized chunks and guarantees each index is processed exactly once.
// Which thread runs a chunk is unspecified, so callers that need value
// determinism must make chunk results independent of the executing thread
// (per-chunk RNG streams, per-chunk output slots) and reduce the per-chunk
// results in chunk order on the calling thread. Every parallel code path in
// tensor/, core/ and eval/ follows this contract, which is what makes
// results bit-identical at any thread count.
class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the calling thread always participates
  // in ParallelFor, so a pool of size 1 runs everything inline and spawns
  // nothing).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution width including the calling thread.
  int size() const { return num_threads_; }

  // Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
  // at most `grain` indices. Blocks until every chunk has run. The calling
  // thread participates. Nested calls from inside a worker run the whole
  // range inline (serially), which both bounds oversubscription and makes
  // nested submission deadlock-free. The first exception thrown by `fn` is
  // rethrown on the calling thread once all chunks have finished.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Runs `task` asynchronously on a spawned pool worker. Unlike ParallelFor
  // the caller neither participates nor waits, so the pool must have at
  // least one spawned worker (size >= 2) — posting to a width-1 pool is a
  // programmer error (the task could never run). A long-lived task (a
  // serving worker loop) occupies its worker until it returns; tasks still
  // queued at destruction run to completion before the workers join, so a
  // posted task is never silently dropped. Exceptions must not escape
  // `task` (they would terminate the worker thread's process).
  void Post(std::function<void()> task);

  // True when the current thread is one of this process's pool workers.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task);

  const int num_threads_;
  // Spawned in the constructor, joined in the destructor; never touched in
  // between, so no guard is needed.
  std::vector<std::thread> workers_ GROUPSA_NOT_GUARDED("ctor/dtor only");
  DebugMutex mu_{"parallel.pool"};
  std::deque<std::function<void()>> queue_ GROUPSA_GUARDED_BY(mu_);
  DebugCondVar cv_;
  bool stop_ GROUPSA_GUARDED_BY(mu_) = false;
};

// ---------------- Global pool ----------------

// The process-wide pool used by tensor kernels, the trainer and the
// evaluator. Sized on first use from the GROUPSA_THREADS environment
// variable; defaults to 1 (serial) so that library behavior is opt-in
// identical to the historical single-threaded code paths.
ThreadPool* GlobalPool();

// Resizes the global pool. Must not be called while a parallel region is in
// flight (callers: CLI flag parsing, bench drivers, config application,
// tests between phases).
void SetGlobalThreads(int num_threads);

// Width of the global pool.
int GlobalThreads();

// ParallelFor on the global pool; runs inline when the pool width is 1 or
// the range fits in one grain.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace groupsa::parallel

#endif  // GROUPSA_COMMON_THREAD_POOL_H_
