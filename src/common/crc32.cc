#include "common/crc32.h"

namespace groupsa {
namespace {

// 256-entry lookup table for the reflected polynomial, built once on first
// use (byte-at-a-time; the checkpoint path is I/O-bound, not CRC-bound).
struct Crc32Table {
  uint32_t entry[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      entry[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32::Update(uint32_t crc, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const Crc32Table& table = Table();
  for (size_t i = 0; i < len; ++i)
    crc = table.entry[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

uint32_t Crc32Of(const void* data, size_t len) {
  return Crc32::Finalize(Crc32::Update(Crc32::kInit, data, len));
}

}  // namespace groupsa
