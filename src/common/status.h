#ifndef GROUPSA_COMMON_STATUS_H_
#define GROUPSA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace groupsa {

// Minimal status type for recoverable errors (file I/O, parsing). The library
// does not use exceptions; fatal programmer errors go through GROUPSA_CHECK.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

  // Returns this status with "<context>: " prepended to its message; Ok
  // passes through unchanged. Call sites layer context as an error bubbles
  // up ("load checkpoint ...: params section: truncated record"), replacing
  // hand-rolled `if (!s.ok()) return Status::Error(...)` chains.
  Status WithContext(const std::string& context) const {
    if (ok_) return *this;
    return Error(context + ": " + message_);
  }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace groupsa

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is an error. The workhorse of I/O and checkpoint code:
//
//   GROUPSA_RETURN_IF_ERROR(ReadSection(f, &payload));
//
#define GROUPSA_RETURN_IF_ERROR(expr)              \
  do {                                             \
    if (::groupsa::Status _groupsa_s = (expr);     \
        !_groupsa_s.ok()) {                        \
      return _groupsa_s;                           \
    }                                              \
  } while (false)

// Like GROUPSA_RETURN_IF_ERROR but prepends `context` to the propagated
// message (see Status::WithContext).
#define GROUPSA_RETURN_IF_ERROR_CTX(expr, context) \
  do {                                             \
    if (::groupsa::Status _groupsa_s = (expr);     \
        !_groupsa_s.ok()) {                        \
      return _groupsa_s.WithContext(context);      \
    }                                              \
  } while (false)

#endif  // GROUPSA_COMMON_STATUS_H_
