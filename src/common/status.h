#ifndef GROUPSA_COMMON_STATUS_H_
#define GROUPSA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace groupsa {

// Minimal status type for recoverable errors (file I/O, parsing). The library
// does not use exceptions; fatal programmer errors go through GROUPSA_CHECK.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace groupsa

#endif  // GROUPSA_COMMON_STATUS_H_
