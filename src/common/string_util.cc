#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace groupsa {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> StrSplit(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string StrTrim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

}  // namespace groupsa
