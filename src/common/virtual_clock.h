#ifndef GROUPSA_COMMON_VIRTUAL_CLOCK_H_
#define GROUPSA_COMMON_VIRTUAL_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace groupsa {

// Deterministic logical clock. The serving daemon needs a notion of "time
// passing" for request deadlines, breaker cool-downs and backoff delays,
// but a wall clock would make every one of those decisions a function of
// machine load — the determinism linter bans wall-clock reads in src/ for
// exactly that reason. A VirtualClock instead counts *events*: its owner
// advances it at well-defined points (the serve daemon ticks once per
// submission and once per completion), so a tick value is a pure function
// of the request schedule, never of scheduling luck.
//
// Ticks are monotone and shared: many threads may Advance() and Now()
// concurrently. Readers see a value at least as large as every advance
// that happened-before their read; decisions made against a tick (deadline
// expiry, breaker half-open) must therefore be written so that a *larger*
// now never flips them back (expiry is `now > deadline`, which only ever
// becomes more true).
class VirtualClock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  // Current tick. Starts at 0.
  uint64_t Now() const { return now_.load(std::memory_order_relaxed); }

  // Advances the clock by `ticks` and returns the new value.
  uint64_t Advance(uint64_t ticks = 1) {
    return now_.fetch_add(ticks, std::memory_order_relaxed) + ticks;
  }

 private:
  // Concurrency contract (DESIGN.md §14): lock-free by design — the clock
  // sits on every request's hot path, so its entire state is one atomic.
  std::atomic<uint64_t> now_{0};
};

// Deadline convention shared by everything tick-based: 0 means "no
// deadline", any other value is an absolute tick past which the work has
// outlived its usefulness. A deadline exactly equal to `now` has not
// expired yet — budgets of N ticks grant N full ticks.
inline bool DeadlineExpired(uint64_t deadline_tick, uint64_t now) {
  return deadline_tick != 0 && now > deadline_tick;
}

// Absolute deadline for a relative budget; a zero budget means none.
inline uint64_t DeadlineFromBudget(uint64_t now, uint64_t budget_ticks) {
  return budget_ticks == 0 ? 0 : now + budget_ticks;
}

// Byte-stable rendering of an expiry decision, for response error strings.
// Deliberately names only the deadline: the tick at which expiry was
// *observed* depends on worker interleaving, and these strings end up in
// transcripts that must compare byte-equal across worker counts.
std::string DescribeExpiry(uint64_t deadline_tick);

}  // namespace groupsa

#endif  // GROUPSA_COMMON_VIRTUAL_CLOCK_H_
