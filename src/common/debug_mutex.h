#ifndef GROUPSA_COMMON_DEBUG_MUTEX_H_
#define GROUPSA_COMMON_DEBUG_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace groupsa {

// ---------------------------------------------------------------------------
// DebugMutex — the repo's only sanctioned mutex (DESIGN.md §14).
//
// In debug and sanitizer builds every acquisition feeds a lock-order
// deadlock detector (lockdep below): a per-thread held-lock stack plus one
// global acquisition-order graph over lock *classes* (the name passed at
// construction — every Slot mutex is one class, every queue mutex another).
// Acquiring B while holding A records the edge A -> B; the first acquisition
// that would close a cycle in that graph — the classic two-thread A/B B/A
// inversion, in either thread, even when the timing never actually
// deadlocks — aborts with both conflicting stacks: the acquiring thread's
// current held stack and the recorded stack that created the reverse path.
// Same-class nesting (two Slot mutexes at once) and same-instance recursion
// are reported too: both are deadlocks waiting for the right interleaving.
//
// In release builds (NDEBUG, unless GROUPSA_DEBUG_MUTEX_FORCE is defined —
// the sanitizer CI trees force it on) all of this compiles away: DebugMutex
// is exactly a std::mutex behind inline forwarders, with no extra members —
// static_assert'd in debug_mutex.cc and bench-parity-gated by the `locks`
// CI lane running bench_serving against the release tree.
//
// try_lock deliberately skips the order check: acquiring out of order via a
// try lock is the standard deadlock-*avoidance* idiom (back off on failure),
// so only the recursion check applies there.
//
// The detector itself synchronizes with a plain std::mutex — this file is
// the one place the naked-mutex lint rule allows one, precisely so nothing
// else in src/ can bypass the detector.
// ---------------------------------------------------------------------------

#if !defined(NDEBUG) || defined(GROUPSA_DEBUG_MUTEX_FORCE)
#define GROUPSA_DEBUG_MUTEX_ENABLED 1
#else
#define GROUPSA_DEBUG_MUTEX_ENABLED 0
#endif

namespace lockdep {

// How an acquisition participates in the order graph.
enum class AcquireKind {
  kExclusive,  // lock(): recursion check + order check + edge record
  kShared,     // lock_shared(): same ordering rules as exclusive
  kTry,        // try_lock() success: recursion check only, no order check
};

// Detector entry points, called by DebugMutex/DebugSharedMutex in debug
// builds. `instance` identifies the object (recursion check), `name` its
// class (order graph). OnAcquire runs BEFORE the native lock is taken, so a
// would-be deadlock reports instead of hanging the process.
void OnAcquire(const void* instance, const char* name, AcquireKind kind);
void OnRelease(const void* instance);

// True when the detector is compiled in (debug / forced builds).
constexpr bool Enabled() { return GROUPSA_DEBUG_MUTEX_ENABLED != 0; }

// ---- Introspection & test hooks (no-ops / empty when disabled). ----

// Lock-class names this thread currently holds, in acquisition order.
std::vector<std::string> HeldLockNames();

struct GraphStats {
  int classes = 0;  // distinct lock-class names seen
  int edges = 0;    // distinct acquired-before edges recorded
};
GraphStats Stats();

// When set, a detected violation calls `handler(report)` and resumes
// instead of aborting; pass nullptr to restore the abort. Test-only.
void SetFailureHandlerForTest(std::function<void(const std::string&)> handler);

// Clears the order graph and class registry. Test-only; the caller must be
// the only thread touching locks.
void ResetGraphForTest();

}  // namespace lockdep

// Drop-in std::mutex replacement. Satisfies Lockable, so std::lock_guard,
// std::unique_lock and std::scoped_lock all work unchanged; waiting uses
// DebugCondVar below (std::condition_variable requires a bare std::mutex).
class GROUPSA_CAPABILITY("mutex") DebugMutex {
 public:
  // The name is the lock *class* for the order graph and for every report;
  // it must be a string literal (the detector keeps the pointer). Style:
  // "<subsystem>.<role>", e.g. "serve.queue".
  DebugMutex() : DebugMutex("unnamed") {}
  explicit DebugMutex(const char* name)
#if GROUPSA_DEBUG_MUTEX_ENABLED
      : name_(name)
#endif
  {
    (void)name;
  }
  DebugMutex(const DebugMutex&) = delete;
  DebugMutex& operator=(const DebugMutex&) = delete;

  void lock() GROUPSA_ACQUIRE() {
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnAcquire(this, name_, lockdep::AcquireKind::kExclusive);
#endif
    mu_.lock();
  }

  void unlock() GROUPSA_RELEASE() {
    mu_.unlock();
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnRelease(this);
#endif
  }

  bool try_lock() GROUPSA_TRY_ACQUIRE(true) {
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnAcquire(this, name_, lockdep::AcquireKind::kTry);
    if (mu_.try_lock()) return true;
    lockdep::OnRelease(this);
    return false;
#else
    return mu_.try_lock();
#endif
  }

  // The wrapped mutex, for DebugCondVar's adopt-and-wait (and nothing else:
  // locking through native() bypasses the detector).
  std::mutex& native() { return mu_; }

  const char* name() const {
#if GROUPSA_DEBUG_MUTEX_ENABLED
    return name_;
#else
    return "";
#endif
  }

 private:
  std::mutex mu_;
#if GROUPSA_DEBUG_MUTEX_ENABLED
  const char* name_;
#endif
};

// Drop-in std::shared_mutex replacement (the inference engine's
// representation cache is reader-heavy). Shared acquisitions follow the same
// ordering rules as exclusive ones: a shared/exclusive inversion between two
// threads deadlocks just as hard.
class GROUPSA_CAPABILITY("shared_mutex") DebugSharedMutex {
 public:
  DebugSharedMutex() : DebugSharedMutex("unnamed") {}
  explicit DebugSharedMutex(const char* name)
#if GROUPSA_DEBUG_MUTEX_ENABLED
      : name_(name)
#endif
  {
    (void)name;
  }
  DebugSharedMutex(const DebugSharedMutex&) = delete;
  DebugSharedMutex& operator=(const DebugSharedMutex&) = delete;

  void lock() GROUPSA_ACQUIRE() {
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnAcquire(this, name_, lockdep::AcquireKind::kExclusive);
#endif
    mu_.lock();
  }
  void unlock() GROUPSA_RELEASE() {
    mu_.unlock();
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnRelease(this);
#endif
  }
  bool try_lock() GROUPSA_TRY_ACQUIRE(true) {
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnAcquire(this, name_, lockdep::AcquireKind::kTry);
    if (mu_.try_lock()) return true;
    lockdep::OnRelease(this);
    return false;
#else
    return mu_.try_lock();
#endif
  }

  void lock_shared() GROUPSA_ACQUIRE_SHARED() {
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnAcquire(this, name_, lockdep::AcquireKind::kShared);
#endif
    mu_.lock_shared();
  }
  void unlock_shared() GROUPSA_RELEASE_SHARED() {
    mu_.unlock_shared();
#if GROUPSA_DEBUG_MUTEX_ENABLED
    lockdep::OnRelease(this);
#endif
  }

  const char* name() const {
#if GROUPSA_DEBUG_MUTEX_ENABLED
    return name_;
#else
    return "";
#endif
  }

 private:
  std::shared_mutex mu_;
#if GROUPSA_DEBUG_MUTEX_ENABLED
  const char* name_;
#endif
};

// Condition variable over DebugMutex. std::condition_variable only waits on
// std::unique_lock<std::mutex>, so each wait adopts the wrapped native
// mutex for the duration of the block and releases the adoption before
// returning — the unique_lock<DebugMutex> the caller holds stays the owner
// throughout. The held-lock stack deliberately keeps the mutex across the
// wait: the blocked thread acquires nothing while parked, and on wake it
// holds the mutex again, so the lexical scope the annotations describe is
// exactly what the detector sees.
class DebugCondVar {
 public:
  DebugCondVar() = default;
  DebugCondVar(const DebugCondVar&) = delete;
  DebugCondVar& operator=(const DebugCondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(std::unique_lock<DebugMutex>& lock) {
    std::unique_lock<std::mutex> native(lock.mutex()->native(),
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Predicate>
  void wait(std::unique_lock<DebugMutex>& lock, Predicate pred) {
    while (!pred()) wait(lock);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(std::unique_lock<DebugMutex>& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    std::unique_lock<std::mutex> native(lock.mutex()->native(),
                                        std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, dur);
    native.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace groupsa

#endif  // GROUPSA_COMMON_DEBUG_MUTEX_H_
