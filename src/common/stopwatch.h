#ifndef GROUPSA_COMMON_STOPWATCH_H_
#define GROUPSA_COMMON_STOPWATCH_H_

#include <chrono>

namespace groupsa {

// Wall-clock stopwatch used by trainers and experiment harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace groupsa

#endif  // GROUPSA_COMMON_STOPWATCH_H_
