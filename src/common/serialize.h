#ifndef GROUPSA_COMMON_SERIALIZE_H_
#define GROUPSA_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace groupsa {

// Little-endian append-only byte buffer used to build checkpoint sections in
// memory before they hit disk. Keeping serialization off the FILE* means a
// section is either fully present (with a matching CRC) or absent — there is
// no half-written in-memory state to reason about.
class ByteWriter {
 public:
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }
  void WriteFloats(const float* data, size_t count) {
    Append(data, count * sizeof(float));
  }
  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }
  // Appends raw bytes with no length prefix (pre-framed payloads).
  void WriteRaw(const std::string& s) { Append(s.data(), s.size()); }

  const std::string& bytes() const { return bytes_; }
  std::string Release() { return std::move(bytes_); }

 private:
  void Append(const void* data, size_t len) {
    bytes_.append(static_cast<const char*>(data), len);
  }
  std::string bytes_;
};

// Bounds-checked reader over a serialized section. Every accessor returns
// false on overrun instead of reading past the end, so truncated files fail
// loudly with a Status instead of feeding garbage downstream.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : data_(static_cast<const char*>(data)), len_(len) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ReadU32(uint32_t* v) { return Copy(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return Copy(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return Copy(v, sizeof(*v)); }
  bool ReadDouble(double* v) { return Copy(v, sizeof(*v)); }
  bool ReadFloats(float* data, size_t count) {
    return Copy(data, count * sizeof(float));
  }
  bool ReadString(std::string* s) {
    uint32_t n = 0;
    if (!ReadU32(&n) || n > Remaining()) return false;
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  // Copies `n` raw bytes (no length prefix) into `s`.
  bool ReadRaw(size_t n, std::string* s) {
    if (n > Remaining()) return false;
    s->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  // Advances past `n` bytes without copying.
  bool Skip(size_t n) {
    if (n > Remaining()) return false;
    pos_ += n;
    return true;
  }

  size_t Remaining() const { return len_ - pos_; }
  size_t Position() const { return pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  bool Copy(void* out, size_t n) {
    if (n > Remaining()) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace groupsa

#endif  // GROUPSA_COMMON_SERIALIZE_H_
