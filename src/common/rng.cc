#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace groupsa {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() { return static_cast<float>(NextDouble()); }

int Rng::NextInt(int bound) {
  GROUPSA_CHECK(bound > 0, "NextInt bound must be positive");
  return static_cast<int>(NextU64() % static_cast<uint64_t>(bound));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextWeighted(const std::vector<double>& weights) {
  GROUPSA_CHECK(!weights.empty(), "NextWeighted requires weights");
  double total = 0.0;
  for (double w : weights) {
    GROUPSA_DCHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  GROUPSA_CHECK(total > 0.0, "weights must have positive sum");
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  GROUPSA_CHECK(k >= 0 && k <= n, "SampleWithoutReplacement requires k <= n");
  // Partial Fisher-Yates over an index array; O(n) setup, fine at our scales.
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + NextInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Rng::StreamSeed(uint64_t seed, uint64_t stream) {
  // One splitmix64 mix of the stream index offset by the golden-ratio
  // increment, xor-folded into the seed: distinct streams land in distinct,
  // well-separated splitmix sequences.
  uint64_t state = seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return SplitMix64(&state);
}

std::vector<Rng> Rng::Split(uint64_t seed, int n) {
  GROUPSA_CHECK(n >= 0, "Split requires a non-negative stream count");
  std::vector<Rng> streams;
  streams.reserve(n);
  for (int i = 0; i < n; ++i)
    streams.emplace_back(StreamSeed(seed, static_cast<uint64_t>(i)));
  return streams;
}

}  // namespace groupsa
