#ifndef GROUPSA_COMMON_MACROS_H_
#define GROUPSA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// GROUPSA_CHECK aborts with a message when `condition` is false. It is meant
// for programmer errors (broken invariants, out-of-range indices) that should
// never occur in a correct program; recoverable errors (I/O, parsing) return
// groupsa::Status instead.
#define GROUPSA_CHECK(condition, message)                                    \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n  %s\n", __FILE__,    \
                   __LINE__, #condition, message);                           \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

// Cheaper variant compiled out of release builds; use on hot paths.
#ifdef NDEBUG
#define GROUPSA_DCHECK(condition, message) \
  do {                                     \
  } while (false)
#else
#define GROUPSA_DCHECK(condition, message) GROUPSA_CHECK(condition, message)
#endif

// ---------------------------------------------------------------------------
// Concurrency-contract annotations (DESIGN.md §14).
//
// These document which mutex protects which state, as declarations the
// toolchain can check rather than comments that rot. They are enforced twice:
//
//   * textually, on any compiler, by tools/groupsa_lint's lock-discipline
//     rules (analysis/lock_lint.h), which is what gates CI on this gcc-only
//     container;
//   * by `clang++ -Wthread-safety` when clang is available — under __clang__
//     the macros expand to the Clang thread-safety attributes.
//
// Vocabulary:
//   GROUPSA_CAPABILITY(name)       on a mutex class: it is a lockable
//                                  capability (DebugMutex carries this).
//   GROUPSA_GUARDED_BY(mu)         on a data member: reads/writes require
//                                  holding `mu`. The lint checks every write
//                                  in a .cc sits in a lexical lock scope (or
//                                  a GROUPSA_REQUIRES function) naming `mu`.
//   GROUPSA_REQUIRES(mu, ...)      on a function: callers already hold the
//                                  listed mutexes (the *Locked helper idiom).
//   GROUPSA_EXCLUDES(mu, ...)      on a function: callers must NOT hold the
//                                  listed mutexes (it acquires them itself).
//   GROUPSA_ACQUIRED_BEFORE(...)   on a mutex member: when held together
//                                  with the listed mutexes, this one is
//                                  acquired first. The edges must form a DAG
//                                  (lock-order-cycle lint rule) and are the
//                                  documented counterpart of the runtime
//                                  order graph in common/debug_mutex.h.
//   GROUPSA_NOT_GUARDED(why)       on a data member of a mutex-owning class:
//                                  deliberately unguarded, with the reason
//                                  (immutable after publication, Start/Stop
//                                  protocol, internally synchronized). The
//                                  lint requires every non-atomic, non-const
//                                  member of a mutex-owning class to carry
//                                  either this or GROUPSA_GUARDED_BY.
//
// Lock-acquisition annotations for wrapper types (used by DebugMutex):
//   GROUPSA_ACQUIRE / GROUPSA_RELEASE / GROUPSA_TRY_ACQUIRE
//   GROUPSA_ACQUIRE_SHARED / GROUPSA_RELEASE_SHARED
#if defined(__clang__)
#define GROUPSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GROUPSA_THREAD_ANNOTATION(x)
#endif

#define GROUPSA_CAPABILITY(name) GROUPSA_THREAD_ANNOTATION(capability(name))
#define GROUPSA_GUARDED_BY(mu) GROUPSA_THREAD_ANNOTATION(guarded_by(mu))
#define GROUPSA_REQUIRES(...) \
  GROUPSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GROUPSA_EXCLUDES(...) \
  GROUPSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GROUPSA_ACQUIRED_BEFORE(...) \
  GROUPSA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GROUPSA_ACQUIRE(...) \
  GROUPSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GROUPSA_RELEASE(...) \
  GROUPSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GROUPSA_TRY_ACQUIRE(...) \
  GROUPSA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GROUPSA_ACQUIRE_SHARED(...) \
  GROUPSA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GROUPSA_RELEASE_SHARED(...) \
  GROUPSA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
// Documentation-only (textual lint); expands to nothing on every compiler.
#define GROUPSA_NOT_GUARDED(why)

#endif  // GROUPSA_COMMON_MACROS_H_
