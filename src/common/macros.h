#ifndef GROUPSA_COMMON_MACROS_H_
#define GROUPSA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// GROUPSA_CHECK aborts with a message when `condition` is false. It is meant
// for programmer errors (broken invariants, out-of-range indices) that should
// never occur in a correct program; recoverable errors (I/O, parsing) return
// groupsa::Status instead.
#define GROUPSA_CHECK(condition, message)                                    \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n  %s\n", __FILE__,    \
                   __LINE__, #condition, message);                           \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

// Cheaper variant compiled out of release builds; use on hot paths.
#ifdef NDEBUG
#define GROUPSA_DCHECK(condition, message) \
  do {                                     \
  } while (false)
#else
#define GROUPSA_DCHECK(condition, message) GROUPSA_CHECK(condition, message)
#endif

#endif  // GROUPSA_COMMON_MACROS_H_
