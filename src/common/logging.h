#ifndef GROUPSA_COMMON_LOGGING_H_
#define GROUPSA_COMMON_LOGGING_H_

#include <string>

namespace groupsa {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the minimum level emitted to stderr. Default is kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits `message` to stderr with a level prefix if `level` is at or above the
// configured minimum. Thread-compatible (experiments here are single-threaded
// per process).
void Log(LogLevel level, const std::string& message);

void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace groupsa

#endif  // GROUPSA_COMMON_LOGGING_H_
