#include "pipeline/experiment.h"

#include <cstdio>
#include <cstring>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/tfidf.h"

namespace groupsa::pipeline {

ExperimentData PrepareData(const data::SyntheticWorldConfig& config,
                           const RunOptions& options) {
  ExperimentData data;
  data.world = data::GenerateWorld(config);
  Rng rng(options.seed);
  data.ui = data::SplitEdges(data.world.dataset.user_item, 0.2, 0.1, &rng);
  data.gi =
      data::GlobalSplitEdges(data.world.dataset.group_item, 0.2, 0.1, &rng);
  const int num_users = data.world.dataset.num_users;
  const int num_items = data.world.dataset.num_items;
  const int num_groups = data.world.dataset.groups.num_groups();
  data.ui_train = data::InteractionMatrix(num_users, num_items, data.ui.train);
  data.gi_train =
      data::InteractionMatrix(num_groups, num_items, data.gi.train);
  data.ui_all = data.world.dataset.UserItemMatrix();
  data.gi_all = data.world.dataset.GroupItemMatrix();
  data.user_cases = eval::BuildRankingCases(data.ui.test, data.ui_all,
                                            options.num_candidates, &rng);
  data.group_cases = eval::BuildRankingCases(data.gi.test, data.gi_all,
                                             options.num_candidates, &rng);
  return data;
}

eval::EvalResult EvalUser(const ExperimentData& data,
                          const eval::Scorer& scorer,
                          const RunOptions& options) {
  return eval::EvaluateRanking(data.user_cases, scorer, options.ks);
}

eval::EvalResult EvalGroup(const ExperimentData& data,
                           const eval::Scorer& scorer,
                           const RunOptions& options) {
  return eval::EvaluateRanking(data.group_cases, scorer, options.ks);
}

core::ModelData BuildModelData(const ExperimentData& data,
                               const core::GroupSaConfig& config) {
  core::ModelData md;
  md.groups = &data.world.dataset.groups;
  md.social = &data.world.dataset.social;
  md.top_items = data::TopItemsPerUser(data.ui_train, config.top_h);
  md.top_friends =
      data::TopFriendsPerUser(data.world.dataset.social, config.top_h);
  return md;
}

std::unique_ptr<core::GroupSaModel> TrainGroupSa(
    const core::GroupSaConfig& config, const ExperimentData& data,
    const RunOptions& options, Rng* rng, const core::ModelData& model_data) {
  core::GroupSaConfig cfg = config;
  cfg.user_epochs = options.user_epochs;
  cfg.group_epochs = options.group_epochs;
  auto model = std::make_unique<core::GroupSaModel>(
      cfg, data.num_users(), data.num_items(), model_data, rng);
  core::Trainer trainer(model.get(), data.ui.train, data.gi.train,
                        &data.ui_train, &data.gi_train, rng);
  trainer.Fit();
  return model;
}

ModelScores ScoreGroupSa(core::GroupSaModel* model,
                         const ExperimentData& data, const RunOptions& options,
                         const std::string& name) {
  ModelScores scores;
  scores.name = name;
  scores.user = EvalUser(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return model->ScoreItemsForUser(entity, items);
      },
      options);
  scores.group = EvalGroup(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return model->ScoreItemsForGroup(entity, items);
      },
      options);
  return scores;
}

ModelScores RunPopularity(const ExperimentData& data,
                          const RunOptions& options) {
  baselines::Popularity pop;
  pop.Fit({&data.ui.train, &data.gi.train}, data.num_items());
  const eval::Scorer scorer = [&](int32_t,
                                  const std::vector<data::ItemId>& items) {
    return pop.ScoreItems(items);
  };
  ModelScores scores;
  scores.name = "Pop";
  scores.user = EvalUser(data, scorer, options);
  scores.group = EvalGroup(data, scorer, options);
  return scores;
}

namespace {

baselines::BprFitOptions BaselineFit(const RunOptions& options) {
  baselines::BprFitOptions fit;
  fit.epochs = options.baseline_epochs;
  return fit;
}

}  // namespace

ModelScores RunNcf(const ExperimentData& data, const RunOptions& options,
                   Rng* rng) {
  // NCF treats groups as virtual users: one instance per id space, trained
  // on that space's interactions alone.
  baselines::Ncf::Options ncf_options;
  baselines::Ncf user_model(ncf_options, data.num_users(), data.num_items(),
                            rng);
  user_model.Fit(data.ui.train, &data.ui_train, BaselineFit(options), rng);
  baselines::Ncf group_model(ncf_options, data.num_groups(), data.num_items(),
                             rng);
  group_model.Fit(data.gi.train, &data.gi_train, BaselineFit(options), rng);

  ModelScores scores;
  scores.name = "NCF";
  scores.user = EvalUser(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return user_model.ScoreItems(entity, items);
      },
      options);
  scores.group = EvalGroup(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return group_model.ScoreItems(entity, items);
      },
      options);
  return scores;
}

ModelScores RunAgree(const ExperimentData& data, const RunOptions& options,
                     Rng* rng) {
  baselines::Agree::Options agree_options;
  baselines::Agree model(agree_options, data.num_users(), data.num_items(),
                         data.num_groups(), &data.world.dataset.groups, rng);
  model.Fit(data.ui.train, data.gi.train, &data.ui_train, &data.gi_train,
            BaselineFit(options), rng);
  ModelScores scores;
  scores.name = "AGREE";
  scores.user = EvalUser(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForUser(entity, items);
      },
      options);
  scores.group = EvalGroup(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForGroup(entity, items);
      },
      options);
  return scores;
}

ModelScores RunSigr(const ExperimentData& data, const RunOptions& options,
                    Rng* rng) {
  baselines::Sigr::Options sigr_options;
  baselines::Sigr model(sigr_options, data.num_users(), data.num_items(),
                        &data.world.dataset.groups, &data.world.dataset.social,
                        rng);
  model.Fit(data.ui.train, data.gi.train, &data.ui_train, &data.gi_train,
            BaselineFit(options), rng);
  ModelScores scores;
  scores.name = "SIGR";
  scores.user = EvalUser(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForUser(entity, items);
      },
      options);
  scores.group = EvalGroup(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForGroup(entity, items);
      },
      options);
  return scores;
}

ModelScores RunStaticAgg(core::GroupSaModel* model,
                         const ExperimentData& data, const RunOptions& options,
                         baselines::ScoreAggregation aggregation) {
  baselines::StaticAggRecommender recommender(model, aggregation);
  ModelScores scores;
  scores.name = baselines::ToString(aggregation);
  scores.group = EvalGroup(
      data,
      [&](int32_t entity, const std::vector<data::ItemId>& items) {
        return recommender.ScoreItemsForGroup(entity, items);
      },
      options);
  return scores;
}

void PrintOverallTable(const std::string& title,
                       const std::vector<ModelScores>& rows,
                       const RunOptions& options) {
  std::printf("\n=== %s ===\n", title.c_str());
  const ModelScores& reference = rows.back();  // GroupSA by convention
  for (int k : options.ks) {
    std::printf("--- K=%d ---\n", k);
    std::printf("%-12s %8s %8s %8s | %8s %8s %8s\n", "Model", "uHR",
                "uNDCG", "uDlt%", "gHR", "gNDCG", "gDlt%");
    for (const ModelScores& row : rows) {
      std::string user_part;
      if (row.user.num_cases > 0) {
        const double delta =
            row.user.HitRatio(k) > 0.0
                ? 100.0 * (reference.user.HitRatio(k) / row.user.HitRatio(k) -
                           1.0)
                : 0.0;
        user_part = StrFormat("%8.4f %8.4f %8.2f", row.user.HitRatio(k),
                              row.user.Ndcg(k), delta);
      } else {
        user_part = StrFormat("%8s %8s %8s", "-", "-", "-");
      }
      const double group_delta =
          row.group.HitRatio(k) > 0.0
              ? 100.0 * (reference.group.HitRatio(k) / row.group.HitRatio(k) -
                         1.0)
              : 0.0;
      std::printf("%-12s %s | %8.4f %8.4f %8.2f\n", row.name.c_str(),
                  user_part.c_str(), row.group.HitRatio(k), row.group.Ndcg(k),
                  group_delta);
    }
  }
  std::fflush(stdout);
}

void PrintGroupTable(const std::string& title,
                     const std::vector<ModelScores>& rows,
                     const RunOptions& options) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-16s", "Model");
  for (int k : options.ks) std::printf(" %7s@%-2d %6s@%-2d", "HR", k, "NDCG", k);
  std::printf("\n");
  for (const ModelScores& row : rows) {
    std::printf("%-16s", row.name.c_str());
    for (int k : options.ks) {
      std::printf("   %8.4f   %8.4f", row.group.HitRatio(k),
                  row.group.Ndcg(k));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

RunOptions ParseBenchArgs(int argc, char** argv, RunOptions defaults) {
  RunOptions options = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      options = options.Quick();
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--candidates=", 13) == 0) {
      options.num_candidates = std::atoi(arg + 13);
    } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
      const int e = std::atoi(arg + 9);
      options.user_epochs = e;
      options.group_epochs = e;
      options.baseline_epochs = e;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.threads = std::atoi(arg + 10);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --quick --seed=N "
                   "--candidates=N --epochs=N --threads=N)\n",
                   arg);
    }
  }
  if (options.threads > 0) parallel::SetGlobalThreads(options.threads);
  return options;
}

}  // namespace groupsa::pipeline
