#ifndef GROUPSA_PIPELINE_EXPERIMENT_H_
#define GROUPSA_PIPELINE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/agree.h"
#include "baselines/ncf.h"
#include "baselines/popularity.h"
#include "baselines/sigr.h"
#include "baselines/static_agg.h"
#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace groupsa::pipeline {

// Shared experiment plumbing used by the bench binaries (one per paper table
// / figure) and the examples: world generation, splitting, candidate
// sampling, model training, and evaluation, all seed-deterministic.

// Options shared by every experiment run.
struct RunOptions {
  int num_candidates = 100;      // paper: 100 negatives per test case
  std::vector<int> ks = {5, 10};  // paper cutoffs
  int user_epochs = 10;
  int group_epochs = 10;
  int baseline_epochs = 10;  // joint epochs for NCF/AGREE/SIGR
  uint64_t seed = 1;
  // Global pool width for training and evaluation (--threads=N); 0 keeps
  // the current pool (GROUPSA_THREADS env default). Metrics are
  // bit-identical at any width; only wall-clock changes.
  int threads = 0;

  // Shrinks everything for CI smoke runs (--quick flag of the benches).
  RunOptions Quick() const {
    RunOptions q = *this;
    q.user_epochs = 2;
    q.group_epochs = 2;
    q.baseline_epochs = 2;
    return q;
  }
};

// The per-(dataset, seed) data bundle every model trains and evaluates on.
struct ExperimentData {
  data::SyntheticWorld world;
  data::Split ui;  // user-item: per-row 80/10/10 split
  data::Split gi;  // group-item: global split (cold groups in test)
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  data::InteractionMatrix ui_all;
  data::InteractionMatrix gi_all;
  std::vector<eval::RankingCase> user_cases;
  std::vector<eval::RankingCase> group_cases;

  int num_users() const { return world.dataset.num_users; }
  int num_items() const { return world.dataset.num_items; }
  int num_groups() const { return world.dataset.groups.num_groups(); }
};

// Generates the world (world seed comes from `config`) and derives splits,
// matrices and ranking cases from `options.seed`.
ExperimentData PrepareData(const data::SyntheticWorldConfig& config,
                           const RunOptions& options);

// User-task and group-task metrics of one model (either may be empty for
// group-only scorers).
struct ModelScores {
  std::string name;
  eval::EvalResult user;
  eval::EvalResult group;
};

// Evaluation helpers over the prepared ranking cases.
eval::EvalResult EvalUser(const ExperimentData& data,
                          const eval::Scorer& scorer,
                          const RunOptions& options);
eval::EvalResult EvalGroup(const ExperimentData& data,
                           const eval::Scorer& scorer,
                           const RunOptions& options);

// ---------------- Model train-and-score helpers ----------------

// Builds the ModelData view (group table, social graph, TF-IDF Top-H lists
// from the *training* interactions) for a GroupSA variant.
core::ModelData BuildModelData(const ExperimentData& data,
                               const core::GroupSaConfig& config);

// Trains a GroupSA variant and returns the live model (for static
// aggregation reuse and introspection).
std::unique_ptr<core::GroupSaModel> TrainGroupSa(
    const core::GroupSaConfig& config, const ExperimentData& data,
    const RunOptions& options, Rng* rng, const core::ModelData& model_data);

// Scores a trained GroupSA on both tasks.
ModelScores ScoreGroupSa(core::GroupSaModel* model, const ExperimentData& data,
                         const RunOptions& options, const std::string& name);

// Baselines: train + evaluate in one call.
ModelScores RunPopularity(const ExperimentData& data,
                          const RunOptions& options);
ModelScores RunNcf(const ExperimentData& data, const RunOptions& options,
                   Rng* rng);
ModelScores RunAgree(const ExperimentData& data, const RunOptions& options,
                     Rng* rng);
ModelScores RunSigr(const ExperimentData& data, const RunOptions& options,
                    Rng* rng);
// Static score aggregation over an already-trained GroupSA.
ModelScores RunStaticAgg(core::GroupSaModel* model, const ExperimentData& data,
                         const RunOptions& options,
                         baselines::ScoreAggregation aggregation);

// ---------------- Table rendering ----------------

// Prints a paper-style table: one row per model, HR/NDCG at each cutoff for
// the user and group tasks, plus the Delta% of `reference` (last row's
// group HR) over each row, mirroring Tables II/III.
void PrintOverallTable(const std::string& title,
                       const std::vector<ModelScores>& rows,
                       const RunOptions& options);

// Prints group-task-only rows (Figure 3 / Tables V-IX shapes).
void PrintGroupTable(const std::string& title,
                     const std::vector<ModelScores>& rows,
                     const RunOptions& options);

// Parses the common bench flags: --quick, --seed=N, --candidates=N.
RunOptions ParseBenchArgs(int argc, char** argv, RunOptions defaults);

}  // namespace groupsa::pipeline

#endif  // GROUPSA_PIPELINE_EXPERIMENT_H_
