#ifndef GROUPSA_AUTOGRAD_OPS_H_
#define GROUPSA_AUTOGRAD_OPS_H_

#include <unordered_set>
#include <vector>

#include "autograd/tape.h"
#include "autograd/tensor.h"
#include "common/rng.h"

namespace groupsa::ag {

// Differentiable operations. Every function computes the forward value
// eagerly and, when any input requires gradients, records the matching
// backward closure on `tape`. Shapes are CHECKed.
//
// Passing tape == nullptr runs every op in inference mode: no closures are
// recorded and outputs never require gradients, which makes evaluation-time
// scoring allocation-light and side-effect free.

// out = op(a) * op(b) with optional transposes.
TensorPtr MatMul(Tape* tape, const TensorPtr& a, const TensorPtr& b,
                 bool transpose_a = false, bool transpose_b = false);

// Element-wise; equal shapes.
TensorPtr Add(Tape* tape, const TensorPtr& a, const TensorPtr& b);
TensorPtr Sub(Tape* tape, const TensorPtr& a, const TensorPtr& b);
TensorPtr Mul(Tape* tape, const TensorPtr& a, const TensorPtr& b);

// out = factor * a.
TensorPtr Scale(Tape* tape, const TensorPtr& a, float factor);

// Adds a 1 x d bias row to every row of x (n x d).
TensorPtr AddBias(Tape* tape, const TensorPtr& x, const TensorPtr& bias);

// Tiles a 1 x d row into n identical rows.
TensorPtr BroadcastRow(Tape* tape, const TensorPtr& row, int n);

// Horizontal concatenation (equal row counts).
TensorPtr ConcatCols(Tape* tape, const std::vector<TensorPtr>& parts);

// Vertical concatenation (equal col counts).
TensorPtr ConcatRows(Tape* tape, const std::vector<TensorPtr>& parts);

// Rows [start, start+count) of x as a new tensor.
TensorPtr SliceRows(Tape* tape, const TensorPtr& x, int start, int count);

// Embedding lookup: one output row per id in `row_ids`. If `touched_rows` is
// non-null, the forward pass inserts every id into it (used by sparse
// optimizers to restrict their update to touched embedding rows).
TensorPtr GatherRows(Tape* tape, const TensorPtr& table,
                     const std::vector<int>& row_ids,
                     std::unordered_set<int>* touched_rows = nullptr);

// Matrix transpose.
TensorPtr Transpose(Tape* tape, const TensorPtr& x);

// Activations.
TensorPtr Relu(Tape* tape, const TensorPtr& x);
TensorPtr Sigmoid(Tape* tape, const TensorPtr& x);
TensorPtr Tanh(Tape* tape, const TensorPtr& x);
// log(sigmoid(x)), computed stably.
TensorPtr LogSigmoid(Tape* tape, const TensorPtr& x);

// Row-wise softmax. If `additive_mask` is non-null it is added to the logits
// first; -infinity entries force a weight of exactly zero (Eq. 4-5 of the
// paper). Each row must keep at least one unmasked entry.
TensorPtr SoftmaxRows(Tape* tape, const TensorPtr& x,
                      const tensor::Matrix* additive_mask = nullptr);

// Per-row layer normalization with learned gain/bias (1 x d each).
TensorPtr LayerNorm(Tape* tape, const TensorPtr& x, const TensorPtr& gain,
                    const TensorPtr& bias, float epsilon = 1e-5f);

// Inverted dropout; identity when !training or ratio == 0.
TensorPtr Dropout(Tape* tape, const TensorPtr& x, float ratio, bool training,
                  Rng* rng);

// Reductions to 1 x 1.
TensorPtr SumAll(Tape* tape, const TensorPtr& x);
TensorPtr MeanAll(Tape* tape, const TensorPtr& x);

// BPR pairwise ranking loss (Eq. 21 / 24 without the L2 term, which the
// optimizer applies as weight decay): sum_i -ln sigmoid(pos - neg_i).
// `pos` is 1 x 1; `negs` is n x 1.
TensorPtr BprLoss(Tape* tape, const TensorPtr& pos, const TensorPtr& negs);

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_OPS_H_
