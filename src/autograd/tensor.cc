#include "autograd/tensor.h"

#include "autograd/grad_shard.h"

namespace groupsa::ag {

tensor::Matrix& Tensor::grad() {
  if (tensor::Matrix* redirected = GradShard::Redirect(this))
    return *redirected;
  if (!grad_.SameShape(value_)) grad_.Resize(value_.rows(), value_.cols());
  return grad_;
}

TensorPtr Constant(tensor::Matrix value) {
  return std::make_shared<Tensor>(std::move(value), /*requires_grad=*/false);
}

TensorPtr Variable(tensor::Matrix value) {
  return std::make_shared<Tensor>(std::move(value), /*requires_grad=*/true);
}

TensorPtr Parameter(int rows, int cols) {
  return Variable(tensor::Matrix(rows, cols));
}

}  // namespace groupsa::ag
