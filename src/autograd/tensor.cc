#include "autograd/tensor.h"

namespace groupsa::ag {

TensorPtr Constant(tensor::Matrix value) {
  return std::make_shared<Tensor>(std::move(value), /*requires_grad=*/false);
}

TensorPtr Variable(tensor::Matrix value) {
  return std::make_shared<Tensor>(std::move(value), /*requires_grad=*/true);
}

TensorPtr Parameter(int rows, int cols) {
  return Variable(tensor::Matrix(rows, cols));
}

}  // namespace groupsa::ag
