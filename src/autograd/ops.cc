#include "autograd/ops.h"

#include <cmath>
#include <limits>

#include "autograd/grad_shard.h"
#include "autograd/pool.h"
#include "tensor/ops.h"

namespace groupsa::ag {
namespace {

using tensor::Matrix;

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

bool AnyRequiresGrad(std::initializer_list<const TensorPtr*> inputs) {
  for (const TensorPtr* t : inputs) {
    if ((*t)->requires_grad()) return true;
  }
  return false;
}

// Output tensor for an op. With a TensorPool active on this thread (the
// sharded training path) the tensor — value storage included — is recycled
// from previous batches and already has shape (rows, cols); without one it
// is freshly allocated with an empty value. Either way the contents are
// unspecified and the op must fully overwrite them (via CopyFrom, an *Into
// kernel, Gemm, or EnsureShape + direct writes).
TensorPtr AcquireOutput(int rows, int cols, bool requires_grad) {
  if (TensorPool* pool = TensorPool::Active())
    return pool->Acquire(rows, cols, requires_grad);
  auto out = std::make_shared<Tensor>();
  out->set_requires_grad(requires_grad);
  return out;
}

// Workspace matrix captured by backward closures (dropout masks, layer-norm
// statistics, row-sum temporaries); pooled under the same protocol.
// Contents are unspecified.
std::shared_ptr<Matrix> AcquireWorkspace(int rows, int cols) {
  if (TensorPool* pool = TensorPool::Active())
    return pool->AcquireWorkspace(rows, cols);
  return std::make_shared<Matrix>(rows, cols);
}

// Appends the structural record the graph validator consumes
// (analysis/graph_lint.h). Every op calls this once with its inputs, output
// and shape-relevant attributes; it is a no-op unless the tape records graph
// structure (debug default — see Tape::GraphRecordingDefault).
void RecordNode(Tape* tape, OpKind kind, std::vector<TensorPtr> inputs,
                const TensorPtr& out, int arg0 = 0, int arg1 = 0,
                bool flag0 = false, bool flag1 = false) {
  if (tape == nullptr || !tape->records_graph()) return;
  OpNode node;
  node.kind = kind;
  node.inputs = std::move(inputs);
  node.output = out;
  node.arg0 = arg0;
  node.arg1 = arg1;
  node.flag0 = flag0;
  node.flag1 = flag1;
  tape->RecordNode(std::move(node));
}

// Numerically stable sigmoid.
float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

// Numerically stable softplus: log(1 + exp(x)).
float Softplus(float x) {
  return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
}

}  // namespace

TensorPtr MatMul(Tape* tape, const TensorPtr& a, const TensorPtr& b,
                 bool transpose_a, bool transpose_b) {
  const int m = transpose_a ? a->cols() : a->rows();
  const int n = transpose_b ? b->rows() : b->cols();
  const bool needs_grad = tape != nullptr && AnyRequiresGrad({&a, &b});
  TensorPtr out = AcquireOutput(m, n, needs_grad);
  tensor::Gemm(a->value(), transpose_a, b->value(), transpose_b, 1.0f,
               &out->mutable_value());
  RecordNode(tape, OpKind::kMatMul, {a, b}, out, 0, 0, transpose_a,
             transpose_b);
  if (!needs_grad) return out;
  tape->Record([a, b, out, transpose_a, transpose_b]() {
    const Matrix& g = out->grad();
    // For C = op(A) op(B): dA accumulates via the matching transposed
    // product; four cases depending on the forward transpose flags.
    if (a->requires_grad()) {
      if (!transpose_a) {
        // dA = g * op(B)^T
        tensor::Gemm(g, false, b->value(), !transpose_b, 1.0f, &a->grad(),
                     /*accumulate=*/true);
      } else {
        // dA^T = g * op(B)^T  =>  dA = op(B) * g^T
        tensor::Gemm(b->value(), transpose_b, g, true, 1.0f, &a->grad(),
                     /*accumulate=*/true);
      }
    }
    if (b->requires_grad()) {
      if (!transpose_b) {
        // dB = op(A)^T * g
        tensor::Gemm(a->value(), !transpose_a, g, false, 1.0f, &b->grad(),
                     /*accumulate=*/true);
      } else {
        // dB = g^T * op(A)
        tensor::Gemm(g, true, a->value(), transpose_a, 1.0f, &b->grad(),
                     /*accumulate=*/true);
      }
    }
  });
  return out;
}

TensorPtr Add(Tape* tape, const TensorPtr& a, const TensorPtr& b) {
  GROUPSA_CHECK(a->value().SameShape(b->value()), "Add shape mismatch");
  const bool needs_grad = tape != nullptr && AnyRequiresGrad({&a, &b});
  TensorPtr out = AcquireOutput(a->rows(), a->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(a->value());
  value.AddInPlace(b->value());
  RecordNode(tape, OpKind::kAdd, {a, b}, out);
  if (!needs_grad) return out;
  tape->Record([a, b, out]() {
    if (a->requires_grad()) a->grad().AddInPlace(out->grad());
    if (b->requires_grad()) b->grad().AddInPlace(out->grad());
  });
  return out;
}

TensorPtr Sub(Tape* tape, const TensorPtr& a, const TensorPtr& b) {
  GROUPSA_CHECK(a->value().SameShape(b->value()), "Sub shape mismatch");
  const bool needs_grad = tape != nullptr && AnyRequiresGrad({&a, &b});
  TensorPtr out = AcquireOutput(a->rows(), a->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(a->value());
  value.SubInPlace(b->value());
  RecordNode(tape, OpKind::kSub, {a, b}, out);
  if (!needs_grad) return out;
  tape->Record([a, b, out]() {
    if (a->requires_grad()) a->grad().AddInPlace(out->grad());
    if (b->requires_grad()) b->grad().AxpyInPlace(-1.0f, out->grad());
  });
  return out;
}

TensorPtr Mul(Tape* tape, const TensorPtr& a, const TensorPtr& b) {
  const bool needs_grad = tape != nullptr && AnyRequiresGrad({&a, &b});
  TensorPtr out = AcquireOutput(a->rows(), a->cols(), needs_grad);
  tensor::HadamardInto(a->value(), b->value(), &out->mutable_value());
  RecordNode(tape, OpKind::kMul, {a, b}, out);
  if (!needs_grad) return out;
  tape->Record([a, b, out]() {
    // In-place accumulation, no Hadamard temporary. Bit-identical to the
    // historical temp-then-AddInPlace form: each element still computes one
    // float multiply then one float add in the same order, and this TU is
    // compiled without FMA so the two can never contract.
    const Matrix& g = out->grad();
    if (a->requires_grad()) {
      Matrix& ga = a->grad();
      const float* bv = b->value().data();
      for (int i = 0; i < g.size(); ++i) ga.data()[i] += g.data()[i] * bv[i];
    }
    if (b->requires_grad()) {
      Matrix& gb = b->grad();
      const float* av = a->value().data();
      for (int i = 0; i < g.size(); ++i) gb.data()[i] += g.data()[i] * av[i];
    }
  });
  return out;
}

TensorPtr Scale(Tape* tape, const TensorPtr& a, float factor) {
  const bool needs_grad = tape != nullptr && a->requires_grad();
  TensorPtr out = AcquireOutput(a->rows(), a->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(a->value());
  value.ScaleInPlace(factor);
  RecordNode(tape, OpKind::kScale, {a}, out);
  if (!needs_grad) return out;
  tape->Record([a, out, factor]() {
    a->grad().AxpyInPlace(factor, out->grad());
  });
  return out;
}

TensorPtr AddBias(Tape* tape, const TensorPtr& x, const TensorPtr& bias) {
  const bool needs_grad = tape != nullptr && AnyRequiresGrad({&x, &bias});
  TensorPtr out = AcquireOutput(x->rows(), x->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(x->value());
  tensor::AddRowBroadcastInPlace(&value, bias->value());
  RecordNode(tape, OpKind::kAddBias, {x, bias}, out);
  if (!needs_grad) return out;
  // The bias gradient keeps the historical sum-rows-into-a-temp-then-add
  // order: accumulating each output row directly into bias->grad() would
  // reassociate the float additions and change the rounding.
  auto ws = bias->requires_grad() ? AcquireWorkspace(1, x->cols()) : nullptr;
  tape->Record([x, bias, out, ws]() {
    if (x->requires_grad()) x->grad().AddInPlace(out->grad());
    if (bias->requires_grad()) {
      tensor::SumRowsInto(out->grad(), ws.get());
      bias->grad().AddInPlace(*ws);
    }
  });
  return out;
}

TensorPtr BroadcastRow(Tape* tape, const TensorPtr& row, int n) {
  GROUPSA_CHECK(row->rows() == 1, "BroadcastRow requires a 1 x d input");
  const bool needs_grad = tape != nullptr && row->requires_grad();
  TensorPtr out = AcquireOutput(n, row->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.EnsureShape(n, row->cols());
  for (int r = 0; r < n; ++r) value.SetRow(r, row->value().RowPtr(0));
  RecordNode(tape, OpKind::kBroadcastRow, {row}, out, n);
  if (!needs_grad) return out;
  // Same sum-into-temp-then-add ordering rationale as AddBias.
  auto ws = AcquireWorkspace(1, row->cols());
  tape->Record([row, out, ws]() {
    tensor::SumRowsInto(out->grad(), ws.get());
    row->grad().AddInPlace(*ws);
  });
  return out;
}

TensorPtr ConcatCols(Tape* tape, const std::vector<TensorPtr>& parts) {
  GROUPSA_CHECK(!parts.empty(), "ConcatCols requires inputs");
  std::vector<const Matrix*> raw;
  raw.reserve(parts.size());
  bool needs_grad = false;
  for (const TensorPtr& p : parts) {
    raw.push_back(&p->value());
    needs_grad = needs_grad || p->requires_grad();
  }
  needs_grad = needs_grad && tape != nullptr;
  int total_cols = 0;
  for (const Matrix* m : raw) total_cols += m->cols();
  TensorPtr out = AcquireOutput(raw[0]->rows(), total_cols, needs_grad);
  tensor::ConcatColsInto(raw, &out->mutable_value());
  RecordNode(tape, OpKind::kConcatCols, parts, out);
  if (!needs_grad) return out;
  tape->Record([parts, out]() {
    const Matrix& g = out->grad();
    int offset = 0;
    for (const TensorPtr& p : parts) {
      if (p->requires_grad()) {
        Matrix& pg = p->grad();
        for (int r = 0; r < pg.rows(); ++r)
          for (int c = 0; c < pg.cols(); ++c) pg.At(r, c) += g.At(r, offset + c);
      }
      offset += p->cols();
    }
  });
  return out;
}

TensorPtr ConcatRows(Tape* tape, const std::vector<TensorPtr>& parts) {
  GROUPSA_CHECK(!parts.empty(), "ConcatRows requires inputs");
  std::vector<const Matrix*> raw;
  raw.reserve(parts.size());
  bool needs_grad = false;
  for (const TensorPtr& p : parts) {
    raw.push_back(&p->value());
    needs_grad = needs_grad || p->requires_grad();
  }
  needs_grad = needs_grad && tape != nullptr;
  int total_rows = 0;
  for (const Matrix* m : raw) total_rows += m->rows();
  TensorPtr out = AcquireOutput(total_rows, raw[0]->cols(), needs_grad);
  tensor::ConcatRowsInto(raw, &out->mutable_value());
  RecordNode(tape, OpKind::kConcatRows, parts, out);
  if (!needs_grad) return out;
  tape->Record([parts, out]() {
    const Matrix& g = out->grad();
    int offset = 0;
    for (const TensorPtr& p : parts) {
      if (p->requires_grad()) {
        Matrix& pg = p->grad();
        for (int r = 0; r < pg.rows(); ++r)
          for (int c = 0; c < pg.cols(); ++c) pg.At(r, c) += g.At(offset + r, c);
      }
      offset += p->rows();
    }
  });
  return out;
}

TensorPtr SliceRows(Tape* tape, const TensorPtr& x, int start, int count) {
  GROUPSA_CHECK(start >= 0 && count >= 0 && start + count <= x->rows(),
                "SliceRows range out of bounds");
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(count, x->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.EnsureShape(count, x->cols());
  for (int r = 0; r < count; ++r) value.SetRow(r, x->value().RowPtr(start + r));
  RecordNode(tape, OpKind::kSliceRows, {x}, out, start, count);
  if (!needs_grad) return out;
  tape->Record([x, out, start, count]() {
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    for (int r = 0; r < count; ++r)
      for (int c = 0; c < g.cols(); ++c) xg.At(start + r, c) += g.At(r, c);
  });
  return out;
}

TensorPtr GatherRows(Tape* tape, const TensorPtr& table,
                     const std::vector<int>& row_ids,
                     std::unordered_set<int>* touched_rows) {
  const bool needs_grad = tape != nullptr && table->requires_grad();
  TensorPtr out = AcquireOutput(static_cast<int>(row_ids.size()),
                                table->cols(), needs_grad);
  tensor::GatherRowsInto(table->value(), row_ids, &out->mutable_value());
  int max_id = -1;
  for (int id : row_ids) max_id = std::max(max_id, id);
  RecordNode(tape, OpKind::kGatherRows, {table}, out,
             static_cast<int>(row_ids.size()), max_id);
  if (!needs_grad) return out;
  // Touched rows are recorded at backward time, not forward time: rows only
  // matter to the optimizer once they carry gradient, and keeping the
  // forward pass free of shared-state writes is what lets no-tape inference
  // and parallel shard forwards run concurrently.
  tape->Record([table, out, row_ids, touched_rows]() {
    Matrix& tg = table->grad();
    const Matrix& g = out->grad();
    for (size_t i = 0; i < row_ids.size(); ++i) {
      float* dst = tg.RowPtr(row_ids[i]);
      const float* src = g.RowPtr(static_cast<int>(i));
      for (int c = 0; c < g.cols(); ++c) dst[c] += src[c];
    }
    if (touched_rows != nullptr)
      GradShard::RecordTouchedRows(touched_rows, row_ids);
  });
  return out;
}

TensorPtr Transpose(Tape* tape, const TensorPtr& x) {
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(x->cols(), x->rows(), needs_grad);
  tensor::TransposeInto(x->value(), &out->mutable_value());
  RecordNode(tape, OpKind::kTranspose, {x}, out);
  if (!needs_grad) return out;
  tape->Record([x, out]() {
    // In-place transposed accumulation; visits xg in the same row-major
    // order AddInPlace(Transpose(g)) did, so the float sums are unchanged.
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    for (int r = 0; r < xg.rows(); ++r) {
      float* xr = xg.RowPtr(r);
      for (int c = 0; c < xg.cols(); ++c) xr[c] += g.At(c, r);
    }
  });
  return out;
}

TensorPtr Relu(Tape* tape, const TensorPtr& x) {
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(x->rows(), x->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(x->value());
  for (int i = 0; i < value.size(); ++i)
    value.data()[i] = std::max(0.0f, value.data()[i]);
  RecordNode(tape, OpKind::kRelu, {x}, out);
  if (!needs_grad) return out;
  tape->Record([x, out]() {
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    const Matrix& v = x->value();
    for (int i = 0; i < g.size(); ++i)
      if (v.data()[i] > 0.0f) xg.data()[i] += g.data()[i];
  });
  return out;
}

TensorPtr Sigmoid(Tape* tape, const TensorPtr& x) {
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(x->rows(), x->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(x->value());
  for (int i = 0; i < value.size(); ++i)
    value.data()[i] = StableSigmoid(value.data()[i]);
  RecordNode(tape, OpKind::kSigmoid, {x}, out);
  if (!needs_grad) return out;
  tape->Record([x, out]() {
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    const Matrix& y = out->value();
    for (int i = 0; i < g.size(); ++i) {
      const float s = y.data()[i];
      xg.data()[i] += g.data()[i] * s * (1.0f - s);
    }
  });
  return out;
}

TensorPtr Tanh(Tape* tape, const TensorPtr& x) {
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(x->rows(), x->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(x->value());
  for (int i = 0; i < value.size(); ++i)
    value.data()[i] = std::tanh(value.data()[i]);
  RecordNode(tape, OpKind::kTanh, {x}, out);
  if (!needs_grad) return out;
  tape->Record([x, out]() {
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    const Matrix& y = out->value();
    for (int i = 0; i < g.size(); ++i) {
      const float t = y.data()[i];
      xg.data()[i] += g.data()[i] * (1.0f - t * t);
    }
  });
  return out;
}

TensorPtr LogSigmoid(Tape* tape, const TensorPtr& x) {
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(x->rows(), x->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(x->value());
  for (int i = 0; i < value.size(); ++i)
    value.data()[i] = -Softplus(-value.data()[i]);
  RecordNode(tape, OpKind::kLogSigmoid, {x}, out);
  if (!needs_grad) return out;
  tape->Record([x, out]() {
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    const Matrix& v = x->value();
    // d/dx log sigmoid(x) = 1 - sigmoid(x) = sigmoid(-x).
    for (int i = 0; i < g.size(); ++i)
      xg.data()[i] += g.data()[i] * StableSigmoid(-v.data()[i]);
  });
  return out;
}

TensorPtr SoftmaxRows(Tape* tape, const TensorPtr& x,
                      const Matrix* additive_mask) {
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(x->rows(), x->cols(), needs_grad);
  Matrix& value = out->mutable_value();
  value.CopyFrom(x->value());
  if (additive_mask != nullptr) {
    GROUPSA_CHECK(value.SameShape(*additive_mask),
                  "SoftmaxRows mask shape mismatch");
    for (int i = 0; i < value.size(); ++i) {
      // -inf + finite must stay -inf; plain addition does that, but guard
      // against -inf + inf producing NaN.
      const float m = additive_mask->data()[i];
      value.data()[i] = (m == kNegInf) ? kNegInf : value.data()[i] + m;
    }
  }
  tensor::SoftmaxRowsInPlace(&value);
  RecordNode(tape, OpKind::kSoftmaxRows, {x}, out, 0, 0,
             /*flag0=*/additive_mask != nullptr);
  if (!needs_grad) return out;
  tape->Record([x, out]() {
    // dx_row = y_row * (g_row - <g_row, y_row>); masked entries have y = 0
    // so their gradient is exactly zero, matching the hard mask semantics.
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    const Matrix& y = out->value();
    for (int r = 0; r < g.rows(); ++r) {
      double dot = 0.0;
      const float* gr = g.RowPtr(r);
      const float* yr = y.RowPtr(r);
      for (int c = 0; c < g.cols(); ++c)
        dot += static_cast<double>(gr[c]) * yr[c];
      float* xr = xg.RowPtr(r);
      for (int c = 0; c < g.cols(); ++c)
        xr[c] += yr[c] * (gr[c] - static_cast<float>(dot));
    }
  });
  return out;
}

TensorPtr LayerNorm(Tape* tape, const TensorPtr& x, const TensorPtr& gain,
                    const TensorPtr& bias, float epsilon) {
  const int d = x->cols();
  GROUPSA_CHECK(gain->rows() == 1 && gain->cols() == d,
                "LayerNorm gain must be 1 x d");
  GROUPSA_CHECK(bias->rows() == 1 && bias->cols() == d,
                "LayerNorm bias must be 1 x d");
  const bool needs_grad = tape != nullptr && AnyRequiresGrad({&x, &gain, &bias});
  TensorPtr out = AcquireOutput(x->rows(), d, needs_grad);
  Matrix& value = out->mutable_value();
  value.EnsureShape(x->rows(), d);
  // Keep normalized activations and inverse stddev for the backward pass.
  auto x_hat = AcquireWorkspace(x->rows(), d);
  auto inv_std = AcquireWorkspace(x->rows(), 1);
  for (int r = 0; r < x->rows(); ++r) {
    const float* row = x->value().RowPtr(r);
    double mean = 0.0;
    for (int c = 0; c < d; ++c) mean += row[c];
    mean /= d;
    double var = 0.0;
    for (int c = 0; c < d; ++c) {
      const double diff = row[c] - mean;
      var += diff * diff;
    }
    var /= d;
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + epsilon);
    inv_std->At(r, 0) = inv;
    for (int c = 0; c < d; ++c) {
      const float xh = (row[c] - static_cast<float>(mean)) * inv;
      x_hat->At(r, c) = xh;
      value.At(r, c) = xh * gain->value().At(0, c) + bias->value().At(0, c);
    }
  }
  RecordNode(tape, OpKind::kLayerNorm, {x, gain, bias}, out);
  if (!needs_grad) return out;
  tape->Record([x, gain, bias, out, x_hat, inv_std]() {
    const Matrix& g = out->grad();
    const int cols = g.cols();
    for (int r = 0; r < g.rows(); ++r) {
      const float* gr = g.RowPtr(r);
      const float* xh = x_hat->RowPtr(r);
      if (gain->requires_grad() || bias->requires_grad()) {
        for (int c = 0; c < cols; ++c) {
          if (gain->requires_grad()) gain->grad().At(0, c) += gr[c] * xh[c];
          if (bias->requires_grad()) bias->grad().At(0, c) += gr[c];
        }
      }
      if (x->requires_grad()) {
        // dL/dx_hat = g * gain;
        // dL/dx = inv_std * (dxh - mean(dxh) - x_hat * mean(dxh * x_hat)).
        double mean_dxh = 0.0;
        double mean_dxh_xh = 0.0;
        for (int c = 0; c < cols; ++c) {
          const double dxh =
              static_cast<double>(gr[c]) * gain->value().At(0, c);
          mean_dxh += dxh;
          mean_dxh_xh += dxh * xh[c];
        }
        mean_dxh /= cols;
        mean_dxh_xh /= cols;
        float* xr = x->grad().RowPtr(r);
        const float inv = inv_std->At(r, 0);
        for (int c = 0; c < cols; ++c) {
          const double dxh =
              static_cast<double>(gr[c]) * gain->value().At(0, c);
          xr[c] += inv * static_cast<float>(dxh - mean_dxh -
                                            xh[c] * mean_dxh_xh);
        }
      }
    }
  });
  return out;
}

TensorPtr Dropout(Tape* tape, const TensorPtr& x, float ratio, bool training,
                  Rng* rng) {
  GROUPSA_CHECK(ratio >= 0.0f && ratio < 1.0f, "Dropout ratio must be [0,1)");
  if (!training || ratio == 0.0f) return x;
  GROUPSA_CHECK(rng != nullptr, "Dropout in training mode requires an Rng");
  const float keep = 1.0f - ratio;
  const float scale = 1.0f / keep;
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(x->rows(), x->cols(), needs_grad);
  auto mask = AcquireWorkspace(x->rows(), x->cols());
  Matrix& value = out->mutable_value();
  value.CopyFrom(x->value());
  for (int i = 0; i < value.size(); ++i) {
    const float m = rng->NextBernoulli(keep) ? scale : 0.0f;
    mask->data()[i] = m;
    value.data()[i] *= m;
  }
  RecordNode(tape, OpKind::kDropout, {x}, out);
  if (!needs_grad) return out;
  tape->Record([x, out, mask]() {
    Matrix& xg = x->grad();
    const Matrix& g = out->grad();
    for (int i = 0; i < g.size(); ++i)
      xg.data()[i] += g.data()[i] * mask->data()[i];
  });
  return out;
}

TensorPtr SumAll(Tape* tape, const TensorPtr& x) {
  const bool needs_grad = tape != nullptr && x->requires_grad();
  TensorPtr out = AcquireOutput(1, 1, needs_grad);
  Matrix& value = out->mutable_value();
  value.EnsureShape(1, 1);
  value.At(0, 0) = x->value().Sum();
  RecordNode(tape, OpKind::kSumAll, {x}, out);
  if (!needs_grad) return out;
  tape->Record([x, out]() {
    const float g = out->grad().At(0, 0);
    Matrix& xg = x->grad();
    for (int i = 0; i < xg.size(); ++i) xg.data()[i] += g;
  });
  return out;
}

TensorPtr MeanAll(Tape* tape, const TensorPtr& x) {
  return Scale(tape, SumAll(tape, x), 1.0f / static_cast<float>(x->value().size()));
}

TensorPtr BprLoss(Tape* tape, const TensorPtr& pos, const TensorPtr& negs) {
  GROUPSA_CHECK(pos->rows() == 1 && pos->cols() == 1,
                "BprLoss pos must be scalar");
  GROUPSA_CHECK(negs->cols() == 1, "BprLoss negs must be n x 1");
  const float p = pos->scalar();
  const bool needs_grad = tape != nullptr && AnyRequiresGrad({&pos, &negs});
  TensorPtr out = AcquireOutput(1, 1, needs_grad);
  Matrix& value = out->mutable_value();
  value.EnsureShape(1, 1);
  double total = 0.0;
  for (int i = 0; i < negs->rows(); ++i) {
    // -ln sigmoid(p - n) == softplus(n - p).
    total += Softplus(negs->value().At(i, 0) - p);
  }
  value.At(0, 0) = static_cast<float>(total);
  RecordNode(tape, OpKind::kBprLoss, {pos, negs}, out);
  if (!needs_grad) return out;
  tape->Record([pos, negs, out]() {
    const float g = out->grad().At(0, 0);
    const float pv = pos->scalar();
    for (int i = 0; i < negs->rows(); ++i) {
      // d/dn softplus(n - p) = sigmoid(n - p); d/dp = -sigmoid(n - p).
      const float s = StableSigmoid(negs->value().At(i, 0) - pv);
      if (negs->requires_grad()) negs->grad().At(i, 0) += g * s;
      if (pos->requires_grad()) pos->grad().At(0, 0) -= g * s;
    }
  });
  return out;
}

}  // namespace groupsa::ag
