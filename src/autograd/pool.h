#ifndef GROUPSA_AUTOGRAD_POOL_H_
#define GROUPSA_AUTOGRAD_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "autograd/tensor.h"

namespace groupsa::ag {

// Shape-bucketed recycler for the tensors and workspace matrices a training
// batch allocates. The sharded trainer rebuilds an identical op skeleton
// every batch, so after a warm-up batch the pool can satisfy every
// per-batch request from storage it already owns: steady-state training
// performs zero tensor/matrix heap allocations (asserted by tests via
// stats()).
//
// Ownership protocol (one pool per shard, used only by the thread running
// that shard — same lock-free discipline as GradShard):
//
//   TensorPool pool;                          // lives across batches
//   {
//     TensorPool::ActiveScope scope(&pool);   // per batch, on the shard's
//     ... forward ops + backward pass ...     //   executing thread
//   }
//   tape.Reset();          // drop the closures' TensorPtr references
//   pool.EndBatch();       // reclaim everything no longer referenced
//
// While a pool is active on the current thread, the ops in autograd/ops.h
// draw their outputs from Acquire() and their backward workspaces (dropout
// masks, layer-norm statistics, row-sum temporaries) from
// AcquireWorkspace() instead of the heap. Acquire hands back a TensorPtr
// whose Matrix storage (value and, once allocated, gradient) is reused
// across batches; a recycled tensor is indistinguishable from a fresh one
// because its stale gradient is zeroed on the way out — the same state a
// brand-new tensor's lazily-allocated gradient starts in.
//
// EndBatch() reclaims every handed-out object whose reference count shows
// the batch dropped it (the tape's closures and node records, the loss
// list and the loss root must be cleared/destroyed first). An object still
// referenced elsewhere "escapes": it is released to its holder, counted in
// stats, and the pool replaces it next batch. Escapes in the trainer's
// steady state indicate a leak — the zero-growth test would catch it.
//
// The pool is epoch- and task-agnostic: buckets are keyed purely on
// (rows, cols, requires_grad), so a pool warmed by a user-task batch also
// serves the group task's shapes once it has seen them. Samples with
// data-dependent shapes (per-group member counts, per-user neighborhood
// sizes) warm the union of shapes their shard encounters; shape-uniform
// schedules reach zero growth from batch 2 (see DESIGN.md §9).
class TensorPool {
 public:
  // Running counters; all monotone. "Growth" between two points in time is
  // the delta of tensors_created/workspaces_created (or bytes).
  struct Stats {
    uint64_t tensors_created = 0;    // fresh Tensor allocations
    uint64_t tensors_reused = 0;     // requests served from a bucket
    uint64_t workspaces_created = 0; // fresh workspace Matrix allocations
    uint64_t workspaces_reused = 0;
    uint64_t escaped = 0;        // handed out but still referenced at EndBatch
    uint64_t bytes = 0;          // float storage held by pool-owned values
    uint64_t batches = 0;        // EndBatch calls
  };

  TensorPool() = default;
  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

  // Activates a pool on the current thread for the scope's lifetime; the
  // ops in autograd/ops.h consult Active(). A null pool deactivates pooling
  // for the scope (the trainer's toggle for parity tests and benchmarks).
  // Scopes do not nest.
  class ActiveScope {
   public:
    explicit ActiveScope(TensorPool* pool);
    ~ActiveScope();
    ActiveScope(const ActiveScope&) = delete;
    ActiveScope& operator=(const ActiveScope&) = delete;

   private:
    bool activated_;
  };

  // The pool active on the current thread, or null.
  static TensorPool* Active();

  // Hands out a tensor whose value has shape (rows, cols) and unspecified
  // contents — callers fully overwrite it. Its gradient, when the tensor is
  // recycled and had one, is zeroed. The tensor stays checked out until
  // EndBatch.
  TensorPtr Acquire(int rows, int cols, bool requires_grad);

  // Hands out a bare matrix of shape (rows, cols) with unspecified
  // contents, for backward-pass workspaces captured by tape closures.
  std::shared_ptr<tensor::Matrix> AcquireWorkspace(int rows, int cols);

  // Reclaims every object handed out since the last EndBatch whose only
  // remaining reference is the pool's. Call after the tape (and any other
  // holder of batch tensors) has been reset.
  void EndBatch();

  const Stats& stats() const { return stats_; }

 private:
  static uint64_t TensorKey(int rows, int cols, bool requires_grad);

  std::unordered_map<uint64_t, std::vector<TensorPtr>> tensor_buckets_;
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<tensor::Matrix>>>
      workspace_buckets_;
  // Objects checked out for the current batch, in hand-out order.
  std::vector<TensorPtr> tensors_out_;
  std::vector<std::shared_ptr<tensor::Matrix>> workspaces_out_;
  Stats stats_;
};

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_POOL_H_
