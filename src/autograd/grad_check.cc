#include "autograd/grad_check.h"

#include <cmath>

#include "common/string_util.h"

namespace groupsa::ag {

GradCheckResult CheckGradients(const std::function<TensorPtr(Tape*)>& build,
                               const std::vector<TensorPtr>& params,
                               float step, float abs_tolerance,
                               float rel_tolerance) {
  GradCheckResult result;

  // One analytic pass.
  for (const TensorPtr& p : params) p->ZeroGrad();
  std::vector<tensor::Matrix> analytic;
  {
    Tape tape;
    TensorPtr loss = build(&tape);
    tape.Backward(loss);
    for (const TensorPtr& p : params) analytic.push_back(p->grad());
  }

  // Numeric central differences, element by element.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    const TensorPtr& p = params[pi];
    GROUPSA_CHECK(p->requires_grad(), "grad check param must require grad");
    tensor::Matrix& value = p->mutable_value();
    for (int i = 0; i < value.size(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + step;
      float loss_plus;
      {
        Tape tape;
        loss_plus = build(&tape)->scalar();
      }
      value.data()[i] = original - step;
      float loss_minus;
      {
        Tape tape;
        loss_minus = build(&tape)->scalar();
      }
      value.data()[i] = original;

      const float numeric = (loss_plus - loss_minus) / (2.0f * step);
      const float got = analytic[pi].data()[i];
      const float abs_err = std::fabs(numeric - got);
      const float denom = std::max(std::fabs(numeric), std::fabs(got));
      const float rel_err = denom > 1e-8f ? abs_err / denom : 0.0f;
      if (abs_err > result.max_abs_error) {
        result.max_abs_error = abs_err;
        result.worst_entry = StrFormat(
            "param %zu entry %d: analytic=%.6f numeric=%.6f", pi, i,
            static_cast<double>(got), static_cast<double>(numeric));
      }
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > abs_tolerance && rel_err > rel_tolerance)
        result.ok = false;
    }
  }
  return result;
}

}  // namespace groupsa::ag
