#include "autograd/pool.h"

#include "common/macros.h"

namespace groupsa::ag {
namespace {

thread_local TensorPool* tls_active_pool = nullptr;

uint64_t MatrixBytes(int rows, int cols) {
  return static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols) *
         sizeof(float);
}

}  // namespace

TensorPool::ActiveScope::ActiveScope(TensorPool* pool)
    : activated_(pool != nullptr) {
  if (!activated_) return;  // null pool: pooling off for this scope
  GROUPSA_CHECK(tls_active_pool == nullptr, "TensorPool scopes do not nest");
  tls_active_pool = pool;
}

TensorPool::ActiveScope::~ActiveScope() {
  if (activated_) tls_active_pool = nullptr;
}

TensorPool* TensorPool::Active() { return tls_active_pool; }

uint64_t TensorPool::TensorKey(int rows, int cols, bool requires_grad) {
  // rows/cols are int-positive (< 2^31); 31 + 31 + 1 bits pack losslessly.
  return (static_cast<uint64_t>(static_cast<uint32_t>(rows)) << 33) |
         (static_cast<uint64_t>(static_cast<uint32_t>(cols)) << 1) |
         (requires_grad ? 1u : 0u);
}

TensorPtr TensorPool::Acquire(int rows, int cols, bool requires_grad) {
  std::vector<TensorPtr>& bucket =
      tensor_buckets_[TensorKey(rows, cols, requires_grad)];
  TensorPtr t;
  if (!bucket.empty()) {
    t = std::move(bucket.back());
    bucket.pop_back();
    // A recycled tensor must start the batch exactly like a fresh one: its
    // value is about to be fully overwritten by the op, but its gradient
    // still holds the previous batch's backward results.
    t->ZeroGrad();
    ++stats_.tensors_reused;
  } else {
    t = std::make_shared<Tensor>(tensor::Matrix(rows, cols), requires_grad);
    ++stats_.tensors_created;
    stats_.bytes += MatrixBytes(rows, cols);
  }
  tensors_out_.push_back(t);
  return t;
}

std::shared_ptr<tensor::Matrix> TensorPool::AcquireWorkspace(int rows,
                                                             int cols) {
  std::vector<std::shared_ptr<tensor::Matrix>>& bucket =
      workspace_buckets_[TensorKey(rows, cols, false)];
  std::shared_ptr<tensor::Matrix> m;
  if (!bucket.empty()) {
    m = std::move(bucket.back());
    bucket.pop_back();
    ++stats_.workspaces_reused;
  } else {
    m = std::make_shared<tensor::Matrix>(rows, cols);
    ++stats_.workspaces_created;
    stats_.bytes += MatrixBytes(rows, cols);
  }
  workspaces_out_.push_back(m);
  return m;
}

void TensorPool::EndBatch() {
  ++stats_.batches;
  for (TensorPtr& t : tensors_out_) {
    if (t.use_count() == 1) {
      tensor_buckets_[TensorKey(t->rows(), t->cols(), t->requires_grad())]
          .push_back(std::move(t));
    } else {
      // Someone kept a reference past the batch; release it to them. The
      // value bytes leave the pool's books with it.
      ++stats_.escaped;
      stats_.bytes -= MatrixBytes(t->rows(), t->cols());
    }
  }
  tensors_out_.clear();
  for (std::shared_ptr<tensor::Matrix>& m : workspaces_out_) {
    if (m.use_count() == 1) {
      workspace_buckets_[TensorKey(m->rows(), m->cols(), false)].push_back(
          std::move(m));
    } else {
      ++stats_.escaped;
      stats_.bytes -= MatrixBytes(m->rows(), m->cols());
    }
  }
  workspaces_out_.clear();
}

}  // namespace groupsa::ag
