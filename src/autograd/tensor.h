#ifndef GROUPSA_AUTOGRAD_TENSOR_H_
#define GROUPSA_AUTOGRAD_TENSOR_H_

#include <memory>
#include <string>
#include <utility>

#include "tensor/matrix.h"

namespace groupsa::ag {

// A node in the autodiff graph: a value matrix plus (lazily allocated)
// gradient storage. Tensors are shared between the tape that created them and
// any module that owns them as a parameter; hence shared_ptr.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(tensor::Matrix value, bool requires_grad = false)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const tensor::Matrix& value() const { return value_; }
  // Mutable access bumps `value_version()`. Every code path that rewrites a
  // parameter's values — optimizer steps, (re-)initialization, checkpoint
  // restore, Embedding::SetTable, finite-difference perturbation — goes
  // through here, which is what lets representation caches (e.g.
  // core::InferenceEngine) detect staleness without hooks at every call
  // site. Forward ops never take mutable access to their inputs.
  tensor::Matrix& mutable_value() {
    ++value_version_;
    return value_;
  }

  // Monotone counter of mutable value accesses; see mutable_value().
  uint64_t value_version() const { return value_version_; }

  bool requires_grad() const { return requires_grad_; }
  void set_requires_grad(bool requires_grad) {
    requires_grad_ = requires_grad;
  }

  int rows() const { return value_.rows(); }
  int cols() const { return value_.cols(); }

  // Scalar accessor; CHECKs the tensor is 1 x 1.
  float scalar() const {
    GROUPSA_CHECK(value_.rows() == 1 && value_.cols() == 1,
                  "scalar() on non-scalar tensor");
    return value_.At(0, 0);
  }

  // Gradient storage, allocated (zeroed, same shape as value) on first use.
  // When a GradShard (autograd/grad_shard.h) is active on the calling thread
  // and this tensor is registered with it, resolves to the shard-local
  // buffer instead — the hook behind lock-free sharded minibatch training.
  tensor::Matrix& grad();
  const tensor::Matrix& grad_view() const { return grad_; }
  bool has_grad() const { return grad_.SameShape(value_); }
  void ZeroGrad() {
    if (has_grad()) grad_.SetZero();
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  tensor::Matrix value_;
  tensor::Matrix grad_;
  uint64_t value_version_ = 0;
  bool requires_grad_ = false;
  std::string name_;
};

using TensorPtr = std::shared_ptr<Tensor>;

// Creates a constant (no-grad) tensor.
TensorPtr Constant(tensor::Matrix value);

// Creates a tensor that participates in gradient computation (a parameter or
// differentiable intermediate).
TensorPtr Variable(tensor::Matrix value);

// Creates a zero-initialized parameter of the given shape.
TensorPtr Parameter(int rows, int cols);

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_TENSOR_H_
