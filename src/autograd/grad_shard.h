#ifndef GROUPSA_AUTOGRAD_GRAD_SHARD_H_
#define GROUPSA_AUTOGRAD_GRAD_SHARD_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "autograd/tensor.h"

namespace groupsa::ag {

// Per-shard gradient sink for data-parallel training.
//
// A sharded minibatch step builds one tape per shard on a pool thread. The
// tapes' backward closures accumulate into Tensor::grad() of the *shared*
// parameter tensors, which would race across shards. A GradShard, while
// active on a thread, redirects grad() of every registered parameter to a
// shard-local buffer; non-registered tensors (the shard's own
// intermediates) are untouched. Touched-row recording of embedding-style
// parameters is redirected the same way, keyed by the owning module's row
// set. After the parallel region the caller reduces shards *in shard order*
// via ReduceInto, which is what keeps gradient accumulation bit-identical
// at any thread count (see the determinism contract in
// common/thread_pool.h).
//
// Usage (per shard, on the executing thread):
//   GradShard shard(slots);           // persistent: lives across batches
//   {
//     GradShard::ActiveScope scope(&shard);
//     ... build forward on a local tape, tape.BackwardFrom(...) ...
//   }
//   // later, on the calling thread, in shard order:
//   shard.ReduceInto();
//
// A shard is reusable across batches: ReduceInto leaves every buffer
// all-zero again, so the next batch accumulates into clean storage without
// any per-batch allocation. For sparse (embedding) parameters the re-zero
// touches only the rows the shard actually gathered — O(|touched| x d)
// instead of the O(|vocab| x d) a full clear (or a fresh buffer) would
// cost; dense parameters get a full clear, which is cheap at their size.
// Debug builds audit the sparse invariant after each reduce: the entire
// buffer must be zero once the touched rows are cleared, so a row that
// carried gradient but missed the touched set fails loudly.
class GradShard {
 public:
  struct ParamSlot {
    Tensor* tensor = nullptr;
    // Non-null for sparse (embedding) parameters: the module-owned set the
    // optimizer consumes. Sparse buffers are reduced row-wise over the rows
    // the shard actually touched.
    std::unordered_set<int>* touched_rows = nullptr;
  };

  explicit GradShard(const std::vector<ParamSlot>& slots);
  GradShard(const GradShard&) = delete;
  GradShard& operator=(const GradShard&) = delete;

  // Activates a shard on the current thread for the scope's lifetime.
  // Scopes do not nest (a shard's forward/backward never starts another
  // shard on the same thread).
  class ActiveScope {
   public:
    explicit ActiveScope(GradShard* shard);
    ~ActiveScope();
    ActiveScope(const ActiveScope&) = delete;
    ActiveScope& operator=(const ActiveScope&) = delete;
  };

  // Resolves the grad buffer for `t` on the active shard of the current
  // thread; null when no shard is active or `t` is not registered. Called
  // by Tensor::grad().
  static tensor::Matrix* Redirect(const Tensor* t);

  // Records touched rows for the embedding whose module-owned set is
  // `original`. With an active shard the rows land in the shard; otherwise
  // they are inserted into `original` directly. Called by the GatherRows
  // backward closure.
  static void RecordTouchedRows(std::unordered_set<int>* original,
                                const std::vector<int>& row_ids);

  // Adds the shard's accumulated gradients into the real parameter tensors
  // and merges touched-row sets, then re-zeroes the shard's buffers so the
  // next batch starts clean (touched-row zeroing for sparse parameters,
  // full clear for dense). Must run with no shard active, serially, in
  // shard order across shards.
  void ReduceInto();

 private:
  struct Buffer {
    ParamSlot slot;
    tensor::Matrix grad;           // lazily sized on first redirect
    std::unordered_set<int> rows;  // shard-local touched rows (sparse only)
    bool used = false;             // redirected to since the last reduce
  };

  std::vector<Buffer> buffers_;                        // registration order
  std::unordered_map<const Tensor*, Buffer*> by_tensor_;
  std::unordered_map<const std::unordered_set<int>*, Buffer*> by_row_set_;
};

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_GRAD_SHARD_H_
