#include "autograd/tape.h"

#include <atomic>

namespace groupsa::ag {
namespace {

// Structure recording is free when off (one branch per op) but allocates a
// node per op when on, so release builds opt out by default; debug builds
// record so the graph validator (analysis/graph_lint.h) can check every
// training tape before its backward pass runs.
std::atomic<bool> g_record_graph_default{
#ifdef NDEBUG
    false
#else
    true
#endif
};

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kAdd: return "Add";
    case OpKind::kSub: return "Sub";
    case OpKind::kMul: return "Mul";
    case OpKind::kScale: return "Scale";
    case OpKind::kAddBias: return "AddBias";
    case OpKind::kBroadcastRow: return "BroadcastRow";
    case OpKind::kConcatCols: return "ConcatCols";
    case OpKind::kConcatRows: return "ConcatRows";
    case OpKind::kSliceRows: return "SliceRows";
    case OpKind::kGatherRows: return "GatherRows";
    case OpKind::kTranspose: return "Transpose";
    case OpKind::kRelu: return "Relu";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kLogSigmoid: return "LogSigmoid";
    case OpKind::kSoftmaxRows: return "SoftmaxRows";
    case OpKind::kLayerNorm: return "LayerNorm";
    case OpKind::kDropout: return "Dropout";
    case OpKind::kSumAll: return "SumAll";
    case OpKind::kBprLoss: return "BprLoss";
  }
  return "<unknown>";
}

bool Tape::GraphRecordingDefault() {
  return g_record_graph_default.load(std::memory_order_relaxed);
}

void Tape::SetGraphRecordingDefault(bool on) {
  g_record_graph_default.store(on, std::memory_order_relaxed);
}

void Tape::Backward(const TensorPtr& loss) {
  GROUPSA_CHECK(loss->rows() == 1 && loss->cols() == 1,
                "Backward requires a scalar loss");
  tensor::Matrix seed(1, 1);
  seed.At(0, 0) = 1.0f;
  BackwardFrom(loss, seed);
}

void Tape::BackwardFrom(const TensorPtr& root, const tensor::Matrix& seed) {
  GROUPSA_CHECK(root->value().SameShape(seed),
                "BackwardFrom seed shape mismatch");
  GROUPSA_DCHECK(std::this_thread::get_id() == owner_,
                 "Tape::BackwardFrom from a thread other than the owner");
  root->grad().AddInPlace(seed);
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) (*it)();
}

}  // namespace groupsa::ag
