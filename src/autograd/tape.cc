#include "autograd/tape.h"

namespace groupsa::ag {

void Tape::Backward(const TensorPtr& loss) {
  GROUPSA_CHECK(loss->rows() == 1 && loss->cols() == 1,
                "Backward requires a scalar loss");
  tensor::Matrix seed(1, 1);
  seed.At(0, 0) = 1.0f;
  BackwardFrom(loss, seed);
}

void Tape::BackwardFrom(const TensorPtr& root, const tensor::Matrix& seed) {
  GROUPSA_CHECK(root->value().SameShape(seed),
                "BackwardFrom seed shape mismatch");
  GROUPSA_DCHECK(std::this_thread::get_id() == owner_,
                 "Tape::BackwardFrom from a thread other than the owner");
  root->grad().AddInPlace(seed);
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) (*it)();
}

}  // namespace groupsa::ag
