#include "autograd/grad_shard.h"

#include "common/macros.h"

namespace groupsa::ag {
namespace {

thread_local GradShard* tls_active_shard = nullptr;

}  // namespace

GradShard::GradShard(const std::vector<ParamSlot>& slots) {
  buffers_.reserve(slots.size());
  for (const ParamSlot& slot : slots) {
    GROUPSA_CHECK(slot.tensor != nullptr, "GradShard slot without tensor");
    buffers_.push_back(Buffer{slot, tensor::Matrix(), {}});
  }
  // Maps are built after the vector is final so Buffer* stay stable.
  for (Buffer& buffer : buffers_) {
    by_tensor_.emplace(buffer.slot.tensor, &buffer);
    if (buffer.slot.touched_rows != nullptr)
      by_row_set_.emplace(buffer.slot.touched_rows, &buffer);
  }
}

GradShard::ActiveScope::ActiveScope(GradShard* shard) {
  GROUPSA_CHECK(tls_active_shard == nullptr,
                "GradShard scopes do not nest");
  tls_active_shard = shard;
}

GradShard::ActiveScope::~ActiveScope() { tls_active_shard = nullptr; }

tensor::Matrix* GradShard::Redirect(const Tensor* t) {
  GradShard* shard = tls_active_shard;
  if (shard == nullptr) return nullptr;
  auto it = shard->by_tensor_.find(t);
  if (it == shard->by_tensor_.end()) return nullptr;
  Buffer* buffer = it->second;
  if (!buffer->grad.SameShape(t->value()))
    buffer->grad.Resize(t->value().rows(), t->value().cols());
  buffer->used = true;
  return &buffer->grad;
}

void GradShard::RecordTouchedRows(std::unordered_set<int>* original,
                                  const std::vector<int>& row_ids) {
  std::unordered_set<int>* target = original;
  if (GradShard* shard = tls_active_shard; shard != nullptr) {
    auto it = shard->by_row_set_.find(original);
    if (it != shard->by_row_set_.end()) target = &it->second->rows;
  }
  for (int id : row_ids) target->insert(id);
}

void GradShard::ReduceInto() {
  GROUPSA_CHECK(tls_active_shard == nullptr,
                "ReduceInto must run outside any active shard");
  for (Buffer& buffer : buffers_) {
    if (!buffer.used) continue;  // not redirected to since the last reduce
    buffer.used = false;
    Tensor* t = buffer.slot.tensor;
    tensor::Matrix& real = t->grad();
    if (buffer.slot.touched_rows != nullptr) {
      // Sparse: only rows this shard gathered carry gradient; adding just
      // those keeps the reduction O(touched) instead of O(table). The same
      // rows are then re-zeroed so the persistent buffer is clean for the
      // next batch without an O(table) clear.
      for (int row : buffer.rows) {
        float* dst = real.RowPtr(row);
        float* src = buffer.grad.RowPtr(row);
        for (int c = 0; c < real.cols(); ++c) {
          dst[c] += src[c];
          src[c] = 0.0f;
        }
      }
      buffer.slot.touched_rows->insert(buffer.rows.begin(),
                                       buffer.rows.end());
      buffer.rows.clear();
#ifndef NDEBUG
      // Touched-row zeroing invariant: gradient may only ever land in rows
      // recorded as touched, so clearing those rows must leave the whole
      // buffer zero. A violation means some closure wrote the table grad
      // without recording the row.
      GROUPSA_DCHECK(buffer.grad.MaxAbs() == 0.0f,
                     "GradShard sparse buffer nonzero outside touched rows");
#endif
    } else {
      real.AddInPlace(buffer.grad);
      buffer.grad.SetZero();
    }
  }
}

}  // namespace groupsa::ag
