#include "autograd/grad_shard.h"

#include "common/macros.h"

namespace groupsa::ag {
namespace {

thread_local GradShard* tls_active_shard = nullptr;

}  // namespace

GradShard::GradShard(const std::vector<ParamSlot>& slots) {
  buffers_.reserve(slots.size());
  for (const ParamSlot& slot : slots) {
    GROUPSA_CHECK(slot.tensor != nullptr, "GradShard slot without tensor");
    buffers_.push_back(Buffer{slot, tensor::Matrix(), {}});
  }
  // Maps are built after the vector is final so Buffer* stay stable.
  for (Buffer& buffer : buffers_) {
    by_tensor_.emplace(buffer.slot.tensor, &buffer);
    if (buffer.slot.touched_rows != nullptr)
      by_row_set_.emplace(buffer.slot.touched_rows, &buffer);
  }
}

GradShard::ActiveScope::ActiveScope(GradShard* shard) {
  GROUPSA_CHECK(tls_active_shard == nullptr,
                "GradShard scopes do not nest");
  tls_active_shard = shard;
}

GradShard::ActiveScope::~ActiveScope() { tls_active_shard = nullptr; }

tensor::Matrix* GradShard::Redirect(const Tensor* t) {
  GradShard* shard = tls_active_shard;
  if (shard == nullptr) return nullptr;
  auto it = shard->by_tensor_.find(t);
  if (it == shard->by_tensor_.end()) return nullptr;
  Buffer* buffer = it->second;
  if (!buffer->grad.SameShape(t->value()))
    buffer->grad.Resize(t->value().rows(), t->value().cols());
  return &buffer->grad;
}

void GradShard::RecordTouchedRows(std::unordered_set<int>* original,
                                  const std::vector<int>& row_ids) {
  std::unordered_set<int>* target = original;
  if (GradShard* shard = tls_active_shard; shard != nullptr) {
    auto it = shard->by_row_set_.find(original);
    if (it != shard->by_row_set_.end()) target = &it->second->rows;
  }
  for (int id : row_ids) target->insert(id);
}

void GradShard::ReduceInto() {
  GROUPSA_CHECK(tls_active_shard == nullptr,
                "ReduceInto must run outside any active shard");
  for (Buffer& buffer : buffers_) {
    Tensor* t = buffer.slot.tensor;
    if (!buffer.grad.SameShape(t->value())) continue;  // never touched
    tensor::Matrix& real = t->grad();
    if (buffer.slot.touched_rows != nullptr) {
      // Sparse: only rows this shard gathered carry gradient; adding just
      // those keeps the reduction O(touched) instead of O(table).
      for (int row : buffer.rows) {
        float* dst = real.RowPtr(row);
        const float* src = buffer.grad.RowPtr(row);
        for (int c = 0; c < real.cols(); ++c) dst[c] += src[c];
      }
      buffer.slot.touched_rows->insert(buffer.rows.begin(),
                                       buffer.rows.end());
    } else {
      real.AddInPlace(buffer.grad);
    }
  }
}

}  // namespace groupsa::ag
