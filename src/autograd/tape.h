#ifndef GROUPSA_AUTOGRAD_TAPE_H_
#define GROUPSA_AUTOGRAD_TAPE_H_

#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "autograd/tensor.h"

namespace groupsa::ag {

// Identifies which differentiable operation produced a recorded graph node.
// One entry per public function in autograd/ops.h; MeanAll is composed of
// SumAll + Scale and records those, and the Dropout identity path (inference
// or ratio 0) performs no computation and records nothing.
enum class OpKind : uint8_t {
  kMatMul,
  kAdd,
  kSub,
  kMul,
  kScale,
  kAddBias,
  kBroadcastRow,
  kConcatCols,
  kConcatRows,
  kSliceRows,
  kGatherRows,
  kTranspose,
  kRelu,
  kSigmoid,
  kTanh,
  kLogSigmoid,
  kSoftmaxRows,
  kLayerNorm,
  kDropout,
  kSumAll,
  kBprLoss,
};

// Human-readable op name ("MatMul", "AddBias", ...).
const char* OpKindName(OpKind kind);

// Structural record of one executed op: what it read, what it wrote, and the
// shape-relevant attributes. The static graph validator
// (analysis/graph_lint.h) re-runs shape inference over these records and
// cross-checks them against the tensors, independently of the backward
// closures. Attribute meaning by kind:
//   kMatMul:       flag0/flag1 = transpose_a / transpose_b
//   kScale:        (factor itself is shape-irrelevant)
//   kBroadcastRow: arg0 = n (output row count)
//   kSliceRows:    arg0 = start, arg1 = count
//   kGatherRows:   arg0 = number of gathered ids, arg1 = max id (-1 if none)
//   kSoftmaxRows:  flag0 = additive mask present
// All other kinds use no attributes.
struct OpNode {
  OpKind kind = OpKind::kMatMul;
  std::vector<TensorPtr> inputs;
  TensorPtr output;
  int arg0 = 0;
  int arg1 = 0;
  bool flag0 = false;
  bool flag1 = false;
};

// Records the backward pass of a dynamically built computation graph. Ops in
// autograd/ops.h append one closure per recorded operation; Backward() runs
// them in reverse, which is a valid topological order because the forward
// pass built them in execution order.
//
// Typical step:
//   Tape tape;
//   TensorPtr loss = BuildForward(&tape, ...);
//   tape.Backward(loss);        // parameter .grad() now holds dLoss/dParam
//   optimizer.Step();
//   tape.Clear();               // or let the tape go out of scope
//
// A tape is single-threaded by construction: the sharded trainer gives every
// shard its own tape, built and walked entirely on the thread that runs the
// shard. Record/Backward assert this ownership so a cross-thread use (a
// data race by definition, since ops_ is unsynchronized) fails loudly
// instead of corrupting silently.
//
// Besides the backward closures, a tape can record the graph *structure*
// (OpNode per op, including ops that need no gradient) for the static
// validator in analysis/graph_lint.h. Structure recording defaults on in
// debug builds and off in release; SetGraphRecordingDefault / per-tape
// set_record_graph override it (core::GroupSaModel::ValidateGraph always
// turns it on for its probe tape).
class Tape {
 public:
  Tape()
      : owner_(std::this_thread::get_id()),
        record_graph_(GraphRecordingDefault()) {}
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Appends a backward closure. Called by op implementations only.
  void Record(std::function<void()> backward) {
    GROUPSA_DCHECK(std::this_thread::get_id() == owner_,
                   "Tape::Record from a thread other than the tape's owner");
    ops_.push_back(std::move(backward));
  }

  // Appends a structural node when graph recording is on. Called by op
  // implementations for every executed op (gradient-free ones included);
  // tests append hand-built — deliberately malformed — nodes directly.
  void RecordNode(OpNode node) {
    if (!record_graph_) return;
    GROUPSA_DCHECK(std::this_thread::get_id() == owner_,
                   "Tape::RecordNode from a thread other than the tape's owner");
    nodes_.push_back(std::move(node));
  }

  // Seeds d(loss)/d(loss) = 1 and back-propagates. `loss` must be scalar
  // (1 x 1) and produced by ops recorded on this tape.
  void Backward(const TensorPtr& loss);

  // Back-propagates from `root` with an explicit upstream gradient `seed`
  // (same shape as root). Useful for Jacobian-vector products in tests.
  void BackwardFrom(const TensorPtr& root, const tensor::Matrix& seed);

  void Clear() {
    ops_.clear();
    nodes_.clear();
  }

  // Clears the tape for reuse by the next batch and re-binds ownership to
  // the calling thread (the pool makes no guarantee about which thread runs
  // a given shard in a given batch). clear() — never a {}-swap — keeps the
  // vectors' capacity, and the recorded-graph vectors are additionally
  // reserve()d to the previous batch's size, so a steady-state batch
  // appends every op without reallocating either vector. Dropping the
  // closures here also releases their captured TensorPtrs, which is what
  // lets TensorPool::EndBatch reclaim the batch's tensors.
  void Reset() {
    const size_t prev_ops = ops_.size();
    const size_t prev_nodes = nodes_.size();
    ops_.clear();
    nodes_.clear();
    ops_.reserve(prev_ops);
    nodes_.reserve(prev_nodes);
    owner_ = std::this_thread::get_id();
  }

  size_t num_ops() const { return ops_.size(); }

  bool records_graph() const { return record_graph_; }
  void set_record_graph(bool on) { record_graph_ = on; }
  const std::vector<OpNode>& nodes() const { return nodes_; }

  // Process-wide default for new tapes: true in debug builds, false in
  // release. Tests (and the CI graph-validation gate) force it on to get
  // validated training tapes out of a release build.
  static bool GraphRecordingDefault();
  static void SetGraphRecordingDefault(bool on);

 private:
  std::vector<std::function<void()>> ops_;
  std::vector<OpNode> nodes_;
  std::thread::id owner_;
  bool record_graph_;
};

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_TAPE_H_
