#ifndef GROUPSA_AUTOGRAD_TAPE_H_
#define GROUPSA_AUTOGRAD_TAPE_H_

#include <functional>
#include <vector>

#include "autograd/tensor.h"

namespace groupsa::ag {

// Records the backward pass of a dynamically built computation graph. Ops in
// autograd/ops.h append one closure per recorded operation; Backward() runs
// them in reverse, which is a valid topological order because the forward
// pass built them in execution order.
//
// Typical step:
//   Tape tape;
//   TensorPtr loss = BuildForward(&tape, ...);
//   tape.Backward(loss);        // parameter .grad() now holds dLoss/dParam
//   optimizer.Step();
//   tape.Clear();               // or let the tape go out of scope
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Appends a backward closure. Called by op implementations only.
  void Record(std::function<void()> backward) {
    ops_.push_back(std::move(backward));
  }

  // Seeds d(loss)/d(loss) = 1 and back-propagates. `loss` must be scalar
  // (1 x 1) and produced by ops recorded on this tape.
  void Backward(const TensorPtr& loss);

  // Back-propagates from `root` with an explicit upstream gradient `seed`
  // (same shape as root). Useful for Jacobian-vector products in tests.
  void BackwardFrom(const TensorPtr& root, const tensor::Matrix& seed);

  void Clear() { ops_.clear(); }
  size_t num_ops() const { return ops_.size(); }

 private:
  std::vector<std::function<void()>> ops_;
};

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_TAPE_H_
