#ifndef GROUPSA_AUTOGRAD_TAPE_H_
#define GROUPSA_AUTOGRAD_TAPE_H_

#include <functional>
#include <thread>
#include <vector>

#include "autograd/tensor.h"

namespace groupsa::ag {

// Records the backward pass of a dynamically built computation graph. Ops in
// autograd/ops.h append one closure per recorded operation; Backward() runs
// them in reverse, which is a valid topological order because the forward
// pass built them in execution order.
//
// Typical step:
//   Tape tape;
//   TensorPtr loss = BuildForward(&tape, ...);
//   tape.Backward(loss);        // parameter .grad() now holds dLoss/dParam
//   optimizer.Step();
//   tape.Clear();               // or let the tape go out of scope
//
// A tape is single-threaded by construction: the sharded trainer gives every
// shard its own tape, built and walked entirely on the thread that runs the
// shard. Record/Backward assert this ownership so a cross-thread use (a
// data race by definition, since ops_ is unsynchronized) fails loudly
// instead of corrupting silently.
class Tape {
 public:
  Tape() : owner_(std::this_thread::get_id()) {}
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Appends a backward closure. Called by op implementations only.
  void Record(std::function<void()> backward) {
    GROUPSA_DCHECK(std::this_thread::get_id() == owner_,
                   "Tape::Record from a thread other than the tape's owner");
    ops_.push_back(std::move(backward));
  }

  // Seeds d(loss)/d(loss) = 1 and back-propagates. `loss` must be scalar
  // (1 x 1) and produced by ops recorded on this tape.
  void Backward(const TensorPtr& loss);

  // Back-propagates from `root` with an explicit upstream gradient `seed`
  // (same shape as root). Useful for Jacobian-vector products in tests.
  void BackwardFrom(const TensorPtr& root, const tensor::Matrix& seed);

  void Clear() { ops_.clear(); }
  size_t num_ops() const { return ops_.size(); }

 private:
  std::vector<std::function<void()>> ops_;
  std::thread::id owner_;
};

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_TAPE_H_
