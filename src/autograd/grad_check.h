#ifndef GROUPSA_AUTOGRAD_GRAD_CHECK_H_
#define GROUPSA_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/tape.h"
#include "autograd/tensor.h"

namespace groupsa::ag {

// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = true;
  // Worst absolute and relative mismatch over all checked entries.
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  // Location of the worst mismatch, for diagnostics.
  std::string worst_entry;
};

// Verifies analytic gradients of `build` against central finite differences.
//
// `build` must construct the forward graph on the given tape and return a
// scalar loss; it is called repeatedly, so it must be a pure function of the
// current parameter values. `params` are the tensors whose gradients are
// checked (each must have requires_grad()). `step` is the finite-difference
// step; mismatches larger than both `abs_tolerance` and `rel_tolerance` fail.
GradCheckResult CheckGradients(
    const std::function<TensorPtr(Tape*)>& build,
    const std::vector<TensorPtr>& params, float step = 1e-3f,
    float abs_tolerance = 2e-3f, float rel_tolerance = 2e-2f);

}  // namespace groupsa::ag

#endif  // GROUPSA_AUTOGRAD_GRAD_CHECK_H_
