#ifndef GROUPSA_TENSOR_OPS_H_
#define GROUPSA_TENSOR_OPS_H_

#include <vector>

#include "tensor/matrix.h"

namespace groupsa::tensor {

// BLAS-lite kernels over Matrix. All functions CHECK shape compatibility.
// Accumulating variants (`beta`-style) are expressed via the `accumulate`
// flag: when true, the destination is added into instead of overwritten.

// out = alpha * op(a) * op(b) (+ out if accumulate). op is transpose when the
// corresponding flag is set. Large products are tiled over output rows across
// the global thread pool; because each output row is produced by the same
// inner-loop order as the serial kernel, results are bit-identical to
// GemmSerial at any thread count.
void Gemm(const Matrix& a, bool transpose_a, const Matrix& b, bool transpose_b,
          float alpha, Matrix* out, bool accumulate = false);

// Single-threaded reference kernel with identical semantics to Gemm. Used as
// the parity baseline in tests and benchmarks; Gemm dispatches here below the
// parallel size cutoff.
void GemmSerial(const Matrix& a, bool transpose_a, const Matrix& b,
                bool transpose_b, float alpha, Matrix* out,
                bool accumulate = false);

// Convenience: returns a * b.
Matrix MatMul(const Matrix& a, const Matrix& b);

// Returns the transpose of `a`.
Matrix Transpose(const Matrix& a);

// Element-wise product.
Matrix Hadamard(const Matrix& a, const Matrix& b);

// Adds row vector `bias` (1 x cols) to every row of `a` in place.
void AddRowBroadcastInPlace(Matrix* a, const Matrix& bias);

// Sums the rows of `a` into a 1 x cols vector.
Matrix SumRows(const Matrix& a);

// Destination variants of the value-returning kernels above, for callers
// that recycle output storage (the training tensor pool, autograd/pool.h).
// Each runs the exact loop of its value-returning twin — the twins are
// implemented on top of these — so results are bit-identical; `out` is
// reshaped without reallocation when its capacity suffices and fully
// overwritten (SumRowsInto zeroes it first, as its accumulation requires).
// `out` must not alias an input.
void TransposeInto(const Matrix& a, Matrix* out);
void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out);
void SumRowsInto(const Matrix& a, Matrix* out);
void ConcatColsInto(const std::vector<const Matrix*>& parts, Matrix* out);
void ConcatRowsInto(const std::vector<const Matrix*>& parts, Matrix* out);
void GatherRowsInto(const Matrix& table, const std::vector<int>& row_ids,
                    Matrix* out);

// Numerically stable in-place softmax over each row. Entries equal to
// -infinity are treated as masked out (weight exactly 0). Rows that are fully
// masked except for at most self entries must contain at least one finite
// entry; this is CHECKed.
void SoftmaxRowsInPlace(Matrix* a);

// Stable log(sum(exp(row))) per row; returns rows x 1.
Matrix LogSumExpRows(const Matrix& a);

// Dot product of two equal-shape matrices viewed as flat vectors.
float Dot(const Matrix& a, const Matrix& b);
float Dot(RowView a, RowView b);

// Concatenates matrices left-to-right (equal row counts).
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

// Concatenates matrices top-to-bottom (equal col counts).
Matrix ConcatRows(const std::vector<const Matrix*>& parts);

// Gathers the given rows of `table` into a new matrix (one output row per id).
Matrix GatherRows(const Matrix& table, const std::vector<int>& row_ids);

}  // namespace groupsa::tensor

#endif  // GROUPSA_TENSOR_OPS_H_
