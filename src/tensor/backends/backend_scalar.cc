// Scalar (baseline x86-64) variant of the shared kernel bodies. Always
// compiled; the fallback every machine can run and the reference the parity
// suite compares the SIMD variants against.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/backends/backends.h"
#include "tensor/matrix.h"

namespace groupsa::tensor::backends {
namespace scalar_impl {
#include "tensor/backends/kernels.inc"
}  // namespace scalar_impl

namespace {
bool ScalarRunnable() { return true; }
}  // namespace

const KernelBackend& ScalarBackend() {
  static const KernelBackend backend{
      "scalar",           &ScalarRunnable,
      &scalar_impl::GemmRows, &scalar_impl::AttentionLogits,
      &scalar_impl::DotInt8Rows};
  return backend;
}

}  // namespace groupsa::tensor::backends
