// AVX2 variant of the shared kernel bodies: this TU compiles with -mavx2
// -mno-fma -ffp-contract=off (see src/CMakeLists.txt), so the identical
// scalar C++ auto-vectorizes to 8-wide float lanes without FMA contraction.
// Selected at runtime only when CPUID reports AVX2.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/backends/backends.h"
#include "tensor/matrix.h"

namespace groupsa::tensor::backends {
namespace avx2_impl {
#include "tensor/backends/kernels.inc"
}  // namespace avx2_impl

namespace {
bool Avx2Runnable() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
}
}  // namespace

const KernelBackend& Avx2Backend() {
  static const KernelBackend backend{
      "avx2",           &Avx2Runnable,
      &avx2_impl::GemmRows, &avx2_impl::AttentionLogits,
      &avx2_impl::DotInt8Rows};
  return backend;
}

}  // namespace groupsa::tensor::backends
