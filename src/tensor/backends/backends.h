#ifndef GROUPSA_TENSOR_BACKENDS_BACKENDS_H_
#define GROUPSA_TENSOR_BACKENDS_BACKENDS_H_

#include "tensor/backend.h"

// Accessors for the per-ISA kernel variants. Internal to groupsa_tensor:
// the GROUPSA_HAVE_*_BACKEND macros are defined by src/CMakeLists.txt for
// exactly the TUs that were compiled in, so this header and
// tensor/backend.cc always agree on what exists.
namespace groupsa::tensor::backends {

const KernelBackend& ScalarBackend();
#if defined(GROUPSA_HAVE_AVX2_BACKEND)
const KernelBackend& Avx2Backend();
#endif
#if defined(GROUPSA_HAVE_AVX512_BACKEND)
const KernelBackend& Avx512Backend();
#endif

}  // namespace groupsa::tensor::backends

#endif  // GROUPSA_TENSOR_BACKENDS_BACKENDS_H_
