// AVX-512 variant of the shared kernel bodies: this TU compiles with
// -mavx512f -mavx2 -mno-fma -mprefer-vector-width=512 -ffp-contract=off
// (see src/CMakeLists.txt), so the identical scalar C++ auto-vectorizes to
// 16-wide float lanes without FMA contraction. Selected at runtime only
// when CPUID reports AVX-512F.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/backends/backends.h"
#include "tensor/matrix.h"

namespace groupsa::tensor::backends {
namespace avx512_impl {
#include "tensor/backends/kernels.inc"
}  // namespace avx512_impl

namespace {
bool Avx512Runnable() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") != 0;
}
}  // namespace

const KernelBackend& Avx512Backend() {
  static const KernelBackend backend{
      "avx512",           &Avx512Runnable,
      &avx512_impl::GemmRows, &avx512_impl::AttentionLogits,
      &avx512_impl::DotInt8Rows};
  return backend;
}

}  // namespace groupsa::tensor::backends
