#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace groupsa::tensor {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  Matrix m;
  if (rows.empty()) return m;
  const int cols = static_cast<int>(rows[0].size());
  m.Resize(static_cast<int>(rows.size()), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    GROUPSA_CHECK(static_cast<int>(rows[r].size()) == cols,
                  "FromRows requires equal-length rows");
    m.SetRow(static_cast<int>(r), rows[r].data());
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  Matrix m(1, static_cast<int>(values.size()));
  if (!values.empty()) m.SetRow(0, values.data());
  return m;
}

void Matrix::Resize(int rows, int cols) {
  GROUPSA_CHECK(rows >= 0 && cols >= 0, "Matrix dims must be non-negative");
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows) * cols, 0.0f);
}

void Matrix::CopyFrom(const Matrix& src) {
  rows_ = src.rows_;
  cols_ = src.cols_;
  data_.assign(src.data_.begin(), src.data_.end());
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  GROUPSA_CHECK(SameShape(other), "AddInPlace shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::SubInPlace(const Matrix& other) {
  GROUPSA_CHECK(SameShape(other), "SubInPlace shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::ScaleInPlace(float factor) {
  for (float& v : data_) v *= factor;
}

void Matrix::AxpyInPlace(float factor, const Matrix& other) {
  GROUPSA_CHECK(SameShape(other), "AxpyInPlace shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i)
    data_[i] += factor * other.data_[i];
}

void Matrix::SetRow(int r, const float* src) {
  GROUPSA_DCHECK(r >= 0 && r < rows_, "SetRow index out of range");
  std::memcpy(RowPtr(r), src, sizeof(float) * static_cast<size_t>(cols_));
}

Matrix Matrix::Row(int r) const {
  Matrix out(1, cols_);
  out.SetRow(0, RowPtr(r));
  return out;
}

void Matrix::FillUniform(Rng* rng, float lo, float hi) {
  for (float& v : data_)
    v = static_cast<float>(rng->NextUniform(lo, hi));
}

void Matrix::FillGaussian(Rng* rng, float mean, float stddev) {
  for (float& v : data_)
    v = static_cast<float>(rng->NextGaussian(mean, stddev));
}

float Matrix::Sum() const {
  double total = 0.0;
  for (float v : data_) total += v;
  return static_cast<float>(total);
}

float Matrix::Mean() const {
  GROUPSA_CHECK(!data_.empty(), "Mean of empty matrix");
  return Sum() / static_cast<float>(data_.size());
}

float Matrix::MaxAbs() const {
  float best = 0.0f;
  for (float v : data_) best = std::max(best, std::fabs(v));
  return best;
}

float Matrix::SquaredNorm() const {
  double total = 0.0;
  for (float v : data_) total += static_cast<double>(v) * v;
  return static_cast<float>(total);
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::string out = StrFormat("Matrix %dx%d [\n", rows_, cols_);
  const int show_rows = std::min(rows_, max_rows);
  const int show_cols = std::min(cols_, max_cols);
  for (int r = 0; r < show_rows; ++r) {
    out += "  ";
    for (int c = 0; c < show_cols; ++c) out += StrFormat("%9.4f ", At(r, c));
    if (show_cols < cols_) out += "...";
    out += "\n";
  }
  if (show_rows < rows_) out += "  ...\n";
  out += "]";
  return out;
}

bool AllClose(const Matrix& a, const Matrix& b, float tolerance) {
  if (!a.SameShape(b)) return false;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (std::fabs(a.At(r, c) - b.At(r, c)) > tolerance) return false;
    }
  }
  return true;
}

bool AllClose(RowView a, RowView b, float tolerance) {
  if (a.cols != b.cols) return false;
  for (int c = 0; c < a.cols; ++c)
    if (std::fabs(a[c] - b[c]) > tolerance) return false;
  return true;
}

bool AllClose(const Matrix& a, RowView b, float tolerance) {
  if (a.rows() != 1) return false;
  return AllClose(a.RowAt(0), b, tolerance);
}

bool AllClose(RowView a, const Matrix& b, float tolerance) {
  if (b.rows() != 1) return false;
  return AllClose(a, b.RowAt(0), tolerance);
}

}  // namespace groupsa::tensor
