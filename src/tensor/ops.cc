#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"

namespace groupsa::tensor {
namespace {

// Work (in multiply-adds / elements) below which kernels stay serial; at
// these sizes the ParallelFor dispatch costs more than the loop body.
constexpr int64_t kGemmParallelWork = 1 << 18;       // m * n * k
constexpr int64_t kElementwiseParallelWork = 1 << 20;

// Width of the output-column tile the no-transpose-b kernel accumulates in
// locals. 32 floats fit the register file after vectorization and cover the
// model's layer widths (d = attention_hidden = 32) in one tile.
constexpr int kGemmColTile = 32;
// Rows processed together in the full-tile path. One row in flight leaves
// the k-loop as a single dependent add chain per vector lane, stalling on
// add latency; four rows give four independent chains and share each b-row
// load. 4 x 32 accumulators still fit the vector register file.
constexpr int kGemmRowTile = 4;

// One column tile of the no-transpose-b kernel: rows [row_begin, row_end) of
// out columns [j0, j0 + JT). JT is a compile-time width so the accumulator
// tiles vectorize into registers; kGemmRowTile rows run together so their
// independent add chains pipeline instead of stalling on add latency. Every
// out[i][j] is still seeded from its current value and accumulates
// alpha*a[i][k]*b[k][j] for k ascending — bit-identical to a one-row,
// runtime-width loop.
template <int JT>
void GemmColTileRows(const Matrix& a, bool transpose_a, const Matrix& b,
                     float alpha, Matrix* out, int k, int j0, int row_begin,
                     int row_end) {
  int i = row_begin;
  for (; i + kGemmRowTile <= row_end; i += kGemmRowTile) {
    float acc[kGemmRowTile][JT];
    for (int r = 0; r < kGemmRowTile; ++r) {
      const float* out_row = out->RowPtr(i + r) + j0;
      for (int j = 0; j < JT; ++j) acc[r][j] = out_row[j];
    }
    for (int kk = 0; kk < k; ++kk) {
      const float* b_row = b.RowPtr(kk) + j0;
      for (int r = 0; r < kGemmRowTile; ++r) {
        const float a_ik =
            alpha * (transpose_a ? a.At(kk, i + r) : a.At(i + r, kk));
        for (int j = 0; j < JT; ++j) acc[r][j] += a_ik * b_row[j];
      }
    }
    for (int r = 0; r < kGemmRowTile; ++r) {
      float* out_row = out->RowPtr(i + r) + j0;
      for (int j = 0; j < JT; ++j) out_row[j] = acc[r][j];
    }
  }
  for (; i < row_end; ++i) {
    float* out_row = out->RowPtr(i) + j0;
    float acc[JT];
    for (int j = 0; j < JT; ++j) acc[j] = out_row[j];
    for (int kk = 0; kk < k; ++kk) {
      const float a_ik = alpha * (transpose_a ? a.At(kk, i) : a.At(i, kk));
      const float* b_row = b.RowPtr(kk) + j0;
      for (int j = 0; j < JT; ++j) acc[j] += a_ik * b_row[j];
    }
    for (int j = 0; j < JT; ++j) out_row[j] = acc[j];
  }
}

// Computes output rows [row_begin, row_end) of out = alpha * op(a) * op(b).
// i-k-j loop order keeps the inner loop contiguous for the common
// no-transpose case; the transposed cases swap index roles. This is the one
// kernel both the serial and the tiled parallel paths run, so a given output
// row is always produced by the same instruction sequence.
//
// The no-transpose-b case tiles the output columns into a local accumulator
// so the k-loop runs register-to-register instead of loading and storing
// out_row once per term (~3x on the model's layer shapes). Tiling over j
// does not touch the order of the k-accumulation each element sees, so the
// results stay bit-identical to the straight i-k-j loop: every out[i][j] is
// still seeded from its current value and accumulates alpha*a[i][k]*b[k][j]
// for k ascending.
//
// The no-transpose-b paths accumulate zero a-elements' terms instead of
// branching around them. The term is then +/-0.0f, and adding a signed zero
// to the accumulator changes no bits: the accumulator is seeded from +0.0f
// (or from a previous kernel output) and under round-to-nearest a sum is
// -0.0f only when both operands are, so it can never itself be -0.0f. The
// data-dependent skip branch, by contrast, is unpredictable on post-ReLU
// inputs (~half the elements are exact zeros in no pattern) and its
// mispredictions dominated these shapes. The transpose-b path keeps the
// skip: its inner loop is long enough that a taken skip pays for the
// branch.
void GemmRows(const Matrix& a, bool transpose_a, const Matrix& b,
              bool transpose_b, float alpha, Matrix* out, int k, int n,
              int row_begin, int row_end) {
  if (transpose_b) {
    for (int i = row_begin; i < row_end; ++i) {
      float* out_row = out->RowPtr(i);
      for (int kk = 0; kk < k; ++kk) {
        const float a_ik =
            alpha * (transpose_a ? a.At(kk, i) : a.At(i, kk));
        if (a_ik == 0.0f) continue;
        for (int j = 0; j < n; ++j) out_row[j] += a_ik * b.At(j, kk);
      }
    }
    return;
  }
  if (n == 1) {
    // Single-column outputs (matrix-vector products, e.g. attention logits)
    // are latency-bound: each output element is one sequential add chain, so
    // one-at-a-time execution stalls on add latency. Keep eight independent
    // chains in flight; each chain still accumulates its own terms with k
    // ascending, so every element's result matches the generic path bit for
    // bit.
    const float* bcol = b.data();  // k x 1, contiguous
    int i = row_begin;
    for (; i + 8 <= row_end; i += 8) {
      float acc[8];
      for (int r = 0; r < 8; ++r) acc[r] = out->At(i + r, 0);
      for (int kk = 0; kk < k; ++kk) {
        const float bk = bcol[kk];
        for (int r = 0; r < 8; ++r) {
          const float a_ik =
              alpha * (transpose_a ? a.At(kk, i + r) : a.At(i + r, kk));
          acc[r] += a_ik * bk;
        }
      }
      for (int r = 0; r < 8; ++r) out->At(i + r, 0) = acc[r];
    }
    for (; i < row_end; ++i) {
      float acc = out->At(i, 0);
      for (int kk = 0; kk < k; ++kk) {
        const float a_ik =
            alpha * (transpose_a ? a.At(kk, i) : a.At(i, kk));
        acc += a_ik * bcol[kk];
      }
      out->At(i, 0) = acc;
    }
    return;
  }
  for (int j0 = 0; j0 < n; j0 += kGemmColTile) {
    const int jt = std::min(kGemmColTile, n - j0);
    // Fixed-width instantiations for the model's layer widths (32, 16, 8);
    // other tail widths take the runtime-width single-row loop.
    if (jt == 32) {
      GemmColTileRows<32>(a, transpose_a, b, alpha, out, k, j0, row_begin,
                          row_end);
    } else if (jt == 16) {
      GemmColTileRows<16>(a, transpose_a, b, alpha, out, k, j0, row_begin,
                          row_end);
    } else if (jt == 8) {
      GemmColTileRows<8>(a, transpose_a, b, alpha, out, k, j0, row_begin,
                         row_end);
    } else {
      for (int i = row_begin; i < row_end; ++i) {
        float* out_row = out->RowPtr(i) + j0;
        float acc[kGemmColTile];
        for (int j = 0; j < jt; ++j) acc[j] = out_row[j];
        for (int kk = 0; kk < k; ++kk) {
          const float a_ik =
              alpha * (transpose_a ? a.At(kk, i) : a.At(i, kk));
          const float* b_row = b.RowPtr(kk) + j0;
          for (int j = 0; j < jt; ++j) acc[j] += a_ik * b_row[j];
        }
        for (int j = 0; j < jt; ++j) out_row[j] = acc[j];
      }
    }
  }
}

// Shape-checks and prepares the destination; returns {m, k, n}.
struct GemmShape {
  int m, k, n;
};
GemmShape PrepareGemm(const Matrix& a, bool transpose_a, const Matrix& b,
                      bool transpose_b, Matrix* out, bool accumulate) {
  const int m = transpose_a ? a.cols() : a.rows();
  const int k = transpose_a ? a.rows() : a.cols();
  const int kb = transpose_b ? b.cols() : b.rows();
  const int n = transpose_b ? b.rows() : b.cols();
  GROUPSA_CHECK(k == kb, "Gemm inner dimension mismatch");
  if (!accumulate || out->rows() != m || out->cols() != n) {
    GROUPSA_CHECK(!accumulate || (out->rows() == m && out->cols() == n),
                  "Gemm accumulate shape mismatch");
    out->Resize(m, n);
  }
  return {m, k, n};
}

}  // namespace

void GemmSerial(const Matrix& a, bool transpose_a, const Matrix& b,
                bool transpose_b, float alpha, Matrix* out, bool accumulate) {
  const GemmShape s = PrepareGemm(a, transpose_a, b, transpose_b, out,
                                  accumulate);
  GemmRows(a, transpose_a, b, transpose_b, alpha, out, s.k, s.n, 0, s.m);
}

void Gemm(const Matrix& a, bool transpose_a, const Matrix& b, bool transpose_b,
          float alpha, Matrix* out, bool accumulate) {
  const GemmShape s = PrepareGemm(a, transpose_a, b, transpose_b, out,
                                  accumulate);
  const int64_t work = int64_t{s.m} * s.k * s.n;
  const int threads = parallel::GlobalThreads();
  if (threads <= 1 || work < kGemmParallelWork || s.m < 2 * threads) {
    GemmRows(a, transpose_a, b, transpose_b, alpha, out, s.k, s.n, 0, s.m);
    return;
  }
  // Tile over output rows: chunks write disjoint rows and each row is
  // computed exactly as in the serial kernel, so the result is bit-identical
  // at any thread count.
  const int64_t grain = std::max<int64_t>(1, s.m / (4 * threads));
  parallel::ParallelFor(0, s.m, grain, [&](int64_t begin, int64_t end) {
    GemmRows(a, transpose_a, b, transpose_b, alpha, out, s.k, s.n,
             static_cast<int>(begin), static_cast<int>(end));
  });
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  Gemm(a, /*transpose_a=*/false, b, /*transpose_b=*/false, 1.0f, &out);
  return out;
}

void TransposeInto(const Matrix& a, Matrix* out) {
  out->EnsureShape(a.cols(), a.rows());
  auto rows = [&](int64_t begin, int64_t end) {
    for (int r = static_cast<int>(begin); r < end; ++r)
      for (int c = 0; c < a.cols(); ++c) out->At(c, r) = a.At(r, c);
  };
  if (a.size() < kElementwiseParallelWork || parallel::GlobalThreads() <= 1) {
    rows(0, a.rows());
  } else {
    parallel::ParallelFor(
        0, a.rows(),
        std::max<int64_t>(1, a.rows() / (4 * parallel::GlobalThreads())),
        rows);
  }
}

Matrix Transpose(const Matrix& a) {
  Matrix out;
  TransposeInto(a, &out);
  return out;
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GROUPSA_CHECK(a.SameShape(b), "Hadamard shape mismatch");
  out->EnsureShape(a.rows(), a.cols());
  auto span = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      out->data()[i] = a.data()[i] * b.data()[i];
  };
  if (a.size() < kElementwiseParallelWork || parallel::GlobalThreads() <= 1) {
    span(0, a.size());
  } else {
    parallel::ParallelFor(
        0, a.size(),
        std::max<int64_t>(1, a.size() / (4 * parallel::GlobalThreads())),
        span);
  }
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix out;
  HadamardInto(a, b, &out);
  return out;
}

void AddRowBroadcastInPlace(Matrix* a, const Matrix& bias) {
  GROUPSA_CHECK(bias.rows() == 1 && bias.cols() == a->cols(),
                "AddRowBroadcast bias must be 1 x cols");
  auto rows = [&](int64_t begin, int64_t end) {
    for (int r = static_cast<int>(begin); r < end; ++r) {
      float* row = a->RowPtr(r);
      const float* b = bias.RowPtr(0);
      for (int c = 0; c < a->cols(); ++c) row[c] += b[c];
    }
  };
  if (a->size() < kElementwiseParallelWork || parallel::GlobalThreads() <= 1) {
    rows(0, a->rows());
  } else {
    parallel::ParallelFor(
        0, a->rows(),
        std::max<int64_t>(1, a->rows() / (4 * parallel::GlobalThreads())),
        rows);
  }
}

void SumRowsInto(const Matrix& a, Matrix* out) {
  out->Resize(1, a.cols());  // accumulates, so the zero-fill is load-bearing
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    for (int c = 0; c < a.cols(); ++c) out->At(0, c) += row[c];
  }
}

Matrix SumRows(const Matrix& a) {
  Matrix out;
  SumRowsInto(a, &out);
  return out;
}

void SoftmaxRowsInPlace(Matrix* a) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int r = 0; r < a->rows(); ++r) {
    float* row = a->RowPtr(r);
    float max_v = kNegInf;
    for (int c = 0; c < a->cols(); ++c) max_v = std::max(max_v, row[c]);
    GROUPSA_CHECK(max_v != kNegInf,
                  "SoftmaxRows: a row is fully masked (-inf everywhere)");
    double total = 0.0;
    for (int c = 0; c < a->cols(); ++c) {
      const float e = row[c] == kNegInf ? 0.0f : std::exp(row[c] - max_v);
      row[c] = e;
      total += e;
    }
    const float inv = 1.0f / static_cast<float>(total);
    for (int c = 0; c < a->cols(); ++c) row[c] *= inv;
  }
}

Matrix LogSumExpRows(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    float max_v = row[0];
    for (int c = 1; c < a.cols(); ++c) max_v = std::max(max_v, row[c]);
    double total = 0.0;
    for (int c = 0; c < a.cols(); ++c) total += std::exp(row[c] - max_v);
    out.At(r, 0) = max_v + static_cast<float>(std::log(total));
  }
  return out;
}

float Dot(const Matrix& a, const Matrix& b) {
  GROUPSA_CHECK(a.size() == b.size(), "Dot size mismatch");
  double total = 0.0;
  for (int i = 0; i < a.size(); ++i)
    total += static_cast<double>(a.data()[i]) * b.data()[i];
  return static_cast<float>(total);
}

float Dot(RowView a, RowView b) {
  GROUPSA_CHECK(a.cols == b.cols, "Dot size mismatch");
  double total = 0.0;
  for (int i = 0; i < a.cols; ++i)
    total += static_cast<double>(a.data[i]) * b.data[i];
  return static_cast<float>(total);
}

void ConcatColsInto(const std::vector<const Matrix*>& parts, Matrix* out) {
  GROUPSA_CHECK(!parts.empty(), "ConcatCols requires input");
  const int rows = parts[0]->rows();
  int cols = 0;
  for (const Matrix* p : parts) {
    GROUPSA_CHECK(p->rows() == rows, "ConcatCols row mismatch");
    cols += p->cols();
  }
  out->EnsureShape(rows, cols);
  for (int r = 0; r < rows; ++r) {
    int offset = 0;
    for (const Matrix* p : parts) {
      for (int c = 0; c < p->cols(); ++c) out->At(r, offset + c) = p->At(r, c);
      offset += p->cols();
    }
  }
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  Matrix out;
  ConcatColsInto(parts, &out);
  return out;
}

void ConcatRowsInto(const std::vector<const Matrix*>& parts, Matrix* out) {
  GROUPSA_CHECK(!parts.empty(), "ConcatRows requires input");
  const int cols = parts[0]->cols();
  int rows = 0;
  for (const Matrix* p : parts) {
    GROUPSA_CHECK(p->cols() == cols, "ConcatRows col mismatch");
    rows += p->rows();
  }
  out->EnsureShape(rows, cols);
  int offset = 0;
  for (const Matrix* p : parts) {
    for (int r = 0; r < p->rows(); ++r) out->SetRow(offset + r, p->RowPtr(r));
    offset += p->rows();
  }
}

Matrix ConcatRows(const std::vector<const Matrix*>& parts) {
  Matrix out;
  ConcatRowsInto(parts, &out);
  return out;
}

void GatherRowsInto(const Matrix& table, const std::vector<int>& row_ids,
                    Matrix* out) {
  out->EnsureShape(static_cast<int>(row_ids.size()), table.cols());
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const int id = row_ids[i];
    GROUPSA_CHECK(id >= 0 && id < table.rows(), "GatherRows id out of range");
    out->SetRow(static_cast<int>(i), table.RowPtr(id));
  }
}

Matrix GatherRows(const Matrix& table, const std::vector<int>& row_ids) {
  Matrix out;
  GatherRowsInto(table, row_ids, &out);
  return out;
}

}  // namespace groupsa::tensor
