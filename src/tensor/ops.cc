#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "tensor/backend.h"

namespace groupsa::tensor {
namespace {

// Work (in multiply-adds / elements) below which kernels stay serial; at
// these sizes the ParallelFor dispatch costs more than the loop body.
constexpr int64_t kGemmParallelWork = 1 << 18;       // m * n * k
constexpr int64_t kElementwiseParallelWork = 1 << 20;

// The GEMM row kernel itself lives in tensor/backends/kernels.inc and is
// compiled once per ISA; ActiveBackend() picks the variant for this machine.
// All variants are bit-identical (see tensor/backend.h), so routing through
// the dispatch table preserves every reproducibility contract the direct
// call used to carry.

// Shape-checks and prepares the destination; returns {m, k, n}.
struct GemmShape {
  int m, k, n;
};
GemmShape PrepareGemm(const Matrix& a, bool transpose_a, const Matrix& b,
                      bool transpose_b, Matrix* out, bool accumulate) {
  const int m = transpose_a ? a.cols() : a.rows();
  const int k = transpose_a ? a.rows() : a.cols();
  const int kb = transpose_b ? b.cols() : b.rows();
  const int n = transpose_b ? b.rows() : b.cols();
  GROUPSA_CHECK(k == kb, "Gemm inner dimension mismatch");
  if (!accumulate || out->rows() != m || out->cols() != n) {
    GROUPSA_CHECK(!accumulate || (out->rows() == m && out->cols() == n),
                  "Gemm accumulate shape mismatch");
    out->Resize(m, n);
  }
  return {m, k, n};
}

}  // namespace

void GemmSerial(const Matrix& a, bool transpose_a, const Matrix& b,
                bool transpose_b, float alpha, Matrix* out, bool accumulate) {
  const GemmShape s = PrepareGemm(a, transpose_a, b, transpose_b, out,
                                  accumulate);
  ActiveBackend().gemm_rows(a, transpose_a, b, transpose_b, alpha, out, s.k,
                            s.n, 0, s.m);
}

void Gemm(const Matrix& a, bool transpose_a, const Matrix& b, bool transpose_b,
          float alpha, Matrix* out, bool accumulate) {
  const GemmShape s = PrepareGemm(a, transpose_a, b, transpose_b, out,
                                  accumulate);
  const KernelBackend& kb = ActiveBackend();
  const int64_t work = int64_t{s.m} * s.k * s.n;
  const int threads = parallel::GlobalThreads();
  if (threads <= 1 || work < kGemmParallelWork || s.m < 2 * threads) {
    kb.gemm_rows(a, transpose_a, b, transpose_b, alpha, out, s.k, s.n, 0,
                 s.m);
    return;
  }
  // Tile over output rows: chunks write disjoint rows and each row is
  // computed exactly as in the serial kernel, so the result is bit-identical
  // at any thread count.
  const int64_t grain = std::max<int64_t>(1, s.m / (4 * threads));
  parallel::ParallelFor(0, s.m, grain, [&](int64_t begin, int64_t end) {
    kb.gemm_rows(a, transpose_a, b, transpose_b, alpha, out, s.k, s.n,
                 static_cast<int>(begin), static_cast<int>(end));
  });
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  Gemm(a, /*transpose_a=*/false, b, /*transpose_b=*/false, 1.0f, &out);
  return out;
}

void TransposeInto(const Matrix& a, Matrix* out) {
  out->EnsureShape(a.cols(), a.rows());
  auto rows = [&](int64_t begin, int64_t end) {
    for (int r = static_cast<int>(begin); r < end; ++r)
      for (int c = 0; c < a.cols(); ++c) out->At(c, r) = a.At(r, c);
  };
  if (a.size() < kElementwiseParallelWork || parallel::GlobalThreads() <= 1) {
    rows(0, a.rows());
  } else {
    parallel::ParallelFor(
        0, a.rows(),
        std::max<int64_t>(1, a.rows() / (4 * parallel::GlobalThreads())),
        rows);
  }
}

Matrix Transpose(const Matrix& a) {
  Matrix out;
  TransposeInto(a, &out);
  return out;
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GROUPSA_CHECK(a.SameShape(b), "Hadamard shape mismatch");
  out->EnsureShape(a.rows(), a.cols());
  auto span = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i)
      out->data()[i] = a.data()[i] * b.data()[i];
  };
  if (a.size() < kElementwiseParallelWork || parallel::GlobalThreads() <= 1) {
    span(0, a.size());
  } else {
    parallel::ParallelFor(
        0, a.size(),
        std::max<int64_t>(1, a.size() / (4 * parallel::GlobalThreads())),
        span);
  }
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  Matrix out;
  HadamardInto(a, b, &out);
  return out;
}

void AddRowBroadcastInPlace(Matrix* a, const Matrix& bias) {
  GROUPSA_CHECK(bias.rows() == 1 && bias.cols() == a->cols(),
                "AddRowBroadcast bias must be 1 x cols");
  auto rows = [&](int64_t begin, int64_t end) {
    for (int r = static_cast<int>(begin); r < end; ++r) {
      float* row = a->RowPtr(r);
      const float* b = bias.RowPtr(0);
      for (int c = 0; c < a->cols(); ++c) row[c] += b[c];
    }
  };
  if (a->size() < kElementwiseParallelWork || parallel::GlobalThreads() <= 1) {
    rows(0, a->rows());
  } else {
    parallel::ParallelFor(
        0, a->rows(),
        std::max<int64_t>(1, a->rows() / (4 * parallel::GlobalThreads())),
        rows);
  }
}

void SumRowsInto(const Matrix& a, Matrix* out) {
  out->Resize(1, a.cols());  // accumulates, so the zero-fill is load-bearing
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    for (int c = 0; c < a.cols(); ++c) out->At(0, c) += row[c];
  }
}

Matrix SumRows(const Matrix& a) {
  Matrix out;
  SumRowsInto(a, &out);
  return out;
}

void SoftmaxRowsInPlace(Matrix* a) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int r = 0; r < a->rows(); ++r) {
    float* row = a->RowPtr(r);
    float max_v = kNegInf;
    for (int c = 0; c < a->cols(); ++c) max_v = std::max(max_v, row[c]);
    GROUPSA_CHECK(max_v != kNegInf,
                  "SoftmaxRows: a row is fully masked (-inf everywhere)");
    double total = 0.0;
    for (int c = 0; c < a->cols(); ++c) {
      const float e = row[c] == kNegInf ? 0.0f : std::exp(row[c] - max_v);
      row[c] = e;
      total += e;
    }
    const float inv = 1.0f / static_cast<float>(total);
    for (int c = 0; c < a->cols(); ++c) row[c] *= inv;
  }
}

Matrix LogSumExpRows(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    float max_v = row[0];
    for (int c = 1; c < a.cols(); ++c) max_v = std::max(max_v, row[c]);
    double total = 0.0;
    for (int c = 0; c < a.cols(); ++c) total += std::exp(row[c] - max_v);
    out.At(r, 0) = max_v + static_cast<float>(std::log(total));
  }
  return out;
}

float Dot(const Matrix& a, const Matrix& b) {
  GROUPSA_CHECK(a.size() == b.size(), "Dot size mismatch");
  double total = 0.0;
  for (int i = 0; i < a.size(); ++i)
    total += static_cast<double>(a.data()[i]) * b.data()[i];
  return static_cast<float>(total);
}

float Dot(RowView a, RowView b) {
  GROUPSA_CHECK(a.cols == b.cols, "Dot size mismatch");
  double total = 0.0;
  for (int i = 0; i < a.cols; ++i)
    total += static_cast<double>(a.data[i]) * b.data[i];
  return static_cast<float>(total);
}

void ConcatColsInto(const std::vector<const Matrix*>& parts, Matrix* out) {
  GROUPSA_CHECK(!parts.empty(), "ConcatCols requires input");
  const int rows = parts[0]->rows();
  int cols = 0;
  for (const Matrix* p : parts) {
    GROUPSA_CHECK(p->rows() == rows, "ConcatCols row mismatch");
    cols += p->cols();
  }
  out->EnsureShape(rows, cols);
  for (int r = 0; r < rows; ++r) {
    int offset = 0;
    for (const Matrix* p : parts) {
      for (int c = 0; c < p->cols(); ++c) out->At(r, offset + c) = p->At(r, c);
      offset += p->cols();
    }
  }
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  Matrix out;
  ConcatColsInto(parts, &out);
  return out;
}

void ConcatRowsInto(const std::vector<const Matrix*>& parts, Matrix* out) {
  GROUPSA_CHECK(!parts.empty(), "ConcatRows requires input");
  const int cols = parts[0]->cols();
  int rows = 0;
  for (const Matrix* p : parts) {
    GROUPSA_CHECK(p->cols() == cols, "ConcatRows col mismatch");
    rows += p->rows();
  }
  out->EnsureShape(rows, cols);
  int offset = 0;
  for (const Matrix* p : parts) {
    for (int r = 0; r < p->rows(); ++r) out->SetRow(offset + r, p->RowPtr(r));
    offset += p->rows();
  }
}

Matrix ConcatRows(const std::vector<const Matrix*>& parts) {
  Matrix out;
  ConcatRowsInto(parts, &out);
  return out;
}

void GatherRowsInto(const Matrix& table, const std::vector<int>& row_ids,
                    Matrix* out) {
  out->EnsureShape(static_cast<int>(row_ids.size()), table.cols());
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const int id = row_ids[i];
    GROUPSA_CHECK(id >= 0 && id < table.rows(), "GatherRows id out of range");
    out->SetRow(static_cast<int>(i), table.RowPtr(id));
  }
}

Matrix GatherRows(const Matrix& table, const std::vector<int>& row_ids) {
  Matrix out;
  GatherRowsInto(table, row_ids, &out);
  return out;
}

}  // namespace groupsa::tensor
