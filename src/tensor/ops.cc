#include "tensor/ops.h"

#include <cmath>
#include <limits>

namespace groupsa::tensor {

void Gemm(const Matrix& a, bool transpose_a, const Matrix& b, bool transpose_b,
          float alpha, Matrix* out, bool accumulate) {
  const int m = transpose_a ? a.cols() : a.rows();
  const int k = transpose_a ? a.rows() : a.cols();
  const int kb = transpose_b ? b.cols() : b.rows();
  const int n = transpose_b ? b.rows() : b.cols();
  GROUPSA_CHECK(k == kb, "Gemm inner dimension mismatch");
  if (!accumulate || out->rows() != m || out->cols() != n) {
    GROUPSA_CHECK(!accumulate || (out->rows() == m && out->cols() == n),
                  "Gemm accumulate shape mismatch");
    out->Resize(m, n);
  }
  // i-k-j loop order keeps the inner loop contiguous for the common
  // no-transpose case; the transposed cases swap index roles.
  for (int i = 0; i < m; ++i) {
    float* out_row = out->RowPtr(i);
    for (int kk = 0; kk < k; ++kk) {
      const float a_ik =
          alpha * (transpose_a ? a.At(kk, i) : a.At(i, kk));
      if (a_ik == 0.0f) continue;
      if (!transpose_b) {
        const float* b_row = b.RowPtr(kk);
        for (int j = 0; j < n; ++j) out_row[j] += a_ik * b_row[j];
      } else {
        for (int j = 0; j < n; ++j) out_row[j] += a_ik * b.At(j, kk);
      }
    }
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out;
  Gemm(a, /*transpose_a=*/false, b, /*transpose_b=*/false, 1.0f, &out);
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out.At(c, r) = a.At(r, c);
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  GROUPSA_CHECK(a.SameShape(b), "Hadamard shape mismatch");
  Matrix out(a.rows(), a.cols());
  for (int i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

void AddRowBroadcastInPlace(Matrix* a, const Matrix& bias) {
  GROUPSA_CHECK(bias.rows() == 1 && bias.cols() == a->cols(),
                "AddRowBroadcast bias must be 1 x cols");
  for (int r = 0; r < a->rows(); ++r) {
    float* row = a->RowPtr(r);
    const float* b = bias.RowPtr(0);
    for (int c = 0; c < a->cols(); ++c) row[c] += b[c];
  }
}

Matrix SumRows(const Matrix& a) {
  Matrix out(1, a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    for (int c = 0; c < a.cols(); ++c) out.At(0, c) += row[c];
  }
  return out;
}

void SoftmaxRowsInPlace(Matrix* a) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (int r = 0; r < a->rows(); ++r) {
    float* row = a->RowPtr(r);
    float max_v = kNegInf;
    for (int c = 0; c < a->cols(); ++c) max_v = std::max(max_v, row[c]);
    GROUPSA_CHECK(max_v != kNegInf,
                  "SoftmaxRows: a row is fully masked (-inf everywhere)");
    double total = 0.0;
    for (int c = 0; c < a->cols(); ++c) {
      const float e = row[c] == kNegInf ? 0.0f : std::exp(row[c] - max_v);
      row[c] = e;
      total += e;
    }
    const float inv = 1.0f / static_cast<float>(total);
    for (int c = 0; c < a->cols(); ++c) row[c] *= inv;
  }
}

Matrix LogSumExpRows(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    float max_v = row[0];
    for (int c = 1; c < a.cols(); ++c) max_v = std::max(max_v, row[c]);
    double total = 0.0;
    for (int c = 0; c < a.cols(); ++c) total += std::exp(row[c] - max_v);
    out.At(r, 0) = max_v + static_cast<float>(std::log(total));
  }
  return out;
}

float Dot(const Matrix& a, const Matrix& b) {
  GROUPSA_CHECK(a.size() == b.size(), "Dot size mismatch");
  double total = 0.0;
  for (int i = 0; i < a.size(); ++i)
    total += static_cast<double>(a.data()[i]) * b.data()[i];
  return static_cast<float>(total);
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  GROUPSA_CHECK(!parts.empty(), "ConcatCols requires input");
  const int rows = parts[0]->rows();
  int cols = 0;
  for (const Matrix* p : parts) {
    GROUPSA_CHECK(p->rows() == rows, "ConcatCols row mismatch");
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    int offset = 0;
    for (const Matrix* p : parts) {
      for (int c = 0; c < p->cols(); ++c) out.At(r, offset + c) = p->At(r, c);
      offset += p->cols();
    }
  }
  return out;
}

Matrix ConcatRows(const std::vector<const Matrix*>& parts) {
  GROUPSA_CHECK(!parts.empty(), "ConcatRows requires input");
  const int cols = parts[0]->cols();
  int rows = 0;
  for (const Matrix* p : parts) {
    GROUPSA_CHECK(p->cols() == cols, "ConcatRows col mismatch");
    rows += p->rows();
  }
  Matrix out(rows, cols);
  int offset = 0;
  for (const Matrix* p : parts) {
    for (int r = 0; r < p->rows(); ++r) out.SetRow(offset + r, p->RowPtr(r));
    offset += p->rows();
  }
  return out;
}

Matrix GatherRows(const Matrix& table, const std::vector<int>& row_ids) {
  Matrix out(static_cast<int>(row_ids.size()), table.cols());
  for (size_t i = 0; i < row_ids.size(); ++i) {
    const int id = row_ids[i];
    GROUPSA_CHECK(id >= 0 && id < table.rows(), "GatherRows id out of range");
    out.SetRow(static_cast<int>(i), table.RowPtr(id));
  }
  return out;
}

}  // namespace groupsa::tensor
