#ifndef GROUPSA_TENSOR_MATRIX_H_
#define GROUPSA_TENSOR_MATRIX_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace groupsa::tensor {

// Non-owning read-only view of one matrix row: a pointer plus the column
// count. Row() returns a fresh 1 x d Matrix — a heap allocation per call —
// which is fine in tests but not in loops that only read; those take a
// RowView (Matrix::RowAt) instead. The view borrows the matrix's storage,
// so it must not outlive the matrix or survive a Resize.
struct RowView {
  const float* data = nullptr;
  int cols = 0;

  float operator[](int c) const {
    GROUPSA_DCHECK(c >= 0 && c < cols, "RowView index out of range");
    return data[c];
  }
  const float* begin() const { return data; }
  const float* end() const { return data + cols; }
};

// Dense row-major float matrix. A row vector is a 1 x d matrix; a column
// vector is d x 1. This is the single storage type underlying the autodiff
// layer; all heavy math lives in tensor/ops.h.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) { Resize(rows, cols); }
  Matrix(int rows, int cols, float fill_value) {
    Resize(rows, cols);
    Fill(fill_value);
  }
  // Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);
  // 1 x n row vector from values.
  static Matrix RowVector(const std::vector<float>& values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& At(int r, int c) {
    GROUPSA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "Matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    GROUPSA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "Matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float& operator()(int r, int c) { return At(r, c); }
  float operator()(int r, int c) const { return At(r, c); }

  float* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Resize(int rows, int cols);
  // Like Resize but skips the zero-fill when the shape already matches, in
  // which case the existing contents are left as-is. For destinations that
  // are fully overwritten anyway (copies, gathers, concats); callers that
  // need zeroed storage use Resize.
  void EnsureShape(int rows, int cols) {
    if (rows != rows_ || cols != cols_) Resize(rows, cols);
  }
  // Becomes an element-for-element copy of `src`, reusing the existing
  // storage when its capacity suffices: copying into a recycled matrix of
  // the same shape performs no allocation.
  void CopyFrom(const Matrix& src);
  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Element-wise in-place helpers.
  void AddInPlace(const Matrix& other);
  void SubInPlace(const Matrix& other);
  void ScaleInPlace(float factor);
  // this += factor * other.
  void AxpyInPlace(float factor, const Matrix& other);

  // Copies `src` (1 x cols or cols-wide row of another matrix) into row r.
  void SetRow(int r, const float* src);
  // Extracts row r as a 1 x cols matrix (allocates; test/debug use).
  Matrix Row(int r) const;
  // Borrows row r without allocating; see RowView above.
  RowView RowAt(int r) const {
    GROUPSA_DCHECK(r >= 0 && r < rows_, "RowAt index out of range");
    return RowView{RowPtr(r), cols_};
  }

  // Random fills.
  void FillUniform(Rng* rng, float lo, float hi);
  void FillGaussian(Rng* rng, float mean, float stddev);

  // Reductions.
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  // Frobenius norm squared.
  float SquaredNorm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Human-readable rendering for debugging and test failure messages.
  std::string DebugString(int max_rows = 8, int max_cols = 8) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// True when matrices have equal shape and all entries are within `tolerance`.
bool AllClose(const Matrix& a, const Matrix& b, float tolerance = 1e-5f);

// RowView comparisons (a Matrix operand must be a single row of the same
// width). Mirrors AllClose(Matrix, Matrix) for call sites migrated to views.
bool AllClose(RowView a, RowView b, float tolerance = 1e-5f);
bool AllClose(const Matrix& a, RowView b, float tolerance = 1e-5f);
bool AllClose(RowView a, const Matrix& b, float tolerance = 1e-5f);

}  // namespace groupsa::tensor

#endif  // GROUPSA_TENSOR_MATRIX_H_
