#ifndef GROUPSA_TENSOR_MATRIX_H_
#define GROUPSA_TENSOR_MATRIX_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace groupsa::tensor {

// Dense row-major float matrix. A row vector is a 1 x d matrix; a column
// vector is d x 1. This is the single storage type underlying the autodiff
// layer; all heavy math lives in tensor/ops.h.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) { Resize(rows, cols); }
  Matrix(int rows, int cols, float fill_value) {
    Resize(rows, cols);
    Fill(fill_value);
  }
  // Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);
  // 1 x n row vector from values.
  static Matrix RowVector(const std::vector<float>& values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& At(int r, int c) {
    GROUPSA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "Matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    GROUPSA_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "Matrix index out of range");
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float& operator()(int r, int c) { return At(r, c); }
  float operator()(int r, int c) const { return At(r, c); }

  float* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Resize(int rows, int cols);
  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Element-wise in-place helpers.
  void AddInPlace(const Matrix& other);
  void SubInPlace(const Matrix& other);
  void ScaleInPlace(float factor);
  // this += factor * other.
  void AxpyInPlace(float factor, const Matrix& other);

  // Copies `src` (1 x cols or cols-wide row of another matrix) into row r.
  void SetRow(int r, const float* src);
  // Extracts row r as a 1 x cols matrix.
  Matrix Row(int r) const;

  // Random fills.
  void FillUniform(Rng* rng, float lo, float hi);
  void FillGaussian(Rng* rng, float mean, float stddev);

  // Reductions.
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  // Frobenius norm squared.
  float SquaredNorm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Human-readable rendering for debugging and test failure messages.
  std::string DebugString(int max_rows = 8, int max_cols = 8) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// True when matrices have equal shape and all entries are within `tolerance`.
bool AllClose(const Matrix& a, const Matrix& b, float tolerance = 1e-5f);

}  // namespace groupsa::tensor

#endif  // GROUPSA_TENSOR_MATRIX_H_
