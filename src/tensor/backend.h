#ifndef GROUPSA_TENSOR_BACKEND_H_
#define GROUPSA_TENSOR_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace groupsa::tensor {

// Runtime kernel dispatch.
//
// The hot compute kernels — the GEMM row kernel, the fused attention-logit
// loop, and the int8 row-dot — are compiled once per ISA into separate
// translation units (tensor/backends/backend_{scalar,avx2,avx512}.cc, each
// including the same kernel bodies from tensor/backends/kernels.inc with
// that ISA's compile flags), and one variant is selected by CPUID at
// startup. This replaces the old scheme of compiling tensor/ops.cc itself
// with host SIMD flags, which produced binaries that crashed on narrower
// machines than the build host.
//
// Bit-exactness contract: every backend returns BIT-IDENTICAL results.
// Vector width only changes how many independent output columns are
// processed per instruction, never the order in which any single element
// accumulates its terms, and all backend TUs compile with -mno-fma
// -ffp-contract=off so no variant fuses a multiply-add into a single
// rounding. The int8 dot is integer arithmetic and exact everywhere.
// tests/tensor/backend_test.cc runs every compiled backend against the
// scalar reference and enforces the contract.
//
// Hidden widths up to kMaxFusedHidden use the fused attention-logit kernel
// (stack accumulator); the inference engine routes wider configs through
// its buffered Gemm fallback.
constexpr int kMaxFusedHidden = 128;

struct KernelBackend {
  const char* name;  // "scalar" | "avx2" | "avx512"
  // True when the host CPU can execute this backend's instructions.
  bool (*runnable)();
  // Output rows [row_begin, row_end) of out = alpha * op(a) * op(b), with
  // out pre-seeded (the accumulate path) or zeroed by the caller. See the
  // kernel commentary in tensor/backends/kernels.inc.
  void (*gemm_rows)(const Matrix& a, bool transpose_a, const Matrix& b,
                    bool transpose_b, float alpha, Matrix* out, int k, int n,
                    int row_begin, int row_end);
  // Fused attention logits for `c` items x `l` members at hidden width `h`
  // (h <= kMaxFusedHidden); dispatches internally to the fixed-width
  // instantiations for the model's layer widths. Semantics documented at
  // the kernel definition in tensor/backends/kernels.inc.
  void (*attention_logits)(const Matrix& prefix, const int* ids, int c, int l,
                           int h, const Matrix& addends,
                           const std::vector<int>& nz,
                           const std::vector<int>& nz_begin, const float* hb,
                           const float* wout, bool has_ob, float out_b,
                           Matrix* out);
  // int8 x int8 -> int32 row dots: out[r] = sum_j q[j] * row_r[j] where
  // row_r = table + (ids != nullptr ? ids[r] : r) * d. Accumulation is
  // exact in int32 for every d this model uses (|sum| <= 127*127*d).
  void (*dot_i8_rows)(const int8_t* q, const int8_t* table, const int* ids,
                      int rows, int d, int32_t* out);
};

// Every backend compiled into this binary, scalar first, then ascending
// vector width. Scalar is always present; avx2/avx512 are present when the
// toolchain supported their flags and GROUPSA_SIMD_KERNELS was ON.
const std::vector<const KernelBackend*>& CompiledBackends();

// The selected backend. The first call selects and logs: the
// GROUPSA_KERNEL_BACKEND env override when set (a CHECK failure names the
// runnable backends if the override is unknown or the host cannot run it),
// otherwise the widest runnable backend.
const KernelBackend& ActiveBackend();

// Name of the selected backend ("scalar" | "avx2" | "avx512").
const char* ActiveBackendName();

// Host ISA summary for the startup log ("sse2 avx2 avx512f" on a full
// AVX-512 machine).
std::string DetectedCpuFeatures();

// Selects a backend by name. Returns false (and changes nothing) when the
// name is unknown, the backend is not compiled in, or the host cannot run
// it. Setup-time call: must not race with in-flight kernels.
bool SelectBackendByName(const std::string& name);

// Test hook: forces `backend` (nullptr restores the automatic choice).
void SetBackendForTest(const KernelBackend* backend);

}  // namespace groupsa::tensor

#endif  // GROUPSA_TENSOR_BACKEND_H_
