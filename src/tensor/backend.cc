#include "tensor/backend.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "tensor/backends/backends.h"

namespace groupsa::tensor {
namespace {

std::string JoinNames(const std::vector<const KernelBackend*>& backends) {
  std::string out;
  for (const KernelBackend* b : backends) {
    if (!out.empty()) out += " ";
    out += b->name;
  }
  return out;
}

std::string RunnableNames() {
  std::vector<const KernelBackend*> runnable;
  for (const KernelBackend* b : CompiledBackends())
    if (b->runnable()) runnable.push_back(b);
  return JoinNames(runnable);
}

// The forced backend (env override, SelectBackendByName, or the test hook);
// nullptr means "use the automatic choice". Atomic so concurrent kernel
// entry points read it without a lock; writes are setup-time only.
std::atomic<const KernelBackend*> g_forced{nullptr};

const KernelBackend* FindByName(const std::string& name) {
  for (const KernelBackend* b : CompiledBackends())
    if (name == b->name) return b;
  return nullptr;
}

// Selects once, honoring GROUPSA_KERNEL_BACKEND, and logs the choice. The
// magic static makes the selection (and its log line) happen exactly once
// even under concurrent first use.
const KernelBackend* AutomaticBackend() {
  static const KernelBackend* const selected = [] {
    const char* env = std::getenv("GROUPSA_KERNEL_BACKEND");
    const KernelBackend* chosen = nullptr;
    if (env != nullptr && env[0] != '\0') {
      const KernelBackend* named = FindByName(env);
      const std::string err =
          StrFormat("GROUPSA_KERNEL_BACKEND=%s is not a runnable backend on "
                    "this machine (compiled: %s; runnable: %s)",
                    env, JoinNames(CompiledBackends()).c_str(),
                    RunnableNames().c_str());
      GROUPSA_CHECK(named != nullptr && named->runnable(), err.c_str());
      chosen = named;
    } else {
      // Widest runnable wins: CompiledBackends() is ordered scalar -> avx2
      // -> avx512, and scalar always runs.
      for (const KernelBackend* b : CompiledBackends())
        if (b->runnable()) chosen = b;
    }
    LogInfo(StrFormat("kernel dispatch: cpu [%s], compiled [%s], selected "
                      "%s%s",
                      DetectedCpuFeatures().c_str(),
                      JoinNames(CompiledBackends()).c_str(), chosen->name,
                      env != nullptr && env[0] != '\0'
                          ? " (GROUPSA_KERNEL_BACKEND override)"
                          : ""));
    return chosen;
  }();
  return selected;
}

}  // namespace

const std::vector<const KernelBackend*>& CompiledBackends() {
  static const std::vector<const KernelBackend*> all = [] {
    std::vector<const KernelBackend*> list;
    list.push_back(&backends::ScalarBackend());
#if defined(GROUPSA_HAVE_AVX2_BACKEND)
    list.push_back(&backends::Avx2Backend());
#endif
#if defined(GROUPSA_HAVE_AVX512_BACKEND)
    list.push_back(&backends::Avx512Backend());
#endif
    return list;
  }();
  return all;
}

const KernelBackend& ActiveBackend() {
  const KernelBackend* forced = g_forced.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  return *AutomaticBackend();
}

const char* ActiveBackendName() { return ActiveBackend().name; }

std::string DetectedCpuFeatures() {
  __builtin_cpu_init();
  std::string features = "sse2";
  if (__builtin_cpu_supports("avx") != 0) features += " avx";
  if (__builtin_cpu_supports("avx2") != 0) features += " avx2";
  if (__builtin_cpu_supports("avx512f") != 0) features += " avx512f";
  return features;
}

bool SelectBackendByName(const std::string& name) {
  const KernelBackend* b = FindByName(name);
  if (b == nullptr || !b->runnable()) return false;
  g_forced.store(b, std::memory_order_release);
  return true;
}

void SetBackendForTest(const KernelBackend* backend) {
  g_forced.store(backend, std::memory_order_release);
}

}  // namespace groupsa::tensor
