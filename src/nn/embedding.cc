#include "nn/embedding.h"

#include "nn/init.h"

namespace groupsa::nn {

Embedding::Embedding(const std::string& name, int count, int dim, Rng* rng) {
  table_ = RegisterParameter(name + ".table", count, dim);
  GlorotUniform(&table_->mutable_value(), count, dim, rng);
  MarkSparse(table_, &touched_rows_);
}

ag::TensorPtr Embedding::Forward(ag::Tape* tape, const std::vector<int>& ids) {
  return ag::GatherRows(tape, table_, ids, &touched_rows_);
}

ag::TensorPtr Embedding::Lookup(ag::Tape* tape, int id) {
  return Forward(tape, {id});
}

void Embedding::SetTable(const tensor::Matrix& values) {
  GROUPSA_CHECK(values.SameShape(table_->value()),
                "SetTable shape mismatch");
  table_->mutable_value() = values;
}

}  // namespace groupsa::nn
