#ifndef GROUPSA_NN_LAYER_NORM_H_
#define GROUPSA_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace groupsa::nn {

// Per-row layer normalization with learned gain (init 1) and bias (init 0),
// as used after each voting-scheme sub-layer (Sec. II-C).
class LayerNorm : public Module {
 public:
  LayerNorm(const std::string& name, int dim);

  ag::TensorPtr Forward(ag::Tape* tape, const ag::TensorPtr& x) const;

  int dim() const { return gain_->cols(); }

 private:
  ag::TensorPtr gain_;
  ag::TensorPtr bias_;
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_LAYER_NORM_H_
