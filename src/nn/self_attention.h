#ifndef GROUPSA_NN_SELF_ATTENTION_H_
#define GROUPSA_NN_SELF_ATTENTION_H_

#include <functional>

#include "autograd/tape.h"
#include "nn/module.h"

namespace groupsa::nn {

// Output of one social self-attention application.
struct SelfAttentionOutput {
  ag::TensorPtr values;       // l x d_v
  tensor::Matrix attention;   // l x l post-softmax weights (introspection)
};

// Scaled dot-product self-attention with an additive social bias matrix
// (Eq. 1-5): row i of the attention matrix is the i-th sub-voting process,
// and entries where users lack a social connection carry a -infinity bias so
// their weight is exactly zero.
class SocialSelfAttention : public Module {
 public:
  // d_model is the input width; d_k the query/key width; d_v the value width
  // (the paper sets all three to 32). When `small_value_init` is set, the
  // value projection starts near zero so a residual block wrapping this
  // attention begins as the identity (see TransformerBlock).
  SocialSelfAttention(const std::string& name, int d_model, int d_k, int d_v,
                      Rng* rng, bool small_value_init = false);

  // `x` is l x d_model; `social_bias` is an l x l additive mask whose entries
  // are 0 (attend) or -infinity (masked). Pass nullptr for unmasked
  // self-attention (the Group-S/plain variant).
  SelfAttentionOutput Forward(ag::Tape* tape, const ag::TensorPtr& x,
                              const tensor::Matrix* social_bias) const;

  int d_model() const { return d_model_; }
  int d_v() const { return d_v_; }

 private:
  int d_model_;
  int d_k_;
  int d_v_;
  ag::TensorPtr w_query_;
  ag::TensorPtr w_key_;
  ag::TensorPtr w_value_;
};

// Builds the social bias matrix S for a group (Eq. 5): S[i][j] = 0 when
// members i and j are directly connected in the social network or i == j
// (a member always attends to herself, keeping every softmax row finite),
// and -infinity otherwise. `connected(i, j)` gives the f(i,j) > 0 predicate
// over local member indices.
tensor::Matrix MakeSocialBias(
    int group_size, const std::function<bool(int, int)>& connected);

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_SELF_ATTENTION_H_
