#ifndef GROUPSA_NN_CHECKPOINT_H_
#define GROUPSA_NN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace groupsa::nn {

// Serializes parameters to a simple binary format (magic, count, then
// name/shape/data records). Loading matches by name and CHECK-fails shape
// mismatches; unknown names in the file are an error, missing names in the
// file leave the parameter untouched and are reported in the Status message.
Status SaveParameters(const std::vector<ParamEntry>& params,
                      const std::string& path);
Status LoadParameters(const std::vector<ParamEntry>& params,
                      const std::string& path);

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_CHECKPOINT_H_
