#ifndef GROUPSA_NN_CHECKPOINT_H_
#define GROUPSA_NN_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace groupsa::nn {

// Checkpoint format v2 — the crash-safe container every training artifact
// lives in.
//
// Layout (all integers little-endian):
//
//   u32 magic "GSP2"   u32 version=2   u32 num_sections
//   per section:  name (u32 len + bytes)   u64 payload_len
//                 u32 payload_crc32        payload bytes
//   trailer:      u32 file_crc32 over every preceding byte
//
// Sections are opaque named payloads: "params" holds the parameter tensors
// (per-record CRC32 inside, see EncodeParameters), and the trainer adds
// "adam" / "trainer" sections for full training-state snapshots
// (core/trainer.h). Three CRC tiers — record, section, file — mean a torn
// write, a truncation or a flipped bit anywhere is detected at load time and
// reported as a Status, never silently served.
//
// Durability: Commit() writes to `path + ".tmp"`, flushes, fsync()s, then
// rename()s over `path`. POSIX rename is atomic, so a reader (or a process
// killed mid-write) sees either the complete previous checkpoint or the
// complete new one — never a mix. Stale ".tmp" files from a killed writer
// are overwritten by the next Commit.
//
// Failpoints (common/failpoint.h) for fault-injection tests and CI:
//   "checkpoint.write"   hit once per 64 KiB chunk written; error = the
//                        write fails (ENOSPC mid-file), corrupt = one bit
//                        of the chunk is flipped before it hits the disk,
//                        kill = the process dies with a partial tmp file.
//   "checkpoint.fsync"   hit before fsync; kill here models power loss
//                        after the data was handed to the page cache.
//   "checkpoint.rename"  hit before the atomic rename; error = the rename
//                        fails (checkpoint keeps its previous content).
class CheckpointWriter {
 public:
  // Adds a named section. Section names must be unique per file.
  void AddSection(const std::string& name, std::string payload);

  // Atomically writes the assembled file to `path` (tmp -> fsync -> rename).
  // On any failure the previous file at `path` is untouched.
  Status Commit(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

// Reads and fully verifies a v2 checkpoint: file CRC, header, section
// directory, per-section CRCs. A v1 file (magic "GSPA") or any corruption is
// rejected with a descriptive Status and nothing is exposed.
class CheckpointReader {
 public:
  static Status Read(const std::string& path, CheckpointReader* out);

  bool Has(const std::string& name) const;
  // Null when the section is absent.
  const std::string* Find(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

// Parameter-section codec. EncodeParameters lays out count + per-parameter
// records (name, shape, float data, record CRC32). DecodeParameters stages
// every tensor first and commits all-or-nothing: on any error — unknown
// name, shape mismatch, truncated record, CRC failure, missing parameters —
// the live model is left bit-for-bit untouched.
std::string EncodeParameters(const std::vector<ParamEntry>& params);
Status DecodeParameters(const std::vector<ParamEntry>& params,
                        const std::string& payload);

// Whole-model convenience wrappers over a single-"params"-section v2 file.
Status SaveParameters(const std::vector<ParamEntry>& params,
                      const std::string& path);
Status LoadParameters(const std::vector<ParamEntry>& params,
                      const std::string& path);

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_CHECKPOINT_H_
