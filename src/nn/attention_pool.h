#ifndef GROUPSA_NN_ATTENTION_POOL_H_
#define GROUPSA_NN_ATTENTION_POOL_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace groupsa::nn {

// Output of a vanilla-attention aggregation: the pooled vector plus a copy of
// the (post-softmax) weights for introspection (Table IV case study).
struct AttentionPoolOutput {
  ag::TensorPtr pooled;     // 1 x d
  tensor::Matrix weights;   // 1 x l
};

// The paper's two-layer vanilla attention network, used three times with the
// same shape (Eq. 8-10 group aggregation, Eq. 12-14 item aggregation,
// Eq. 16-18 social aggregation):
//
//   score_i = w2^T . relu(W1 [guide (+) context_i] + b1) + b2
//   weights = softmax(score)
//   pooled  = sum_i weights_i * context_i
class AttentionPool : public Module {
 public:
  // `guide_dim` is the width of the guide vector, `context_dim` of each
  // context row, `hidden_dim` of the scoring MLP's hidden layer.
  AttentionPool(const std::string& name, int guide_dim, int context_dim,
                int hidden_dim, Rng* rng);

  // `guide` is 1 x guide_dim; `context` is l x context_dim with l >= 1.
  AttentionPoolOutput Forward(ag::Tape* tape, const ag::TensorPtr& guide,
                              const ag::TensorPtr& context) const;

  // Scoring-net layers, exposed so batched no-tape forwards
  // (core::InferenceEngine) can run many guides against one context in a
  // single GEMM while replaying Forward()'s exact per-row math.
  const Linear& score_hidden() const { return *score_hidden_; }
  const Linear& score_out() const { return *score_out_; }

 private:
  std::unique_ptr<Linear> score_hidden_;  // (guide+context) -> hidden
  std::unique_ptr<Linear> score_out_;     // hidden -> 1
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_ATTENTION_POOL_H_
