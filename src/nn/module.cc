#include "nn/module.h"

namespace groupsa::nn {

std::vector<ParamEntry> Module::Parameters() const {
  std::vector<ParamEntry> all = own_params_;
  for (const auto& [prefix, child] : children_) {
    for (ParamEntry entry : child->Parameters()) {
      entry.name = prefix + "/" + entry.name;
      all.push_back(std::move(entry));
    }
  }
  return all;
}

void Module::ZeroGrad() const {
  for (const ParamEntry& entry : Parameters()) entry.tensor->ZeroGrad();
}

int64_t Module::NumParameterScalars() const {
  int64_t total = 0;
  for (const ParamEntry& entry : Parameters())
    total += entry.tensor->value().size();
  return total;
}

ag::TensorPtr Module::RegisterParameter(const std::string& name, int rows,
                                        int cols) {
  ag::TensorPtr t = ag::Parameter(rows, cols);
  t->set_name(name);
  own_params_.push_back(ParamEntry{name, t, nullptr});
  return t;
}

void Module::MarkSparse(const ag::TensorPtr& tensor,
                        std::unordered_set<int>* touched_rows) {
  for (ParamEntry& entry : own_params_) {
    if (entry.tensor == tensor) {
      entry.touched_rows = touched_rows;
      return;
    }
  }
  GROUPSA_CHECK(false, "MarkSparse: tensor is not a registered parameter");
}

void Module::RegisterSubmodule(const std::string& prefix, const Module* child) {
  GROUPSA_CHECK(child != nullptr, "RegisterSubmodule: null child");
  children_.emplace_back(prefix, child);
}

}  // namespace groupsa::nn
