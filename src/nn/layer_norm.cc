#include "nn/layer_norm.h"

namespace groupsa::nn {

LayerNorm::LayerNorm(const std::string& name, int dim) {
  gain_ = RegisterParameter(name + ".gain", 1, dim);
  bias_ = RegisterParameter(name + ".bias", 1, dim);
  gain_->mutable_value().Fill(1.0f);
}

ag::TensorPtr LayerNorm::Forward(ag::Tape* tape,
                                 const ag::TensorPtr& x) const {
  return ag::LayerNorm(tape, x, gain_, bias_);
}

}  // namespace groupsa::nn
