#ifndef GROUPSA_NN_EMBEDDING_H_
#define GROUPSA_NN_EMBEDDING_H_

#include <unordered_set>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

namespace groupsa::nn {

// Embedding table (count x dim), Glorot-initialized per the paper. Lookups
// record touched rows so sparse optimizers update only those rows.
class Embedding : public Module {
 public:
  Embedding(const std::string& name, int count, int dim, Rng* rng);

  // Gathers rows for `ids`; output is |ids| x dim.
  ag::TensorPtr Forward(ag::Tape* tape, const std::vector<int>& ids);

  // Single-row lookup; output is 1 x dim.
  ag::TensorPtr Lookup(ag::Tape* tape, int id);

  // Direct (no-grad) read of a row, for inference-only scoring paths.
  // Returns a borrowed view — no allocation, no copy; valid until the table
  // is mutated or resized.
  tensor::RowView Row(int id) const { return table_->value().RowAt(id); }

  int count() const { return table_->rows(); }
  int dim() const { return table_->cols(); }
  const ag::TensorPtr& table() const { return table_; }

  // Overwrites the table values (used by the joint-training hand-off that
  // initializes the group task from stage-1 embeddings, Sec. II-E).
  void SetTable(const tensor::Matrix& values);

 private:
  ag::TensorPtr table_;
  std::unordered_set<int> touched_rows_;
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_EMBEDDING_H_
