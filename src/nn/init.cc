#include "nn/init.h"

#include <cmath>

namespace groupsa::nn {

void GlorotUniform(tensor::Matrix* weights, int fan_in, int fan_out,
                   Rng* rng) {
  GROUPSA_CHECK(fan_in + fan_out > 0, "GlorotUniform requires positive fans");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  weights->FillUniform(rng, -a, a);
}

void GlorotUniform(tensor::Matrix* weights, Rng* rng) {
  GlorotUniform(weights, weights->rows(), weights->cols(), rng);
}

void GaussianInit(tensor::Matrix* weights, float mean, float stddev,
                  Rng* rng) {
  weights->FillGaussian(rng, mean, stddev);
}

}  // namespace groupsa::nn
