#include "nn/mlp.h"

#include "common/string_util.h"

namespace groupsa::nn {

ag::TensorPtr Activate(ag::Tape* tape, const ag::TensorPtr& x,
                       Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ag::Relu(tape, x);
    case Activation::kSigmoid:
      return ag::Sigmoid(tape, x);
    case Activation::kTanh:
      return ag::Tanh(tape, x);
  }
  GROUPSA_CHECK(false, "unknown activation");
  return x;
}

Mlp::Mlp(const std::string& name, const std::vector<int>& dims, Rng* rng,
         Activation hidden_activation, Activation output_activation)
    : hidden_activation_(hidden_activation),
      output_activation_(output_activation) {
  GROUPSA_CHECK(dims.size() >= 2, "Mlp requires at least in/out dims");
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(
        StrFormat("%s.layer%zu", name.c_str(), i), dims[i], dims[i + 1], rng));
    RegisterSubmodule(StrFormat("%s.l%zu", name.c_str(), i),
                      layers_.back().get());
  }
}

ag::TensorPtr Mlp::Forward(ag::Tape* tape, const ag::TensorPtr& x) const {
  ag::TensorPtr h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(tape, h);
    const bool last = (i + 1 == layers_.size());
    h = Activate(tape, h, last ? output_activation_ : hidden_activation_);
  }
  return h;
}

}  // namespace groupsa::nn
