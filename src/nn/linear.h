#ifndef GROUPSA_NN_LINEAR_H_
#define GROUPSA_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace groupsa::nn {

// Affine layer: y = x W + b with W (in x out) and optional bias b (1 x out).
// Hidden-layer weights are initialized N(0, 0.1) per the paper's setup; call
// InitGlorot for Glorot initialization instead.
class Linear : public Module {
 public:
  Linear(const std::string& name, int in_dim, int out_dim, Rng* rng,
         bool use_bias = true);

  // x is n x in; returns n x out.
  ag::TensorPtr Forward(ag::Tape* tape, const ag::TensorPtr& x) const;

  void InitGaussian(Rng* rng, float stddev = 0.1f);
  void InitGlorot(Rng* rng);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  const ag::TensorPtr& weight() const { return weight_; }
  const ag::TensorPtr& bias() const { return bias_; }

 private:
  int in_dim_;
  int out_dim_;
  bool use_bias_;
  ag::TensorPtr weight_;
  ag::TensorPtr bias_;  // null when !use_bias_
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_LINEAR_H_
