#include "nn/optimizer.h"

#include <cmath>

#include "common/serialize.h"
#include "common/string_util.h"

namespace groupsa::nn {

Optimizer::Optimizer(std::vector<ParamEntry> params, float learning_rate,
                     float weight_decay)
    : params_(std::move(params)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay) {}

Sgd::Sgd(std::vector<ParamEntry> params, float learning_rate,
         float weight_decay, float momentum)
    : Optimizer(std::move(params), learning_rate, weight_decay),
      momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const ParamEntry& p : params_)
      velocity_.emplace_back(p.tensor->rows(), p.tensor->cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ParamEntry& p = params_[i];
    tensor::Matrix& value = p.tensor->mutable_value();
    tensor::Matrix& grad = p.tensor->grad();
    auto update_row = [&](int r) {
      float* v = value.RowPtr(r);
      float* g = grad.RowPtr(r);
      float* vel = momentum_ != 0.0f ? velocity_[i].RowPtr(r) : nullptr;
      for (int c = 0; c < value.cols(); ++c) {
        float gc = g[c] + weight_decay_ * v[c];
        if (vel != nullptr) {
          vel[c] = momentum_ * vel[c] + gc;
          gc = vel[c];
        }
        v[c] -= learning_rate_ * gc;
        g[c] = 0.0f;
      }
    };
    if (p.touched_rows != nullptr) {
      for (int r : *p.touched_rows) update_row(r);
      p.touched_rows->clear();
    } else {
      if (grad.MaxAbs() == 0.0f) continue;  // see header: lazy decay
      for (int r = 0; r < value.rows(); ++r) update_row(r);
    }
  }
}

Adam::Adam(std::vector<ParamEntry> params, float learning_rate,
           float weight_decay, float beta1, float beta2, float epsilon)
    : Optimizer(std::move(params), learning_rate, weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  step_.assign(params_.size(), 0);
  row_step_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const ParamEntry& p = params_[i];
    m_.emplace_back(p.tensor->rows(), p.tensor->cols());
    v_.emplace_back(p.tensor->rows(), p.tensor->cols());
    if (p.touched_rows != nullptr)
      row_step_[i].assign(p.tensor->rows(), 0);
  }
}

void Adam::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ParamEntry& p = params_[i];
    tensor::Matrix& value = p.tensor->mutable_value();
    tensor::Matrix& grad = p.tensor->grad();
    auto update_row = [&](int r, int64_t t) {
      const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t));
      const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t));
      float* val = value.RowPtr(r);
      float* g = grad.RowPtr(r);
      float* mr = m_[i].RowPtr(r);
      float* vr = v_[i].RowPtr(r);
      for (int c = 0; c < value.cols(); ++c) {
        const float gc = g[c] + weight_decay_ * val[c];
        mr[c] = beta1_ * mr[c] + (1.0f - beta1_) * gc;
        vr[c] = beta2_ * vr[c] + (1.0f - beta2_) * gc * gc;
        const float m_hat = mr[c] / bc1;
        const float v_hat = vr[c] / bc2;
        val[c] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
        g[c] = 0.0f;
      }
    };
    if (p.touched_rows != nullptr) {
      for (int r : *p.touched_rows) update_row(r, ++row_step_[i][r]);
      p.touched_rows->clear();
    } else {
      if (grad.MaxAbs() == 0.0f) continue;  // see header: lazy decay
      const int64_t t = ++step_[i];
      for (int r = 0; r < value.rows(); ++r) update_row(r, t);
    }
  }
}

std::string Adam::SerializeState() const {
  ByteWriter out;
  out.WriteU32(static_cast<uint32_t>(params_.size()));
  for (size_t i = 0; i < params_.size(); ++i) {
    out.WriteString(params_[i].name);
    out.WriteU32(static_cast<uint32_t>(m_[i].rows()));
    out.WriteU32(static_cast<uint32_t>(m_[i].cols()));
    out.WriteFloats(m_[i].data(), static_cast<size_t>(m_[i].size()));
    out.WriteFloats(v_[i].data(), static_cast<size_t>(v_[i].size()));
    out.WriteI64(step_[i]);
    out.WriteU32(static_cast<uint32_t>(row_step_[i].size()));
    for (int64_t t : row_step_[i]) out.WriteI64(t);
  }
  return out.Release();
}

Status Adam::RestoreState(const std::string& payload) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.ReadU32(&count))
    return Status::Error("truncated adam section");
  if (count != params_.size()) {
    return Status::Error(StrFormat(
        "adam state holds %u parameters, optimizer has %zu", count,
        params_.size()));
  }
  // Stage everything before touching live moments (all-or-nothing, matching
  // the DecodeParameters contract).
  std::vector<tensor::Matrix> m(count), v(count);
  std::vector<int64_t> step(count, 0);
  std::vector<std::vector<int64_t>> row_step(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    uint32_t rows = 0;
    uint32_t cols = 0;
    if (!reader.ReadString(&name) || !reader.ReadU32(&rows) ||
        !reader.ReadU32(&cols)) {
      return Status::Error(StrFormat("truncated adam record %u", i));
    }
    if (name != params_[i].name) {
      return Status::Error(StrFormat(
          "adam state parameter %u is '%s', optimizer expects '%s'", i,
          name.c_str(), params_[i].name.c_str()));
    }
    if (static_cast<int>(rows) != m_[i].rows() ||
        static_cast<int>(cols) != m_[i].cols()) {
      return Status::Error(StrFormat(
          "adam state shape mismatch for %s: file %ux%u vs %dx%d",
          name.c_str(), rows, cols, m_[i].rows(), m_[i].cols()));
    }
    m[i].Resize(static_cast<int>(rows), static_cast<int>(cols));
    v[i].Resize(static_cast<int>(rows), static_cast<int>(cols));
    uint32_t num_row_steps = 0;
    if (!reader.ReadFloats(m[i].data(), static_cast<size_t>(m[i].size())) ||
        !reader.ReadFloats(v[i].data(), static_cast<size_t>(v[i].size())) ||
        !reader.ReadI64(&step[i]) || !reader.ReadU32(&num_row_steps)) {
      return Status::Error(StrFormat("truncated adam record %u", i));
    }
    const size_t expected =
        params_[i].touched_rows != nullptr ? static_cast<size_t>(rows) : 0;
    if (num_row_steps != expected) {
      return Status::Error(StrFormat(
          "adam state row-step count mismatch for %s", name.c_str()));
    }
    row_step[i].resize(num_row_steps);
    for (uint32_t r = 0; r < num_row_steps; ++r) {
      if (!reader.ReadI64(&row_step[i][r]))
        return Status::Error(StrFormat("truncated adam record %u", i));
    }
  }
  if (!reader.AtEnd())
    return Status::Error("trailing bytes in adam section");
  m_ = std::move(m);
  v_ = std::move(v);
  step_ = std::move(step);
  row_step_ = std::move(row_step);
  return Status::Ok();
}

}  // namespace groupsa::nn
