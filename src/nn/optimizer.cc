#include "nn/optimizer.h"

#include <cmath>

namespace groupsa::nn {

Optimizer::Optimizer(std::vector<ParamEntry> params, float learning_rate,
                     float weight_decay)
    : params_(std::move(params)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay) {}

Sgd::Sgd(std::vector<ParamEntry> params, float learning_rate,
         float weight_decay, float momentum)
    : Optimizer(std::move(params), learning_rate, weight_decay),
      momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const ParamEntry& p : params_)
      velocity_.emplace_back(p.tensor->rows(), p.tensor->cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ParamEntry& p = params_[i];
    tensor::Matrix& value = p.tensor->mutable_value();
    tensor::Matrix& grad = p.tensor->grad();
    auto update_row = [&](int r) {
      float* v = value.RowPtr(r);
      float* g = grad.RowPtr(r);
      float* vel = momentum_ != 0.0f ? velocity_[i].RowPtr(r) : nullptr;
      for (int c = 0; c < value.cols(); ++c) {
        float gc = g[c] + weight_decay_ * v[c];
        if (vel != nullptr) {
          vel[c] = momentum_ * vel[c] + gc;
          gc = vel[c];
        }
        v[c] -= learning_rate_ * gc;
        g[c] = 0.0f;
      }
    };
    if (p.touched_rows != nullptr) {
      for (int r : *p.touched_rows) update_row(r);
      p.touched_rows->clear();
    } else {
      if (grad.MaxAbs() == 0.0f) continue;  // see header: lazy decay
      for (int r = 0; r < value.rows(); ++r) update_row(r);
    }
  }
}

Adam::Adam(std::vector<ParamEntry> params, float learning_rate,
           float weight_decay, float beta1, float beta2, float epsilon)
    : Optimizer(std::move(params), learning_rate, weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  step_.assign(params_.size(), 0);
  row_step_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    const ParamEntry& p = params_[i];
    m_.emplace_back(p.tensor->rows(), p.tensor->cols());
    v_.emplace_back(p.tensor->rows(), p.tensor->cols());
    if (p.touched_rows != nullptr)
      row_step_[i].assign(p.tensor->rows(), 0);
  }
}

void Adam::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ParamEntry& p = params_[i];
    tensor::Matrix& value = p.tensor->mutable_value();
    tensor::Matrix& grad = p.tensor->grad();
    auto update_row = [&](int r, int64_t t) {
      const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t));
      const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t));
      float* val = value.RowPtr(r);
      float* g = grad.RowPtr(r);
      float* mr = m_[i].RowPtr(r);
      float* vr = v_[i].RowPtr(r);
      for (int c = 0; c < value.cols(); ++c) {
        const float gc = g[c] + weight_decay_ * val[c];
        mr[c] = beta1_ * mr[c] + (1.0f - beta1_) * gc;
        vr[c] = beta2_ * vr[c] + (1.0f - beta2_) * gc * gc;
        const float m_hat = mr[c] / bc1;
        const float v_hat = vr[c] / bc2;
        val[c] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
        g[c] = 0.0f;
      }
    };
    if (p.touched_rows != nullptr) {
      for (int r : *p.touched_rows) update_row(r, ++row_step_[i][r]);
      p.touched_rows->clear();
    } else {
      if (grad.MaxAbs() == 0.0f) continue;  // see header: lazy decay
      const int64_t t = ++step_[i];
      for (int r = 0; r < value.rows(); ++r) update_row(r, t);
    }
  }
}

}  // namespace groupsa::nn
