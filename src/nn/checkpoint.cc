#include "nn/checkpoint.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "tensor/matrix.h"

namespace groupsa::nn {
namespace {

constexpr uint32_t kMagicV2 = 0x32505347;  // "GSP2" little-endian
constexpr uint32_t kMagicV1 = 0x41505347;  // "GSPA" — the legacy format
constexpr uint32_t kVersion = 2;
constexpr size_t kWriteChunk = 64 * 1024;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Writes `bytes` in chunks, consulting the "checkpoint.write" failpoint per
// chunk so fault-injection tests can produce genuinely partial files.
Status WriteChunked(std::FILE* f, const std::string& bytes,
                    const std::string& path) {
  for (size_t off = 0; off < bytes.size(); off += kWriteChunk) {
    const size_t n = std::min(kWriteChunk, bytes.size() - off);
    const failpoint::Action action = GROUPSA_FAILPOINT("checkpoint.write");
    if (action == failpoint::Action::kError)
      return Status::Error("injected write failure: " + path);
    if (action == failpoint::Action::kCorrupt) {
      // Flip one bit of this chunk: the CRC tiers must catch it at load.
      std::string corrupted = bytes.substr(off, n);
      corrupted[corrupted.size() / 2] ^= 0x10;
      if (std::fwrite(corrupted.data(), 1, n, f) != n)
        return Status::Error("write failed: " + path);
      continue;
    }
    if (std::fwrite(bytes.data() + off, 1, n, f) != n)
      return Status::Error("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace

void CheckpointWriter::AddSection(const std::string& name,
                                  std::string payload) {
  sections_.emplace_back(name, std::move(payload));
}

Status CheckpointWriter::Commit(const std::string& path) const {
  // Assemble the whole file in memory first: the on-disk write is then a
  // single sequential pass whose only interleavings are torn prefixes, all
  // of which the trailer CRC rejects.
  ByteWriter out;
  out.WriteU32(kMagicV2);
  out.WriteU32(kVersion);
  out.WriteU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    out.WriteString(name);
    out.WriteU64(payload.size());
    out.WriteU32(Crc32Of(payload.data(), payload.size()));
    out.WriteRaw(payload);
  }
  const uint32_t file_crc = Crc32Of(out.bytes().data(), out.bytes().size());
  out.WriteU32(file_crc);
  const std::string bytes = out.Release();

  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (f == nullptr)
      return Status::Error("cannot open for write: " + tmp);
    if (Status s = WriteChunked(f.get(), bytes, tmp); !s.ok()) {
      std::remove(tmp.c_str());
      return s;
    }
    if (std::fflush(f.get()) != 0) {
      std::remove(tmp.c_str());
      return Status::Error("flush failed: " + tmp);
    }
    if (GROUPSA_FAILPOINT("checkpoint.fsync") == failpoint::Action::kError) {
      std::remove(tmp.c_str());
      return Status::Error("injected fsync failure: " + tmp);
    }
    if (fsync(fileno(f.get())) != 0) {
      std::remove(tmp.c_str());
      return Status::Error("fsync failed: " + tmp);
    }
  }
  if (GROUPSA_FAILPOINT("checkpoint.rename") == failpoint::Action::kError) {
    std::remove(tmp.c_str());
    return Status::Error("injected rename failure: " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("rename failed: " + tmp + " -> " + path);
  }
  return Status::Ok();
}

Status CheckpointReader::Read(const std::string& path, CheckpointReader* out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::Error("cannot open for read: " + path);
  std::string bytes;
  {
    char buf[64 * 1024];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
      bytes.append(buf, n);
    if (std::ferror(f.get()))
      return Status::Error("read failed: " + path);
  }
  // Trailer CRC first: a file whose every byte is accounted for cannot be a
  // torn prefix, so all further parsing works on verified data.
  if (bytes.size() < 4 * sizeof(uint32_t))
    return Status::Error("truncated checkpoint (too small): " + path);
  const size_t body_len = bytes.size() - sizeof(uint32_t);
  uint32_t stored_file_crc = 0;
  {
    ByteReader trailer(bytes.data() + body_len, sizeof(uint32_t));
    trailer.ReadU32(&stored_file_crc);
  }
  if (Crc32Of(bytes.data(), body_len) != stored_file_crc)
    return Status::Error("checkpoint file CRC mismatch (torn write or bit "
                         "rot): " + path);

  ByteReader reader(bytes.data(), body_len);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t num_sections = 0;
  if (!reader.ReadU32(&magic))
    return Status::Error("truncated checkpoint header: " + path);
  if (magic == kMagicV1)
    return Status::Error(
        "legacy v1 checkpoint (magic GSPA) is no longer supported; re-save "
        "with this build: " + path);
  if (magic != kMagicV2)
    return Status::Error("bad checkpoint magic: " + path);
  if (!reader.ReadU32(&version) || version != kVersion)
    return Status::Error(
        StrFormat("unsupported checkpoint version %u (expected %u): %s",
                  version, kVersion, path.c_str()));
  if (!reader.ReadU32(&num_sections))
    return Status::Error("truncated checkpoint header: " + path);

  std::vector<std::pair<std::string, std::string>> sections;
  for (uint32_t i = 0; i < num_sections; ++i) {
    std::string name;
    uint64_t payload_len = 0;
    uint32_t payload_crc = 0;
    if (!reader.ReadString(&name) || !reader.ReadU64(&payload_len) ||
        !reader.ReadU32(&payload_crc) || payload_len > reader.Remaining()) {
      return Status::Error(
          StrFormat("truncated section directory (section %u): %s", i,
                    path.c_str()));
    }
    std::string payload;
    if (!reader.ReadRaw(payload_len, &payload))
      return Status::Error(
          StrFormat("truncated section payload '%s': %s", name.c_str(),
                    path.c_str()));
    if (Crc32Of(payload.data(), payload.size()) != payload_crc)
      return Status::Error(
          StrFormat("section '%s' CRC mismatch: %s", name.c_str(),
                    path.c_str()));
    sections.emplace_back(std::move(name), std::move(payload));
  }
  out->sections_ = std::move(sections);
  return Status::Ok();
}

bool CheckpointReader::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

const std::string* CheckpointReader::Find(const std::string& name) const {
  for (const auto& [section_name, payload] : sections_)
    if (section_name == name) return &payload;
  return nullptr;
}

std::string EncodeParameters(const std::vector<ParamEntry>& params) {
  ByteWriter out;
  out.WriteU32(static_cast<uint32_t>(params.size()));
  for (const ParamEntry& p : params) {
    const tensor::Matrix& m = p.tensor->value();
    ByteWriter record;
    record.WriteString(p.name);
    record.WriteU32(static_cast<uint32_t>(m.rows()));
    record.WriteU32(static_cast<uint32_t>(m.cols()));
    record.WriteFloats(m.data(), static_cast<size_t>(m.size()));
    const std::string& bytes = record.bytes();
    out.WriteU32(Crc32Of(bytes.data(), bytes.size()));
    out.WriteU64(bytes.size());
    out.WriteRaw(bytes);
  }
  return out.Release();
}

Status DecodeParameters(const std::vector<ParamEntry>& params,
                        const std::string& payload) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.ReadU32(&count))
    return Status::Error("truncated params section");

  std::unordered_map<std::string, const ParamEntry*> by_name;
  for (const ParamEntry& p : params) by_name[p.name] = &p;

  // Stage 1: parse and validate every record into local storage. The live
  // model is not touched until every record checked out.
  struct Staged {
    const ParamEntry* entry;
    tensor::Matrix value;
  };
  std::vector<Staged> staged;
  staged.reserve(count);
  std::unordered_map<std::string, bool> seen;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t record_crc = 0;
    uint64_t record_len = 0;
    if (!reader.ReadU32(&record_crc) || !reader.ReadU64(&record_len) ||
        record_len > reader.Remaining()) {
      return Status::Error(
          StrFormat("truncated parameter record %u of %u", i, count));
    }
    const size_t pos = reader.Position();
    if (Crc32Of(payload.data() + pos, record_len) != record_crc)
      return Status::Error(
          StrFormat("parameter record %u CRC mismatch", i));
    ByteReader record(payload.data() + pos, record_len);
    reader.Skip(record_len);  // bounds already checked above

    std::string name;
    uint32_t rows = 0;
    uint32_t cols = 0;
    if (!record.ReadString(&name) || !record.ReadU32(&rows) ||
        !record.ReadU32(&cols)) {
      return Status::Error(
          StrFormat("malformed parameter record %u of %u", i, count));
    }
    auto it = by_name.find(name);
    if (it == by_name.end())
      return Status::Error("unknown parameter in checkpoint: " + name);
    if (seen[name])
      return Status::Error("duplicate parameter in checkpoint: " + name);
    seen[name] = true;
    const tensor::Matrix& live = it->second->tensor->value();
    if (live.rows() != static_cast<int>(rows) ||
        live.cols() != static_cast<int>(cols)) {
      return Status::Error(StrFormat(
          "shape mismatch for %s: file %ux%u vs model %dx%d", name.c_str(),
          rows, cols, live.rows(), live.cols()));
    }
    tensor::Matrix value(static_cast<int>(rows), static_cast<int>(cols));
    if (!record.ReadFloats(value.data(), static_cast<size_t>(value.size())))
      return Status::Error("truncated parameter data for " + name);
    staged.push_back({it->second, std::move(value)});
  }
  if (staged.size() != params.size()) {
    std::vector<std::string> missing;
    for (const ParamEntry& p : params)
      if (!seen[p.name]) missing.push_back(p.name);
    return Status::Error(StrFormat(
        "checkpoint holds %zu of %zu parameters (missing: %s)", staged.size(),
        params.size(), StrJoin(missing, ", ").c_str()));
  }

  // Stage 2: commit. Nothing below can fail.
  for (Staged& s : staged)
    s.entry->tensor->mutable_value() = std::move(s.value);
  return Status::Ok();
}

Status SaveParameters(const std::vector<ParamEntry>& params,
                      const std::string& path) {
  CheckpointWriter writer;
  writer.AddSection("params", EncodeParameters(params));
  return writer.Commit(path).WithContext("save checkpoint " + path);
}

Status LoadParameters(const std::vector<ParamEntry>& params,
                      const std::string& path) {
  CheckpointReader reader;
  GROUPSA_RETURN_IF_ERROR_CTX(CheckpointReader::Read(path, &reader),
                              "load checkpoint " + path);
  const std::string* payload = reader.Find("params");
  if (payload == nullptr)
    return Status::Error("checkpoint has no params section: " + path);
  return DecodeParameters(params, *payload)
      .WithContext("load checkpoint " + path);
}

}  // namespace groupsa::nn
