#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "common/string_util.h"

namespace groupsa::nn {
namespace {

constexpr uint32_t kMagic = 0x47535041;  // "GSPA"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveParameters(const std::vector<ParamEntry>& params,
                      const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::Error("cannot open for write: " + path);
  if (!WriteU32(f.get(), kMagic) ||
      !WriteU32(f.get(), static_cast<uint32_t>(params.size())))
    return Status::Error("write failed: " + path);
  for (const ParamEntry& p : params) {
    const tensor::Matrix& m = p.tensor->value();
    if (!WriteU32(f.get(), static_cast<uint32_t>(p.name.size())) ||
        std::fwrite(p.name.data(), 1, p.name.size(), f.get()) !=
            p.name.size() ||
        !WriteU32(f.get(), static_cast<uint32_t>(m.rows())) ||
        !WriteU32(f.get(), static_cast<uint32_t>(m.cols())) ||
        std::fwrite(m.data(), sizeof(float), static_cast<size_t>(m.size()),
                    f.get()) != static_cast<size_t>(m.size())) {
      return Status::Error("write failed: " + path);
    }
  }
  return Status::Ok();
}

Status LoadParameters(const std::vector<ParamEntry>& params,
                      const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::Error("cannot open for read: " + path);
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kMagic)
    return Status::Error("bad checkpoint magic: " + path);
  if (!ReadU32(f.get(), &count))
    return Status::Error("truncated checkpoint: " + path);

  std::unordered_map<std::string, const ParamEntry*> by_name;
  for (const ParamEntry& p : params) by_name[p.name] = &p;

  size_t loaded = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(f.get(), &name_len))
      return Status::Error("truncated checkpoint: " + path);
    std::string name(name_len, '\0');
    uint32_t rows = 0;
    uint32_t cols = 0;
    if (std::fread(name.data(), 1, name_len, f.get()) != name_len ||
        !ReadU32(f.get(), &rows) || !ReadU32(f.get(), &cols))
      return Status::Error("truncated checkpoint: " + path);
    auto it = by_name.find(name);
    if (it == by_name.end())
      return Status::Error("unknown parameter in checkpoint: " + name);
    tensor::Matrix& m = it->second->tensor->mutable_value();
    if (m.rows() != static_cast<int>(rows) ||
        m.cols() != static_cast<int>(cols)) {
      return Status::Error(StrFormat(
          "shape mismatch for %s: file %ux%u vs model %dx%d", name.c_str(),
          rows, cols, m.rows(), m.cols()));
    }
    if (std::fread(m.data(), sizeof(float), static_cast<size_t>(m.size()),
                   f.get()) != static_cast<size_t>(m.size()))
      return Status::Error("truncated checkpoint: " + path);
    ++loaded;
  }
  if (loaded != params.size()) {
    return Status::Error(
        StrFormat("checkpoint loaded %zu of %zu parameters", loaded,
                  params.size()));
  }
  return Status::Ok();
}

}  // namespace groupsa::nn
