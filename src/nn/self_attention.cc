#include "nn/self_attention.h"

#include <cmath>
#include <limits>

#include "autograd/ops.h"
#include "nn/init.h"

namespace groupsa::nn {

SocialSelfAttention::SocialSelfAttention(const std::string& name, int d_model,
                                         int d_k, int d_v, Rng* rng,
                                         bool small_value_init)
    : d_model_(d_model), d_k_(d_k), d_v_(d_v) {
  w_query_ = RegisterParameter(name + ".wq", d_model, d_k);
  w_key_ = RegisterParameter(name + ".wk", d_model, d_k);
  w_value_ = RegisterParameter(name + ".wv", d_model, d_v);
  GlorotUniform(&w_query_->mutable_value(), rng);
  GlorotUniform(&w_key_->mutable_value(), rng);
  if (small_value_init) {
    GaussianInit(&w_value_->mutable_value(), 0.0f, 0.01f, rng);
  } else {
    GlorotUniform(&w_value_->mutable_value(), rng);
  }
}

SelfAttentionOutput SocialSelfAttention::Forward(
    ag::Tape* tape, const ag::TensorPtr& x,
    const tensor::Matrix* social_bias) const {
  GROUPSA_CHECK(x->cols() == d_model_, "SelfAttention input dim mismatch");
  const int l = x->rows();
  if (social_bias != nullptr) {
    GROUPSA_CHECK(social_bias->rows() == l && social_bias->cols() == l,
                  "social bias must be l x l");
  }

  ag::TensorPtr queries = ag::MatMul(tape, x, w_query_);   // l x d_k
  ag::TensorPtr keys = ag::MatMul(tape, x, w_key_);        // l x d_k
  ag::TensorPtr values = ag::MatMul(tape, x, w_value_);    // l x d_v

  // ATT*(i, j) = q_i k_j^T / sqrt(d_k) (+ S_ij), Eq. 1 and 4.
  ag::TensorPtr logits = ag::Scale(
      tape, ag::MatMul(tape, queries, keys, false, /*transpose_b=*/true),
      1.0f / std::sqrt(static_cast<float>(d_k_)));
  ag::TensorPtr attention = ag::SoftmaxRows(tape, logits, social_bias);
  ag::TensorPtr z = ag::MatMul(tape, attention, values);   // Eq. 3

  SelfAttentionOutput out;
  out.values = z;
  out.attention = attention->value();
  return out;
}

tensor::Matrix MakeSocialBias(
    int group_size, const std::function<bool(int, int)>& connected) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  tensor::Matrix bias(group_size, group_size, kNegInf);
  for (int i = 0; i < group_size; ++i) {
    bias.At(i, i) = 0.0f;  // self-loop: a user always weighs her own opinion
    for (int j = 0; j < group_size; ++j) {
      if (i != j && connected(i, j)) bias.At(i, j) = 0.0f;
    }
  }
  return bias;
}

}  // namespace groupsa::nn
