#include "nn/transformer_block.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace groupsa::nn {

TransformerBlock::TransformerBlock(const std::string& name, int d_model,
                                   int ffn_hidden, Rng* rng) {
  attention_ = std::make_unique<SocialSelfAttention>(
      name + ".attn", d_model, d_model, d_model, rng,
      /*small_value_init=*/true);
  norm_attention_ = std::make_unique<LayerNorm>(name + ".ln1", d_model);
  ffn_in_ = std::make_unique<Linear>(name + ".ffn1", d_model, ffn_hidden, rng);
  ffn_out_ = std::make_unique<Linear>(name + ".ffn2", ffn_hidden, d_model, rng);
  // Near-identity start (see header).
  GaussianInit(&ffn_out_->weight()->mutable_value(), 0.0f, 0.01f, rng);
  norm_ffn_ = std::make_unique<LayerNorm>(name + ".ln2", d_model);
  RegisterSubmodule(name + ".attn", attention_.get());
  RegisterSubmodule(name + ".ln1", norm_attention_.get());
  RegisterSubmodule(name + ".ffn1", ffn_in_.get());
  RegisterSubmodule(name + ".ffn2", ffn_out_.get());
  RegisterSubmodule(name + ".ln2", norm_ffn_.get());
}

TransformerBlock::Output TransformerBlock::Forward(
    ag::Tape* tape, const ag::TensorPtr& x,
    const tensor::Matrix* social_bias) const {
  // Pre-LN residual form; see header for why.
  SelfAttentionOutput attn = attention_->Forward(
      tape, norm_attention_->Forward(tape, x), social_bias);
  ag::TensorPtr a = ag::Add(tape, x, attn.values);
  ag::TensorPtr normed = norm_ffn_->Forward(tape, a);
  ag::TensorPtr ffn =
      ffn_out_->Forward(tape, ag::Relu(tape, ffn_in_->Forward(tape, normed)));
  ag::TensorPtr y = ag::Add(tape, a, ffn);

  Output out;
  out.values = y;
  out.attention = std::move(attn.attention);
  return out;
}

}  // namespace groupsa::nn
