#ifndef GROUPSA_NN_MODULE_H_
#define GROUPSA_NN_MODULE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "autograd/tensor.h"

namespace groupsa::nn {

// One learnable parameter as seen by optimizers and checkpoints.
struct ParamEntry {
  std::string name;
  ag::TensorPtr tensor;
  // Non-null for embedding-style parameters: the rows touched since the last
  // optimizer step. Sparse-aware optimizers update (and re-zero) only these
  // rows and then clear the set.
  std::unordered_set<int>* touched_rows = nullptr;
};

// Base class for neural network building blocks. A module owns parameters
// and/or submodules; `parameters()` flattens the whole tree with
// slash-separated names, which is what optimizers and checkpoints consume.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and (recursively) its registered
  // submodules.
  std::vector<ParamEntry> Parameters() const;

  // Zeroes gradient storage of every parameter. For sparse parameters this
  // zeroes the full gradient matrix; optimizers prefer their own row-level
  // zeroing on the hot path.
  void ZeroGrad() const;

  // Total number of scalar parameters (for reporting).
  int64_t NumParameterScalars() const;

 protected:
  // Creates and registers a parameter of the given shape (zero-initialized;
  // call an initializer from nn/init.h afterwards).
  ag::TensorPtr RegisterParameter(const std::string& name, int rows, int cols);

  // Marks `tensor` (already registered) as sparsely updated with the given
  // touched-row set, owned by the caller module.
  void MarkSparse(const ag::TensorPtr& tensor,
                  std::unordered_set<int>* touched_rows);

  // Registers a child module; its parameters appear as "<prefix>/<name>".
  // The child must outlive this module (typically it is a data member).
  void RegisterSubmodule(const std::string& prefix, const Module* child);

 private:
  std::vector<ParamEntry> own_params_;
  std::vector<std::pair<std::string, const Module*>> children_;
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_MODULE_H_
