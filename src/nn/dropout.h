#ifndef GROUPSA_NN_DROPOUT_H_
#define GROUPSA_NN_DROPOUT_H_

#include "autograd/ops.h"

namespace groupsa::nn {

// Stateless inverted-dropout wrapper; `training` toggles between the
// stochastic mask and identity (inference).
class Dropout {
 public:
  explicit Dropout(float ratio) : ratio_(ratio) {}

  ag::TensorPtr Forward(ag::Tape* tape, const ag::TensorPtr& x, bool training,
                        Rng* rng) const {
    return ag::Dropout(tape, x, ratio_, training, rng);
  }

  float ratio() const { return ratio_; }

 private:
  float ratio_;
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_DROPOUT_H_
