#ifndef GROUPSA_NN_TRANSFORMER_BLOCK_H_
#define GROUPSA_NN_TRANSFORMER_BLOCK_H_

#include <memory>

#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/self_attention.h"

namespace groupsa::nn {

// One voting round (Fig. 2): social self-attention followed by a
// position-wise feed-forward network, each wrapped in a residual connection
// and layer normalization. The paper follows Vaswani's post-LN placement;
// this implementation uses the pre-LN form
//
//   a = x + SocialSelfAttention(LayerNorm(x))
//   y = a + FFN(LayerNorm(a)),  FFN(z) = relu(z W1 + b1) W2 + b2   (Eq. 6)
//
// because it keeps the residual stream in the embedding space: the group
// head shares its prediction tower with the user-item task, and a post-LN
// stack would rescale member representations ~20x away from the embedding
// distribution the tower is trained on. The value projection and the second
// FFN layer start near zero, so at initialization each voting round is the
// identity and training learns the perturbation ("the discussion starts
// from the members' raw opinions").
//
// Residuals require d_v == d_model; the paper uses 32 for both.
class TransformerBlock : public Module {
 public:
  TransformerBlock(const std::string& name, int d_model, int ffn_hidden,
                   Rng* rng);

  struct Output {
    ag::TensorPtr values;      // l x d_model
    tensor::Matrix attention;  // l x l
  };

  // `social_bias` as in SocialSelfAttention::Forward; nullptr disables the
  // social mask (plain self-attention).
  Output Forward(ag::Tape* tape, const ag::TensorPtr& x,
                 const tensor::Matrix* social_bias) const;

 private:
  std::unique_ptr<SocialSelfAttention> attention_;
  std::unique_ptr<LayerNorm> norm_attention_;
  std::unique_ptr<Linear> ffn_in_;
  std::unique_ptr<Linear> ffn_out_;
  std::unique_ptr<LayerNorm> norm_ffn_;
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_TRANSFORMER_BLOCK_H_
