#ifndef GROUPSA_NN_INIT_H_
#define GROUPSA_NN_INIT_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace groupsa::nn {

// Glorot (Xavier) uniform initialization: U(-a, a) with
// a = sqrt(6 / (fan_in + fan_out)). The paper applies this to embedding
// layers (Sec. III-E).
void GlorotUniform(tensor::Matrix* weights, int fan_in, int fan_out, Rng* rng);

// Convenience overload using the matrix's own shape as (fan_in, fan_out).
void GlorotUniform(tensor::Matrix* weights, Rng* rng);

// N(mean, stddev) initialization; the paper uses N(0, 0.1) for hidden layers.
void GaussianInit(tensor::Matrix* weights, float mean, float stddev, Rng* rng);

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_INIT_H_
