#include "nn/attention_pool.h"

namespace groupsa::nn {

AttentionPool::AttentionPool(const std::string& name, int guide_dim,
                             int context_dim, int hidden_dim, Rng* rng) {
  score_hidden_ = std::make_unique<Linear>(name + ".hidden",
                                           guide_dim + context_dim, hidden_dim,
                                           rng);
  score_out_ = std::make_unique<Linear>(name + ".out", hidden_dim, 1, rng);
  RegisterSubmodule(name + ".hidden", score_hidden_.get());
  RegisterSubmodule(name + ".out", score_out_.get());
}

AttentionPoolOutput AttentionPool::Forward(ag::Tape* tape,
                                           const ag::TensorPtr& guide,
                                           const ag::TensorPtr& context) const {
  GROUPSA_CHECK(guide->rows() == 1, "AttentionPool guide must be 1 x d");
  const int l = context->rows();
  GROUPSA_CHECK(l >= 1, "AttentionPool requires non-empty context");

  ag::TensorPtr tiled = ag::BroadcastRow(tape, guide, l);
  ag::TensorPtr joined = ag::ConcatCols(tape, {tiled, context});
  ag::TensorPtr hidden = ag::Relu(tape, score_hidden_->Forward(tape, joined));
  ag::TensorPtr scores = score_out_->Forward(tape, hidden);      // l x 1
  ag::TensorPtr scores_row = ag::Transpose(tape, scores);        // 1 x l
  ag::TensorPtr weights = ag::SoftmaxRows(tape, scores_row);     // 1 x l
  ag::TensorPtr pooled = ag::MatMul(tape, weights, context);     // 1 x d

  AttentionPoolOutput out;
  out.pooled = pooled;
  out.weights = weights->value();
  return out;
}

}  // namespace groupsa::nn
