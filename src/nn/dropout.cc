#include "nn/dropout.h"

// Header-only; this TU exists so the target has a consistent file layout.
