#ifndef GROUPSA_NN_MLP_H_
#define GROUPSA_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace groupsa::nn {

enum class Activation {
  kNone,
  kRelu,
  kSigmoid,
  kTanh,
};

// Applies the given activation (identity for kNone).
ag::TensorPtr Activate(ag::Tape* tape, const ag::TensorPtr& x, Activation act);

// Multi-layer perceptron over `dims` = {in, h1, ..., out}. Hidden layers use
// `hidden_activation` (ReLU in the paper, Eq. 19-22); the output layer uses
// `output_activation` (identity for ranking scores).
class Mlp : public Module {
 public:
  Mlp(const std::string& name, const std::vector<int>& dims, Rng* rng,
      Activation hidden_activation = Activation::kRelu,
      Activation output_activation = Activation::kNone);

  ag::TensorPtr Forward(ag::Tape* tape, const ag::TensorPtr& x) const;

  int in_dim() const { return layers_.front()->in_dim(); }
  int out_dim() const { return layers_.back()->out_dim(); }
  int num_layers() const { return static_cast<int>(layers_.size()); }

  // Layer/activation introspection for batched no-tape forwards
  // (core::InferenceEngine) that replay the exact Forward() structure over
  // plain matrices.
  const Linear& layer(int i) const { return *layers_[i]; }
  Activation hidden_activation() const { return hidden_activation_; }
  Activation output_activation() const { return output_activation_; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_activation_;
  Activation output_activation_;
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_MLP_H_
