#ifndef GROUPSA_NN_OPTIMIZER_H_
#define GROUPSA_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace groupsa::nn {

// Base optimizer over a flat parameter list. The training loop is:
//
//   loss = model.Forward(&tape, batch);
//   tape.Backward(loss);
//   optimizer.Step();   // applies updates AND re-zeroes the gradients
//
// Step() zeroes consumed gradients itself: dense parameters are fully
// re-zeroed, sparse (embedding) parameters only on their touched rows, whose
// set is then cleared. λ‖Θ‖² regularization (Eq. 21/24) is applied as
// coupled L2 weight decay: grad += weight_decay * value.
//
// Lazy decay: parameters whose gradient is identically zero for a step are
// skipped entirely (no decay either). This matters for two-stage training:
// with Adam, a decay-only signal normalizes to a ±learning_rate update per
// step, which would crush the group-task towers to zero (dead ReLUs) while
// stage 1 trains the user task. Skipping keeps untouched modules intact,
// mirroring the per-row lazy handling of embeddings.
class Optimizer {
 public:
  Optimizer(std::vector<ParamEntry> params, float learning_rate,
            float weight_decay);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void Step() = 0;

  void set_learning_rate(float learning_rate) {
    learning_rate_ = learning_rate;
  }
  float learning_rate() const { return learning_rate_; }
  const std::vector<ParamEntry>& params() const { return params_; }

 protected:
  std::vector<ParamEntry> params_;
  float learning_rate_;
  float weight_decay_;
};

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamEntry> params, float learning_rate,
      float weight_decay = 0.0f, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<tensor::Matrix> velocity_;
};

// Adam (Kingma & Ba) with lazy sparse updates: for embedding tables only the
// touched rows advance, each with its own step counter for correct bias
// correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamEntry> params, float learning_rate,
       float weight_decay = 0.0f, float beta1 = 0.9f, float beta2 = 0.999f,
       float epsilon = 1e-8f);

  void Step() override;

  // Serializes the full optimizer state — first/second moments and the
  // dense and per-row step counters — for crash-safe training snapshots
  // (core/trainer.h). Restoring into an Adam built over the same parameter
  // list resumes updates bit-identically to an uninterrupted run.
  std::string SerializeState() const;
  // All-or-nothing: validates the payload (parameter count, shapes) before
  // touching any live state.
  Status RestoreState(const std::string& payload);

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
  // Per-parameter dense step counter; for sparse parameters a per-row
  // counter.
  std::vector<int64_t> step_;
  std::vector<std::vector<int64_t>> row_step_;
};

}  // namespace groupsa::nn

#endif  // GROUPSA_NN_OPTIMIZER_H_
