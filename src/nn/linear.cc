#include "nn/linear.h"

#include "nn/init.h"

namespace groupsa::nn {

Linear::Linear(const std::string& name, int in_dim, int out_dim, Rng* rng,
               bool use_bias)
    : in_dim_(in_dim), out_dim_(out_dim), use_bias_(use_bias) {
  weight_ = RegisterParameter(name + ".weight", in_dim, out_dim);
  if (use_bias_) bias_ = RegisterParameter(name + ".bias", 1, out_dim);
  InitGaussian(rng);
}

ag::TensorPtr Linear::Forward(ag::Tape* tape, const ag::TensorPtr& x) const {
  GROUPSA_CHECK(x->cols() == in_dim_, "Linear input dim mismatch");
  ag::TensorPtr out = ag::MatMul(tape, x, weight_);
  if (use_bias_) out = ag::AddBias(tape, out, bias_);
  return out;
}

void Linear::InitGaussian(Rng* rng, float stddev) {
  GaussianInit(&weight_->mutable_value(), 0.0f, stddev, rng);
  if (use_bias_) bias_->mutable_value().SetZero();
}

void Linear::InitGlorot(Rng* rng) {
  GlorotUniform(&weight_->mutable_value(), in_dim_, out_dim_, rng);
  if (use_bias_) bias_->mutable_value().SetZero();
}

}  // namespace groupsa::nn
