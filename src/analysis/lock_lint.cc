#include "analysis/lock_lint.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <regex>
#include <set>

#include "common/string_util.h"

namespace groupsa::analysis {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int LineAt(const std::string& text, size_t offset) {
  return 1 + static_cast<int>(std::count(text.begin(),
                                         text.begin() + static_cast<long>(
                                                            std::min(
                                                                offset,
                                                                text.size())),
                                         '\n'));
}

std::string LastIdent(const std::string& expr) {
  size_t end = expr.size();
  while (end > 0 && !IsIdentChar(expr[end - 1])) --end;
  size_t begin = end;
  while (begin > 0 && IsIdentChar(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

// True when `path` equals `suffix` or ends with "/<suffix>".
bool PathSuffix(const std::string& path, const std::string& suffix) {
  if (path == suffix) return true;
  if (path.size() <= suffix.size()) return false;
  return path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         path[path.size() - suffix.size() - 1] == '/';
}

bool IsExemptFile(const std::string& path) {
  return PathSuffix(path, "common/debug_mutex.h") ||
         PathSuffix(path, "common/debug_mutex.cc") ||
         PathSuffix(path, "common/macros.h");
}

// match[i] = offset of the '}' closing the '{' at offset i (or npos).
std::vector<size_t> MatchBraces(const std::string& text) {
  std::vector<size_t> match(text.size(), std::string::npos);
  std::vector<size_t> stack;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '{') {
      stack.push_back(i);
    } else if (text[i] == '}' && !stack.empty()) {
      match[stack.back()] = i;
      stack.pop_back();
    }
  }
  return match;
}

// ---- Annotation facts gathered from class bodies ----

struct MemberInfo {
  std::string name;
  int line = 0;
  std::string guarded_by;    // last identifier of the GUARDED_BY argument
  bool not_guarded = false;  // GROUPSA_NOT_GUARDED present
  bool is_mutex = false;
  bool exempt_kind = false;  // atomic / const / cond-var / nested-mutex type
  std::vector<std::string> acquired_before;  // edges, when is_mutex
};

struct ClassInfo {
  std::string name;
  std::string file;
  int line = 0;
  size_t body_begin = 0;  // offset of the '{'
  size_t body_end = 0;    // offset of the matching '}'
  bool owns_mutex = false;
  std::vector<MemberInfo> members;
  // method name -> mutexes from a GROUPSA_REQUIRES on its declaration
  std::map<std::string, std::vector<std::string>> requires_mutexes;
};

const std::regex& AnnotationPattern() {
  static const std::regex kAnnotation(
      R"(GROUPSA_(GUARDED_BY|NOT_GUARDED|REQUIRES|EXCLUDES|ACQUIRED_BEFORE|)"
      R"(CAPABILITY|ACQUIRE_SHARED|RELEASE_SHARED|TRY_ACQUIRE|ACQUIRE|)"
      R"(RELEASE)\s*\(([^()]*)\))");
  return kAnnotation;
}

// Splits a class body into top-level statements. A '}' returning to depth 0
// also terminates a statement, so inline method bodies and nested type
// definitions come out as single (skippable) statements.
std::vector<std::pair<size_t, std::string>> TopLevelStatements(
    const std::string& stripped, size_t body_begin, size_t body_end) {
  std::vector<std::pair<size_t, std::string>> statements;  // (offset, text)
  int depth = 0;
  size_t start = body_begin + 1;
  for (size_t i = body_begin + 1; i < body_end; ++i) {
    const char c = stripped[i];
    if (c == '{' || c == '(') ++depth;
    if (c == '}' || c == ')') {
      --depth;
      if (c == '}' && depth == 0) {
        statements.emplace_back(start, stripped.substr(start, i + 1 - start));
        start = i + 1;
      }
      continue;
    }
    if (c == ';' && depth == 0) {
      statements.emplace_back(start, stripped.substr(start, i - start));
      start = i + 1;
    }
  }
  return statements;
}

// Access labels glue onto the following statement; drop them.
std::string DropAccessLabels(std::string text) {
  static const std::regex kLabel(R"(\b(public|private|protected)\s*:)");
  return std::regex_replace(text, kLabel, " ");
}

bool StartsWithAny(const std::string& text,
                   const std::vector<std::string>& keywords) {
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  for (const std::string& kw : keywords) {
    if (text.compare(i, kw.size(), kw) == 0 &&
        (i + kw.size() >= text.size() || !IsIdentChar(text[i + kw.size()]))) {
      return true;
    }
  }
  return false;
}

// Parses one top-level class-body statement into `info`'s member list or
// requires index. `class_name` detects constructors.
void ParseStatement(const std::string& stripped, size_t offset,
                    const std::string& raw_statement,
                    const std::string& class_name, ClassInfo* info) {
  std::string text = DropAccessLabels(raw_statement);
  if (StrTrim(text).empty()) return;
  if (StartsWithAny(text, {"using", "typedef", "friend", "static", "template",
                           "enum", "class", "struct", "explicit", "virtual",
                           "operator", "~", class_name})) {
    return;  // not a data member (the class-name case is a constructor)
  }

  // Collect and erase the annotation macros before shape classification.
  std::string guarded_by;
  bool not_guarded = false;
  std::vector<std::string> acquired_before;
  std::vector<std::string> requires_args;
  std::smatch m;
  std::string scan = text;
  while (std::regex_search(scan, m, AnnotationPattern())) {
    const std::string kind = m[1].str();
    const std::string args = m[2].str();
    if (kind == "GUARDED_BY") {
      guarded_by = LastIdent(args);
    } else if (kind == "NOT_GUARDED") {
      not_guarded = true;
    } else if (kind == "ACQUIRED_BEFORE") {
      for (const std::string& arg : StrSplit(args, ','))
        if (!LastIdent(arg).empty()) acquired_before.push_back(LastIdent(arg));
    } else if (kind == "REQUIRES") {
      for (const std::string& arg : StrSplit(args, ','))
        if (!LastIdent(arg).empty()) requires_args.push_back(LastIdent(arg));
    }
    scan = m.prefix().str() + " " + m.suffix().str();
  }
  text = scan;

  // Truncate initializers: the first '=' or '{' at paren depth 0. ('=' can
  // only be an initializer here — operator declarations were skipped.)
  int depth = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '<') ++depth;
    if (c == ')' || c == '>') --depth;
    if (depth == 0 && (c == '=' || c == '{')) {
      text = text.substr(0, i);
      break;
    }
  }

  if (text.find('(') != std::string::npos) {
    // Function declaration. Record GROUPSA_REQUIRES under the method name
    // (the identifier directly before the first paren).
    if (!requires_args.empty()) {
      const std::string method =
          LastIdent(text.substr(0, text.find('(')));
      if (!method.empty()) info->requires_mutexes[method] = requires_args;
    }
    return;
  }

  MemberInfo member;
  member.name = LastIdent(text);
  if (member.name.empty()) return;
  // Report at the member name itself: the statement's text starts right
  // after the previous terminator, often on an earlier line.
  size_t name_at = 0;
  for (size_t p = raw_statement.find(member.name); p != std::string::npos;
       p = raw_statement.find(member.name, p + 1)) {
    const size_t end = p + member.name.size();
    if ((p == 0 || !IsIdentChar(raw_statement[p - 1])) &&
        (end >= raw_statement.size() || !IsIdentChar(raw_statement[end]))) {
      name_at = p;
      break;
    }
  }
  member.line = LineAt(stripped, offset + name_at);
  member.guarded_by = guarded_by;
  member.not_guarded = not_guarded;
  member.acquired_before = std::move(acquired_before);
  const std::string type = text.substr(0, text.size() - member.name.size());
  member.is_mutex = type.find("DebugMutex") != std::string::npos ||
                    type.find("DebugSharedMutex") != std::string::npos ||
                    type.find("std::mutex") != std::string::npos ||
                    type.find("std::shared_mutex") != std::string::npos;
  member.exempt_kind = type.find("atomic") != std::string::npos ||
                       type.find("DebugCondVar") != std::string::npos ||
                       type.find("condition_variable") != std::string::npos ||
                       std::regex_search(type, std::regex(R"(\bconst\b)"));
  info->members.push_back(std::move(member));
}

// Finds class/struct definitions in stripped source (including nested ones
// — each gets its own ClassInfo, and nested bodies are skipped by the
// top-level statement splitter of the enclosing class).
std::vector<ClassInfo> FindClasses(const std::string& path,
                                   const std::string& stripped,
                                   const std::vector<size_t>& braces) {
  std::vector<ClassInfo> classes;
  static const std::regex kClass(
      R"(\b(class|struct)\s+(GROUPSA_\w+\s*\([^()]*\)\s*)?([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kClass);
       it != std::sregex_iterator(); ++it) {
    const size_t at = static_cast<size_t>(it->position());
    // `enum class` / `enum struct` are not classes.
    if (at >= 5 && stripped.compare(at - 5, 4, "enum") == 0) continue;
    // Find the body '{' — a ';' first means a forward declaration, an '('
    // first means we matched inside an expression.
    size_t i = at + static_cast<size_t>(it->length());
    while (i < stripped.size() && stripped[i] != '{' && stripped[i] != ';' &&
           stripped[i] != '(' && stripped[i] != '}') {
      ++i;
    }
    if (i >= stripped.size() || stripped[i] != '{') continue;
    if (braces[i] == std::string::npos) continue;
    ClassInfo info;
    info.name = (*it)[3].str();
    info.file = path;
    info.line = LineAt(stripped, at);
    info.body_begin = i;
    info.body_end = braces[i];
    for (const auto& [offset, text] :
         TopLevelStatements(stripped, info.body_begin, info.body_end)) {
      ParseStatement(stripped, offset, text, info.name, &info);
    }
    for (const MemberInfo& member : info.members) {
      if (member.is_mutex) info.owns_mutex = true;
    }
    classes.push_back(std::move(info));
  }
  return classes;
}

// ---- lock-unguarded-write machinery ----

struct LockDecl {
  size_t offset = 0;
  size_t scope_open = 0;   // innermost enclosing '{'
  size_t scope_close = 0;  // its '}'
  std::vector<std::string> mutexes;  // last identifiers of the arguments
  bool shared = false;               // shared_lock: never licenses a write
};

// Innermost '{' whose extent contains `offset` (npos when at file scope).
size_t InnermostScope(const std::string& stripped,
                      const std::vector<size_t>& braces, size_t offset) {
  size_t best = std::string::npos;
  for (size_t i = 0; i < offset && i < stripped.size(); ++i) {
    if (stripped[i] == '{' && braces[i] != std::string::npos &&
        braces[i] > offset) {
      best = i;  // later opens that still contain offset are more inner
    }
  }
  return best;
}

// Splits `args` on top-level commas and returns the last identifier of each
// piece ("slot->mu" -> "mu", "GlobalPoolMutex()" -> "GlobalPoolMutex").
std::vector<std::string> LockArgNames(const std::string& args) {
  std::vector<std::string> names;
  int depth = 0;
  std::string piece;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      if (!LastIdent(piece).empty()) names.push_back(LastIdent(piece));
      piece.clear();
      continue;
    }
    piece += c;
  }
  if (!LastIdent(piece).empty()) names.push_back(LastIdent(piece));
  return names;
}

std::vector<LockDecl> FindLockDecls(const std::string& stripped,
                                    const std::vector<size_t>& braces) {
  std::vector<LockDecl> decls;
  static const std::regex kLock(
      R"(\b(?:std\s*::\s*)?(lock_guard|unique_lock|shared_lock|scoped_lock))"
      R"(\s*(?:<[^;{}]*>)?\s+[A-Za-z_]\w*\s*\(([^;{}]*)\)\s*;)");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      kLock);
       it != std::sregex_iterator(); ++it) {
    LockDecl decl;
    decl.offset = static_cast<size_t>(it->position());
    decl.scope_open = InnermostScope(stripped, braces, decl.offset);
    decl.scope_close = decl.scope_open == std::string::npos
                           ? stripped.size()
                           : braces[decl.scope_open];
    decl.mutexes = LockArgNames((*it)[2].str());
    decl.shared = (*it)[1].str() == "shared_lock";
    decls.push_back(std::move(decl));
  }
  return decls;
}

// A function body in the .cc, found from the text between the previous
// statement terminator and its '{': "Type Class::Method(...)".
struct FunctionBody {
  size_t open = 0;
  size_t close = 0;
  std::string class_name;
  std::string method;
  bool ctor_or_dtor = false;
  std::vector<std::string> requires_mutexes;
};

std::vector<FunctionBody> FindFunctionBodies(
    const std::string& stripped, const std::vector<size_t>& braces,
    const std::vector<const ClassInfo*>& classes) {
  std::vector<FunctionBody> bodies;
  static const std::regex kQualified(R"(([A-Za-z_]\w*)::(~?[A-Za-z_]\w*)\s*\()");
  for (size_t i = 0; i < stripped.size(); ++i) {
    if (stripped[i] != '{' || braces[i] == std::string::npos) continue;
    // Header: back to the previous ';', '{' or '}' at this nesting level.
    size_t start = i;
    while (start > 0 && stripped[start - 1] != ';' &&
           stripped[start - 1] != '{' && stripped[start - 1] != '}') {
      --start;
    }
    const std::string header = stripped.substr(start, i - start);
    std::string cls;
    std::string method;
    for (auto it = std::sregex_iterator(header.begin(), header.end(),
                                        kQualified);
         it != std::sregex_iterator(); ++it) {
      cls = (*it)[1].str();
      method = (*it)[2].str();
    }
    if (cls.empty()) continue;
    FunctionBody body;
    body.open = i;
    body.close = braces[i];
    body.class_name = cls;
    body.method = method;
    body.ctor_or_dtor = method == cls || method == "~" + cls;
    for (const ClassInfo* info : classes) {
      if (info->name != cls) continue;
      const auto it = info->requires_mutexes.find(method);
      if (it != info->requires_mutexes.end())
        body.requires_mutexes = it->second;
    }
    bodies.push_back(std::move(body));
  }
  return bodies;
}

const std::set<std::string>& MutatingMethods() {
  static const std::set<std::string> kMutators{
      "clear",       "push_back", "pop_back", "push_front", "pop_front",
      "insert",      "erase",     "emplace",  "emplace_back", "resize",
      "reset",       "assign",    "store",    "swap",       "push",
      "pop",         "fetch_add", "fetch_sub"};
  return kMutators;
}

// Decides whether the member occurrence [start, end) is written to:
// followed (possibly through a .field/->field/[idx] chain) by an assignment
// or ++/--, preceded by ++/--, or calling a known mutating method.
bool IsWriteAt(const std::string& s, size_t start, size_t end) {
  // Preceding ++/--, allowing an access chain in between (++slot.epoch).
  {
    size_t b = start;
    while (b > 0 && (IsIdentChar(s[b - 1]) || s[b - 1] == '.' ||
                     s[b - 1] == '>' ||
                     (s[b - 1] == '-' && b >= 2 && s[b - 2] == '-' + 0))) {
      // Walk back over ident chars and '.'/'->' chain pieces only.
      if (s[b - 1] == '-' && !(b >= 2 && s[b - 2] == '-')) break;
      if (s[b - 1] == '>' && !(b >= 2 && s[b - 2] == '-')) break;
      if (s[b - 1] == '-') {
        b -= 2;
        continue;
      }
      --b;
    }
    if (b >= 2 && ((s[b - 1] == '+' && s[b - 2] == '+') ||
                   (s[b - 1] == '-' && s[b - 2] == '-'))) {
      return true;
    }
  }
  // Forward: consume the access chain, then test for a write operator.
  size_t i = end;
  const auto skip_ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0)
      ++i;
  };
  for (;;) {
    skip_ws();
    if (i >= s.size()) return false;
    if (s[i] == '[') {
      int depth = 0;
      while (i < s.size()) {
        if (s[i] == '[') ++depth;
        if (s[i] == ']' && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    const bool dot = s[i] == '.';
    const bool arrow = s[i] == '-' && i + 1 < s.size() && s[i + 1] == '>';
    if (dot || arrow) {
      i += dot ? 1 : 2;
      skip_ws();
      size_t name_begin = i;
      while (i < s.size() && IsIdentChar(s[i])) ++i;
      const std::string field = s.substr(name_begin, i - name_begin);
      size_t j = i;
      while (j < s.size() &&
             std::isspace(static_cast<unsigned char>(s[j])) != 0) {
        ++j;
      }
      if (j < s.size() && s[j] == '(' &&
          MutatingMethods().count(field) != 0) {
        return true;
      }
      continue;  // keep walking: a.b.c = x writes through a
    }
    break;
  }
  if (i + 1 < s.size() &&
      ((s[i] == '+' && s[i + 1] == '+') || (s[i] == '-' && s[i + 1] == '-'))) {
    return true;
  }
  // Compound assignment or plain '=' (but not '==').
  static const std::string kCompound = "+-*/%&|^";
  if (i + 1 < s.size() && kCompound.find(s[i]) != std::string::npos &&
      s[i + 1] == '=') {
    return true;
  }
  if (i + 2 < s.size() && (s.compare(i, 3, "<<=") == 0 ||
                           s.compare(i, 3, ">>=") == 0)) {
    return true;
  }
  if (s[i] == '=' && (i + 1 >= s.size() || s[i + 1] != '=')) return true;
  return false;
}

struct Edge {
  std::string from;  // "Class::mutex"
  std::string to;
  std::string file;
  int line = 0;
};

}  // namespace

std::vector<LintFinding> LintLocks(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<LintFinding> findings;

  // Pass 1: class/annotation index over every file.
  struct FileFacts {
    std::string stripped;
    std::vector<size_t> braces;
    std::vector<ClassInfo> classes;
  };
  std::map<std::string, FileFacts> facts;
  std::vector<Edge> edges;
  for (const auto& [path, content] : files) {
    if (IsExemptFile(path)) continue;
    FileFacts f;
    f.stripped = StripCommentsAndStrings(content);
    f.braces = MatchBraces(f.stripped);
    f.classes = FindClasses(path, f.stripped, f.braces);
    for (const ClassInfo& info : f.classes) {
      for (const MemberInfo& member : info.members) {
        for (const std::string& after : member.acquired_before) {
          edges.push_back({info.name + "::" + member.name,
                           info.name + "::" + after, path, member.line});
        }
      }
    }
    facts.emplace(path, std::move(f));
  }

  // Rule: lock-unannotated.
  for (const auto& [path, f] : facts) {
    for (const ClassInfo& info : f.classes) {
      if (!info.owns_mutex) continue;
      for (const MemberInfo& member : info.members) {
        if (member.is_mutex || member.exempt_kind || member.not_guarded ||
            !member.guarded_by.empty()) {
          continue;
        }
        findings.push_back(
            {path, member.line, "lock-unannotated",
             StrFormat("member '%s' of mutex-owning class '%s' has no "
                       "GROUPSA_GUARDED_BY / GROUPSA_NOT_GUARDED annotation; "
                       "state adjacent to a mutex needs a stated contract",
                       member.name.c_str(), info.name.c_str())});
      }
    }
  }

  // Rule: lock-order-cycle (DFS 3-color over the ACQUIRED_BEFORE edges).
  {
    std::map<std::string, std::vector<const Edge*>> adj;
    std::set<std::string> nodes;
    for (const Edge& e : edges) {
      adj[e.from].push_back(&e);
      nodes.insert(e.from);
      nodes.insert(e.to);
    }
    std::map<std::string, int> color;  // 0 unvisited, 1 on stack, 2 done
    std::set<const Edge*> reported;
    // Iterative DFS carrying the path, so the closing edge can be reported.
    const std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          color[node] = 1;
          for (const Edge* e : adj[node]) {
            if (color[e->to] == 1) {
              if (reported.insert(e).second) {
                findings.push_back(
                    {e->file, e->line, "lock-order-cycle",
                     StrFormat("GROUPSA_ACQUIRED_BEFORE edge %s -> %s closes "
                               "a cycle; the documented acquisition order "
                               "must be a DAG",
                               e->from.c_str(), e->to.c_str())});
              }
            } else if (color[e->to] == 0) {
              dfs(e->to);
            }
          }
          color[node] = 2;
        };
    for (const std::string& node : nodes) {
      if (color[node] == 0) dfs(node);
    }
  }

  // Rule: lock-unguarded-write, per .cc against its own classes plus the
  // same-basename header's.
  for (const auto& [path, f] : facts) {
    if (path.size() < 3 || path.compare(path.size() - 3, 3, ".cc") != 0)
      continue;
    std::vector<const ClassInfo*> applicable;
    for (const ClassInfo& info : f.classes) applicable.push_back(&info);
    const std::string header_path = path.substr(0, path.size() - 3) + ".h";
    const auto hit = facts.find(header_path);
    if (hit != facts.end()) {
      for (const ClassInfo& info : hit->second.classes)
        applicable.push_back(&info);
    }

    std::vector<LockDecl> locks = FindLockDecls(f.stripped, f.braces);
    std::vector<FunctionBody> bodies =
        FindFunctionBodies(f.stripped, f.braces, applicable);

    for (const ClassInfo* info : applicable) {
      for (const MemberInfo& member : info->members) {
        if (member.guarded_by.empty()) continue;
        const std::string& m = member.name;
        const std::string& mu = member.guarded_by;
        for (size_t at = f.stripped.find(m); at != std::string::npos;
             at = f.stripped.find(m, at + 1)) {
          // Whole-identifier match only.
          if (at > 0 && IsIdentChar(f.stripped[at - 1])) continue;
          const size_t after = at + m.size();
          if (after < f.stripped.size() && IsIdentChar(f.stripped[after]))
            continue;
          // Member declarations (in-class default initializers) are not
          // writes: skip occurrences whose innermost scope is a class body.
          const size_t scope = InnermostScope(f.stripped, f.braces, at);
          bool in_class_body = false;
          for (const ClassInfo& cls : f.classes) {
            if (cls.body_begin == scope) in_class_body = true;
          }
          if (in_class_body) continue;
          const bool qualified =
              at > 0 && (f.stripped[at - 1] == '.' ||
                         (f.stripped[at - 1] == '>' && at > 1 &&
                          f.stripped[at - 2] == '-'));
          if (at > 1 && f.stripped[at - 1] == ':' &&
              f.stripped[at - 2] == ':') {
            continue;  // scope-qualified name, not an object access
          }
          if (!IsWriteAt(f.stripped, at, after)) continue;

          // Find the enclosing function body (if any).
          const FunctionBody* enclosing = nullptr;
          for (const FunctionBody& body : bodies) {
            if (body.open < at && at < body.close) enclosing = &body;
          }
          // Bare member names are only meaningful inside the owning
          // class's own code; elsewhere they are unrelated locals.
          if (!qualified) {
            const bool in_own_method =
                enclosing != nullptr && enclosing->class_name == info->name;
            const bool in_own_body =
                info->file == path && info->body_begin < at &&
                at < info->body_end;
            if (!in_own_method && !in_own_body) continue;
          }
          // Constructors/destructors of the owning class are exempt: no
          // concurrent access exists before/after the object's lifetime.
          if (enclosing != nullptr && enclosing->ctor_or_dtor &&
              enclosing->class_name == info->name) {
            continue;
          }
          // Held mutexes at this offset: lexical lock declarations whose
          // scope contains the write, plus the enclosing function's
          // GROUPSA_REQUIRES set.
          bool held = false;
          for (const LockDecl& decl : locks) {
            if (decl.shared || decl.offset >= at) continue;
            if (decl.scope_open != std::string::npos &&
                !(decl.scope_open < at && at < decl.scope_close)) {
              continue;
            }
            for (const std::string& name : decl.mutexes) {
              if (name == mu) held = true;
            }
          }
          if (enclosing != nullptr) {
            for (const std::string& name : enclosing->requires_mutexes) {
              if (name == mu) held = true;
            }
          }
          if (held) continue;
          findings.push_back(
              {path, LineAt(f.stripped, at), "lock-unguarded-write",
               StrFormat("write to '%s' (GROUPSA_GUARDED_BY(%s), class '%s') "
                         "outside a lexical lock scope naming '%s'",
                         m.c_str(), mu.c_str(), info->name.c_str(),
                         mu.c_str())});
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const LintFinding& a, const LintFinding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

}  // namespace groupsa::analysis
