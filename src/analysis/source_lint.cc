#include "analysis/source_lint.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <utility>

#include "common/string_util.h"

namespace groupsa::analysis {
namespace {

// True when `path` equals `suffix` or ends with "/<suffix>". A suffix with
// a trailing '/' is a directory entry: it matches every path that contains
// that directory sequence at a component boundary with something after it
// ("tensor/backends/" matches "src/tensor/backends/backend_avx2.cc" but not
// "src/tensor/backends_util.cc").
bool PathMatches(const std::string& path, const std::string& suffix) {
  if (suffix.empty()) return false;
  if (suffix.back() == '/') {
    std::string::size_type pos = path.find(suffix);
    while (pos != std::string::npos) {
      if ((pos == 0 || path[pos - 1] == '/') &&
          pos + suffix.size() < path.size()) {
        return true;
      }
      pos = path.find(suffix, pos + 1);
    }
    return false;
  }
  if (path == suffix) return true;
  if (path.size() <= suffix.size()) return false;
  return path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         path[path.size() - suffix.size() - 1] == '/';
}

bool PathMatchesAny(const std::string& path,
                    const std::vector<std::string>& suffixes) {
  for (const std::string& s : suffixes) {
    if (PathMatches(path, s)) return true;
  }
  return false;
}

struct LineRule {
  const char* name;
  const char* message;
  // Files (suffix-matched) where the construct is the sanctioned home.
  std::vector<std::string> exempt;
  std::regex pattern;
};

const std::vector<LineRule>& LineRules() {
  static const std::vector<LineRule> rules{
      {"banned-time",
       "wall-clock read; route timing through common/stopwatch.h so results "
       "never depend on when they ran",
       {"common/stopwatch.h"},
       std::regex(
           R"(\b(time|clock|gettimeofday|clock_gettime|localtime|gmtime)\s*\()"
           R"(|std::chrono::(system_clock|steady_clock|high_resolution_clock))"
           R"(|::now\s*\()")},
      {"banned-rand",
       "ad-hoc randomness; use common/rng.h streams, which are seeded, "
       "splittable and checkpointable",
       {},
       std::regex(
           R"(\b(rand|srand|rand_r|drand48|random)\s*\()"
           R"(|std::(random_device|mt19937|mt19937_64|minstd_rand0?|default_random_engine))"
           R"(|std::(uniform_int|uniform_real|normal|bernoulli)_distribution)")},
      {"naked-thread",
       "raw thread primitive; run work on common/thread_pool.h so scheduling "
       "stays deterministic (std::thread::id / std::this_thread are fine)",
       {"common/thread_pool.h", "common/thread_pool.cc"},
       std::regex(R"(std::thread\b(?!::)|std::jthread\b|std::async\b)"
                  R"(|\bpthread_(create|join|detach|mutex|cond|rwlock)\w*)")},
      {"raw-new-delete",
       "raw new/delete; hold memory in containers or smart pointers",
       {},
       std::regex(R"(\bnew\b|\bdelete\b)")},
      {"naked-mutex",
       "raw mutex/cond-var primitive; use the common/debug_mutex.h wrappers "
       "(DebugMutex, DebugSharedMutex, DebugCondVar) so debug builds catch "
       "lock-order inversions and lock-lint can check the annotations",
       {"common/debug_mutex.h", "common/debug_mutex.cc"},
       std::regex(R"(\bstd::(mutex|shared_mutex|timed_mutex|)"
                  R"(recursive_mutex|recursive_timed_mutex|)"
                  R"(condition_variable(_any)?)\b)")},
  };
  return rules;
}

// `= delete` / `= default` member declarations are not memory management;
// erase them before the raw-new-delete pattern runs.
std::string EraseDeletedFunctions(const std::string& line) {
  static const std::regex kDeletedFn(R"(=\s*(delete|default)\b)");
  return std::regex_replace(line, kDeletedFn, "");
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    std::string::size_type end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Last identifier in `expr` ("(*p.touched_rows)" -> "touched_rows").
std::string LastIdentifier(const std::string& expr) {
  int end = static_cast<int>(expr.size());
  while (end > 0 && !IsIdentChar(expr[static_cast<size_t>(end) - 1])) --end;
  int begin = end;
  while (begin > 0 && IsIdentChar(expr[static_cast<size_t>(begin) - 1]))
    --begin;
  return expr.substr(static_cast<size_t>(begin),
                     static_cast<size_t>(end - begin));
}

// A range expression like "buffer.rows" or "(*p.touched_rows)" names a
// member; a bare "rows" does not.
bool IsMemberAccess(const std::string& expr) {
  return expr.find('.') != std::string::npos ||
         expr.find("->") != std::string::npos;
}

struct RangeFor {
  int line = 0;           // 1-based line of the `for`
  std::string range_expr; // text after the ':' inside the parens
  size_t body_begin = 0;  // offset just past the closing ')'
};

// Finds range-based for statements in stripped source. Classic for loops
// (with ';' inside the parens) are skipped.
std::vector<RangeFor> FindRangeFors(const std::string& stripped) {
  std::vector<RangeFor> fors;
  static const std::regex kFor(R"(\bfor\s*\()");
  for (auto it = std::sregex_iterator(stripped.begin(), stripped.end(), kFor);
       it != std::sregex_iterator(); ++it) {
    size_t open = static_cast<size_t>(it->position()) + it->length() - 1;
    int depth = 0;
    size_t close = std::string::npos;
    size_t colon = std::string::npos;
    bool has_semi = false;
    for (size_t i = open; i < stripped.size(); ++i) {
      char c = stripped[i];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (depth == 1 && c == ';') has_semi = true;
      if (depth == 1 && c == ':' && colon == std::string::npos) {
        // Skip '::' scope qualifiers.
        if (i + 1 < stripped.size() && stripped[i + 1] == ':') {
          ++i;
          continue;
        }
        if (i > 0 && stripped[i - 1] == ':') continue;
        colon = i;
      }
    }
    if (close == std::string::npos || has_semi ||
        colon == std::string::npos) {
      continue;
    }
    RangeFor rf;
    rf.line = 1 + static_cast<int>(std::count(
                      stripped.begin(),
                      stripped.begin() + static_cast<long>(it->position()),
                      '\n'));
    rf.range_expr = stripped.substr(colon + 1, close - colon - 1);
    rf.body_begin = close + 1;
    fors.push_back(std::move(rf));
  }
  return fors;
}

// Extent of the loop body: the matched {...} block, or the single statement
// up to ';' for braceless loops.
std::string BodyText(const std::string& stripped, size_t body_begin) {
  size_t i = body_begin;
  while (i < stripped.size() &&
         std::isspace(static_cast<unsigned char>(stripped[i])) != 0) {
    ++i;
  }
  if (i >= stripped.size()) return "";
  if (stripped[i] == '{') {
    int depth = 0;
    size_t j = i;
    for (; j < stripped.size(); ++j) {
      if (stripped[j] == '{') ++depth;
      if (stripped[j] == '}' && --depth == 0) break;
    }
    return stripped.substr(i, j - i + 1);
  }
  size_t semi = stripped.find(';', i);
  if (semi == std::string::npos) semi = stripped.size();
  return stripped.substr(i, semi - i);
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string literal (u8|u|U|L)?R"delim(...)delim"? The escape
          // rules of the kString machine do not apply inside one — a lone
          // backslash or an embedded '"' is literal — so handle it here:
          // find the matching )delim" and blank everything through it,
          // preserving newlines. Malformed raw strings (no '(' within the
          // 16-char delimiter limit, or no terminator) fall back to the
          // ordinary string state.
          bool raw = false;
          if (i >= 1 && out[i - 1] == 'R') {
            size_t p = i - 1;  // first char of the literal prefix
            if (p >= 2 && out[p - 2] == 'u' && out[p - 1] == '8') {
              p -= 2;
            } else if (p >= 1 && (out[p - 1] == 'u' || out[p - 1] == 'U' ||
                                  out[p - 1] == 'L')) {
              p -= 1;
            }
            raw = p == 0 || !IsIdentChar(out[p - 1]);
          }
          if (raw) {
            size_t open = std::string::npos;
            for (size_t j = i + 1; j < out.size() && j <= i + 17; ++j) {
              if (out[j] == '(') {
                open = j;
                break;
              }
            }
            if (open != std::string::npos) {
              const std::string closer =
                  ")" + out.substr(i + 1, open - i - 1) + "\"";
              const size_t end = out.find(closer, open + 1);
              if (end != std::string::npos) {
                const size_t last = end + closer.size() - 1;
                for (size_t j = i; j <= last; ++j) {
                  if (out[j] != '\n') out[j] = ' ';
                }
                i = last;  // still kCode; loop increment steps past
                break;
              }
            }
          }
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\n') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\n') {
          out[i] = ' ';
          if (i + 1 < out.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

void CollectUnorderedNames(const std::string& stripped,
                           std::set<std::string>* names) {
  // Declarations shaped "std::unordered_map<...> name" / "...>* name" /
  // "...>& name". Template arguments never contain ';', '{', '(' or ')' in
  // this codebase, which keeps the match from leaking across statements.
  static const std::regex kDecl(
      R"(std::unordered_(?:map|set)\s*<[^;{}()]*>\s*[*&]?\s*([A-Za-z_]\w*))");
  for (auto it =
           std::sregex_iterator(stripped.begin(), stripped.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    names->insert((*it)[1].str());
  }
}

std::vector<LintFinding> LintSource(
    const std::string& path, const std::string& content,
    const std::set<std::string>& global_unordered) {
  std::vector<LintFinding> findings;
  const std::string stripped = StripCommentsAndStrings(content);
  const std::vector<std::string> lines = SplitLines(stripped);

  for (const LineRule& rule : LineRules()) {
    if (PathMatchesAny(path, rule.exempt)) continue;
    const bool is_new_delete = std::string(rule.name) == "raw-new-delete";
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string line =
          is_new_delete ? EraseDeletedFunctions(lines[i]) : lines[i];
      if (std::regex_search(line, rule.pattern)) {
        findings.push_back({path, static_cast<int>(i) + 1, rule.name,
                            rule.message});
      }
    }
  }

  // unordered-iter: a range-for whose range names an unordered container and
  // whose body accumulates with += / -=.
  std::set<std::string> local_unordered;
  CollectUnorderedNames(stripped, &local_unordered);
  for (const RangeFor& rf : FindRangeFors(stripped)) {
    const std::string name = LastIdentifier(rf.range_expr);
    if (name.empty()) continue;
    const bool member = IsMemberAccess(rf.range_expr);
    const bool unordered =
        member ? global_unordered.count(name) != 0 ||
                     local_unordered.count(name) != 0
               : local_unordered.count(name) != 0;
    if (!unordered) continue;
    const std::string body = BodyText(stripped, rf.body_begin);
    if (body.find("+=") == std::string::npos &&
        body.find("-=") == std::string::npos) {
      continue;
    }
    findings.push_back(
        {path, rf.line, "unordered-iter",
         StrFormat("accumulation over unordered container '%s'; iteration "
                   "order is unspecified, so the reduction result is not "
                   "reproducible — iterate a sorted copy or restructure",
                   name.c_str())});
  }

  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<LintFinding> LintSimdGuardList(
    const std::string& cmake_path, const std::string& cmake_content,
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<LintFinding> findings;
  const auto line_of = [](const std::string& text, size_t pos) {
    return 1 + static_cast<int>(std::count(
                   text.begin(), text.begin() + static_cast<long>(pos),
                   '\n'));
  };

  // The guard-flag variable every kernel backend TU compiles with. The
  // per-ISA translation units (tensor/backends/backend_*.cc) are the only
  // place SIMD codegen differs between builds, so they — not a per-file
  // source list — carry the no-contraction contract.
  static const std::regex kGuardSet(
      R"(set\s*\(\s*GROUPSA_KERNEL_GUARD_FLAGS\s+"([^")]*)\")");
  std::smatch guard;
  if (!std::regex_search(cmake_content, guard, kGuardSet)) {
    findings.push_back(
        {cmake_path, 1, "fp-contract",
         "GROUPSA_KERNEL_GUARD_FLAGS guard list not found; every kernel "
         "backend translation unit must receive -ffp-contract=off -mno-fma "
         "through this variable"});
    return findings;
  }
  const int guard_line =
      line_of(cmake_content, static_cast<size_t>(guard.position()));
  const std::string guard_value = guard[1].str();
  if (guard_value.find("-ffp-contract=off") == std::string::npos ||
      guard_value.find("-mno-fma") == std::string::npos) {
    findings.push_back(
        {cmake_path, guard_line, "fp-contract",
         "GROUPSA_KERNEL_GUARD_FLAGS is missing -ffp-contract=off or "
         "-mno-fma; a fused multiply-add rounds once instead of twice, so "
         "contraction would break cross-backend bit-identity"});
  }

  // Every backend TU named anywhere in the file must receive the guard
  // flags via a set_source_files_properties(... COMPILE_OPTIONS ...) call
  // that references GROUPSA_KERNEL_GUARD_FLAGS.
  std::vector<std::string> prop_blocks;
  {
    static const std::regex kProps(
        R"(set_source_files_properties\s*\(([^)]*)\))");
    for (auto it = std::sregex_iterator(cmake_content.begin(),
                                        cmake_content.end(), kProps);
         it != std::sregex_iterator(); ++it) {
      prop_blocks.push_back((*it)[1].str());
    }
  }
  static const std::regex kBackendTu(R"(tensor/backends/backend_\w+\.cc)");
  std::set<std::string> seen_tus;
  for (auto it = std::sregex_iterator(cmake_content.begin(),
                                      cmake_content.end(), kBackendTu);
       it != std::sregex_iterator(); ++it) {
    const std::string tu = it->str();
    if (!seen_tus.insert(tu).second) continue;
    bool guarded = false;
    for (const std::string& block : prop_blocks) {
      if (block.find(tu) != std::string::npos &&
          block.find("GROUPSA_KERNEL_GUARD_FLAGS") != std::string::npos) {
        guarded = true;
        break;
      }
    }
    if (!guarded) {
      findings.push_back(
          {cmake_path,
           line_of(cmake_content, static_cast<size_t>(it->position())),
           "fp-contract",
           StrFormat("%s is not given ${GROUPSA_KERNEL_GUARD_FLAGS} via "
                     "set_source_files_properties, so it compiles without "
                     "-ffp-contract=off -mno-fma and its float results can "
                     "diverge from the other backends",
                     tu.c_str())});
    }
  }

  // simd-confined: intrinsics, ISA macro tests and target pragmas belong in
  // the per-ISA backend TUs, where runtime dispatch guarantees the host can
  // execute them and the guard flags keep them bit-identical.
  static const std::vector<std::string> kBackendDirs{"tensor/backends/"};
  static const std::regex kSimdMarker(
      R"(#\s*include\s*<(immintrin|x86intrin|emmintrin|avxintrin)\.h>)"
      R"(|\b_mm\d{0,3}_\w+\s*\()"
      R"(|#\s*pragma\s+(GCC|clang)\s+(target|push_options))"
      R"(|\b__AVX\w*__\b|\b__SSE\w*__\b|\b__FMA__\b)");
  for (const auto& [path, content] : files) {
    if (PathMatchesAny(path, kBackendDirs)) continue;
    const std::string stripped = StripCommentsAndStrings(content);
    std::smatch m;
    if (!std::regex_search(stripped, m, kSimdMarker)) continue;
    findings.push_back(
        {path, line_of(stripped, static_cast<size_t>(m.position())),
         "simd-confined",
         "SIMD intrinsics and ISA #ifdefs are confined to "
         "src/tensor/backends/; add the kernel to "
         "tensor/backends/kernels.inc (or a backend translation unit) so "
         "runtime dispatch picks an ISA the host can execute and the guard "
         "flags keep every variant bit-identical"});
  }
  return findings;
}

Status Allowlist::Parse(const std::string& content, Allowlist* out) {
  out->entries_.clear();
  const std::vector<std::string> lines = SplitLines(content);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    const std::string::size_type hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = StrTrim(line);
    if (line.empty()) continue;
    const std::vector<std::string> parts = StrSplit(line, ' ');
    std::vector<std::string> fields;
    for (const std::string& p : parts) {
      if (!StrTrim(p).empty()) fields.push_back(StrTrim(p));
    }
    if (fields.size() != 2) {
      return Status::Error(
          StrFormat("allowlist line %zu: expected \"<path> <rule>\", got "
                    "\"%s\"",
                    i + 1, line.c_str()));
    }
    Entry entry;
    entry.path = fields[0];
    entry.rule = fields[1];
    entry.line = static_cast<int>(i) + 1;
    out->entries_.push_back(std::move(entry));
  }
  return Status::Ok();
}

bool Allowlist::Allows(const std::string& path,
                       const std::string& rule) const {
  for (const Entry& e : entries_) {
    if (e.rule == rule && PathMatches(path, e.path)) return true;
  }
  return false;
}

std::vector<LintFinding> ApplyAllowlist(std::vector<LintFinding> findings,
                                        const Allowlist& allow,
                                        const std::string& allow_path) {
  std::vector<bool> used(allow.entries().size(), false);
  std::vector<LintFinding> kept;
  for (LintFinding& f : findings) {
    bool allowed = false;
    for (size_t i = 0; i < allow.entries().size(); ++i) {
      const Allowlist::Entry& e = allow.entries()[i];
      if (e.rule == f.rule && PathMatches(f.file, e.path)) {
        used[i] = true;
        allowed = true;
      }
    }
    if (!allowed) kept.push_back(std::move(f));
  }
  for (size_t i = 0; i < allow.entries().size(); ++i) {
    if (used[i]) continue;
    const Allowlist::Entry& e = allow.entries()[i];
    kept.push_back(
        {allow_path, e.line, "stale-allowlist",
         StrFormat("entry \"%s %s\" matches no current finding; delete it "
                   "so the allowlist only documents live exceptions",
                   e.path.c_str(), e.rule.c_str())});
  }
  return kept;
}

std::string PruneAllowlist(const std::string& content, const Allowlist& allow,
                           const std::vector<LintFinding>& findings) {
  std::set<int> drop;
  for (const Allowlist::Entry& e : allow.entries()) {
    bool used = false;
    for (const LintFinding& f : findings) {
      if (e.rule == f.rule && PathMatches(f.file, e.path)) used = true;
    }
    if (!used) drop.insert(e.line);
  }
  const std::vector<std::string> lines = SplitLines(content);
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    // SplitLines yields a final empty element for a trailing newline; do
    // not turn it into an extra blank line.
    if (i + 1 == lines.size() && lines[i].empty()) break;
    if (drop.count(static_cast<int>(i) + 1) != 0) continue;
    out += lines[i];
    out += '\n';
  }
  return out;
}

}  // namespace groupsa::analysis
