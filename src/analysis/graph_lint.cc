#include "analysis/graph_lint.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace groupsa::analysis {
namespace {

using ag::OpKind;
using ag::OpNode;
using ag::Tensor;

struct Shape {
  int rows = 0;
  int cols = 0;
  bool operator==(const Shape& other) const {
    return rows == other.rows && cols == other.cols;
  }
};

Shape ShapeOf(const ag::TensorPtr& t) { return {t->rows(), t->cols()}; }

std::string ShapeStr(const Shape& s) {
  return StrFormat("%dx%d", s.rows, s.cols);
}

// "op#12 MatMul" or, when the output tensor is named, "op#12 MatMul(bias)".
std::string NodeLabel(const OpNode& node, int index) {
  std::string label = StrFormat("op#%d %s", index, ag::OpKindName(node.kind));
  if (node.output != nullptr && !node.output->name().empty())
    label += StrFormat(" ('%s')", node.output->name().c_str());
  return label;
}

class Linter {
 public:
  Linter(const ag::Tape& tape, const TapeLintOptions& options)
      : tape_(tape), options_(options) {}

  std::vector<GraphIssue> Run() {
    const std::vector<OpNode>& nodes = tape_.nodes();
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
      if (!CheckOperandsPresent(nodes[i], i)) continue;
      CheckShapes(nodes[i], i);
      CheckWrites(nodes[i], i);
      CheckStaleGrad(nodes[i], i);
    }
    CheckReachability();
    return std::move(issues_);
  }

 private:
  void Add(GraphIssue::Kind kind, int node, std::string message) {
    issues_.push_back(GraphIssue{kind, node, std::move(message)});
  }

  bool CheckOperandsPresent(const OpNode& node, int i) {
    if (node.output == nullptr) {
      Add(GraphIssue::Kind::kBadOperand, i,
          StrFormat("op#%d %s: missing output tensor", i,
                    ag::OpKindName(node.kind)));
      return false;
    }
    if (node.inputs.empty()) {
      Add(GraphIssue::Kind::kBadOperand, i,
          NodeLabel(node, i) + ": op has no inputs");
      return false;
    }
    for (size_t k = 0; k < node.inputs.size(); ++k) {
      if (node.inputs[k] == nullptr) {
        Add(GraphIssue::Kind::kBadOperand, i,
            NodeLabel(node, i) + StrFormat(": input %zu is null", k));
        return false;
      }
    }
    return true;
  }

  void ExpectOutput(const OpNode& node, int i, const Shape& expected) {
    const Shape actual = ShapeOf(node.output);
    if (actual == expected) return;
    Add(GraphIssue::Kind::kShapeMismatch, i,
        NodeLabel(node, i) +
            StrFormat(": expected output %s, got %s",
                      ShapeStr(expected).c_str(), ShapeStr(actual).c_str()));
  }

  void ExpectInputCount(const OpNode& node, int i, size_t count, bool* ok) {
    if (node.inputs.size() == count) return;
    Add(GraphIssue::Kind::kBadOperand, i,
        NodeLabel(node, i) + StrFormat(": expected %zu inputs, got %zu",
                                       count, node.inputs.size()));
    *ok = false;
  }

  // The shape-inference table: one case per OpKind, mirroring the
  // contracts documented in autograd/ops.h.
  void CheckShapes(const OpNode& node, int i) {
    const std::vector<ag::TensorPtr>& in = node.inputs;
    bool ok = true;
    switch (node.kind) {
      case OpKind::kMatMul: {
        ExpectInputCount(node, i, 2, &ok);
        if (!ok) break;
        const Shape a = ShapeOf(in[0]);
        const Shape b = ShapeOf(in[1]);
        const int a_rows = node.flag0 ? a.cols : a.rows;
        const int a_cols = node.flag0 ? a.rows : a.cols;
        const int b_rows = node.flag1 ? b.cols : b.rows;
        const int b_cols = node.flag1 ? b.rows : b.cols;
        if (a_cols != b_rows) {
          Add(GraphIssue::Kind::kShapeMismatch, i,
              NodeLabel(node, i) +
                  StrFormat(": inner dimensions differ: op(a)=%dx%d vs "
                            "op(b)=%dx%d",
                            a_rows, a_cols, b_rows, b_cols));
          break;
        }
        ExpectOutput(node, i, {a_rows, b_cols});
        break;
      }
      case OpKind::kAdd:
      case OpKind::kSub:
      case OpKind::kMul: {
        ExpectInputCount(node, i, 2, &ok);
        if (!ok) break;
        const Shape a = ShapeOf(in[0]);
        const Shape b = ShapeOf(in[1]);
        if (!(a == b)) {
          Add(GraphIssue::Kind::kShapeMismatch, i,
              NodeLabel(node, i) +
                  StrFormat(": elementwise operands differ: %s vs %s",
                            ShapeStr(a).c_str(), ShapeStr(b).c_str()));
          break;
        }
        ExpectOutput(node, i, a);
        break;
      }
      case OpKind::kScale:
      case OpKind::kRelu:
      case OpKind::kSigmoid:
      case OpKind::kTanh:
      case OpKind::kLogSigmoid:
      case OpKind::kSoftmaxRows:
      case OpKind::kDropout: {
        ExpectInputCount(node, i, 1, &ok);
        if (!ok) break;
        ExpectOutput(node, i, ShapeOf(in[0]));
        break;
      }
      case OpKind::kAddBias: {
        ExpectInputCount(node, i, 2, &ok);
        if (!ok) break;
        const Shape x = ShapeOf(in[0]);
        const Shape bias = ShapeOf(in[1]);
        if (bias.rows != 1 || bias.cols != x.cols) {
          Add(GraphIssue::Kind::kShapeMismatch, i,
              NodeLabel(node, i) +
                  StrFormat(": bias must be 1x%d to broadcast over %s rows, "
                            "got %s",
                            x.cols, ShapeStr(x).c_str(),
                            ShapeStr(bias).c_str()));
          break;
        }
        ExpectOutput(node, i, x);
        break;
      }
      case OpKind::kBroadcastRow: {
        ExpectInputCount(node, i, 1, &ok);
        if (!ok) break;
        const Shape row = ShapeOf(in[0]);
        if (row.rows != 1) {
          Add(GraphIssue::Kind::kShapeMismatch, i,
              NodeLabel(node, i) +
                  StrFormat(": input must be a single row, got %s",
                            ShapeStr(row).c_str()));
          break;
        }
        ExpectOutput(node, i, {node.arg0, row.cols});
        break;
      }
      case OpKind::kConcatCols:
      case OpKind::kConcatRows: {
        const bool by_cols = node.kind == OpKind::kConcatCols;
        const Shape first = ShapeOf(in[0]);
        int sum = by_cols ? first.cols : first.rows;
        bool uniform = true;
        for (size_t k = 1; k < in.size(); ++k) {
          const Shape part = ShapeOf(in[k]);
          const int shared = by_cols ? part.rows : part.cols;
          const int shared_first = by_cols ? first.rows : first.cols;
          if (shared != shared_first) {
            Add(GraphIssue::Kind::kShapeMismatch, i,
                NodeLabel(node, i) +
                    StrFormat(": part %zu is %s but part 0 is %s (%s must "
                              "match)",
                              k, ShapeStr(part).c_str(),
                              ShapeStr(first).c_str(),
                              by_cols ? "row counts" : "column counts"));
            uniform = false;
            break;
          }
          sum += by_cols ? part.cols : part.rows;
        }
        if (!uniform) break;
        ExpectOutput(node, i,
                     by_cols ? Shape{first.rows, sum} : Shape{sum, first.cols});
        break;
      }
      case OpKind::kSliceRows: {
        ExpectInputCount(node, i, 1, &ok);
        if (!ok) break;
        const Shape x = ShapeOf(in[0]);
        if (node.arg0 < 0 || node.arg1 < 0 || node.arg0 + node.arg1 > x.rows) {
          Add(GraphIssue::Kind::kBadOperand, i,
              NodeLabel(node, i) +
                  StrFormat(": slice [%d, %d) out of bounds for %d rows",
                            node.arg0, node.arg0 + node.arg1, x.rows));
          break;
        }
        ExpectOutput(node, i, {node.arg1, x.cols});
        break;
      }
      case OpKind::kGatherRows: {
        ExpectInputCount(node, i, 1, &ok);
        if (!ok) break;
        const Shape table = ShapeOf(in[0]);
        if (node.arg1 >= table.rows) {
          Add(GraphIssue::Kind::kBadOperand, i,
              NodeLabel(node, i) +
                  StrFormat(": gathered id %d out of range for a %d-row "
                            "table",
                            node.arg1, table.rows));
          break;
        }
        ExpectOutput(node, i, {node.arg0, table.cols});
        break;
      }
      case OpKind::kTranspose: {
        ExpectInputCount(node, i, 1, &ok);
        if (!ok) break;
        const Shape x = ShapeOf(in[0]);
        ExpectOutput(node, i, {x.cols, x.rows});
        break;
      }
      case OpKind::kLayerNorm: {
        ExpectInputCount(node, i, 3, &ok);
        if (!ok) break;
        const Shape x = ShapeOf(in[0]);
        for (int k = 1; k <= 2; ++k) {
          const Shape param = ShapeOf(in[k]);
          if (param.rows != 1 || param.cols != x.cols) {
            Add(GraphIssue::Kind::kShapeMismatch, i,
                NodeLabel(node, i) +
                    StrFormat(": %s must be 1x%d, got %s",
                              k == 1 ? "gain" : "bias", x.cols,
                              ShapeStr(param).c_str()));
            ok = false;
          }
        }
        if (!ok) break;
        ExpectOutput(node, i, x);
        break;
      }
      case OpKind::kSumAll: {
        ExpectInputCount(node, i, 1, &ok);
        if (!ok) break;
        ExpectOutput(node, i, {1, 1});
        break;
      }
      case OpKind::kBprLoss: {
        ExpectInputCount(node, i, 2, &ok);
        if (!ok) break;
        const Shape pos = ShapeOf(in[0]);
        const Shape negs = ShapeOf(in[1]);
        if (pos.rows != 1 || pos.cols != 1) {
          Add(GraphIssue::Kind::kShapeMismatch, i,
              NodeLabel(node, i) + StrFormat(": pos must be 1x1, got %s",
                                             ShapeStr(pos).c_str()));
          break;
        }
        if (negs.cols != 1) {
          Add(GraphIssue::Kind::kShapeMismatch, i,
              NodeLabel(node, i) +
                  StrFormat(": negs must be a column (n x 1), got %s",
                            ShapeStr(negs).c_str()));
          break;
        }
        ExpectOutput(node, i, {1, 1});
        break;
      }
    }
  }

  // Buffer-write discipline: every tensor has at most one producing op, and
  // registered parameters (leaves) have none.
  void CheckWrites(const OpNode& node, int i) {
    const Tensor* out = node.output.get();
    auto [it, inserted] = producer_.emplace(out, i);
    if (!inserted) {
      Add(GraphIssue::Kind::kDoubleWrite, i,
          NodeLabel(node, i) +
              StrFormat(": output tensor already written by op#%d %s",
                        it->second,
                        ag::OpKindName(tape_.nodes()[it->second].kind)));
    }
    for (const ag::Tensor* param : options_.parameters) {
      if (param == out) {
        Add(GraphIssue::Kind::kParamOverwrite, i,
            NodeLabel(node, i) +
                ": writes a registered parameter (parameters are leaves)");
      }
    }
  }

  // Pre-backward gradient hygiene: an intermediate that wants gradients
  // must start with an absent or all-zero gradient, or backward would add
  // onto leftovers (the failure mode of recycling a pooled tensor without
  // zeroing). Registered parameters are exempt: they legitimately carry
  // accumulated gradient across a batch (and appearing as an op output at
  // all is already kParamOverwrite).
  void CheckStaleGrad(const OpNode& node, int i) {
    const Tensor* out = node.output.get();
    if (!out->requires_grad() || !out->has_grad()) return;
    for (const ag::Tensor* param : options_.parameters)
      if (param == out) return;
    if (out->grad_view().MaxAbs() == 0.0f) return;
    Add(GraphIssue::Kind::kStaleGrad, i,
        NodeLabel(node, i) +
            ": output carries a nonzero gradient before backward ran "
            "(recycled tensor with an unzeroed gradient?)");
  }

  void CheckReachability() {
    const std::vector<OpNode>& nodes = tape_.nodes();
    if (options_.root == nullptr) return;

    // Which tensors feed some later op (consumers), and which ops are
    // ancestors of the root (reachable).
    std::unordered_set<const Tensor*> consumed;
    for (const OpNode& node : nodes)
      for (const ag::TensorPtr& in : node.inputs) consumed.insert(in.get());

    std::vector<bool> reachable(nodes.size(), false);
    std::unordered_set<const Tensor*> reachable_inputs;
    auto root_it = producer_.find(options_.root.get());
    if (root_it == producer_.end()) {
      Add(GraphIssue::Kind::kMissingRoot, -1,
          "root tensor is not produced by any op on this tape");
      return;
    }
    std::vector<int> stack = {root_it->second};
    while (!stack.empty()) {
      const int i = stack.back();
      stack.pop_back();
      if (reachable[i]) continue;
      reachable[i] = true;
      for (const ag::TensorPtr& in : nodes[i].inputs) {
        reachable_inputs.insert(in.get());
        auto it = producer_.find(in.get());
        if (it != producer_.end() && !reachable[it->second])
          stack.push_back(it->second);
      }
    }

    for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
      if (reachable[i]) continue;
      const OpNode& node = nodes[i];
      if (node.output == nullptr) continue;  // already reported
      if (node.output->requires_grad()) {
        Add(GraphIssue::Kind::kDetachedGrad, i,
            NodeLabel(node, i) +
                ": requests gradients but is not reachable from the backward "
                "root — its gradient will never be computed");
      } else if (!options_.allow_dangling &&
                 consumed.find(node.output.get()) == consumed.end()) {
        Add(GraphIssue::Kind::kDanglingNode, i,
            NodeLabel(node, i) +
                ": output is consumed by no op and is not the backward root "
                "(dead compute)");
      }
    }

    if (options_.check_unreached_params) {
      for (const ag::Tensor* param : options_.parameters) {
        if (param == nullptr || !param->requires_grad()) continue;
        if (reachable_inputs.find(param) == reachable_inputs.end()) {
          const std::string name =
              param->name().empty() ? "<unnamed>" : param->name();
          Add(GraphIssue::Kind::kUnreachedParam, -1,
              StrFormat("parameter '%s' (%dx%d) is read by no op reachable "
                        "from the backward root",
                        name.c_str(), param->rows(), param->cols()));
        }
      }
    }
  }

  const ag::Tape& tape_;
  const TapeLintOptions& options_;
  std::unordered_map<const Tensor*, int> producer_;
  std::vector<GraphIssue> issues_;
};

}  // namespace

const char* GraphIssueKindName(GraphIssue::Kind kind) {
  switch (kind) {
    case GraphIssue::Kind::kShapeMismatch: return "shape-mismatch";
    case GraphIssue::Kind::kBadOperand: return "bad-operand";
    case GraphIssue::Kind::kDoubleWrite: return "double-write";
    case GraphIssue::Kind::kParamOverwrite: return "param-overwrite";
    case GraphIssue::Kind::kDanglingNode: return "dangling-node";
    case GraphIssue::Kind::kDetachedGrad: return "detached-grad";
    case GraphIssue::Kind::kUnreachedParam: return "unreached-param";
    case GraphIssue::Kind::kMissingRoot: return "missing-root";
    case GraphIssue::Kind::kStaleGrad: return "stale-grad";
  }
  return "<unknown>";
}

std::vector<GraphIssue> LintTape(const ag::Tape& tape,
                                 const TapeLintOptions& options) {
  std::vector<GraphIssue> issues;
  if (tape.nodes().empty() && tape.num_ops() > 0) {
    issues.push_back(GraphIssue{
        GraphIssue::Kind::kMissingRoot, -1,
        "tape has backward closures but no recorded graph structure — build "
        "it with graph recording on (Tape::set_record_graph)"});
    return issues;
  }
  return Linter(tape, options).Run();
}

Status ValidateTape(const ag::Tape& tape, const TapeLintOptions& options) {
  const std::vector<GraphIssue> issues = LintTape(tape, options);
  if (issues.empty()) return Status::Ok();
  std::vector<std::string> lines;
  lines.reserve(issues.size());
  for (const GraphIssue& issue : issues)
    lines.push_back(StrFormat("[%s] %s", GraphIssueKindName(issue.kind),
                              issue.message.c_str()));
  return Status::Error(
      StrFormat("graph validation found %zu issue(s):\n  ", issues.size()) +
      StrJoin(lines, "\n  "));
}

Status ValidateShardSlots(
    const std::vector<ag::GradShard::ParamSlot>& slots) {
  std::unordered_map<const ag::Tensor*, size_t> seen_tensor;
  std::unordered_map<const std::unordered_set<int>*, size_t> seen_rows;
  for (size_t i = 0; i < slots.size(); ++i) {
    const ag::GradShard::ParamSlot& slot = slots[i];
    if (slot.tensor == nullptr)
      return Status::Error(StrFormat("shard slot %zu has no tensor", i));
    auto [it, inserted] = seen_tensor.emplace(slot.tensor, i);
    if (!inserted) {
      const std::string name =
          slot.tensor->name().empty() ? "<unnamed>" : slot.tensor->name();
      return Status::Error(
          StrFormat("tensor '%s' registered in shard slots %zu and %zu — "
                    "its gradient would be reduced twice",
                    name.c_str(), it->second, i));
    }
    if (slot.touched_rows != nullptr) {
      auto [rit, rinserted] = seen_rows.emplace(slot.touched_rows, i);
      if (!rinserted) {
        return Status::Error(
            StrFormat("touched-row set shared by shard slots %zu and %zu — "
                      "sparse reductions would interleave two parameters",
                      rit->second, i));
      }
    }
  }
  return Status::Ok();
}

}  // namespace groupsa::analysis
