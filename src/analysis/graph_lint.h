#ifndef GROUPSA_ANALYSIS_GRAPH_LINT_H_
#define GROUPSA_ANALYSIS_GRAPH_LINT_H_

#include <string>
#include <vector>

#include "autograd/grad_shard.h"
#include "autograd/tape.h"
#include "common/status.h"

namespace groupsa::analysis {

// Static validator for recorded autograd tapes (ag::Tape::nodes()). It
// re-runs shape inference over every node — independently of the forward
// implementations in autograd/ops.cc — and checks graph-level invariants, so
// a malformed graph is rejected *before* its backward pass executes instead
// of corrupting gradients downstream. Debug builds run this automatically on
// the first training tape of every epoch (core/trainer.cc);
// core::GroupSaModel::ValidateGraph() runs it on demand against a
// representative training graph.

// One diagnostic. `node` indexes Tape::nodes() (-1 for graph-level issues);
// `message` names the offending op and, for shape issues, expected vs.
// actual shapes.
struct GraphIssue {
  enum class Kind {
    // Output (or an input constraint) disagrees with the op's shape table.
    kShapeMismatch,
    // An operand violates a structural precondition (null tensor, empty
    // input list, out-of-range gather/slice ids).
    kBadOperand,
    // The same tensor is written by two different ops.
    kDoubleWrite,
    // A registered leaf parameter appears as an op output.
    kParamOverwrite,
    // Dead compute: an op whose output no other op consumes and that is not
    // the backward root.
    kDanglingNode,
    // An op not reachable backward from the root whose output still
    // requests gradients — its gradient would silently never be computed.
    kDetachedGrad,
    // A parameter that no root-reachable op reads — backward can never
    // produce a gradient for it, yet the optimizer would "train" it.
    kUnreachedParam,
    // The requested root was not produced by any op on this tape.
    kMissingRoot,
    // A non-parameter op output that requests gradients already carries a
    // nonzero gradient before backward ran. With tensor pooling this means
    // a recycled tensor was handed out without its stale gradient being
    // zeroed; the backward pass would silently add last batch's gradient on
    // top of this batch's.
    kStaleGrad,
  };

  Kind kind = Kind::kShapeMismatch;
  int node = -1;
  std::string message;
};

const char* GraphIssueKindName(GraphIssue::Kind kind);

struct TapeLintOptions {
  // Backward root (the loss tensor). When set, enables the reachability
  // checks: kDanglingNode, kDetachedGrad, kUnreachedParam, kMissingRoot.
  ag::TensorPtr root;

  // Leaf parameters of the model. They must never appear as an op output
  // (kParamOverwrite) and — with check_unreached_params — must each feed at
  // least one root-reachable op (kUnreachedParam).
  std::vector<const ag::Tensor*> parameters;

  // Off by default because single-task epoch graphs legitimately leave the
  // other task's tower untouched; GroupSaModel::ValidateGraph turns it on
  // for the combined user+group graph, where every parameter must
  // participate.
  bool check_unreached_params = false;

  // Permit gradient-free dead compute. Dead ops are pure waste and usually
  // indicate a builder bug, so the default flags them.
  bool allow_dangling = false;
};

// Walks the tape's recorded nodes and returns every violation found (empty
// means the graph is well-formed). Requires the tape to have been built with
// graph recording on; a tape with ops but no nodes cannot be validated and
// yields a single kMissingRoot-style diagnostic.
std::vector<GraphIssue> LintTape(const ag::Tape& tape,
                                 const TapeLintOptions& options);

// LintTape folded into a Status: Ok when clean, otherwise an error listing
// every issue op-by-op (one line each).
Status ValidateTape(const ag::Tape& tape, const TapeLintOptions& options);

// Validates a GradShard registration: every slot carries a tensor, no
// tensor is registered twice (two shards reducing the same buffer would
// double-count its gradient), and no touched-row set is shared by two
// different tensors. Run once per Trainer at construction.
Status ValidateShardSlots(
    const std::vector<ag::GradShard::ParamSlot>& slots);

}  // namespace groupsa::analysis

#endif  // GROUPSA_ANALYSIS_GRAPH_LINT_H_
