#ifndef GROUPSA_ANALYSIS_SOURCE_LINT_H_
#define GROUPSA_ANALYSIS_SOURCE_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace groupsa::analysis {

// Rules engine behind tools/groupsa_lint: a textual determinism linter for
// the src/ tree. It bans the constructs that historically break bit-exact
// reproducibility or the repo's ownership discipline:
//
//   banned-time     wall-clock reads (time(), *_clock::now(), ...) outside
//                   common/stopwatch.h — a time-derived value anywhere else
//                   leaks nondeterminism into results or seeds
//   banned-rand     rand()/std::random_device/std::mt19937 & friends — all
//                   randomness must flow through common/rng.h streams, which
//                   snapshot/restore for crash-safe resume
//   naked-thread    std::thread/std::async/pthread_* outside
//                   common/thread_pool.{h,cc} — ad-hoc threads bypass the
//                   pool's determinism contract (std::thread::id and
//                   std::this_thread remain allowed)
//   raw-new-delete  raw new/delete — ownership goes through containers and
//                   smart pointers; `= delete` declarations are exempt
//   unordered-iter  range-for over an unordered_{map,set} whose body
//                   accumulates (`+=`/`-=`) — iteration order is
//                   unspecified, so order-sensitive reductions are
//                   nondeterministic across libstdc++ versions
//   fp-contract     src/CMakeLists.txt must define the
//                   GROUPSA_KERNEL_GUARD_FLAGS variable with
//                   -ffp-contract=off -mno-fma, and every kernel backend
//                   translation unit (tensor/backends/backend_*.cc) it
//                   names must receive those flags via
//                   set_source_files_properties — contraction in any one
//                   backend would break cross-backend bit-identity
//   simd-confined   SIMD intrinsics, <immintrin.h>-family includes, ISA
//                   macro tests (__AVX2__, ...) and target pragmas outside
//                   src/tensor/backends/ — hand-written ISA code anywhere
//                   else bypasses runtime dispatch (crashing narrower
//                   hosts) and the backend guard flags
//   naked-mutex     std::mutex / std::shared_mutex / std::condition_variable
//                   & friends outside common/debug_mutex.{h,cc} — every lock
//                   goes through the DebugMutex wrappers so lock-order
//                   inversions are caught at runtime in debug builds and the
//                   lock-lint annotations stay checkable
//
// The lock-discipline rules (lock-unannotated, lock-unguarded-write,
// lock-order-cycle) live in analysis/lock_lint.h and share this file's
// LintFinding/Allowlist plumbing.
//
// Matching is heuristic and purely textual (comments and string literals are
// stripped first); justified violations are silenced via an allowlist file
// (tools/lint_allow.txt) so every exception stays explicit and reviewed.

struct LintFinding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// Replaces //-comments, /*...*/ blocks and the contents of string/char
// literals with spaces, preserving line structure so reported line numbers
// match the original file.
std::string StripCommentsAndStrings(const std::string& source);

// Pass 1 of the unordered-iter rule: collects identifiers declared with an
// unordered container type in `stripped` (variables, members, parameters).
// The caller unions the result over every scanned file; member accesses
// (`x.rows`, `p->touched_rows`) match against this global set, while bare
// identifiers only match names declared in the same file.
void CollectUnorderedNames(const std::string& stripped,
                           std::set<std::string>* names);

// Pass 2: lints one file. `content` is the raw source; `global_unordered`
// the union of CollectUnorderedNames over all scanned files.
std::vector<LintFinding> LintSource(const std::string& path,
                                    const std::string& content,
                                    const std::set<std::string>& global_unordered);

// The fp-contract and simd-confined rules. `cmake_content` is
// src/CMakeLists.txt (checked for the GROUPSA_KERNEL_GUARD_FLAGS contract);
// `files` maps scanned path -> raw content (checked for SIMD constructs
// outside the tensor/backends/ directory, matched at a path-component
// boundary).
std::vector<LintFinding> LintSimdGuardList(
    const std::string& cmake_path, const std::string& cmake_content,
    const std::vector<std::pair<std::string, std::string>>& files);

// Allowlist: one entry per line, "<path> <rule>", '#' starts a comment.
// Paths match a finding when equal to or a '/'-suffix of the finding's
// path, so entries stay stable across checkout locations; a path with a
// trailing '/' is a directory entry and matches every file under that
// directory component sequence.
class Allowlist {
 public:
  static Status Parse(const std::string& content, Allowlist* out);

  bool Allows(const std::string& path, const std::string& rule) const;

  struct Entry {
    std::string path;
    std::string rule;
    int line = 0;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

// Drops findings the allowlist covers. Every allowlist entry must still
// match at least one finding; stale entries produce a "stale-allowlist"
// finding against `allow_path` so the list cannot silently rot.
std::vector<LintFinding> ApplyAllowlist(std::vector<LintFinding> findings,
                                        const Allowlist& allow,
                                        const std::string& allow_path);

// Rewrites allowlist file `content`, dropping every entry line that matches
// none of `findings` (which must be the PRE-ApplyAllowlist finding set).
// Comment and blank lines are preserved verbatim; an entry's trailing
// comment goes with it. Backs tools/groupsa_lint --prune-stale.
std::string PruneAllowlist(const std::string& content, const Allowlist& allow,
                           const std::vector<LintFinding>& findings);

}  // namespace groupsa::analysis

#endif  // GROUPSA_ANALYSIS_SOURCE_LINT_H_
