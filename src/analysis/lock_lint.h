#ifndef GROUPSA_ANALYSIS_LOCK_LINT_H_
#define GROUPSA_ANALYSIS_LOCK_LINT_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/source_lint.h"

namespace groupsa::analysis {

// Lock-discipline linter over the concurrency-contract annotations declared
// in common/macros.h (DESIGN.md §14). Like source_lint, the analysis is
// textual — comments and strings are stripped first — which is what lets it
// run on this gcc-only container; `clang++ -Wthread-safety` checks the same
// annotations semantically when clang is available (tools/ci.sh locks).
//
// Rules:
//
//   lock-unannotated      every non-const, non-atomic data member of a class
//                         that owns a mutex (DebugMutex / DebugSharedMutex /
//                         std::mutex / std::shared_mutex member) must carry
//                         GROUPSA_GUARDED_BY(mu) or GROUPSA_NOT_GUARDED(why)
//                         — "mutex-adjacent state with no stated contract"
//                         is exactly how guard drift starts.
//
//   lock-unguarded-write  every write to a GROUPSA_GUARDED_BY(mu) member in
//                         a .cc must sit inside a lexical lock_guard /
//                         unique_lock / scoped_lock scope whose argument
//                         names `mu`, or inside a function the owning class
//                         declares GROUPSA_REQUIRES(mu), or inside a
//                         constructor/destructor of the owning class (no
//                         concurrent access can exist there — the same
//                         exemption Clang's analysis applies). shared_lock
//                         does NOT satisfy a write: a read lock never
//                         licenses mutation.
//
//   lock-order-cycle      the GROUPSA_ACQUIRED_BEFORE edges, taken over all
//                         scanned files, must form a DAG. A cycle in the
//                         documented order is a deadlock contract violation
//                         even before any runtime interleaving exhibits it
//                         (the runtime counterpart is common/debug_mutex.h).
//
// Heuristic limits (deliberate, documented): reads of guarded members are
// not checked (too many false positives without type information); guard
// matching is by the mutex's final identifier (`slot->mu` and `mu` match a
// member annotated GROUPSA_GUARDED_BY(mu)); a bare (unqualified) member
// write is only checked inside the owning class's own methods, while
// qualified writes (`x.member`, `p->member`) are checked everywhere.
// common/debug_mutex.{h,cc} and common/macros.h are exempt — they are the
// annotation vocabulary and the one sanctioned bare-mutex home.

// Lints the whole file set at once (the ACQUIRED_BEFORE DAG and the
// header-to-.cc annotation index are cross-file). `files` are
// (path, raw content) pairs; findings use the rule names above and are
// silenced through the same Allowlist as source_lint's rules.
std::vector<LintFinding> LintLocks(
    const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace groupsa::analysis

#endif  // GROUPSA_ANALYSIS_LOCK_LINT_H_
