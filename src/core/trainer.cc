#include "core/trainer.h"

#include <cmath>
#include <limits>

#include "analysis/graph_lint.h"
#include "autograd/ops.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "nn/checkpoint.h"

namespace groupsa::core {
namespace {

// Samples per shard of the sharded minibatch path. A fixed grain (rather
// than one derived from the pool width) is what keeps the shard structure —
// and with it RNG streams, loss sums and gradient reduction order —
// identical at every thread count.
constexpr int kShardGrain = 8;

}  // namespace

Trainer::Trainer(GroupSaModel* model, const data::EdgeList& user_train,
                 const data::EdgeList& group_train,
                 const data::InteractionMatrix* ui_observed,
                 const data::InteractionMatrix* gi_observed, Rng* rng)
    : model_(model),
      user_train_(user_train),
      group_train_(group_train),
      user_negatives_(ui_observed),
      group_negatives_(gi_observed),
      rng_(rng) {
  const GroupSaConfig& config = model->config();
  if (config.threads > 0) parallel::SetGlobalThreads(config.threads);
  optimizer_ = std::make_unique<nn::Adam>(
      model->Parameters(), config.learning_rate, config.weight_decay);
  for (const nn::ParamEntry& p : model->Parameters())
    grad_slots_.push_back({p.tensor.get(), p.touched_rows});
  // A malformed registration (duplicate tensor, shared touched-row set)
  // would double-count gradients on every batch; fail construction instead.
  if (Status s = analysis::ValidateShardSlots(grad_slots_); !s.ok())
    GROUPSA_CHECK(false, s.message().c_str());
}

ag::TensorPool::Stats Trainer::PoolStats() const {
  ag::TensorPool::Stats total;
  for (const std::unique_ptr<ShardContext>& ctx : shard_ctx_) {
    const ag::TensorPool::Stats& s = ctx->pool.stats();
    total.tensors_created += s.tensors_created;
    total.tensors_reused += s.tensors_reused;
    total.workspaces_created += s.workspaces_created;
    total.workspaces_reused += s.workspaces_reused;
    total.escaped += s.escaped;
    total.bytes += s.bytes;
    total.batches += s.batches;
  }
  return total;
}

bool Trainer::GradientsFinite() const {
  for (const ag::GradShard::ParamSlot& slot : grad_slots_) {
    if (!slot.tensor->has_grad()) continue;
    const tensor::Matrix& grad = slot.tensor->grad_view();
    auto row_finite = [&](int r) {
      for (float g : grad.RowAt(r))
        if (!std::isfinite(g)) return false;
      return true;
    };
    if (slot.touched_rows != nullptr) {
      for (int r : *slot.touched_rows)
        if (!row_finite(r)) return false;
    } else {
      for (int r = 0; r < grad.rows(); ++r)
        if (!row_finite(r)) return false;
    }
  }
  return true;
}

void Trainer::DropBatchGradients() {
  for (const ag::GradShard::ParamSlot& slot : grad_slots_) {
    if (slot.tensor->has_grad()) slot.tensor->ZeroGrad();
    if (slot.touched_rows != nullptr) slot.touched_rows->clear();
  }
}

Trainer::EpochStats Trainer::RunShardedEpoch(int num_samples,
                                             int losses_per_sample,
                                             const SampleLossFn& fn) {
  const GroupSaConfig& config = model_->config();
  Stopwatch timer;
  // Consume the per-Fit resume context; direct Run*Epoch calls see zeros.
  const int start_batch = start_batch_;
  double total_loss = start_loss_;
  int total_losses = start_losses_;
  start_batch_ = 0;
  start_loss_ = 0.0;
  start_losses_ = 0;

  const FitOptions* opts = fit_options_;
  const bool guard = opts != nullptr && opts->divergence_guard;
  int consecutive_bad = 0;
  int skipped = 0;

  const int batch_size = config.batch_size;
  const int num_batches = (num_samples + batch_size - 1) / batch_size;
  for (int b = 0; b < num_batches; ++b) {
    // One sequential draw per batch on the calling thread; each shard's
    // stream is a pure function of it and the shard index. Drawn before the
    // resume fast-forward check so a resumed epoch consumes the exact RNG
    // stream an uninterrupted one would.
    const uint64_t batch_seed = rng_->NextU64();
    if (b < start_batch) continue;  // resume: batch already applied

    const int start = b * batch_size;
    const int end = std::min(num_samples, start + batch_size);
    const int batch_losses = (end - start) * losses_per_sample;
    const int num_shards = (end - start + kShardGrain - 1) / kShardGrain;

    // Persistent contexts: shard s reuses the same tape, gradient sink and
    // tensor pool every batch, so the steady state allocates nothing here.
    while (shard_ctx_.size() < static_cast<size_t>(num_shards)) {
      auto ctx = std::make_unique<ShardContext>();
      ctx->sink = std::make_unique<ag::GradShard>(grad_slots_);
      shard_ctx_.push_back(std::move(ctx));
    }
    shard_loss_.assign(static_cast<size_t>(num_shards), 0.0f);
    // Seeding with 1/batch_losses makes each sample's gradient carry the
    // batch-mean weight, exactly as the historical mean-loss graph did.
    tensor::Matrix seed(1, 1);
    seed.At(0, 0) = 1.0f / static_cast<float>(batch_losses);
    parallel::ParallelFor(0, num_shards, 1, [&](int64_t sb, int64_t se) {
      for (int64_t s = sb; s < se; ++s) {
        Rng shard_rng(Rng::StreamSeed(batch_seed, static_cast<uint64_t>(s)));
        ShardContext& ctx = *shard_ctx_[static_cast<size_t>(s)];
        ctx.tape.Reset();
        ctx.losses.clear();
        {
          ag::GradShard::ActiveScope scope(ctx.sink.get());
          ag::TensorPool::ActiveScope pool_scope(
              pooling_enabled_ ? &ctx.pool : nullptr);
          const int shard_begin = start + static_cast<int>(s) * kShardGrain;
          const int shard_end = std::min(end, shard_begin + kShardGrain);
          for (int i = shard_begin; i < shard_end; ++i)
            fn(&ctx.tape, i, &shard_rng, &ctx.losses);
          ag::TensorPtr sum =
              ag::SumAll(&ctx.tape, ag::ConcatRows(&ctx.tape, ctx.losses));
          // When the tape carries graph structure (debug builds; see
          // Tape::GraphRecordingDefault), validate the first shard of the
          // first executed batch before its backward pass runs — every later
          // shard records the same op skeleton, so one check per epoch
          // certifies the whole training graph.
          if (ctx.tape.records_graph() && b == start_batch && s == 0) {
            analysis::TapeLintOptions lint;
            lint.root = sum;
            for (const ag::GradShard::ParamSlot& slot : grad_slots_)
              lint.parameters.push_back(slot.tensor);
            if (Status lint_status = analysis::ValidateTape(ctx.tape, lint);
                !lint_status.ok()) {
              GROUPSA_CHECK(false, lint_status.message().c_str());
            }
          }
          shard_loss_[static_cast<size_t>(s)] = sum->scalar();
          ctx.tape.BackwardFrom(sum, seed);
        }
        // Drop every reference the batch took (closures, node records, loss
        // roots) so EndBatch can reclaim the pool's tensors for the next
        // batch this shard runs.
        ctx.tape.Reset();
        ctx.losses.clear();
        if (pooling_enabled_) ctx.pool.EndBatch();
      }
    });
    // Deterministic merge: shard order, on this thread. ReduceInto also
    // re-zeroes each sink's buffers (touched rows only for embeddings).
    for (int s = 0; s < num_shards; ++s)
      shard_ctx_[static_cast<size_t>(s)]->sink->ReduceInto();

    // Fault-injection site: `corrupt` poisons this batch's loss (exercising
    // the divergence guard); `kill` dies here for the crash-resume CI gate.
    if (GROUPSA_FAILPOINT("trainer.batch") == failpoint::Action::kCorrupt)
      shard_loss_[0] = std::numeric_limits<float>::quiet_NaN();

    double batch_loss = 0.0;
    for (float loss : shard_loss_) batch_loss += loss;

    if (guard && (!std::isfinite(batch_loss) || !GradientsFinite())) {
      ++skipped;
      DropBatchGradients();
      if (++consecutive_bad > opts->max_consecutive_bad) {
        if (!opts->snapshot_path.empty()) {
          rollback_requested_ = true;
        } else {
          epoch_error_ = Status::Error(StrFormat(
              "training diverged: %d consecutive non-finite batches and no "
              "snapshot to roll back to",
              consecutive_bad));
        }
        break;
      }
      continue;  // dropped: no optimizer step, no loss accumulation
    }
    consecutive_bad = 0;
    total_loss += batch_loss;
    total_losses += batch_losses;
    optimizer_->Step();

    if (opts != nullptr && !opts->snapshot_path.empty() &&
        opts->snapshot_every > 0 && (b + 1) % opts->snapshot_every == 0 &&
        b + 1 < num_batches) {
      Status s = WriteSnapshot(opts->snapshot_path, current_unit_, b + 1,
                               total_loss, total_losses, unit_start_rng_);
      // A failed snapshot must not kill a healthy run; a later resume just
      // restarts from the previous snapshot.
      if (!s.ok()) LogWarning(s.message());
    }
  }

  EpochStats stats;
  stats.num_samples = total_losses;
  stats.avg_loss = total_losses > 0 ? total_loss / total_losses : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  stats.skipped_batches = skipped;
  return stats;
}

Trainer::EpochStats Trainer::RunUserEpoch() {
  const GroupSaConfig& config = model_->config();
  std::vector<data::Edge> order(user_train_);
  rng_->Shuffle(&order);

  const int losses_per_sample = config.train_group_head_on_singletons ? 2 : 1;
  return RunShardedEpoch(
      static_cast<int>(order.size()), losses_per_sample,
      [&](ag::Tape* tape, int index, Rng* rng,
          std::vector<ag::TensorPtr>* losses) {
        const data::Edge& edge = order[index];
        const std::vector<data::ItemId> negatives =
            user_negatives_.SampleMany(edge.row, config.num_negatives, rng);
        GroupSaModel::UserForward fwd =
            model_->BuildUserForward(tape, edge.row, /*training=*/true, rng);
        ag::TensorPtr pos =
            model_->ScoreUserItem(tape, fwd, edge.item, true, rng);
        std::vector<ag::TensorPtr> neg_scores;
        for (data::ItemId neg : negatives) {
          neg_scores.push_back(
              model_->ScoreUserItem(tape, fwd, neg, true, rng));
        }
        ag::TensorPtr negs = ag::ConcatRows(tape, neg_scores);
        losses->push_back(ag::BprLoss(tape, pos, negs));

        if (config.train_group_head_on_singletons) {
          // Drive the same triple through the group path as a one-member
          // group (see config.h, train_group_head_on_singletons).
          GroupSaModel::GroupForward single =
              model_->BuildGroupForwardFromMembers(tape, {edge.row}, true,
                                                   rng);
          ag::TensorPtr gpos =
              model_->ScoreGroupItem(tape, single, edge.item, true, rng)
                  .score;
          std::vector<ag::TensorPtr> gneg_scores;
          for (data::ItemId neg : negatives) {
            gneg_scores.push_back(
                model_->ScoreGroupItem(tape, single, neg, true, rng).score);
          }
          losses->push_back(
              ag::BprLoss(tape, gpos, ag::ConcatRows(tape, gneg_scores)));
        }
      });
}

Trainer::EpochStats Trainer::RunGroupEpoch() {
  const GroupSaConfig& config = model_->config();
  std::vector<data::Edge> order(group_train_);
  rng_->Shuffle(&order);

  return RunShardedEpoch(
      static_cast<int>(order.size()), /*losses_per_sample=*/1,
      [&](ag::Tape* tape, int index, Rng* rng,
          std::vector<ag::TensorPtr>* losses) {
        const data::Edge& edge = order[index];
        GroupSaModel::GroupForward fwd =
            model_->BuildGroupForward(tape, edge.row, /*training=*/true, rng);
        ag::TensorPtr pos =
            model_->ScoreGroupItem(tape, fwd, edge.item, true, rng).score;
        std::vector<ag::TensorPtr> neg_scores;
        for (data::ItemId neg : group_negatives_.SampleMany(
                 edge.row, config.num_negatives, rng)) {
          neg_scores.push_back(
              model_->ScoreGroupItem(tape, fwd, neg, true, rng).score);
        }
        ag::TensorPtr negs = ag::ConcatRows(tape, neg_scores);
        losses->push_back(ag::BprLoss(tape, pos, negs));
      });
}

Trainer::EpochStats Trainer::RunSocialEpoch() {
  const GroupSaConfig& config = model_->config();
  const data::SocialGraph& social = *model_->model_data().social;
  const int num_users = model_->num_users();
  std::vector<std::pair<data::UserId, data::UserId>> edges;
  for (data::UserId u = 0; u < num_users; ++u) {
    for (data::UserId v : social.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  rng_->Shuffle(&edges);

  nn::Embedding& table = model_->user_embedding();
  return RunShardedEpoch(
      static_cast<int>(edges.size()), /*losses_per_sample=*/1,
      [&](ag::Tape* tape, int index, Rng* rng,
          std::vector<ag::TensorPtr>* losses) {
        const auto& [u, v] = edges[index];
        ag::TensorPtr eu = table.Lookup(tape, u);
        ag::TensorPtr pos = ag::MatMul(tape, eu, table.Lookup(tape, v),
                                       false, /*transpose_b=*/true);
        std::vector<ag::TensorPtr> neg_scores;
        for (int s = 0; s < config.num_negatives; ++s) {
          data::UserId n = rng->NextInt(num_users);
          while (n == u || social.Connected(u, n)) n = rng->NextInt(num_users);
          neg_scores.push_back(ag::MatMul(tape, eu, table.Lookup(tape, n),
                                          false, true));
        }
        losses->push_back(
            ag::BprLoss(tape, pos, ag::ConcatRows(tape, neg_scores)));
      });
}

std::vector<Trainer::ScheduleUnit> Trainer::BuildSchedule() const {
  const GroupSaConfig& config = model_->config();
  std::vector<ScheduleUnit> schedule;
  if (config.use_user_task) {
    for (int e = 0; e < config.user_epochs; ++e) {
      if (config.use_social_objective)
        schedule.push_back({ScheduleUnit::kSocial, e + 1, false});
      schedule.push_back({ScheduleUnit::kUser, e + 1, true});
    }
  }
  for (int e = 0; e < config.group_epochs; ++e) {
    if (config.use_user_task && config.interleave_user_in_stage2)
      schedule.push_back({ScheduleUnit::kUser, e + 1, false});
    schedule.push_back({ScheduleUnit::kGroup, e + 1, true});
  }
  return schedule;
}

uint64_t Trainer::ConfigFingerprint() const {
  const GroupSaConfig& c = model_->config();
  ByteWriter w;
  w.WriteString("groupsa.trainer.fingerprint.v1");
  w.WriteString(c.variant);
  w.WriteU32(static_cast<uint32_t>(c.embedding_dim));
  w.WriteU32(static_cast<uint32_t>(c.attention_hidden));
  w.WriteU32(static_cast<uint32_t>(c.ffn_hidden));
  w.WriteU32(static_cast<uint32_t>(c.predictor_hidden.size()));
  for (int h : c.predictor_hidden) w.WriteU32(static_cast<uint32_t>(h));
  w.WriteU32(static_cast<uint32_t>(c.fusion_hidden.size()));
  for (int h : c.fusion_hidden) w.WriteU32(static_cast<uint32_t>(h));
  w.WriteU32(static_cast<uint32_t>(c.num_voting_layers));
  w.WriteU32(static_cast<uint32_t>(c.top_h));
  w.WriteU32(static_cast<uint32_t>(c.num_negatives));
  w.WriteDouble(c.user_score_blend);
  w.WriteDouble(c.learning_rate);
  w.WriteDouble(c.weight_decay);
  w.WriteDouble(c.dropout_ratio);
  w.WriteU32(static_cast<uint32_t>(c.user_epochs));
  w.WriteU32(static_cast<uint32_t>(c.group_epochs));
  w.WriteU32(static_cast<uint32_t>(c.batch_size));
  // c.threads deliberately omitted: resuming at a different pool width is
  // bit-identical (see the determinism contract above) and must be allowed.
  uint32_t switches = 0;
  for (bool b : {c.use_voting_scheme, c.use_social_mask,
                 c.use_item_aggregation, c.use_social_aggregation,
                 c.use_user_task, c.share_predictors,
                 c.interleave_user_in_stage2, c.use_enhanced_member_reps,
                 c.separate_latent_tower, c.detach_attention_guides,
                 c.train_group_head_on_singletons, c.tie_latent_spaces,
                 c.use_social_objective}) {
    switches = (switches << 1) | (b ? 1u : 0u);
  }
  w.WriteU32(switches);
  w.WriteU32(static_cast<uint32_t>(c.social_closeness));
  w.WriteDouble(c.closeness_threshold);
  // Dataset dimensions and the parameter inventory: a snapshot must only
  // resume against the exact model it was taken from.
  w.WriteU32(static_cast<uint32_t>(model_->num_users()));
  w.WriteU32(static_cast<uint32_t>(model_->num_items()));
  w.WriteU64(user_train_.size());
  w.WriteU64(group_train_.size());
  for (const nn::ParamEntry& p : model_->Parameters()) {
    w.WriteString(p.name);
    w.WriteU32(static_cast<uint32_t>(p.tensor->rows()));
    w.WriteU32(static_cast<uint32_t>(p.tensor->cols()));
  }
  const std::string& bytes = w.bytes();
  const uint32_t lo = Crc32Of(bytes.data(), bytes.size());
  // Second independent 32 bits: same data, CRC seeded off the first pass.
  const uint32_t hi =
      Crc32::Finalize(Crc32::Update(~lo, bytes.data(), bytes.size()));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Status Trainer::WriteSnapshot(const std::string& path, int unit,
                              int next_batch, double acc_loss, int acc_losses,
                              const Rng::State& unit_start) const {
  nn::CheckpointWriter writer;
  writer.AddSection("params", nn::EncodeParameters(model_->Parameters()));
  writer.AddSection("adam", optimizer_->SerializeState());
  ByteWriter t;
  t.WriteU64(ConfigFingerprint());
  t.WriteU32(static_cast<uint32_t>(unit));
  t.WriteU32(static_cast<uint32_t>(next_batch));
  t.WriteDouble(acc_loss);
  t.WriteI64(acc_losses);
  for (uint64_t s : unit_start.s) t.WriteU64(s);
  t.WriteU32(unit_start.has_cached_gaussian ? 1 : 0);
  t.WriteDouble(unit_start.cached_gaussian);
  writer.AddSection("trainer", t.Release());
  return writer.Commit(path).WithContext("write training snapshot " + path);
}

Status Trainer::ResumeFrom(const std::string& path) {
  nn::CheckpointReader reader;
  GROUPSA_RETURN_IF_ERROR_CTX(nn::CheckpointReader::Read(path, &reader),
                              "resume from " + path);
  const std::string* params = reader.Find("params");
  const std::string* adam = reader.Find("adam");
  const std::string* trainer = reader.Find("trainer");
  if (params == nullptr || adam == nullptr || trainer == nullptr) {
    return Status::Error(
        "not a training snapshot (params/adam/trainer section missing): " +
        path);
  }

  // Parse and validate the cursor first; nothing is mutated until every
  // section checked out.
  ByteReader t(*trainer);
  uint64_t fingerprint = 0;
  uint32_t unit = 0;
  uint32_t next_batch = 0;
  double acc_loss = 0.0;
  int64_t acc_losses = 0;
  Rng::State rng_state;
  uint32_t has_cached = 0;
  bool parsed = t.ReadU64(&fingerprint) && t.ReadU32(&unit) &&
                t.ReadU32(&next_batch) && t.ReadDouble(&acc_loss) &&
                t.ReadI64(&acc_losses);
  for (int i = 0; parsed && i < 4; ++i) parsed = t.ReadU64(&rng_state.s[i]);
  parsed = parsed && t.ReadU32(&has_cached) &&
           t.ReadDouble(&rng_state.cached_gaussian) && t.AtEnd();
  if (!parsed)
    return Status::Error("malformed trainer section: " + path);
  rng_state.has_cached_gaussian = has_cached != 0;
  if (fingerprint != ConfigFingerprint()) {
    return Status::Error(
        "snapshot was written under a different config, dataset or model "
        "(fingerprint mismatch): " + path);
  }
  const size_t num_units = BuildSchedule().size();
  if (unit > num_units) {
    return Status::Error(StrFormat(
        "snapshot cursor (unit %u) beyond the %zu-unit schedule: %s", unit,
        num_units, path.c_str()));
  }

  // Restore. Each step stages internally and only commits when valid, so a
  // corrupt section cannot leave the model half-mutated.
  GROUPSA_RETURN_IF_ERROR_CTX(
      nn::DecodeParameters(model_->Parameters(), *params),
      "resume from " + path);
  GROUPSA_RETURN_IF_ERROR_CTX(optimizer_->RestoreState(*adam),
                              "resume from " + path);
  rng_->RestoreState(rng_state);
  has_resume_ = true;
  resume_unit_ = static_cast<int>(unit);
  resume_batch_ = static_cast<int>(next_batch);
  resume_loss_ = acc_loss;
  resume_losses_ = static_cast<int>(acc_losses);
  resume_rng_ = rng_state;
  return Status::Ok();
}

Status Trainer::Fit(const FitOptions& options, FitReport* report) {
  const GroupSaConfig& config = model_->config();
  Stopwatch total;
  const std::vector<ScheduleUnit> schedule = BuildSchedule();
  fit_options_ = &options;
  report->resumed = has_resume_;
  int rollbacks = 0;
  int unit = has_resume_ ? resume_unit_ : 0;
  while (unit < static_cast<int>(schedule.size())) {
    const ScheduleUnit& su = schedule[unit];
    current_unit_ = unit;
    if (has_resume_ && unit == resume_unit_) {
      // Continue the interrupted unit: rewind the stream to its start and
      // let RunShardedEpoch fast-forward over the already-applied batches.
      rng_->RestoreState(resume_rng_);
      unit_start_rng_ = resume_rng_;
      start_batch_ = resume_batch_;
      start_loss_ = resume_loss_;
      start_losses_ = resume_losses_;
      has_resume_ = false;
    } else {
      unit_start_rng_ = rng_->SaveState();
      start_batch_ = 0;
      start_loss_ = 0.0;
      start_losses_ = 0;
    }
    rollback_requested_ = false;
    epoch_error_ = Status::Ok();

    EpochStats stats;
    switch (su.kind) {
      case ScheduleUnit::kSocial:
        stats = RunSocialEpoch();
        break;
      case ScheduleUnit::kUser:
        stats = RunUserEpoch();
        break;
      case ScheduleUnit::kGroup:
        stats = RunGroupEpoch();
        break;
    }
    if (!epoch_error_.ok()) {
      fit_options_ = nullptr;
      return epoch_error_;
    }
    if (rollback_requested_) {
      if (++rollbacks > options.max_rollbacks) {
        fit_options_ = nullptr;
        return Status::Error(StrFormat(
            "training diverged: still non-finite after %d rollbacks to %s",
            options.max_rollbacks, options.snapshot_path.c_str()));
      }
      if (Status s = ResumeFrom(options.snapshot_path)
                         .WithContext("divergence rollback");
          !s.ok()) {
        fit_options_ = nullptr;
        return s;
      }
      report->rollbacks = rollbacks;
      unit = resume_unit_;
      continue;
    }
    report->skipped_batches += stats.skipped_batches;
    if (su.record) {
      const bool is_user = su.kind == ScheduleUnit::kUser;
      if (options.verbose) {
        LogInfo(StrFormat("[%s] %s epoch %d/%d loss=%.4f (%.1fs)",
                          config.variant.c_str(), is_user ? "user" : "group",
                          su.display,
                          is_user ? config.user_epochs : config.group_epochs,
                          stats.avg_loss, stats.seconds));
      }
      if (is_user)
        report->user_epochs.push_back(stats);
      else
        report->group_epochs.push_back(stats);
    }
    ++unit;
    if (!options.snapshot_path.empty()) {
      // End-of-unit snapshot: a resume never replays more than one unit.
      Status s = WriteSnapshot(options.snapshot_path, unit, 0, 0.0, 0,
                               rng_->SaveState());
      if (!s.ok()) LogWarning(s.message());
    }
  }
  report->total_seconds = total.ElapsedSeconds();
  fit_options_ = nullptr;
  return Status::Ok();
}

Trainer::FitReport Trainer::Fit(bool verbose) {
  FitOptions options;
  options.verbose = verbose;
  FitReport report;
  const Status status = Fit(options, &report);
  GROUPSA_CHECK(status.ok(), status.message().c_str());
  return report;
}

}  // namespace groupsa::core
