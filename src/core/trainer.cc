#include "core/trainer.h"

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace groupsa::core {
namespace {

// Sums a batch of scalar losses into one mean loss tensor.
ag::TensorPtr MeanLoss(ag::Tape* tape,
                       const std::vector<ag::TensorPtr>& losses) {
  ag::TensorPtr stacked = ag::ConcatRows(tape, losses);
  return ag::Scale(tape, ag::SumAll(tape, stacked),
                   1.0f / static_cast<float>(losses.size()));
}

}  // namespace

Trainer::Trainer(GroupSaModel* model, const data::EdgeList& user_train,
                 const data::EdgeList& group_train,
                 const data::InteractionMatrix* ui_observed,
                 const data::InteractionMatrix* gi_observed, Rng* rng)
    : model_(model),
      user_train_(user_train),
      group_train_(group_train),
      user_negatives_(ui_observed),
      group_negatives_(gi_observed),
      rng_(rng) {
  const GroupSaConfig& config = model->config();
  optimizer_ = std::make_unique<nn::Adam>(
      model->Parameters(), config.learning_rate, config.weight_decay);
}

Trainer::EpochStats Trainer::RunUserEpoch() {
  const GroupSaConfig& config = model_->config();
  Stopwatch timer;
  std::vector<data::Edge> order(user_train_);
  rng_->Shuffle(&order);

  double total_loss = 0.0;
  int total_samples = 0;
  size_t next = 0;
  while (next < order.size()) {
    ag::Tape tape;
    std::vector<ag::TensorPtr> losses;
    const size_t batch_end =
        std::min(order.size(), next + static_cast<size_t>(config.batch_size));
    for (; next < batch_end; ++next) {
      const data::Edge& edge = order[next];
      const std::vector<data::ItemId> negatives =
          user_negatives_.SampleMany(edge.row, config.num_negatives, rng_);
      GroupSaModel::UserForward fwd =
          model_->BuildUserForward(&tape, edge.row, /*training=*/true, rng_);
      ag::TensorPtr pos =
          model_->ScoreUserItem(&tape, fwd, edge.item, true, rng_);
      std::vector<ag::TensorPtr> neg_scores;
      for (data::ItemId neg : negatives) {
        neg_scores.push_back(
            model_->ScoreUserItem(&tape, fwd, neg, true, rng_));
      }
      ag::TensorPtr negs = ag::ConcatRows(&tape, neg_scores);
      losses.push_back(ag::BprLoss(&tape, pos, negs));

      if (config.train_group_head_on_singletons) {
        // Drive the same triple through the group path as a one-member
        // group (see config.h, train_group_head_on_singletons).
        GroupSaModel::GroupForward single =
            model_->BuildGroupForwardFromMembers(&tape, {edge.row}, true,
                                                 rng_);
        ag::TensorPtr gpos =
            model_->ScoreGroupItem(&tape, single, edge.item, true, rng_)
                .score;
        std::vector<ag::TensorPtr> gneg_scores;
        for (data::ItemId neg : negatives) {
          gneg_scores.push_back(
              model_->ScoreGroupItem(&tape, single, neg, true, rng_).score);
        }
        losses.push_back(
            ag::BprLoss(&tape, gpos, ag::ConcatRows(&tape, gneg_scores)));
      }
    }
    ag::TensorPtr loss = MeanLoss(&tape, losses);
    total_loss += loss->scalar() * static_cast<double>(losses.size());
    total_samples += static_cast<int>(losses.size());
    tape.Backward(loss);
    optimizer_->Step();
  }

  EpochStats stats;
  stats.num_samples = total_samples;
  stats.avg_loss = total_samples > 0 ? total_loss / total_samples : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Trainer::EpochStats Trainer::RunGroupEpoch() {
  const GroupSaConfig& config = model_->config();
  Stopwatch timer;
  std::vector<data::Edge> order(group_train_);
  rng_->Shuffle(&order);

  double total_loss = 0.0;
  int total_samples = 0;
  size_t next = 0;
  while (next < order.size()) {
    ag::Tape tape;
    std::vector<ag::TensorPtr> losses;
    const size_t batch_end =
        std::min(order.size(), next + static_cast<size_t>(config.batch_size));
    for (; next < batch_end; ++next) {
      const data::Edge& edge = order[next];
      GroupSaModel::GroupForward fwd =
          model_->BuildGroupForward(&tape, edge.row, /*training=*/true, rng_);
      ag::TensorPtr pos =
          model_->ScoreGroupItem(&tape, fwd, edge.item, true, rng_).score;
      std::vector<ag::TensorPtr> neg_scores;
      for (data::ItemId neg : group_negatives_.SampleMany(
               edge.row, config.num_negatives, rng_)) {
        neg_scores.push_back(
            model_->ScoreGroupItem(&tape, fwd, neg, true, rng_).score);
      }
      ag::TensorPtr negs = ag::ConcatRows(&tape, neg_scores);
      losses.push_back(ag::BprLoss(&tape, pos, negs));
    }
    ag::TensorPtr loss = MeanLoss(&tape, losses);
    total_loss += loss->scalar() * static_cast<double>(losses.size());
    total_samples += static_cast<int>(losses.size());
    tape.Backward(loss);
    optimizer_->Step();
  }

  EpochStats stats;
  stats.num_samples = total_samples;
  stats.avg_loss = total_samples > 0 ? total_loss / total_samples : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Trainer::EpochStats Trainer::RunSocialEpoch() {
  const GroupSaConfig& config = model_->config();
  Stopwatch timer;
  const data::SocialGraph& social = *model_->model_data().social;
  const int num_users = model_->num_users();
  std::vector<std::pair<data::UserId, data::UserId>> edges;
  for (data::UserId u = 0; u < num_users; ++u) {
    for (data::UserId v : social.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  rng_->Shuffle(&edges);

  nn::Embedding& table = model_->user_embedding();
  double total_loss = 0.0;
  size_t next = 0;
  while (next < edges.size()) {
    ag::Tape tape;
    std::vector<ag::TensorPtr> losses;
    const size_t batch_end =
        std::min(edges.size(), next + static_cast<size_t>(config.batch_size));
    for (; next < batch_end; ++next) {
      const auto& [u, v] = edges[next];
      ag::TensorPtr eu = table.Lookup(&tape, u);
      ag::TensorPtr pos = ag::MatMul(&tape, eu, table.Lookup(&tape, v),
                                     false, /*transpose_b=*/true);
      std::vector<ag::TensorPtr> neg_scores;
      for (int s = 0; s < config.num_negatives; ++s) {
        data::UserId n = rng_->NextInt(num_users);
        while (n == u || social.Connected(u, n)) n = rng_->NextInt(num_users);
        neg_scores.push_back(ag::MatMul(&tape, eu, table.Lookup(&tape, n),
                                        false, true));
      }
      losses.push_back(
          ag::BprLoss(&tape, pos, ag::ConcatRows(&tape, neg_scores)));
    }
    ag::TensorPtr loss = MeanLoss(&tape, losses);
    total_loss += loss->scalar() * static_cast<double>(losses.size());
    tape.Backward(loss);
    optimizer_->Step();
  }

  EpochStats stats;
  stats.num_samples = static_cast<int>(edges.size());
  stats.avg_loss =
      edges.empty() ? 0.0 : total_loss / static_cast<double>(edges.size());
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Trainer::FitReport Trainer::Fit(bool verbose) {
  const GroupSaConfig& config = model_->config();
  Stopwatch total;
  FitReport report;
  if (config.use_user_task) {
    for (int e = 0; e < config.user_epochs; ++e) {
      if (config.use_social_objective) RunSocialEpoch();
      EpochStats stats = RunUserEpoch();
      if (verbose) {
        LogInfo(StrFormat("[%s] user epoch %d/%d loss=%.4f (%.1fs)",
                          config.variant.c_str(), e + 1, config.user_epochs,
                          stats.avg_loss, stats.seconds));
      }
      report.user_epochs.push_back(stats);
    }
  }
  for (int e = 0; e < config.group_epochs; ++e) {
    if (config.use_user_task && config.interleave_user_in_stage2)
      RunUserEpoch();
    EpochStats stats = RunGroupEpoch();
    if (verbose) {
      LogInfo(StrFormat("[%s] group epoch %d/%d loss=%.4f (%.1fs)",
                        config.variant.c_str(), e + 1, config.group_epochs,
                        stats.avg_loss, stats.seconds));
    }
    report.group_epochs.push_back(stats);
  }
  report.total_seconds = total.ElapsedSeconds();
  return report;
}

}  // namespace groupsa::core
