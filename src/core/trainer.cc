#include "core/trainer.h"

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace groupsa::core {
namespace {

// Samples per shard of the sharded minibatch path. A fixed grain (rather
// than one derived from the pool width) is what keeps the shard structure —
// and with it RNG streams, loss sums and gradient reduction order —
// identical at every thread count.
constexpr int kShardGrain = 8;

}  // namespace

Trainer::Trainer(GroupSaModel* model, const data::EdgeList& user_train,
                 const data::EdgeList& group_train,
                 const data::InteractionMatrix* ui_observed,
                 const data::InteractionMatrix* gi_observed, Rng* rng)
    : model_(model),
      user_train_(user_train),
      group_train_(group_train),
      user_negatives_(ui_observed),
      group_negatives_(gi_observed),
      rng_(rng) {
  const GroupSaConfig& config = model->config();
  if (config.threads > 0) parallel::SetGlobalThreads(config.threads);
  optimizer_ = std::make_unique<nn::Adam>(
      model->Parameters(), config.learning_rate, config.weight_decay);
  for (const nn::ParamEntry& p : model->Parameters())
    grad_slots_.push_back({p.tensor.get(), p.touched_rows});
}

Trainer::EpochStats Trainer::RunShardedEpoch(int num_samples,
                                             int losses_per_sample,
                                             const SampleLossFn& fn) {
  const GroupSaConfig& config = model_->config();
  Stopwatch timer;
  double total_loss = 0.0;
  int total_losses = 0;
  const int batch_size = config.batch_size;
  for (int start = 0; start < num_samples; start += batch_size) {
    const int end = std::min(num_samples, start + batch_size);
    const int batch_losses = (end - start) * losses_per_sample;
    const int num_shards = (end - start + kShardGrain - 1) / kShardGrain;
    // One sequential draw per batch on the calling thread; each shard's
    // stream is a pure function of it and the shard index.
    const uint64_t batch_seed = rng_->NextU64();

    std::vector<std::unique_ptr<ag::GradShard>> shards(num_shards);
    std::vector<float> shard_loss(num_shards, 0.0f);
    parallel::ParallelFor(0, num_shards, 1, [&](int64_t sb, int64_t se) {
      for (int64_t s = sb; s < se; ++s) {
        Rng shard_rng(Rng::StreamSeed(batch_seed, static_cast<uint64_t>(s)));
        shards[s] = std::make_unique<ag::GradShard>(grad_slots_);
        ag::GradShard::ActiveScope scope(shards[s].get());
        ag::Tape tape;
        std::vector<ag::TensorPtr> losses;
        const int shard_begin = start + static_cast<int>(s) * kShardGrain;
        const int shard_end = std::min(end, shard_begin + kShardGrain);
        for (int i = shard_begin; i < shard_end; ++i)
          fn(&tape, i, &shard_rng, &losses);
        ag::TensorPtr sum =
            ag::SumAll(&tape, ag::ConcatRows(&tape, losses));
        shard_loss[s] = sum->scalar();
        // Seeding with 1/batch_losses makes each sample's gradient carry
        // the batch-mean weight, exactly as the historical mean-loss graph
        // did.
        tensor::Matrix seed(1, 1);
        seed.At(0, 0) = 1.0f / static_cast<float>(batch_losses);
        tape.BackwardFrom(sum, seed);
      }
    });
    // Deterministic merge: shard order, on this thread.
    for (const auto& shard : shards) shard->ReduceInto();
    for (float loss : shard_loss) total_loss += loss;
    total_losses += batch_losses;
    optimizer_->Step();
  }

  EpochStats stats;
  stats.num_samples = total_losses;
  stats.avg_loss = total_losses > 0 ? total_loss / total_losses : 0.0;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Trainer::EpochStats Trainer::RunUserEpoch() {
  const GroupSaConfig& config = model_->config();
  std::vector<data::Edge> order(user_train_);
  rng_->Shuffle(&order);

  const int losses_per_sample = config.train_group_head_on_singletons ? 2 : 1;
  return RunShardedEpoch(
      static_cast<int>(order.size()), losses_per_sample,
      [&](ag::Tape* tape, int index, Rng* rng,
          std::vector<ag::TensorPtr>* losses) {
        const data::Edge& edge = order[index];
        const std::vector<data::ItemId> negatives =
            user_negatives_.SampleMany(edge.row, config.num_negatives, rng);
        GroupSaModel::UserForward fwd =
            model_->BuildUserForward(tape, edge.row, /*training=*/true, rng);
        ag::TensorPtr pos =
            model_->ScoreUserItem(tape, fwd, edge.item, true, rng);
        std::vector<ag::TensorPtr> neg_scores;
        for (data::ItemId neg : negatives) {
          neg_scores.push_back(
              model_->ScoreUserItem(tape, fwd, neg, true, rng));
        }
        ag::TensorPtr negs = ag::ConcatRows(tape, neg_scores);
        losses->push_back(ag::BprLoss(tape, pos, negs));

        if (config.train_group_head_on_singletons) {
          // Drive the same triple through the group path as a one-member
          // group (see config.h, train_group_head_on_singletons).
          GroupSaModel::GroupForward single =
              model_->BuildGroupForwardFromMembers(tape, {edge.row}, true,
                                                   rng);
          ag::TensorPtr gpos =
              model_->ScoreGroupItem(tape, single, edge.item, true, rng)
                  .score;
          std::vector<ag::TensorPtr> gneg_scores;
          for (data::ItemId neg : negatives) {
            gneg_scores.push_back(
                model_->ScoreGroupItem(tape, single, neg, true, rng).score);
          }
          losses->push_back(
              ag::BprLoss(tape, gpos, ag::ConcatRows(tape, gneg_scores)));
        }
      });
}

Trainer::EpochStats Trainer::RunGroupEpoch() {
  const GroupSaConfig& config = model_->config();
  std::vector<data::Edge> order(group_train_);
  rng_->Shuffle(&order);

  return RunShardedEpoch(
      static_cast<int>(order.size()), /*losses_per_sample=*/1,
      [&](ag::Tape* tape, int index, Rng* rng,
          std::vector<ag::TensorPtr>* losses) {
        const data::Edge& edge = order[index];
        GroupSaModel::GroupForward fwd =
            model_->BuildGroupForward(tape, edge.row, /*training=*/true, rng);
        ag::TensorPtr pos =
            model_->ScoreGroupItem(tape, fwd, edge.item, true, rng).score;
        std::vector<ag::TensorPtr> neg_scores;
        for (data::ItemId neg : group_negatives_.SampleMany(
                 edge.row, config.num_negatives, rng)) {
          neg_scores.push_back(
              model_->ScoreGroupItem(tape, fwd, neg, true, rng).score);
        }
        ag::TensorPtr negs = ag::ConcatRows(tape, neg_scores);
        losses->push_back(ag::BprLoss(tape, pos, negs));
      });
}

Trainer::EpochStats Trainer::RunSocialEpoch() {
  const GroupSaConfig& config = model_->config();
  const data::SocialGraph& social = *model_->model_data().social;
  const int num_users = model_->num_users();
  std::vector<std::pair<data::UserId, data::UserId>> edges;
  for (data::UserId u = 0; u < num_users; ++u) {
    for (data::UserId v : social.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  rng_->Shuffle(&edges);

  nn::Embedding& table = model_->user_embedding();
  return RunShardedEpoch(
      static_cast<int>(edges.size()), /*losses_per_sample=*/1,
      [&](ag::Tape* tape, int index, Rng* rng,
          std::vector<ag::TensorPtr>* losses) {
        const auto& [u, v] = edges[index];
        ag::TensorPtr eu = table.Lookup(tape, u);
        ag::TensorPtr pos = ag::MatMul(tape, eu, table.Lookup(tape, v),
                                       false, /*transpose_b=*/true);
        std::vector<ag::TensorPtr> neg_scores;
        for (int s = 0; s < config.num_negatives; ++s) {
          data::UserId n = rng->NextInt(num_users);
          while (n == u || social.Connected(u, n)) n = rng->NextInt(num_users);
          neg_scores.push_back(ag::MatMul(tape, eu, table.Lookup(tape, n),
                                          false, true));
        }
        losses->push_back(
            ag::BprLoss(tape, pos, ag::ConcatRows(tape, neg_scores)));
      });
}

Trainer::FitReport Trainer::Fit(bool verbose) {
  const GroupSaConfig& config = model_->config();
  Stopwatch total;
  FitReport report;
  if (config.use_user_task) {
    for (int e = 0; e < config.user_epochs; ++e) {
      if (config.use_social_objective) RunSocialEpoch();
      EpochStats stats = RunUserEpoch();
      if (verbose) {
        LogInfo(StrFormat("[%s] user epoch %d/%d loss=%.4f (%.1fs)",
                          config.variant.c_str(), e + 1, config.user_epochs,
                          stats.avg_loss, stats.seconds));
      }
      report.user_epochs.push_back(stats);
    }
  }
  for (int e = 0; e < config.group_epochs; ++e) {
    if (config.use_user_task && config.interleave_user_in_stage2)
      RunUserEpoch();
    EpochStats stats = RunGroupEpoch();
    if (verbose) {
      LogInfo(StrFormat("[%s] group epoch %d/%d loss=%.4f (%.1fs)",
                        config.variant.c_str(), e + 1, config.group_epochs,
                        stats.avg_loss, stats.seconds));
    }
    report.group_epochs.push_back(stats);
  }
  report.total_seconds = total.ElapsedSeconds();
  return report;
}

}  // namespace groupsa::core
