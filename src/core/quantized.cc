#include "core/quantized.h"

#include <algorithm>
#include <cmath>

namespace groupsa::core {

float QuantizeRow(const float* x, int cols, int8_t* out) {
  float maxabs = 0.0f;
  for (int j = 0; j < cols; ++j) maxabs = std::max(maxabs, std::fabs(x[j]));
  if (maxabs == 0.0f) {
    for (int j = 0; j < cols; ++j) out[j] = 0;
    return 0.0f;
  }
  const float scale = maxabs / 127.0f;
  // Divide in double so the forward rounding error stays well inside the
  // half-step bound the tests pin; the clamp only fires on the row max when
  // the division rounds up to just past 127.
  const double inv = 1.0 / static_cast<double>(scale);
  for (int j = 0; j < cols; ++j) {
    const long q = std::lround(static_cast<double>(x[j]) * inv);
    out[j] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
  }
  return scale;
}

QuantizedRows QuantizeRows(const tensor::Matrix& m) {
  QuantizedRows q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.values.resize(static_cast<size_t>(q.rows) * static_cast<size_t>(q.cols));
  q.scales.resize(static_cast<size_t>(q.rows));
  for (int r = 0; r < q.rows; ++r) {
    q.scales[static_cast<size_t>(r)] = QuantizeRow(
        m.RowPtr(r), q.cols,
        q.values.data() + static_cast<size_t>(r) * static_cast<size_t>(q.cols));
  }
  return q;
}

void QuantizedRows::DequantizeInto(tensor::Matrix* out) const {
  out->Resize(rows, cols);
  for (int r = 0; r < rows; ++r) {
    const int8_t* src = RowPtr(r);
    const float s = scale(r);
    float* dst = out->RowPtr(r);
    for (int j = 0; j < cols; ++j) dst[j] = static_cast<float>(src[j]) * s;
  }
}

tensor::Matrix QuantizedRows::Dequantize() const {
  tensor::Matrix out;
  DequantizeInto(&out);
  return out;
}

}  // namespace groupsa::core
