#ifndef GROUPSA_CORE_FAST_RECOMMENDER_H_
#define GROUPSA_CORE_FAST_RECOMMENDER_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "core/groupsa_model.h"
#include "data/interaction_matrix.h"

namespace groupsa::core {

// Fast group recommendation (Sec. II-F): instead of running the multi-layer
// voting network per candidate item, score each member individually with the
// blended user score (Eq. 23) and average — a time/accuracy trade-off for
// large groups. The member embeddings already carry group-mate interests
// through joint training, which is why this stays competitive.
class FastGroupRecommender {
 public:
  // `model` must outlive the recommender.
  explicit FastGroupRecommender(GroupSaModel* model) : model_(model) {}

  // Average-of-member-scores for an ad-hoc member list.
  std::vector<double> ScoreItemsForMembers(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items) const;

  // Top-K over the full catalog. `exclude` is a user-row interaction matrix
  // (the members are ad-hoc, so there is no group row to consult): when
  // non-null, an item is filtered as soon as ANY member has observed it.
  std::vector<std::pair<data::ItemId, double>> RecommendForMembers(
      const std::vector<data::UserId>& members, int k,
      const data::InteractionMatrix* exclude = nullptr) const;

  // Validated variants: empty member lists, out-of-range member/item ids and
  // non-positive k come back as an error Status instead of a CHECK-abort.
  Status ScoreItemsForMembers(const std::vector<data::UserId>& members,
                              const std::vector<data::ItemId>& items,
                              std::vector<double>* scores) const;
  Status RecommendForMembers(
      const std::vector<data::UserId>& members, int k,
      const data::InteractionMatrix* exclude,
      std::vector<std::pair<data::ItemId, double>>* out) const;

 private:
  Status ValidateMembers(const std::vector<data::UserId>& members) const;

  GroupSaModel* model_;
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_FAST_RECOMMENDER_H_
