#ifndef GROUPSA_CORE_FAST_RECOMMENDER_H_
#define GROUPSA_CORE_FAST_RECOMMENDER_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "core/groupsa_model.h"
#include "core/item_index.h"
#include "core/quantized.h"
#include "data/interaction_matrix.h"

namespace groupsa::core {

// Fast group recommendation (Sec. II-F): instead of running the multi-layer
// voting network per candidate item, score each member individually with the
// blended user score (Eq. 23) and average — a time/accuracy trade-off for
// large groups. The member embeddings already carry group-mate interests
// through joint training, which is why this stays competitive.
class FastGroupRecommender {
 public:
  // `model` must outlive the recommender.
  explicit FastGroupRecommender(GroupSaModel* model) : model_(model) {}

  // Retrieval mode for RecommendForMembers. Under kIvf the coarse stage
  // averages the members' exact centroid pseudo-item scores (the same
  // averaging the fine stage applies to real items), probes the engine's
  // item index, and re-ranks the candidate union exactly — so nprobe >=
  // nlist is bit-identical to kExact here too. Setup-time call: must not
  // race with in-flight recommendations.
  void set_topk_mode(TopKMode mode) { mode_ = mode; }
  TopKMode topk_mode() const { return mode_; }

  // Candidate-scan precision for RecommendForMembers. Under kInt8 the
  // per-member candidate scan runs through the engine's int8 path (quantized
  // member representations, int8 item dots, averaged like the exact scores),
  // the shortlist of the engine's Int8Config::rerank_k best averaged scans
  // is re-ranked through the exact FP32 member scores, and both modes
  // compose: with kIvf the scan covers the IVF candidate union instead of
  // the catalog. Setup-time call, like set_topk_mode.
  void set_score_mode(ScoreMode mode) { score_ = mode; }
  ScoreMode score_mode() const { return score_; }

  // Average-of-member-scores for an ad-hoc member list.
  std::vector<double> ScoreItemsForMembers(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items) const;

  // Top-K over the full catalog. `exclude` is a user-row interaction matrix
  // (the members are ad-hoc, so there is no group row to consult): when
  // non-null, an item is filtered as soon as ANY member has observed it.
  std::vector<std::pair<data::ItemId, double>> RecommendForMembers(
      const std::vector<data::UserId>& members, int k,
      const data::InteractionMatrix* exclude = nullptr) const;

  // Validated variants: empty member lists, out-of-range member/item ids and
  // non-positive k come back as an error Status instead of a CHECK-abort.
  Status ScoreItemsForMembers(const std::vector<data::UserId>& members,
                              const std::vector<data::ItemId>& items,
                              std::vector<double>* scores) const;
  Status RecommendForMembers(
      const std::vector<data::UserId>& members, int k,
      const data::InteractionMatrix* exclude,
      std::vector<std::pair<data::ItemId, double>>* out) const;

 private:
  Status ValidateMembers(const std::vector<data::UserId>& members) const;

  GroupSaModel* model_;
  TopKMode mode_ = TopKMode::kExact;
  ScoreMode score_ = ScoreMode::kExact;
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_FAST_RECOMMENDER_H_
