#ifndef GROUPSA_CORE_FAST_RECOMMENDER_H_
#define GROUPSA_CORE_FAST_RECOMMENDER_H_

#include <utility>
#include <vector>

#include "core/groupsa_model.h"

namespace groupsa::core {

// Fast group recommendation (Sec. II-F): instead of running the multi-layer
// voting network per candidate item, score each member individually with the
// blended user score (Eq. 23) and average — a time/accuracy trade-off for
// large groups. The member embeddings already carry group-mate interests
// through joint training, which is why this stays competitive.
class FastGroupRecommender {
 public:
  // `model` must outlive the recommender.
  explicit FastGroupRecommender(GroupSaModel* model) : model_(model) {}

  // Average-of-member-scores for an ad-hoc member list.
  std::vector<double> ScoreItemsForMembers(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items) const;

  // Top-K over the full catalog; `exclude` (group-row interaction matrix)
  // filters already-consumed items when non-null.
  std::vector<std::pair<data::ItemId, double>> RecommendForMembers(
      const std::vector<data::UserId>& members, int k) const;

 private:
  GroupSaModel* model_;
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_FAST_RECOMMENDER_H_
