#ifndef GROUPSA_CORE_INFERENCE_ENGINE_H_
#define GROUPSA_CORE_INFERENCE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/debug_mutex.h"
#include "common/status.h"
#include "core/groupsa_model.h"
#include "core/item_index.h"
#include "core/quantized.h"

namespace groupsa::core {

// Batched, tape-free serving path for GroupSA (the production answer to the
// paper's Sec. II-F speed concern).
//
// The per-item scoring path builds a fresh 1 x d forward — attention pool,
// projection, predictor tower — per candidate item, allocating a dozen tiny
// autograd nodes each time. At catalog scale that is O(items) scalar
// forwards for work that is really a handful of matrix products: the
// enhanced user/group representation is item-independent, and everything
// downstream of it is row-wise in the candidate item. This engine
//
//  1. computes the expensive item-independent representations once per
//     entity — the user-modeling latent h_j (item-space + social-space
//     aggregation, Eq. 11-19) and the voting-stack member representations
//     x_{t,i}^U (Eq. 1-6) — and caches them across requests, and
//  2. scores all candidate items in one batched pass over pure
//     tensor::Matrix buffers: gather the item-embedding rows, run the
//     item-guided attention + predictor MLP towers over the whole
//     (num_items x d) batch via tensor::Gemm, and apply the Eq. 23 blend
//     row-wise.
//
// Bit-exactness contract: batched scores are BIT-IDENTICAL (0 ULP) to the
// per-item path (GroupSaModel::Score*PerItem) at any thread count. This
// holds because tensor::Gemm produces each output row with the same
// inner-loop order as a 1 x d product, and every batched input row here is
// constructed to equal, float for float, the row the per-item path feeds its
// ops (same concat order, same bias/activation/softmax/blend per-row math).
// The per-item autograd path remains the training path and the parity
// oracle; tests/core/inference_engine_test.cc enforces the contract.
//
// Cache lifetime: every cached representation is stamped with the model's
// parameter version — the sum of ag::Tensor::value_version() over all
// parameters, which advances on any mutable value access (optimizer steps,
// checkpoint restore, SetTable, re-initialization). Each public call
// revalidates the stamp and drops every cached entry on mismatch, so a
// stale representation can never survive a parameter update. No explicit
// hook is needed at optimizer call sites, but InvalidateAll() is available
// for callers that want eager reclamation (e.g. at epoch boundaries).
//
// Thread-safety: all public methods may be called concurrently (the
// evaluator fans ranking cases across the thread pool). Cache reads take a
// shared lock; representation building and batched scoring run outside any
// lock. Concurrent calls must not race with training steps — score either
// before or after an optimizer Step(), not during.
class InferenceEngine {
 public:
  // `model` must outlive the engine.
  explicit InferenceEngine(GroupSaModel* model);

  // Batched scorers; same semantics (and bits) as the per-item
  // GroupSaModel::Score*PerItem reference implementations.
  std::vector<double> ScoreItemsForUser(data::UserId user,
                                        const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForGroup(
      data::GroupId group, const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForMembers(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items);
  std::vector<std::vector<double>> MemberItemScores(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items);

  // Full-catalog Top-K (partial-sort selection; items observed in `exclude`
  // are skipped when it is non-null). For RecommendForMembers the exclude
  // matrix is user-row: an item is skipped when ANY member has observed it.
  std::vector<std::pair<data::ItemId, double>> RecommendForUser(
      data::UserId user, int k, const data::InteractionMatrix* exclude);
  std::vector<std::pair<data::ItemId, double>> RecommendForGroup(
      data::GroupId group, int k, const data::InteractionMatrix* exclude);
  std::vector<std::pair<data::ItemId, double>> RecommendForMembers(
      const std::vector<data::UserId>& members, int k,
      const data::InteractionMatrix* exclude);

  // ---------------- Validated (Status) serving entry points --------------
  // Production-facing variants of the scorers above: out-of-range
  // user/group/member/item ids, empty member lists and non-positive k come
  // back as a descriptive error Status instead of a CHECK-abort, leaving
  // the process and caches intact. The unchecked variants remain the
  // internal hot path (trusted ids from the evaluator/trainer).
  Status ScoreItemsForUser(data::UserId user,
                           const std::vector<data::ItemId>& items,
                           std::vector<double>* scores);
  Status ScoreItemsForGroup(data::GroupId group,
                            const std::vector<data::ItemId>& items,
                            std::vector<double>* scores);
  Status ScoreItemsForMembers(const std::vector<data::UserId>& members,
                              const std::vector<data::ItemId>& items,
                              std::vector<double>* scores);
  Status MemberItemScores(const std::vector<data::UserId>& members,
                          const std::vector<data::ItemId>& items,
                          std::vector<std::vector<double>>* scores);
  Status RecommendForUser(data::UserId user, int k,
                          const data::InteractionMatrix* exclude,
                          std::vector<std::pair<data::ItemId, double>>* out);
  Status RecommendForGroup(data::GroupId group, int k,
                           const data::InteractionMatrix* exclude,
                           std::vector<std::pair<data::ItemId, double>>* out);
  Status RecommendForMembers(
      const std::vector<data::UserId>& members, int k,
      const data::InteractionMatrix* exclude,
      std::vector<std::pair<data::ItemId, double>>* out);

  // ---------------- Sublinear retrieval (TopKMode::kIvf) -----------------
  // Opt-in IVF candidate generation for the Recommend* entry points: probe
  // the item index's best-scoring inverted lists and re-rank the candidate
  // union EXACTLY through the batched scorer. Scorers (ScoreItemsFor*) are
  // unaffected — the mode only changes which items the top-K considers.
  //
  // Probe selection is model-agnostic: the engine scores each list's
  // pseudo-item — the per-list mean rows of the live item tables — through
  // the very towers that score real items, and probes the lists whose
  // pseudo-items score highest. With nprobe >= nlist every list is probed,
  // the candidate set is the whole catalog, and (because per-row score bits
  // are independent of batch composition and TopKItems is a strict total
  // order) the result is bit-identical to kExact.
  //
  // The index and its centroid tables are cached like every other derived
  // representation: keyed on the parameter version, dropped by Revalidate on
  // any parameter update and lazily rebuilt on the next IVF query. Call
  // GetOrBuildIndex() eagerly (the serve daemon does, while constructing a
  // generation off the serving path) to keep the build cost off requests.
  // Setters are setup-time calls: they must not race with in-flight scoring.
  void set_topk_mode(TopKMode mode);
  TopKMode topk_mode() const;
  // Replaces the index build/query knobs and drops any built index.
  void set_index_config(const ItemIndexConfig& config);
  ItemIndexConfig index_config() const;
  // The current-parameter-version index, built on first use. The pointer
  // stays valid across invalidation (shared ownership); it just stops being
  // the engine's current index.
  std::shared_ptr<const ItemIndex> GetOrBuildIndex();

  // Exact tower scores of the index's per-list pseudo-items (one score per
  // centroid, nlist() entries) — the coarse stage of the IVF search, public
  // so external re-rankers (FastGroupRecommender) can drive their own
  // candidate generation through ItemIndex::SelectProbes/Candidates.
  std::vector<double> ScoreCentroidsForUser(data::UserId user);
  std::vector<double> ScoreCentroidsForGroup(data::GroupId group);
  std::vector<double> ScoreCentroidsForMembers(
      const std::vector<data::UserId>& members);

  // ---------------- Quantized serving (ScoreMode::kInt8) -----------------
  // Opt-in int8 candidate scan for the Recommend* entry points. Under kInt8
  // the engine caches per-entity representations ROW-QUANTIZED (d + 4 bytes
  // per d-column row instead of 4d — the serving-memory win), scans the
  // catalog (or, composing with TopKMode::kIvf, the IVF candidate union)
  // with an int8 x int8 -> int32 dot against the quantized item tables, and
  // re-ranks the best Int8Config::rerank_k survivors through the exact FP32
  // towers. Returned scores therefore always carry exact-path bits for the
  // dequantized cached representation; only WHICH items reach the final
  // re-rank is approximate.
  //
  // The scan direction is a first-order linearization of the predictor
  // tower: the gradient of the tower output with respect to its item-side
  // input, taken at the catalog-mean reference item with the activation
  // (ReLU) masks frozen there. That gradient is a per-request 1 x d vector;
  // quantizing it per request is O(d) while the big item-side tables are
  // quantized once per parameter version in GetQuantState().
  //
  // Ad-hoc member lists (RecommendForMembers) have no cache key, so their
  // voting-stack representation is built in FP32 per request as in exact
  // mode; the int8 scan still replaces the full-catalog FP32 pass.
  // Setters are setup-time calls: they must not race with in-flight scoring.
  void set_score_mode(ScoreMode mode);
  ScoreMode score_mode() const;
  void set_int8_config(const Int8Config& config);
  Int8Config int8_config() const;

  // Quantized item-side tables plus the reference rows the linearization is
  // taken at; cached per parameter version exactly like the IVF state. Call
  // eagerly (the serve daemon does, while constructing a generation) to keep
  // the table quantization off the request path.
  struct QuantState {
    QuantizedRows items;       // item-embedding table, row-quantized
    QuantizedRows latents;     // user-modeling item-space table, or empty
    tensor::Matrix ref_item;   // 1 x d catalog mean of the item table
    tensor::Matrix ref_latent;  // 1 x d mean of the latent table (or ref_item)
    size_t MemoryBytes() const {
      return items.MemoryBytes() + latents.MemoryBytes();
    }
  };
  std::shared_ptr<const QuantState> GetQuantState();

  // Raw int8-scan scores (approximate, for ranking only: constant offsets
  // are dropped). Public for the quality tests and for external re-rankers
  // (FastGroupRecommender) that shortlist with the same scan.
  std::vector<double> ApproxScoreItemsForUser(
      data::UserId user, const std::vector<data::ItemId>& items);
  // Exact FP32 tower scores over the DEQUANTIZED quantized-cached user
  // representation — the int8 re-rank path; bit-identical to
  // ScoreItemsForUser whenever quantization round-trips the rep exactly.
  std::vector<double> QuantScoreItemsForUser(
      data::UserId user, const std::vector<data::ItemId>& items);
  // IVF coarse stage over the quantized-cached rep (exact centroid scoring,
  // like ScoreCentroidsForUser, without touching the FP32 rep cache).
  std::vector<double> QuantScoreCentroidsForUser(data::UserId user);

  // Drops every cached representation immediately. Never required for
  // correctness (version stamping already fences parameter updates); useful
  // to reclaim memory at epoch boundaries.
  void InvalidateAll();

  // Current parameter version (sum of per-parameter value versions).
  uint64_t params_version() const;

  // Cache introspection (tests, ops counters).
  size_t cached_users() const;
  size_t cached_groups() const;
  size_t cached_quant_users() const;
  size_t cached_quant_groups() const;
  // Payload bytes behind the int8 memory gate: QuantUserCacheBytes is the
  // quantized user-rep cache as stored; Fp32UserCacheBytes is the FP32 cost
  // of the same cached users — the live FP32 cache plus 4 bytes per element
  // for every quantized-cached rep (which int8 mode keeps out of the FP32
  // cache; that avoidance is the memory win the ratio measures).
  size_t QuantUserCacheBytes() const;
  size_t Fp32UserCacheBytes() const;

 private:
  // Item-independent per-user state: emb_j^U and (when user modeling is on)
  // the latent h_j. `latent` is empty when the blend is inactive.
  struct UserRep {
    tensor::Matrix embedding;  // 1 x d
    tensor::Matrix latent;     // 1 x d, or empty
  };
  // Item-independent per-group state: the voting-stack output x_{t,i}^U.
  struct GroupRep {
    tensor::Matrix member_reps;  // l x d
  };

  // Returns the cached representation, building (and inserting) it on miss.
  // Returned by value: map storage may move under concurrent inserts.
  UserRep GetUserRep(data::UserId user);
  GroupRep GetGroupRep(data::GroupId group);

  // Tape-free representation builders (no cache).
  UserRep BuildUserRep(data::UserId user) const;
  GroupRep BuildMembersRep(const std::vector<data::UserId>& members) const;

  // Per-parameter-version derived weights. Every concat-input linear in the
  // model sees rows of the form [left (+) right]; splitting its weight matrix
  // at the concat boundary lets the engine seed each output row with the
  // partial sum over one half and let tensor::Gemm(accumulate=true) continue
  // the SAME k-ascending accumulation over the other half — the per-element
  // float chain is unchanged, so this is a 0-ULP-preserving rewrite. For the
  // attention score layer the left half is the item embedding, so its partial
  // sums (`attn_item_prefix`, one row per catalog item) are item-only and are
  // cached across every group and request at a given parameter version.
  struct SplitWeights {
    tensor::Matrix attn_w_top, attn_w_bot;  // group_pool score_hidden halves
    tensor::Matrix attn_item_prefix;        // num_items x attention_hidden
    tensor::Matrix user_w_top, user_w_bot;  // user tower layer-0 halves
    tensor::Matrix latent_w_top, latent_w_bot;  // latent tower layer-0 halves
    tensor::Matrix group_w_top, group_w_bot;  // group tower layer-0 halves
  };
  SplitWeights BuildSplitWeights() const;
  // Returns the current-version split weights, building them on first use
  // after an invalidation (shared across threads; first build wins).
  std::shared_ptr<const SplitWeights> GetSplitWeights();

  // Batched scoring given a prebuilt representation. The table-parameterized
  // variants score rows of an arbitrary item-side table (ids index `table`):
  // the catalog entry points pass the model's live tables, the IVF coarse
  // stage passes the index's centroid tables — same code, same bits.
  // `latent_table` may be null (latent concat rows fall back to `table`, the
  // Group-I behaviour); `attn_prefix` must hold Gemm(table, attn_w_top).
  std::vector<double> ScoreBatchUser(const UserRep& rep,
                                     const std::vector<data::ItemId>& items,
                                     const SplitWeights& sw) const;
  std::vector<double> ScoreBatchGroup(const GroupRep& rep,
                                      const std::vector<data::ItemId>& items,
                                      const SplitWeights& sw) const;
  std::vector<double> ScoreBatchUser(const UserRep& rep,
                                     const std::vector<data::ItemId>& items,
                                     const SplitWeights& sw,
                                     const tensor::Matrix& table,
                                     const tensor::Matrix* latent_table) const;
  std::vector<double> ScoreBatchGroup(const GroupRep& rep,
                                      const std::vector<data::ItemId>& items,
                                      const SplitWeights& sw,
                                      const tensor::Matrix& table,
                                      const tensor::Matrix& attn_prefix) const;

  // The item-space latent table when user modeling carries one, else null
  // (shared by the catalog scoring paths and the IVF state build).
  const tensor::Matrix* ModelLatentTable() const;

  // Index plus the derived centroid scoring tables, cached per parameter
  // version exactly like SplitWeights.
  struct IvfState {
    ItemIndex index;
    tensor::Matrix centroid_table;    // ListMeans over the item embeddings
    tensor::Matrix centroid_prefix;   // Gemm(centroid_table, attn_w_top)
    tensor::Matrix centroid_latents;  // ListMeans over item_space, or empty
  };
  IvfState BuildIvfState(const ItemIndexConfig& config,
                         const SplitWeights& sw) const;
  // Returns the current-version state, building on first use after an
  // invalidation (shared across threads; first build wins).
  std::shared_ptr<const IvfState> GetIvfState();

  // IVF top-K given a prebuilt representation: coarse-score the centroid
  // pseudo-items, probe, re-rank the candidate union exactly.
  std::vector<std::pair<data::ItemId, double>> IvfTopKUser(
      const UserRep& rep, int k,
      const std::function<bool(data::ItemId)>& skip);
  std::vector<std::pair<data::ItemId, double>> IvfTopKGroup(
      const GroupRep& rep, int k,
      const std::function<bool(data::ItemId)>& skip);

  // ---------------- int8 internals (ScoreMode::kInt8) --------------------
  // Row-quantized twins of UserRep/GroupRep; what the int8-mode caches hold.
  struct QuantUserRep {
    QuantizedRows embedding;  // 1 x d
    QuantizedRows latent;     // 1 x d, or empty
  };
  struct QuantGroupRep {
    QuantizedRows member_reps;  // l x d
  };
  // Cached lookup, building (FP32, transient) and quantizing on miss. The
  // FP32 caches are NOT populated on this path — that is the memory win.
  QuantUserRep GetQuantUserRep(data::UserId user);
  QuantGroupRep GetQuantGroupRep(data::GroupId group);
  static UserRep DequantizeUserRep(const QuantUserRep& q);
  static GroupRep DequantizeGroupRep(const QuantGroupRep& q);

  QuantState BuildQuantState() const;

  // Gradient of the MLP output (1 x 1) with respect to its input row, taken
  // at x0 with every activation derivative evaluated there (the frozen-mask
  // linearization). Returns 1 x in_dim.
  static tensor::Matrix TowerInputGradient(const nn::Mlp& mlp,
                                           const tensor::Matrix& x0);

  // int8 scan scores of `items` (ids into the quantized tables) for a
  // prebuilt FP32 representation; ranking-only values (offsets dropped).
  void ApproxScoresUser(const UserRep& rep, const QuantState& qs,
                        const std::vector<data::ItemId>& items,
                        std::vector<double>* out) const;
  void ApproxScoresGroup(const GroupRep& rep, const QuantState& qs,
                         const std::vector<data::ItemId>& items,
                         std::vector<double>* out) const;

  // int8 top-K: candidates (catalog, or IVF union when topk_mode() is kIvf)
  // -> int8 scan -> top rerank_k shortlist -> exact FP32 re-rank -> top k.
  std::vector<std::pair<data::ItemId, double>> Int8TopKUser(
      const UserRep& rep, int k,
      const std::function<bool(data::ItemId)>& skip);
  std::vector<std::pair<data::ItemId, double>> Int8TopKGroup(
      const GroupRep& rep, int k,
      const std::function<bool(data::ItemId)>& skip);

  // Drops all caches when the parameter version moved; returns the current
  // version.
  uint64_t Revalidate();

  // Request validation behind the Status entry points.
  Status ValidateUser(data::UserId user) const;
  Status ValidateGroup(data::GroupId group) const;
  Status ValidateMembers(const std::vector<data::UserId>& members) const;
  Status ValidateItems(const std::vector<data::ItemId>& items) const;
  Status ValidateK(int k) const;

  GroupSaModel* const model_;
  // Flattened parameter tensors, captured once (parameter identity is fixed
  // after model construction; only values change).
  std::vector<ag::TensorPtr> params_ GROUPSA_NOT_GUARDED(
      "immutable after ctor");

  mutable DebugSharedMutex mu_{"core.engine_cache"};
  uint64_t cache_version_ GROUPSA_GUARDED_BY(mu_) = 0;
  std::unordered_map<data::UserId, UserRep> user_cache_
      GROUPSA_GUARDED_BY(mu_);
  std::unordered_map<data::GroupId, GroupRep> group_cache_
      GROUPSA_GUARDED_BY(mu_);
  // reset on version change
  std::shared_ptr<const SplitWeights> split_ GROUPSA_GUARDED_BY(mu_);
  TopKMode topk_mode_ GROUPSA_GUARDED_BY(mu_) = TopKMode::kExact;
  ItemIndexConfig index_config_ GROUPSA_GUARDED_BY(mu_);
  // reset on version change
  std::shared_ptr<const IvfState> ivf_ GROUPSA_GUARDED_BY(mu_);
  ScoreMode score_mode_ GROUPSA_GUARDED_BY(mu_) = ScoreMode::kExact;
  Int8Config int8_config_ GROUPSA_GUARDED_BY(mu_);
  // reset on version change
  std::shared_ptr<const QuantState> quant_ GROUPSA_GUARDED_BY(mu_);
  std::unordered_map<data::UserId, QuantUserRep> user_q_cache_
      GROUPSA_GUARDED_BY(mu_);
  std::unordered_map<data::GroupId, QuantGroupRep> group_q_cache_
      GROUPSA_GUARDED_BY(mu_);
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_INFERENCE_ENGINE_H_
