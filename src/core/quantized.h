#ifndef GROUPSA_CORE_QUANTIZED_H_
#define GROUPSA_CORE_QUANTIZED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace groupsa::core {

// Candidate-scan precision for the Recommend* entry points. kExact scores
// every candidate through the FP32 towers; kInt8 scans candidates with the
// symmetric per-row int8 scheme below and re-ranks the top Int8Config::
// rerank_k survivors through the exact FP32 path, so the returned scores
// always carry exact-path bits (computed over the dequantized cached
// representation). Scorers (ScoreItemsFor*) are unaffected by the mode.
enum class ScoreMode {
  kExact,
  kInt8,
};

struct Int8Config {
  // Survivors of the int8 candidate scan that are re-scored through the
  // exact FP32 path; the final top-k comes out of this re-rank. Larger
  // values close the approximation gap at linear extra exact-scoring cost.
  int rerank_k = 256;
};

// Symmetric per-row int8 quantization: q = round(x / scale) clamped to
// [-127, 127] with scale = maxabs(row) / 127 and an implicit zero point of
// 0. Symmetric (scale-only) storage is what keeps a d-column row at d + 4
// bytes — 3.55x smaller than FP32 at d = 32; an asymmetric zero point would
// burn that budget for nothing, since post-tower representations are
// roughly centered. An all-zero row gets scale 0 and round-trips exactly.
// Round-trip error is bounded by scale / 2 per element (ties-away rounding
// on |x| <= maxabs).
struct QuantizedRows {
  int rows = 0;
  int cols = 0;
  std::vector<int8_t> values;  // rows x cols, row-major
  std::vector<float> scales;   // one per row

  bool empty() const { return rows == 0; }
  const int8_t* RowPtr(int r) const {
    return values.data() + static_cast<size_t>(r) * static_cast<size_t>(cols);
  }
  float scale(int r) const { return scales[static_cast<size_t>(r)]; }
  // Payload bytes (values + scales); the number behind the bytes/user
  // memory gate, so it deliberately excludes allocator slack.
  size_t MemoryBytes() const {
    return values.size() * sizeof(int8_t) + scales.size() * sizeof(float);
  }

  tensor::Matrix Dequantize() const;
  void DequantizeInto(tensor::Matrix* out) const;
};

// Quantizes one d-column row into `out` (size >= cols); returns the scale.
float QuantizeRow(const float* x, int cols, int8_t* out);

// Quantizes every row of `m` independently.
QuantizedRows QuantizeRows(const tensor::Matrix& m);

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_QUANTIZED_H_
