#include "core/voting_scheme.h"

#include "autograd/ops.h"
#include "common/string_util.h"
#include "nn/self_attention.h"

namespace groupsa::core {

VotingScheme::VotingScheme(const GroupSaConfig& config, Rng* rng)
    : config_(config) {
  const int d = config.embedding_dim;
  if (config.use_voting_scheme) {
    for (int i = 0; i < config.num_voting_layers; ++i) {
      blocks_.push_back(std::make_unique<nn::TransformerBlock>(
          StrFormat("vote%d", i), d, config.ffn_hidden, rng));
      RegisterSubmodule(StrFormat("vote%d", i), blocks_.back().get());
    }
  }
  group_pool_ = std::make_unique<nn::AttentionPool>("group_pool", d, d,
                                                    config.attention_hidden,
                                                    rng);
  group_proj_ = std::make_unique<nn::Linear>("group_proj", d, d, rng);
  RegisterSubmodule("group_pool", group_pool_.get());
  RegisterSubmodule("group_proj", group_proj_.get());
}

VotingScheme::MemberReps VotingScheme::BuildMemberReps(
    ag::Tape* tape, const ag::TensorPtr& member_embeddings,
    const std::vector<data::UserId>& members,
    const data::SocialGraph& social) const {
  MemberReps out;
  out.reps = member_embeddings;
  if (!config_.use_voting_scheme) return out;

  const int l = static_cast<int>(members.size());
  GROUPSA_CHECK(member_embeddings->rows() == l,
                "member embedding count mismatch");

  tensor::Matrix bias;
  const tensor::Matrix* bias_ptr = nullptr;
  if (config_.use_social_mask) {
    // f(i,j) per the configured closeness function; a direct edge always
    // counts as connected (Eq. 5, extended per the paper's note that any
    // real-valued closeness score may drive the mask).
    const auto connected = [&](int i, int j) {
      const data::UserId a = members[i];
      const data::UserId b = members[j];
      if (social.Connected(a, b)) return true;
      switch (config_.social_closeness) {
        case SocialCloseness::kDirectEdge:
          return false;
        case SocialCloseness::kCommonNeighbors:
          return social.CommonNeighbors(a, b) > config_.closeness_threshold;
        case SocialCloseness::kJaccard:
          return social.JaccardCoefficient(a, b) >
                 config_.closeness_threshold;
        case SocialCloseness::kAdamicAdar:
          return social.AdamicAdar(a, b) > config_.closeness_threshold;
      }
      return false;
    };
    bias = nn::MakeSocialBias(l, connected);
    bias_ptr = &bias;
  }

  ag::TensorPtr x = member_embeddings;
  for (const auto& block : blocks_) {
    nn::TransformerBlock::Output layer = block->Forward(tape, x, bias_ptr);
    x = layer.values;
    out.round_attention.push_back(std::move(layer.attention));
  }
  out.reps = x;
  return out;
}

VotingScheme::GroupRep VotingScheme::AggregateGroup(
    ag::Tape* tape, const MemberReps& member_reps,
    const ag::TensorPtr& item_embedding) const {
  // Eq. 8-10: item-guided vanilla attention over the sub-group
  // representations; Eq. 7: outer non-linear projection.
  nn::AttentionPoolOutput pooled =
      group_pool_->Forward(tape, item_embedding, member_reps.reps);
  GroupRep out;
  out.rep = ag::Relu(tape, group_proj_->Forward(tape, pooled.pooled));
  out.member_weights = std::move(pooled.weights);
  return out;
}

}  // namespace groupsa::core
