#ifndef GROUPSA_CORE_PREDICTOR_H_
#define GROUPSA_CORE_PREDICTOR_H_

#include <memory>

#include "core/config.h"
#include "nn/mlp.h"

namespace groupsa::core {

// Ranking-score MLP tower (Eq. 20 for groups, Eq. 22 for users): the
// concatenation of two d-wide representations is fed through hidden layers
// to a single unbounded score r-hat.
class RankPredictor : public nn::Module {
 public:
  RankPredictor(const std::string& name, const GroupSaConfig& config,
                Rng* rng);

  // `left` and `right` are 1 x d each; returns a 1 x 1 score.
  ag::TensorPtr Score(ag::Tape* tape, const ag::TensorPtr& left,
                      const ag::TensorPtr& right, bool training,
                      Rng* rng) const;

  // The underlying MLP, exposed so the batched inference engine can score a
  // whole (n x 2d) batch of [left (+) right] rows in one pass.
  const nn::Mlp& tower() const { return *tower_; }

 private:
  float dropout_ratio_;
  std::unique_ptr<nn::Mlp> tower_;
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_PREDICTOR_H_
