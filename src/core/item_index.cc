#include "core/item_index.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/macros.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/topk.h"
#include "tensor/ops.h"

namespace groupsa::core {
namespace {

// Rows per assignment tile: bounds the (rows x nlist) dot-product scratch to
// ~32 MB at the nlist cap while keeping the GEMM tall enough to hit the
// tiled kernel.
constexpr int kAssignChunkRows = 4096;
// Grain of the per-row argmax fan-out.
constexpr int64_t kArgmaxGrain = 64;

int ResolveNlist(int requested, int num_items) {
  int nlist = requested;
  if (nlist <= 0) {
    nlist = static_cast<int>(4.0 * std::sqrt(static_cast<double>(num_items)));
    nlist = std::clamp(nlist, 1, 2048);
  }
  return std::clamp(nlist, 1, std::max(num_items, 1));
}

int ResolveNprobe(int requested, int nlist) {
  int nprobe = requested;
  if (nprobe <= 0) nprobe = std::max(std::min(4, nlist), nlist / 16);
  return std::clamp(nprobe, 1, std::max(nlist, 1));
}

int ResolveTrainSample(int requested, int nlist, int num_items) {
  int sample = requested;
  if (sample <= 0) sample = std::max(24 * nlist, 16384);
  return std::clamp(sample, nlist, num_items);
}

// ||row||^2 of each row, accumulated in double left-to-right.
std::vector<double> RowSquaredNorms(const tensor::Matrix& m) {
  std::vector<double> norms(static_cast<size_t>(m.rows()));
  for (int r = 0; r < m.rows(); ++r) {
    const float* row = m.RowPtr(r);
    double acc = 0.0;
    for (int c = 0; c < m.cols(); ++c) {
      acc += static_cast<double>(row[c]) * static_cast<double>(row[c]);
    }
    norms[static_cast<size_t>(r)] = acc;
  }
  return norms;
}

// Assigns every row of `vectors` to its nearest centroid (squared Euclidean,
// ties to the lowest centroid id) via argmax_j(x·c_j - ||c_j||²/2). The
// dots come from tensor::Gemm and the per-row argmax writes disjoint slots,
// so the result is bit-identical at any thread count. `scratch`/`dots` are
// caller-provided so Lloyd iterations reuse the same storage.
void AssignNearest(const tensor::Matrix& vectors,
                   const tensor::Matrix& centroids,
                   const std::vector<double>& half_centroid_sqnorms,
                   tensor::Matrix* scratch, tensor::Matrix* dots,
                   std::vector<int>* assignments) {
  const int n = vectors.rows();
  const int nlist = centroids.rows();
  assignments->resize(static_cast<size_t>(n));
  std::vector<int> chunk_ids;
  for (int begin = 0; begin < n; begin += kAssignChunkRows) {
    const int end = std::min(n, begin + kAssignChunkRows);
    const int rows = end - begin;
    chunk_ids.resize(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) chunk_ids[static_cast<size_t>(r)] = begin + r;
    tensor::GatherRowsInto(vectors, chunk_ids, scratch);
    tensor::Gemm(*scratch, false, centroids, /*transpose_b=*/true, 1.0f, dots);
    int* out = assignments->data() + begin;
    const tensor::Matrix& d = *dots;
    parallel::ParallelFor(0, rows, kArgmaxGrain, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* drow = d.RowPtr(static_cast<int>(r));
        int best = 0;
        double best_score = static_cast<double>(drow[0]) -
                            half_centroid_sqnorms[0];
        for (int j = 1; j < nlist; ++j) {
          const double s = static_cast<double>(drow[j]) -
                           half_centroid_sqnorms[static_cast<size_t>(j)];
          if (s > best_score) {
            best_score = s;
            best = j;
          }
        }
        out[r] = best;
      }
    });
  }
}

// k-means++ D² seeding over the rows of `sample`: the first centroid is a
// uniform draw, each subsequent one is drawn with probability proportional
// to its squared distance from the nearest chosen centroid. Distances are
// maintained incrementally with one (rows x 1) Gemm matvec per chosen
// centroid. All draws come from the single `rng` stream in a fixed order,
// so seeding is a pure function of (sample, nlist, rng state).
tensor::Matrix SeedCentroids(const tensor::Matrix& sample, int nlist,
                             Rng* rng) {
  const int m = sample.rows();
  const int dim = sample.cols();
  const std::vector<double> sqnorms = RowSquaredNorms(sample);
  tensor::Matrix centroids(nlist, dim);
  tensor::Matrix chosen(1, dim);
  tensor::Matrix dots;
  std::vector<double> d2(static_cast<size_t>(m), 0.0);

  int pick = rng->NextInt(m);
  centroids.SetRow(0, sample.RowPtr(pick));
  for (int j = 1; j < nlist; ++j) {
    chosen.SetRow(0, centroids.RowPtr(j - 1));
    const double cnorm = RowSquaredNorms(chosen)[0];
    tensor::Gemm(sample, false, chosen, /*transpose_b=*/true, 1.0f, &dots);
    double total = 0.0;
    for (int i = 0; i < m; ++i) {
      const size_t si = static_cast<size_t>(i);
      double dist = sqnorms[si] - 2.0 * static_cast<double>(dots.At(i, 0)) +
                    cnorm;
      if (dist < 0.0) dist = 0.0;
      d2[si] = (j == 1) ? dist : std::min(d2[si], dist);
      total += d2[si];
    }
    // All remaining mass at distance zero (duplicate-heavy samples): any
    // pick is equivalent, fall back to a uniform draw to keep going.
    pick = (total > 0.0) ? rng->NextWeighted(d2) : rng->NextInt(m);
    centroids.SetRow(j, sample.RowPtr(pick));
  }
  return centroids;
}

// One Lloyd centroid update: per-cluster mean of its assigned sample rows,
// accumulated in double over ascending row ids (serial, order-fixed). A
// cluster that lost all members keeps its previous centroid.
void UpdateCentroids(const tensor::Matrix& sample,
                     const std::vector<int>& assignments,
                     tensor::Matrix* centroids) {
  const int nlist = centroids->rows();
  const int dim = centroids->cols();
  std::vector<double> sums(static_cast<size_t>(nlist) * dim, 0.0);
  std::vector<int> counts(static_cast<size_t>(nlist), 0);
  for (int i = 0; i < sample.rows(); ++i) {
    const int a = assignments[static_cast<size_t>(i)];
    const float* row = sample.RowPtr(i);
    double* sum = sums.data() + static_cast<size_t>(a) * dim;
    for (int c = 0; c < dim; ++c) sum[c] += static_cast<double>(row[c]);
    ++counts[static_cast<size_t>(a)];
  }
  for (int j = 0; j < nlist; ++j) {
    const int count = counts[static_cast<size_t>(j)];
    if (count == 0) continue;
    float* row = centroids->RowPtr(j);
    const double* sum = sums.data() + static_cast<size_t>(j) * dim;
    for (int c = 0; c < dim; ++c) {
      row[c] = static_cast<float>(sum[c] / count);
    }
  }
}

std::vector<double> HalfSquaredNorms(const tensor::Matrix& centroids) {
  std::vector<double> half = RowSquaredNorms(centroids);
  for (double& v : half) v *= 0.5;
  return half;
}

}  // namespace

ItemIndex ItemIndex::Build(const tensor::Matrix& vectors,
                           const ItemIndexConfig& config) {
  ItemIndex index;
  index.num_items_ = vectors.rows();
  index.dim_ = vectors.cols();
  if (vectors.rows() == 0 || vectors.cols() == 0) {
    index.list_begin_.assign(1, 0);
    return index;
  }

  const int n = vectors.rows();
  const int nlist = ResolveNlist(config.nlist, n);
  index.default_nprobe_ = ResolveNprobe(config.nprobe, nlist);
  const int sample_size = ResolveTrainSample(config.train_sample, nlist, n);

  Rng rng(Rng::StreamSeed(config.seed, 0));

  // Training sample: a deterministic without-replacement draw, gathered in
  // ascending row order (the draw order must not leak into the result).
  tensor::Matrix sample;
  const tensor::Matrix* train = &vectors;
  if (sample_size < n) {
    std::vector<int> ids = rng.SampleWithoutReplacement(n, sample_size);
    std::sort(ids.begin(), ids.end());
    tensor::GatherRowsInto(vectors, ids, &sample);
    train = &sample;
  }

  index.centroids_ = SeedCentroids(*train, nlist, &rng);

  tensor::Matrix scratch;
  tensor::Matrix dots;
  std::vector<int> assign;
  std::vector<int> prev_assign;
  for (int iter = 0; iter < config.train_iters; ++iter) {
    AssignNearest(*train, index.centroids_,
                  HalfSquaredNorms(index.centroids_), &scratch, &dots,
                  &assign);
    if (iter > 0 && assign == prev_assign) break;
    UpdateCentroids(*train, assign, &index.centroids_);
    prev_assign = assign;
  }

  // Final pass: assign the full catalog with the trained quantizer.
  AssignNearest(vectors, index.centroids_, HalfSquaredNorms(index.centroids_),
                &scratch, &dots, &index.assignments_);

  // CSR inverted lists; filling in ascending item order keeps each list's
  // items ascending.
  index.list_begin_.assign(static_cast<size_t>(nlist) + 1, 0);
  for (int i = 0; i < n; ++i) {
    ++index.list_begin_[static_cast<size_t>(index.assignments_[
        static_cast<size_t>(i)]) + 1];
  }
  for (int j = 0; j < nlist; ++j) {
    index.list_begin_[static_cast<size_t>(j) + 1] +=
        index.list_begin_[static_cast<size_t>(j)];
  }
  index.list_items_.resize(static_cast<size_t>(n));
  std::vector<int> cursor(index.list_begin_.begin(),
                          index.list_begin_.end() - 1);
  for (int i = 0; i < n; ++i) {
    const int a = index.assignments_[static_cast<size_t>(i)];
    index.list_items_[static_cast<size_t>(
        cursor[static_cast<size_t>(a)]++)] = static_cast<data::ItemId>(i);
  }
  return index;
}

const data::ItemId* ItemIndex::ListBegin(int c) const {
  GROUPSA_DCHECK(c >= 0 && c < nlist(), "ItemIndex list out of range");
  return list_items_.data() + list_begin_[static_cast<size_t>(c)];
}

int ItemIndex::ListSize(int c) const {
  GROUPSA_DCHECK(c >= 0 && c < nlist(), "ItemIndex list out of range");
  return list_begin_[static_cast<size_t>(c) + 1] -
         list_begin_[static_cast<size_t>(c)];
}

tensor::Matrix ItemIndex::ListMeans(const tensor::Matrix& table) const {
  GROUPSA_CHECK(table.rows() == num_items_,
                "ItemIndex::ListMeans: table row count != indexed items");
  const int lists = nlist();
  const int dim = table.cols();
  tensor::Matrix means(lists, dim);
  if (lists == 0 || dim == 0) return means;
  std::vector<double> sums(static_cast<size_t>(lists) * dim, 0.0);
  for (int i = 0; i < num_items_; ++i) {
    const int a = assignments_[static_cast<size_t>(i)];
    const float* row = table.RowPtr(i);
    double* sum = sums.data() + static_cast<size_t>(a) * dim;
    for (int c = 0; c < dim; ++c) sum[c] += static_cast<double>(row[c]);
  }
  for (int j = 0; j < lists; ++j) {
    const int count = ListSize(j);
    if (count == 0) continue;
    float* row = means.RowPtr(j);
    const double* sum = sums.data() + static_cast<size_t>(j) * dim;
    for (int c = 0; c < dim; ++c) {
      row[c] = static_cast<float>(sum[c] / count);
    }
  }
  return means;
}

std::vector<int> ItemIndex::SelectProbes(
    const std::vector<double>& centroid_scores, int nprobe) const {
  GROUPSA_CHECK(static_cast<int>(centroid_scores.size()) == nlist(),
                "ItemIndex::SelectProbes: one score per centroid required");
  if (nprobe <= 0) nprobe = default_nprobe_;
  std::vector<data::ItemId> nonempty;
  std::vector<double> scores;
  nonempty.reserve(static_cast<size_t>(nlist()));
  scores.reserve(static_cast<size_t>(nlist()));
  for (int j = 0; j < nlist(); ++j) {
    if (ListSize(j) == 0) continue;
    nonempty.push_back(static_cast<data::ItemId>(j));
    scores.push_back(centroid_scores[static_cast<size_t>(j)]);
  }
  const auto ranked = TopKItems(nonempty, scores, nprobe);
  std::vector<int> probes;
  probes.reserve(ranked.size());
  for (const auto& [list_id, score] : ranked) {
    (void)score;
    probes.push_back(list_id);
  }
  return probes;
}

std::vector<data::ItemId> ItemIndex::Candidates(
    const std::vector<int>& probes) const {
  size_t total = 0;
  for (int c : probes) total += static_cast<size_t>(ListSize(c));
  std::vector<data::ItemId> candidates;
  candidates.reserve(total);
  for (int c : probes) {
    const data::ItemId* begin = ListBegin(c);
    candidates.insert(candidates.end(), begin, begin + ListSize(c));
  }
  return candidates;
}

}  // namespace groupsa::core
