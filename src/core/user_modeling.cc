#include "core/user_modeling.h"

#include "autograd/ops.h"

namespace groupsa::core {

UserModeling::UserModeling(const GroupSaConfig& config, int num_users,
                           int num_items, Rng* rng,
                           nn::Embedding* shared_user,
                           nn::Embedding* shared_item)
    : config_(config) {
  const int d = config.embedding_dim;
  GROUPSA_CHECK(config.user_modeling_enabled(),
                "UserModeling constructed with both aggregations disabled");
  if (config.tie_latent_spaces) {
    GROUPSA_CHECK(shared_user != nullptr && shared_item != nullptr,
                  "tie_latent_spaces requires the shared embedding tables");
  }
  if (config.use_item_aggregation) {
    if (config.tie_latent_spaces) {
      item_space_ = shared_item;
    } else {
      owned_item_space_ =
          std::make_unique<nn::Embedding>("item_space", num_items, d, rng);
      item_space_ = owned_item_space_.get();
      RegisterSubmodule("item_space", owned_item_space_.get());
    }
    item_pool_ = std::make_unique<nn::AttentionPool>(
        "item_pool", d, d, config.attention_hidden, rng);
    item_proj_ = std::make_unique<nn::Linear>("item_proj", d, d, rng);
    RegisterSubmodule("item_pool", item_pool_.get());
    RegisterSubmodule("item_proj", item_proj_.get());
  }
  if (config.use_social_aggregation) {
    if (config.tie_latent_spaces) {
      social_space_ = shared_user;
    } else {
      owned_social_space_ =
          std::make_unique<nn::Embedding>("social_space", num_users, d, rng);
      social_space_ = owned_social_space_.get();
      RegisterSubmodule("social_space", owned_social_space_.get());
    }
    social_pool_ = std::make_unique<nn::AttentionPool>(
        "social_pool", d, d, config.attention_hidden, rng);
    social_proj_ = std::make_unique<nn::Linear>("social_proj", d, d, rng);
    RegisterSubmodule("social_pool", social_pool_.get());
    RegisterSubmodule("social_proj", social_proj_.get());
  }
  // Fusion input: one d-wide slot per enabled aggregation (Eq. 19
  // concatenates h^V and h^S; single-side variants feed that side alone).
  int fusion_in = 0;
  if (config.use_item_aggregation) fusion_in += d;
  if (config.use_social_aggregation) fusion_in += d;
  std::vector<int> dims = {fusion_in};
  for (int h : config.fusion_hidden) dims.push_back(h);
  dims.push_back(d);
  fusion_ = std::make_unique<nn::Mlp>("fusion", dims, rng,
                                      nn::Activation::kRelu,
                                      nn::Activation::kRelu);
  RegisterSubmodule("fusion", fusion_.get());
}

ag::TensorPtr UserModeling::BuildUserLatent(
    ag::Tape* tape, const ag::TensorPtr& user_embedding,
    const std::vector<data::ItemId>& top_items,
    const std::vector<data::UserId>& top_friends, bool training, Rng* rng) {
  const int d = config_.embedding_dim;
  std::vector<ag::TensorPtr> sides;

  if (config_.use_item_aggregation) {
    ag::TensorPtr h_item;
    if (!top_items.empty()) {
      std::vector<int> ids(top_items.begin(), top_items.end());
      ag::TensorPtr context = item_space_->Forward(tape, ids);  // H x d
      context = ag::Dropout(tape, context, config_.dropout_ratio, training,
                            rng);
      nn::AttentionPoolOutput pooled =
          item_pool_->Forward(tape, user_embedding, context);
      h_item = ag::Relu(tape, item_proj_->Forward(tape, pooled.pooled));
    } else {
      // No interacted items (cold user): the item side is silent.
      h_item = ag::Constant(tensor::Matrix(1, d));
    }
    sides.push_back(h_item);
  }

  if (config_.use_social_aggregation) {
    ag::TensorPtr h_social;
    if (!top_friends.empty()) {
      std::vector<int> ids(top_friends.begin(), top_friends.end());
      ag::TensorPtr context = social_space_->Forward(tape, ids);  // H x d
      context = ag::Dropout(tape, context, config_.dropout_ratio, training,
                            rng);
      nn::AttentionPoolOutput pooled =
          social_pool_->Forward(tape, user_embedding, context);
      h_social = ag::Relu(tape, social_proj_->Forward(tape, pooled.pooled));
    } else {
      h_social = ag::Constant(tensor::Matrix(1, d));
    }
    sides.push_back(h_social);
  }

  GROUPSA_CHECK(!sides.empty(), "user modeling produced no sides");
  ag::TensorPtr joined =
      sides.size() == 1 ? sides[0] : ag::ConcatCols(tape, sides);
  return fusion_->Forward(tape, joined);
}

ag::TensorPtr UserModeling::ItemLatent(ag::Tape* tape, data::ItemId item) {
  if (item_space_ != nullptr) return item_space_->Lookup(tape, item);
  // Without the item-space table (Group-I) the blended score falls back to
  // the social-only latent paired with a zero item side; callers pass the
  // shared item embedding instead, so this path is unused. Keep it safe:
  return ag::Constant(tensor::Matrix(1, config_.embedding_dim));
}

}  // namespace groupsa::core
