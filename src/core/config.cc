#include "core/config.h"

namespace groupsa::core {

const char* ToString(SocialCloseness closeness) {
  switch (closeness) {
    case SocialCloseness::kDirectEdge:
      return "direct-edge";
    case SocialCloseness::kCommonNeighbors:
      return "common-neighbors";
    case SocialCloseness::kJaccard:
      return "jaccard";
    case SocialCloseness::kAdamicAdar:
      return "adamic-adar";
  }
  return "?";
}

GroupSaConfig GroupSaConfig::Default() { return GroupSaConfig(); }

GroupSaConfig GroupSaConfig::GroupA() {
  GroupSaConfig c;
  c.variant = "Group-A";
  c.use_voting_scheme = false;
  c.use_item_aggregation = false;
  c.use_social_aggregation = false;
  return c;
}

GroupSaConfig GroupSaConfig::GroupS() {
  GroupSaConfig c;
  c.variant = "Group-S";
  c.use_voting_scheme = false;
  return c;
}

GroupSaConfig GroupSaConfig::GroupI() {
  GroupSaConfig c;
  c.variant = "Group-I";
  c.use_item_aggregation = false;
  return c;
}

GroupSaConfig GroupSaConfig::GroupF() {
  GroupSaConfig c;
  c.variant = "Group-F";
  c.use_social_aggregation = false;
  return c;
}

GroupSaConfig GroupSaConfig::GroupG() {
  GroupSaConfig c;
  c.variant = "Group-G";
  c.use_user_task = false;
  return c;
}

GroupSaConfig GroupSaConfig::NoSocialMask() {
  GroupSaConfig c;
  c.variant = "GroupSA-nomask";
  c.use_social_mask = false;
  return c;
}

}  // namespace groupsa::core
