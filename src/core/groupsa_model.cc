#include "core/groupsa_model.h"

#include <unordered_set>
#include <utility>

#include "analysis/graph_lint.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "core/inference_engine.h"

namespace groupsa::core {

GroupSaModel::GroupSaModel(const GroupSaConfig& config, int num_users,
                           int num_items, ModelData data, Rng* rng)
    : config_(config), data_(std::move(data)) {
  GROUPSA_CHECK(data_.groups != nullptr && data_.social != nullptr,
                "GroupSaModel requires group table and social graph");
  const int d = config.embedding_dim;
  user_emb_ = std::make_unique<nn::Embedding>("user_emb", num_users, d, rng);
  item_emb_ = std::make_unique<nn::Embedding>("item_emb", num_items, d, rng);
  RegisterSubmodule("user_emb", user_emb_.get());
  RegisterSubmodule("item_emb", item_emb_.get());
  if (config.user_modeling_enabled()) {
    user_modeling_ = std::make_unique<UserModeling>(
        config, num_users, num_items, rng, user_emb_.get(), item_emb_.get());
    RegisterSubmodule("user_modeling", user_modeling_.get());
  }
  voting_ = std::make_unique<VotingScheme>(config, rng);
  RegisterSubmodule("voting", voting_.get());
  user_predictor_ = std::make_unique<RankPredictor>("user_pred", config, rng);
  RegisterSubmodule("user_pred", user_predictor_.get());
  if (user_modeling_ != nullptr && config.separate_latent_tower) {
    latent_predictor_ =
        std::make_unique<RankPredictor>("latent_pred", config, rng);
    RegisterSubmodule("latent_pred", latent_predictor_.get());
  }
  if (!config.share_predictors) {
    group_predictor_ =
        std::make_unique<RankPredictor>("group_pred", config, rng);
    RegisterSubmodule("group_pred", group_predictor_.get());
  }
  // Built last: the engine snapshots the flattened parameter list.
  inference_ = std::make_unique<InferenceEngine>(this);
}

GroupSaModel::~GroupSaModel() = default;

GroupSaModel::UserForward GroupSaModel::BuildUserForward(ag::Tape* tape,
                                                         data::UserId user,
                                                         bool training,
                                                         Rng* rng) {
  UserForward fwd;
  fwd.user = user;
  fwd.embedding = user_emb_->Lookup(tape, user);
  if (user_modeling_ != nullptr && config_.effective_user_blend() > 0.0f) {
    const std::vector<data::ItemId> no_items;
    const std::vector<data::UserId> no_friends;
    const std::vector<data::ItemId>& top_items =
        data_.top_items.empty() ? no_items : data_.top_items[user];
    const std::vector<data::UserId>& top_friends =
        data_.top_friends.empty() ? no_friends : data_.top_friends[user];
    // Optionally detach the guide so the query role of emb^U does not
    // interfere with its tower-input role (see config.h).
    ag::TensorPtr guide =
        config_.detach_attention_guides
            ? ag::Constant(fwd.embedding->value())
            : fwd.embedding;
    fwd.latent = user_modeling_->BuildUserLatent(tape, guide, top_items,
                                                 top_friends, training, rng);
  }
  return fwd;
}

ag::TensorPtr GroupSaModel::ScoreUserItem(ag::Tape* tape,
                                          const UserForward& user,
                                          data::ItemId item, bool training,
                                          Rng* rng) {
  ag::TensorPtr item_embedding = item_emb_->Lookup(tape, item);
  // r^R1: shared-embedding score (Eq. 22).
  ag::TensorPtr r1 = user_predictor_->Score(tape, user.embedding,
                                            item_embedding, training, rng);
  const float blend = config_.effective_user_blend();
  if (user.latent == nullptr || blend <= 0.0f) return r1;

  // r^R2: latent-factor score through the same tower (Sec. II-E); the item
  // side is the item-space latent x_h^V when present (falls back to the
  // shared embedding for Group-I).
  ag::TensorPtr item_latent =
      user_modeling_->has_item_space()
          ? user_modeling_->ItemLatent(tape, item)
          : item_embedding;
  const RankPredictor* latent_tower = latent_predictor_ != nullptr
                                          ? latent_predictor_.get()
                                          : user_predictor_.get();
  ag::TensorPtr r2 =
      latent_tower->Score(tape, user.latent, item_latent, training, rng);
  // Eq. 23: r = (1 - w^u) r1 + w^u r2.
  return ag::Add(tape, ag::Scale(tape, r1, 1.0f - blend),
                 ag::Scale(tape, r2, blend));
}

GroupSaModel::GroupForward GroupSaModel::BuildGroupForward(ag::Tape* tape,
                                                           data::GroupId group,
                                                           bool training,
                                                           Rng* rng) {
  return BuildGroupForwardFromMembers(tape, data_.groups->Members(group),
                                      training, rng);
}

GroupSaModel::GroupForward GroupSaModel::BuildGroupForwardFromMembers(
    ag::Tape* tape, const std::vector<data::UserId>& members, bool training,
    Rng* rng) {
  GROUPSA_CHECK(!members.empty(), "group must have members");
  GroupForward fwd;
  fwd.members = members;
  ag::TensorPtr member_rows;
  const bool enhance = user_modeling_ != nullptr &&
                       config_.use_enhanced_member_reps &&
                       config_.effective_user_blend() > 0.0f;
  if (enhance) {
    // Row i = emb_i + h_i: the member embedding residually enhanced by the
    // user-modeling latent (see config.h, use_enhanced_member_reps).
    std::vector<ag::TensorPtr> rows;
    rows.reserve(members.size());
    for (data::UserId member : members) {
      UserForward uf = BuildUserForward(tape, member, training, rng);
      rows.push_back(uf.latent != nullptr
                         ? ag::Add(tape, uf.embedding, uf.latent)
                         : uf.embedding);
    }
    member_rows = rows.size() == 1 ? rows[0] : ag::ConcatRows(tape, rows);
  } else {
    std::vector<int> ids(members.begin(), members.end());
    member_rows = user_emb_->Forward(tape, ids);  // l x d
  }
  member_rows =
      ag::Dropout(tape, member_rows, config_.dropout_ratio, training, rng);
  fwd.reps = voting_->BuildMemberReps(tape, member_rows, members,
                                      *data_.social);
  return fwd;
}

GroupSaModel::GroupItemScore GroupSaModel::ScoreGroupItem(
    ag::Tape* tape, const GroupForward& group, data::ItemId item,
    bool training, Rng* rng) {
  ag::TensorPtr item_embedding = item_emb_->Lookup(tape, item);
  VotingScheme::GroupRep agg =
      voting_->AggregateGroup(tape, group.reps, item_embedding);
  GroupItemScore out;
  const RankPredictor* predictor = config_.share_predictors
                                       ? user_predictor_.get()
                                       : group_predictor_.get();
  out.score = predictor->Score(tape, agg.rep, item_embedding, training, rng);
  out.member_weights = std::move(agg.member_weights);
  return out;
}

std::vector<double> GroupSaModel::ScoreItemsForUser(
    data::UserId user, const std::vector<data::ItemId>& items) {
  return inference_->ScoreItemsForUser(user, items);
}

std::vector<double> GroupSaModel::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items) {
  return inference_->ScoreItemsForGroup(group, items);
}

std::vector<double> GroupSaModel::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) {
  return inference_->ScoreItemsForMembers(members, items);
}

std::vector<std::vector<double>> GroupSaModel::MemberItemScores(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) {
  return inference_->MemberItemScores(members, items);
}

std::vector<double> GroupSaModel::ScoreItemsForUserPerItem(
    data::UserId user, const std::vector<data::ItemId>& items) {
  UserForward fwd =
      BuildUserForward(/*tape=*/nullptr, user, /*training=*/false, nullptr);
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        ScoreUserItem(nullptr, fwd, item, /*training=*/false, nullptr)
            ->scalar());
  }
  return scores;
}

std::vector<double> GroupSaModel::ScoreItemsForGroupPerItem(
    data::GroupId group, const std::vector<data::ItemId>& items) {
  GroupForward fwd =
      BuildGroupForward(nullptr, group, /*training=*/false, nullptr);
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        ScoreGroupItem(nullptr, fwd, item, /*training=*/false, nullptr)
            .score->scalar());
  }
  return scores;
}

std::vector<double> GroupSaModel::ScoreItemsForMembersPerItem(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) {
  GroupForward fwd = BuildGroupForwardFromMembers(nullptr, members,
                                                  /*training=*/false, nullptr);
  std::vector<double> scores;
  scores.reserve(items.size());
  for (data::ItemId item : items) {
    scores.push_back(
        ScoreGroupItem(nullptr, fwd, item, /*training=*/false, nullptr)
            .score->scalar());
  }
  return scores;
}

GroupSaModel::GroupItemScore GroupSaModel::ScoreGroupItemDetailed(
    data::GroupId group, data::ItemId item) {
  GroupForward fwd =
      BuildGroupForward(nullptr, group, /*training=*/false, nullptr);
  return ScoreGroupItem(nullptr, fwd, item, /*training=*/false, nullptr);
}

Status GroupSaModel::ValidateGraph() {
  // Representative entities: the user with the richest Top-H neighbourhoods
  // (so both user-modeling attention spaces are exercised) and the first
  // real group, falling back to a singleton group of that user.
  data::UserId user = 0;
  size_t best_cover = 0;
  for (int u = 0; u < num_users(); ++u) {
    size_t cover = 0;
    if (u < static_cast<int>(data_.top_items.size()))
      cover += data_.top_items[static_cast<size_t>(u)].size();
    if (u < static_cast<int>(data_.top_friends.size()))
      cover += data_.top_friends[static_cast<size_t>(u)].size();
    if (cover > best_cover) {
      best_cover = cover;
      user = u;
    }
  }
  const data::ItemId pos = 0;
  std::vector<data::ItemId> negatives;
  for (data::ItemId item = 1; item < num_items() && negatives.size() < 2;
       ++item) {
    negatives.push_back(item);
  }
  if (negatives.empty()) negatives.push_back(pos);

  // The probe forward marks embedding rows as touched (exactly as a training
  // forward would); snapshot the touched-row sets so validation leaves the
  // optimizer's sparse-update bookkeeping untouched.
  std::vector<std::pair<std::unordered_set<int>*, std::unordered_set<int>>>
      saved_touched;
  for (const nn::ParamEntry& p : Parameters()) {
    if (p.touched_rows != nullptr)
      saved_touched.emplace_back(p.touched_rows, *p.touched_rows);
  }

  Rng probe_rng(0x9E3779B9u);
  ag::Tape tape;
  tape.set_record_graph(true);

  // User task: blended BPR triple (Eq. 22-23).
  UserForward uf = BuildUserForward(&tape, user, /*training=*/true, &probe_rng);
  ag::TensorPtr user_pos = ScoreUserItem(&tape, uf, pos, true, &probe_rng);
  std::vector<ag::TensorPtr> user_negs;
  for (data::ItemId item : negatives)
    user_negs.push_back(ScoreUserItem(&tape, uf, item, true, &probe_rng));
  ag::TensorPtr user_loss =
      ag::BprLoss(&tape, user_pos, ag::ConcatRows(&tape, user_negs));

  // Group task: voting rounds + group tower (Eq. 10, 20).
  GroupForward gf =
      data_.groups->num_groups() > 0
          ? BuildGroupForward(&tape, 0, /*training=*/true, &probe_rng)
          : BuildGroupForwardFromMembers(&tape, {user}, true, &probe_rng);
  ag::TensorPtr group_pos =
      ScoreGroupItem(&tape, gf, pos, true, &probe_rng).score;
  std::vector<ag::TensorPtr> group_negs;
  for (data::ItemId item : negatives) {
    group_negs.push_back(
        ScoreGroupItem(&tape, gf, item, true, &probe_rng).score);
  }
  ag::TensorPtr group_loss =
      ag::BprLoss(&tape, group_pos, ag::ConcatRows(&tape, group_negs));

  ag::TensorPtr total = ag::SumAll(
      &tape, ag::ConcatRows(&tape, {user_loss, group_loss}));

  analysis::TapeLintOptions options;
  options.root = total;
  for (const nn::ParamEntry& p : Parameters())
    options.parameters.push_back(p.tensor.get());
  // The combined user+group graph must reach every registered parameter:
  // anything unreached here would be "trained" by the optimizer without ever
  // receiving a gradient.
  options.check_unreached_params = true;
  Status status = analysis::ValidateTape(tape, options);

  for (auto& [set_ptr, snapshot] : saved_touched)
    *set_ptr = std::move(snapshot);
  return status;
}

std::vector<std::pair<data::ItemId, double>> GroupSaModel::RecommendForGroup(
    data::GroupId group, int k, const data::InteractionMatrix* exclude) {
  return inference_->RecommendForGroup(group, k, exclude);
}

std::vector<std::pair<data::ItemId, double>> GroupSaModel::RecommendForUser(
    data::UserId user, int k, const data::InteractionMatrix* exclude) {
  return inference_->RecommendForUser(user, k, exclude);
}

}  // namespace groupsa::core
