#include "core/predictor.h"

#include "autograd/ops.h"

namespace groupsa::core {

RankPredictor::RankPredictor(const std::string& name,
                             const GroupSaConfig& config, Rng* rng)
    : dropout_ratio_(config.dropout_ratio) {
  std::vector<int> dims = {2 * config.embedding_dim};
  for (int h : config.predictor_hidden) dims.push_back(h);
  dims.push_back(1);
  tower_ = std::make_unique<nn::Mlp>(name, dims, rng, nn::Activation::kRelu,
                                     nn::Activation::kNone);
  RegisterSubmodule(name, tower_.get());
}

ag::TensorPtr RankPredictor::Score(ag::Tape* tape, const ag::TensorPtr& left,
                                   const ag::TensorPtr& right, bool training,
                                   Rng* rng) const {
  ag::TensorPtr joined = ag::ConcatCols(tape, {left, right});
  joined = ag::Dropout(tape, joined, dropout_ratio_, training, rng);
  return tower_->Forward(tape, joined);
}

}  // namespace groupsa::core
