#ifndef GROUPSA_CORE_ITEM_INDEX_H_
#define GROUPSA_CORE_ITEM_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/types.h"
#include "tensor/matrix.h"

namespace groupsa::core {

// Which retrieval strategy a full-catalog top-K entry point uses.
//
//   kExact  score every catalog item through the batched engine (O(items)
//           per request — the PR-2 behaviour, still the parity oracle).
//   kIvf    coarse-quantized candidate generation: score only the item
//           index's nlist cluster centroids, take the union of the nprobe
//           best-scoring clusters' inverted lists as candidates, and re-rank
//           the candidates EXACTLY through the same batched scorer. The
//           output contract is "true top-K of the candidate set": every
//           returned (item, score) pair carries the exact-path score bits,
//           only membership of the candidate set is approximate. With
//           nprobe >= nlist the candidate set is the whole catalog and the
//           result is bit-identical to kExact (the CI parity gate).
enum class TopKMode { kExact, kIvf };

// Build/query knobs for ItemIndex. Zero means "derive from the catalog
// size"; the derived defaults are reported by the built index.
struct ItemIndexConfig {
  // Number of k-means clusters (inverted lists). 0 = auto:
  // clamp(4 * sqrt(items), 1, 2048), never more than the catalog.
  int nlist = 0;
  // Default number of lists probed per query. 0 = auto: nlist / 16, at
  // least min(4, nlist). nprobe >= nlist degenerates to exact search over
  // the whole catalog (the parity mode).
  int nprobe = 0;
  // Lloyd iterations over the training sample (an iteration that moves no
  // assignment stops early).
  int train_iters = 8;
  // Rows the quantizer trains on; the final assignment pass always covers
  // the full catalog. 0 = auto: min(items, max(24 * nlist, 16384)).
  int train_sample = 0;
  // Seed for the k-means++ / sampling draws. All randomness flows through
  // one common/rng stream derived from this, so a build is a pure function
  // of (vectors, config) at any thread count.
  uint64_t seed = 0x1DEA5EEDULL;
};

// Coarse k-means quantizer + inverted lists over the item representation
// table — the candidate-generation stage in front of the exact batched
// scorer (see TopKMode::kIvf and DESIGN.md "Sublinear retrieval").
//
// Build: k-means++ seeding and Lloyd iterations run on a deterministic
// row sample; the trained quantizer then assigns every catalog item to its
// nearest centroid (ties to the lowest centroid id) in one chunked pass.
// Nearest-centroid search is expressed as argmax_j(x·c_j - ||c_j||²/2) so
// the heavy lifting is a (chunk x nlist) tensor::Gemm, with the per-row
// argmax fanned out over the global pool into disjoint slots — both
// bit-identical at any thread count, so the whole build is.
//
// The inverted lists partition the catalog: every item appears in exactly
// one list, and within a list items are in ascending id order. Probing all
// non-empty lists therefore yields each catalog item exactly once — which
// is what makes the nprobe >= nlist parity mode structural rather than
// probabilistic.
class ItemIndex {
 public:
  // Clusters the rows of `vectors` (items x dim). An empty table yields an
  // empty index (nlist 0, no candidates); nlist and train_sample are
  // clamped to the catalog, so tiny catalogs (items < nlist) degrade to at
  // most one item per list rather than failing.
  static ItemIndex Build(const tensor::Matrix& vectors,
                         const ItemIndexConfig& config);

  int num_items() const { return num_items_; }
  int dim() const { return dim_; }
  int nlist() const { return centroids_.rows(); }
  // The resolved default probe width (config.nprobe, or the derived auto
  // value when the config said 0).
  int default_nprobe() const { return default_nprobe_; }

  // The trained quantizer centroids (nlist x dim). These define the
  // assignment; the *scoring* representative of each list is usually
  // ListMeans() over the live table instead (the empirical list centroid).
  const tensor::Matrix& centroids() const { return centroids_; }

  // Per-item cluster assignment (num_items entries in [0, nlist)).
  const std::vector<int>& assignments() const { return assignments_; }

  // Items of list `c`, ascending item id.
  const data::ItemId* ListBegin(int c) const;
  int ListSize(int c) const;

  // Per-list mean of the corresponding rows of `table` (one output row per
  // list, table.cols() wide; empty lists yield zero rows — SelectProbes
  // never picks them). `table` must have num_items rows. Row means are
  // accumulated in double over ascending item ids, so the result is a pure
  // function of (table, lists).
  tensor::Matrix ListMeans(const tensor::Matrix& table) const;

  // The `nprobe` best-scoring non-empty lists given one score per centroid
  // (scores.size() == nlist). Ranking follows the TopKItems total order —
  // score descending, ties by ascending centroid id — so probe selection is
  // deterministic. nprobe <= 0 uses default_nprobe(); values past the
  // non-empty list count are clamped (probing everything = parity mode).
  std::vector<int> SelectProbes(const std::vector<double>& centroid_scores,
                                int nprobe) const;

  // Union of the chosen lists, concatenated in probe order (each list's
  // items ascending). Lists partition the catalog, so the result has no
  // duplicates; probing every non-empty list returns every catalog item.
  std::vector<data::ItemId> Candidates(const std::vector<int>& probes) const;

 private:
  int num_items_ = 0;
  int dim_ = 0;
  int default_nprobe_ = 1;
  tensor::Matrix centroids_;           // nlist x dim quantizer
  std::vector<int> assignments_;       // item -> list
  std::vector<int> list_begin_;        // CSR offsets, nlist + 1
  std::vector<data::ItemId> list_items_;  // CSR payload, ascending per list
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_ITEM_INDEX_H_
