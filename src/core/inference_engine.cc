#include "core/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>

#include "common/string_util.h"
#include "core/topk.h"
#include "tensor/ops.h"

namespace groupsa::core {
namespace {

using tensor::Matrix;

// Every helper below replays, float for float, the op sequence the per-item
// autograd path runs at inference (tape == nullptr). tensor::Gemm computes
// each output row with the same inner-loop order at any batch height and any
// thread count, so feeding it input rows that are byte-identical to the
// per-item rows yields byte-identical output rows — the engine's 0-ULP
// contract reduces to constructing the right input rows (or, for the split
// paths, the right partial sums: seeding an output row with the accumulation
// over the first k weight rows and continuing over the rest reproduces the
// full-width k-ascending chain exactly).

// Same stable formulation as ag::Sigmoid.
float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

// Element-wise identical to nn::Activate on the matching ag op.
void ActivateInPlace(Matrix* x, nn::Activation act) {
  switch (act) {
    case nn::Activation::kNone:
      return;
    case nn::Activation::kRelu:
      for (int i = 0; i < x->size(); ++i)
        x->data()[i] = std::max(0.0f, x->data()[i]);
      return;
    case nn::Activation::kSigmoid:
      for (int i = 0; i < x->size(); ++i)
        x->data()[i] = StableSigmoid(x->data()[i]);
      return;
    case nn::Activation::kTanh:
      for (int i = 0; i < x->size(); ++i)
        x->data()[i] = std::tanh(x->data()[i]);
      return;
  }
  GROUPSA_CHECK(false, "unknown activation");
}

// Resizes without the zero-fill Matrix::Resize performs when the shape
// already matches. Callers overwrite every element they read, so stale
// contents are never observed; skipping the clear keeps reused workspace
// buffers a pure capacity cache.
void EnsureShape(Matrix* m, int rows, int cols) {
  if (m->rows() != rows || m->cols() != cols) m->Resize(rows, cols);
}

// Applies layer-0 bias and activation to `*x` (which holds the layer-0
// pre-activation produced by the split-weight path), then runs the remaining
// layers exactly as nn::Mlp::Forward would, ping-ponging between the two
// buffers. Returns the buffer holding the output.
Matrix* MlpTailInPlace(const nn::Mlp& mlp, Matrix* x, Matrix* tmp) {
  if (mlp.layer(0).bias() != nullptr)
    tensor::AddRowBroadcastInPlace(x, mlp.layer(0).bias()->value());
  for (int i = 0; i < mlp.num_layers(); ++i) {
    if (i > 0) {
      tensor::Gemm(*x, /*transpose_a=*/false, mlp.layer(i).weight()->value(),
                   /*transpose_b=*/false, 1.0f, tmp);
      if (mlp.layer(i).bias() != nullptr)
        tensor::AddRowBroadcastInPlace(tmp, mlp.layer(i).bias()->value());
      std::swap(x, tmp);
    }
    ActivateInPlace(x, i + 1 == mlp.num_layers() ? mlp.output_activation()
                                                 : mlp.hidden_activation());
  }
  return x;
}

// Copies rows [0, split) and [split, rows) of `w` into two dense halves.
// The halves are float-for-float the same weight rows, so running the bottom
// half as a Gemm(accumulate=true) continuation after seeding with the top
// half's partial sums reproduces the full-width accumulation chain exactly.
void SplitRows(const Matrix& w, int split, Matrix* top, Matrix* bot) {
  GROUPSA_CHECK(split > 0 && split < w.rows(),
                "SplitRows: split outside weight rows");
  top->Resize(split, w.cols());
  bot->Resize(w.rows() - split, w.cols());
  for (int r = 0; r < split; ++r) top->SetRow(r, w.RowPtr(r));
  for (int r = split; r < w.rows(); ++r)
    bot->SetRow(r - split, w.RowPtr(r));
}

// Copies item-table rows for a chunk into a reused buffer (GatherRows minus
// the allocation).
void GatherRowsInto(const Matrix& table, const int* ids, int count,
                    Matrix* out) {
  EnsureShape(out, count, table.cols());
  for (int i = 0; i < count; ++i) {
    GROUPSA_CHECK(ids[i] >= 0 && ids[i] < table.rows(),
                  "item id out of range");
    out->SetRow(i, table.RowPtr(ids[i]));
  }
}

// Hidden widths up to this use the fused attention-logit loop (stack
// accumulator); wider configs take the buffered Gemm path below.
constexpr int kMaxFusedHidden = 128;

// Computes one chunk of attention logits without materializing the
// (c*l x hidden) buffer: for each (item, member) pair, seed a local
// accumulator with the cached item-side partial sum, add the member's
// precomputed addend rows (k ascending, exact zeros skipped upstream), then
// run bias / ReLU / the logit dot in place. Each per-element float chain is
// the one the buffered path (and therefore the per-item path) executes, so
// the logits are bit-identical.
//
// Two throughput notes, neither of which changes any chain:
//
//  * Four items run interleaved per member. One item at a time leaves each
//    accumulator lane as a single dependent add chain stalling on add
//    latency; four items give four independent chains and share each addend
//    row (and wout) load. H is the compile-time hidden width so all four
//    accumulator tiles stay in vector registers. The runtime-width overload
//    below runs the same chains one item at a time for other widths.
//
//  * The logit dot adds v*wout[j] unconditionally where the reference kernel
//    (tensor::Gemm's zero-skip) would skip v == 0.0f terms. The two are
//    bit-identical here: v >= 0 after the ReLU, so a skipped term's product
//    is +/-0.0f, and the accumulator can never itself be -0.0f (it starts at
//    +0.0f, and under round-to-nearest a sum is -0.0f only when both
//    operands are), so adding the signed zero leaves every bit unchanged.
//    Dropping the branch removes an unpredictable per-element branch from
//    the innermost loop.
template <int H>
void FusedAttentionLogits(const Matrix& prefix, const int* ids, int c, int l,
                          const Matrix& addends, const std::vector<int>& nz,
                          const std::vector<int>& nz_begin, const float* hb,
                          const float* wout, bool has_ob, float out_b,
                          Matrix* out) {
  constexpr int kItemTile = 4;
  for (int i = 0; i < l; ++i) {
    int t = 0;
    for (; t + kItemTile <= c; t += kItemTile) {
      float acc[kItemTile][H];
      for (int r = 0; r < kItemTile; ++r) {
        const float* p = prefix.RowPtr(ids[t + r]);
        for (int j = 0; j < H; ++j) acc[r][j] = p[j];
      }
      for (int idx = nz_begin[i]; idx < nz_begin[i + 1]; ++idx) {
        const float* row = addends.RowPtr(nz[idx]);
        for (int r = 0; r < kItemTile; ++r)
          for (int j = 0; j < H; ++j) acc[r][j] += row[j];
      }
      float logit[kItemTile] = {0.0f, 0.0f, 0.0f, 0.0f};
      for (int j = 0; j < H; ++j) {
        const float w = wout[j];
        const float bias = hb != nullptr ? hb[j] : 0.0f;
        for (int r = 0; r < kItemTile; ++r) {
          float v = hb != nullptr ? acc[r][j] + bias : acc[r][j];
          v = std::max(0.0f, v);
          logit[r] += v * w;
        }
      }
      for (int r = 0; r < kItemTile; ++r)
        out->RowPtr(t + r)[i] = has_ob ? logit[r] + out_b : logit[r];
    }
    for (; t < c; ++t) {
      const float* p = prefix.RowPtr(ids[t]);
      float acc[H];
      for (int j = 0; j < H; ++j) acc[j] = p[j];
      for (int idx = nz_begin[i]; idx < nz_begin[i + 1]; ++idx) {
        const float* row = addends.RowPtr(nz[idx]);
        for (int j = 0; j < H; ++j) acc[j] += row[j];
      }
      float logit = 0.0f;
      for (int j = 0; j < H; ++j) {
        float v = hb != nullptr ? acc[j] + hb[j] : acc[j];
        v = std::max(0.0f, v);
        logit += v * wout[j];
      }
      out->RowPtr(t)[i] = has_ob ? logit + out_b : logit;
    }
  }
}

void FusedAttentionLogitsRuntime(const Matrix& prefix, const int* ids, int c,
                                 int l, int h, const Matrix& addends,
                                 const std::vector<int>& nz,
                                 const std::vector<int>& nz_begin,
                                 const float* hb, const float* wout,
                                 bool has_ob, float out_b, Matrix* out) {
  float acc[kMaxFusedHidden];
  for (int t = 0; t < c; ++t) {
    const float* p = prefix.RowPtr(ids[t]);
    float* out_row = out->RowPtr(t);
    for (int i = 0; i < l; ++i) {
      for (int j = 0; j < h; ++j) acc[j] = p[j];
      for (int idx = nz_begin[i]; idx < nz_begin[i + 1]; ++idx) {
        const float* row = addends.RowPtr(nz[idx]);
        for (int j = 0; j < h; ++j) acc[j] += row[j];
      }
      float logit = 0.0f;
      for (int j = 0; j < h; ++j) {
        float v = hb != nullptr ? acc[j] + hb[j] : acc[j];
        v = std::max(0.0f, v);
        logit += v * wout[j];  // branchless zero-skip; see note above
      }
      out_row[i] = has_ob ? logit + out_b : logit;
    }
  }
}

// Per-chunk row caps keeping intermediate buffers modest at catalog scale;
// chunking is row-wise and therefore invisible to the scores.
constexpr int kMaxPredictorRows = 4096;
constexpr int kMaxAttentionRows = 16384;

// Per-call scratch buffers. Reused across requests on the same thread so the
// steady serving state performs no large allocations (a fresh multi-MB
// buffer per request costs more in page faults than the math it holds).
// Thread-local because scoring entry points run concurrently.
struct Workspace {
  Matrix embs, latents;           // gathered item rows
  Matrix addends;                 // fused path: (l*d) x h member addend rows
  std::vector<int> nz, nz_begin;  // fused path: nonzero (member, k) indices
  Matrix hidden, cont, logits;    // buffered attention fallback
  Matrix weights, pooled, group_rep;
  Matrix t1, t2;                  // group tower ping-pong
  Matrix r1a, r1b, r2a, r2b;      // user tower ping-pong pairs
};
Workspace& GetWorkspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace

InferenceEngine::InferenceEngine(GroupSaModel* model) : model_(model) {
  GROUPSA_CHECK(model_ != nullptr, "InferenceEngine requires a model");
  for (const nn::ParamEntry& p : model_->Parameters())
    params_.push_back(p.tensor);
  cache_version_ = params_version();
}

uint64_t InferenceEngine::params_version() const {
  uint64_t version = 0;
  for (const ag::TensorPtr& p : params_) version += p->value_version();
  return version;
}

uint64_t InferenceEngine::Revalidate() {
  const uint64_t version = params_version();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    if (cache_version_ == version) return version;
  }
  std::unique_lock<DebugSharedMutex> lock(mu_);
  if (cache_version_ != version) {
    user_cache_.clear();
    group_cache_.clear();
    split_.reset();
    ivf_.reset();
    cache_version_ = version;
  }
  return version;
}

void InferenceEngine::InvalidateAll() {
  std::unique_lock<DebugSharedMutex> lock(mu_);
  user_cache_.clear();
  group_cache_.clear();
  split_.reset();
  ivf_.reset();
}

void InferenceEngine::set_topk_mode(TopKMode mode) {
  std::unique_lock<DebugSharedMutex> lock(mu_);
  topk_mode_ = mode;
}

TopKMode InferenceEngine::topk_mode() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return topk_mode_;
}

void InferenceEngine::set_index_config(const ItemIndexConfig& config) {
  std::unique_lock<DebugSharedMutex> lock(mu_);
  index_config_ = config;
  ivf_.reset();
}

ItemIndexConfig InferenceEngine::index_config() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return index_config_;
}

size_t InferenceEngine::cached_users() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return user_cache_.size();
}

size_t InferenceEngine::cached_groups() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return group_cache_.size();
}

InferenceEngine::UserRep InferenceEngine::BuildUserRep(
    data::UserId user) const {
  GroupSaModel::UserForward fwd = model_->BuildUserForward(
      /*tape=*/nullptr, user, /*training=*/false, /*rng=*/nullptr);
  UserRep rep;
  rep.embedding = fwd.embedding->value();
  if (fwd.latent != nullptr) rep.latent = fwd.latent->value();
  return rep;
}

InferenceEngine::GroupRep InferenceEngine::BuildMembersRep(
    const std::vector<data::UserId>& members) const {
  GroupSaModel::GroupForward fwd = model_->BuildGroupForwardFromMembers(
      /*tape=*/nullptr, members, /*training=*/false, /*rng=*/nullptr);
  GroupRep rep;
  rep.member_reps = fwd.reps.reps->value();
  return rep;
}

InferenceEngine::SplitWeights InferenceEngine::BuildSplitWeights() const {
  SplitWeights sw;
  const Matrix& item_table = model_->item_embedding().table()->value();
  const int d = item_table.cols();
  SplitRows(model_->voting().group_pool().score_hidden().weight()->value(), d,
            &sw.attn_w_top, &sw.attn_w_bot);
  // Item-side attention partial sums for the whole catalog. The kernel runs
  // the same k-ascending, zero-skipping accumulation over row [emb_t^V] that
  // the per-item path runs over the first d terms of [emb_t^V (+) x^U], so
  // each prefix row equals the per-item partial sum bit for bit. Rebuilt at
  // most once per parameter version and shared by every group.
  tensor::Gemm(item_table, /*transpose_a=*/false, sw.attn_w_top,
               /*transpose_b=*/false, 1.0f, &sw.attn_item_prefix);
  SplitRows(model_->user_tower().tower().layer(0).weight()->value(), d,
            &sw.user_w_top, &sw.user_w_bot);
  SplitRows(model_->latent_tower().tower().layer(0).weight()->value(), d,
            &sw.latent_w_top, &sw.latent_w_bot);
  SplitRows(model_->group_tower().tower().layer(0).weight()->value(), d,
            &sw.group_w_top, &sw.group_w_bot);
  return sw;
}

std::shared_ptr<const InferenceEngine::SplitWeights>
InferenceEngine::GetSplitWeights() {
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    if (split_ != nullptr) return split_;
  }
  auto sw = std::make_shared<const SplitWeights>(BuildSplitWeights());
  std::unique_lock<DebugSharedMutex> lock(mu_);
  // Concurrent misses build identical splits; the first insert wins.
  if (split_ == nullptr) split_ = std::move(sw);
  return split_;
}

InferenceEngine::IvfState InferenceEngine::BuildIvfState(
    const ItemIndexConfig& config, const SplitWeights& sw) const {
  IvfState state;
  const Matrix& item_table = model_->item_embedding().table()->value();
  state.index = ItemIndex::Build(item_table, config);
  if (state.index.nlist() == 0) return state;
  // Scoring representatives: the empirical mean of each list's rows in the
  // LIVE tables (not the trained quantizer centroids — those only define the
  // assignment). The coarse stage then scores these pseudo-items through the
  // exact towers, so probe selection follows the model's own scoring
  // surface, attention and all, rather than raw embedding distance.
  state.centroid_table = state.index.ListMeans(item_table);
  tensor::Gemm(state.centroid_table, /*transpose_a=*/false, sw.attn_w_top,
               /*transpose_b=*/false, 1.0f, &state.centroid_prefix);
  const Matrix* latent_table = ModelLatentTable();
  if (latent_table != nullptr)
    state.centroid_latents = state.index.ListMeans(*latent_table);
  return state;
}

std::shared_ptr<const InferenceEngine::IvfState>
InferenceEngine::GetIvfState() {
  Revalidate();
  ItemIndexConfig config;
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    if (ivf_ != nullptr) return ivf_;
    config = index_config_;
  }
  auto sw = GetSplitWeights();
  auto state =
      std::make_shared<const IvfState>(BuildIvfState(config, *sw));
  std::unique_lock<DebugSharedMutex> lock(mu_);
  // Concurrent misses build identical states; the first insert wins.
  if (ivf_ == nullptr) ivf_ = std::move(state);
  return ivf_;
}

std::shared_ptr<const ItemIndex> InferenceEngine::GetOrBuildIndex() {
  std::shared_ptr<const IvfState> state = GetIvfState();
  return std::shared_ptr<const ItemIndex>(state, &state->index);
}

std::vector<double> InferenceEngine::ScoreCentroidsForUser(
    data::UserId user) {
  const UserRep rep = GetUserRep(user);
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  return ScoreBatchUser(
      rep, AllItems(ivf->index.nlist()), *sw, ivf->centroid_table,
      ivf->centroid_latents.empty() ? nullptr : &ivf->centroid_latents);
}

std::vector<double> InferenceEngine::ScoreCentroidsForGroup(
    data::GroupId group) {
  const GroupRep rep = GetGroupRep(group);
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  return ScoreBatchGroup(rep, AllItems(ivf->index.nlist()), *sw,
                         ivf->centroid_table, ivf->centroid_prefix);
}

std::vector<double> InferenceEngine::ScoreCentroidsForMembers(
    const std::vector<data::UserId>& members) {
  Revalidate();
  const GroupRep rep = BuildMembersRep(members);
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  return ScoreBatchGroup(rep, AllItems(ivf->index.nlist()), *sw,
                         ivf->centroid_table, ivf->centroid_prefix);
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::IvfTopKUser(
    const UserRep& rep, int k,
    const std::function<bool(data::ItemId)>& skip) {
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  const ItemIndex& index = ivf->index;
  if (index.nlist() == 0) return {};
  const std::vector<double> coarse = ScoreBatchUser(
      rep, AllItems(index.nlist()), *sw, ivf->centroid_table,
      ivf->centroid_latents.empty() ? nullptr : &ivf->centroid_latents);
  const std::vector<data::ItemId> candidates =
      index.Candidates(index.SelectProbes(coarse, /*nprobe=*/0));
  const std::vector<double> scores = ScoreBatchUser(rep, candidates, *sw);
  return TopKItems(candidates, scores, k, skip);
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::IvfTopKGroup(
    const GroupRep& rep, int k,
    const std::function<bool(data::ItemId)>& skip) {
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  const ItemIndex& index = ivf->index;
  if (index.nlist() == 0) return {};
  const std::vector<double> coarse =
      ScoreBatchGroup(rep, AllItems(index.nlist()), *sw, ivf->centroid_table,
                      ivf->centroid_prefix);
  const std::vector<data::ItemId> candidates =
      index.Candidates(index.SelectProbes(coarse, /*nprobe=*/0));
  const std::vector<double> scores = ScoreBatchGroup(rep, candidates, *sw);
  return TopKItems(candidates, scores, k, skip);
}

InferenceEngine::UserRep InferenceEngine::GetUserRep(data::UserId user) {
  Revalidate();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    auto it = user_cache_.find(user);
    if (it != user_cache_.end()) return it->second;
  }
  UserRep rep = BuildUserRep(user);
  {
    std::unique_lock<DebugSharedMutex> lock(mu_);
    // Concurrent misses build identical reps (the forward is deterministic
    // and pure); the first insert wins and the rest are dropped.
    user_cache_.emplace(user, rep);
  }
  return rep;
}

InferenceEngine::GroupRep InferenceEngine::GetGroupRep(data::GroupId group) {
  Revalidate();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    auto it = group_cache_.find(group);
    if (it != group_cache_.end()) return it->second;
  }
  GroupRep rep =
      BuildMembersRep(model_->model_data().groups->Members(group));
  {
    std::unique_lock<DebugSharedMutex> lock(mu_);
    group_cache_.emplace(group, rep);
  }
  return rep;
}

const tensor::Matrix* InferenceEngine::ModelLatentTable() const {
  const UserModeling* um = model_->user_modeling();
  if (um == nullptr || !um->has_item_space()) return nullptr;
  return &um->item_space()->table()->value();
}

std::vector<double> InferenceEngine::ScoreBatchUser(
    const UserRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw) const {
  return ScoreBatchUser(rep, items, sw,
                        model_->item_embedding().table()->value(),
                        ModelLatentTable());
}

std::vector<double> InferenceEngine::ScoreBatchUser(
    const UserRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw, const tensor::Matrix& table,
    const tensor::Matrix* latent_table) const {
  std::vector<double> scores;
  scores.reserve(items.size());
  if (items.empty()) return scores;
  Workspace& ws = GetWorkspace();

  const Matrix& item_table = table;
  const float blend = model_->config().effective_user_blend();
  // Mirrors the r1-only early-out of GroupSaModel::ScoreUserItem.
  const bool blended = !rep.latent.empty() && blend > 0.0f;

  // Layer-0 user-side partial sums: the left half of the concat row
  // [emb_j^U (+) emb_t^V] is the same for every candidate, so its partial
  // sum is computed once and seeds every batch row; the item-side weight
  // half then continues the same k-ascending accumulation the per-item
  // full-width kernel runs. Bias and activation land in MlpTailInPlace after
  // the full continuation, matching the MatMul -> AddBias -> activation
  // order of the per-item path.
  Matrix prefix1;
  tensor::Gemm(rep.embedding, /*transpose_a=*/false, sw.user_w_top,
               /*transpose_b=*/false, 1.0f, &prefix1);
  Matrix prefix2;
  if (blended)
    tensor::Gemm(rep.latent, /*transpose_a=*/false, sw.latent_w_top,
                 /*transpose_b=*/false, 1.0f, &prefix2);

  const int h = prefix1.cols();
  const int n = static_cast<int>(items.size());
  for (int begin = 0; begin < n; begin += kMaxPredictorRows) {
    const int c = std::min(kMaxPredictorRows, n - begin);
    const int* ids = items.data() + begin;
    GatherRowsInto(item_table, ids, c, &ws.embs);  // c x d

    EnsureShape(&ws.r1a, c, h);
    for (int t = 0; t < c; ++t)
      std::memcpy(ws.r1a.RowPtr(t), prefix1.RowPtr(0), sizeof(float) * h);
    tensor::Gemm(ws.embs, /*transpose_a=*/false, sw.user_w_bot,
                 /*transpose_b=*/false, 1.0f, &ws.r1a, /*accumulate=*/true);
    Matrix* r1 = MlpTailInPlace(model_->user_tower().tower(), &ws.r1a,
                                &ws.r1b);

    if (blended) {
      // r^R2 over [h_j (+) x_t^V] (x^V falls back to emb^V for Group-I).
      const Matrix* latents = &ws.embs;
      if (latent_table != nullptr) {
        GatherRowsInto(*latent_table, ids, c, &ws.latents);
        latents = &ws.latents;
      }
      EnsureShape(&ws.r2a, c, h);
      for (int t = 0; t < c; ++t)
        std::memcpy(ws.r2a.RowPtr(t), prefix2.RowPtr(0), sizeof(float) * h);
      tensor::Gemm(*latents, /*transpose_a=*/false, sw.latent_w_bot,
                   /*transpose_b=*/false, 1.0f, &ws.r2a, /*accumulate=*/true);
      Matrix* r2 = MlpTailInPlace(model_->latent_tower().tower(), &ws.r2a,
                                  &ws.r2b);
      // Eq. 23 blend via the same in-place ops as ag::Scale / ag::Add.
      r1->ScaleInPlace(1.0f - blend);
      r2->ScaleInPlace(blend);
      r1->AddInPlace(*r2);
    }
    for (int t = 0; t < c; ++t)
      scores.push_back(static_cast<double>(r1->At(t, 0)));
  }
  return scores;
}

std::vector<double> InferenceEngine::ScoreBatchGroup(
    const GroupRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw) const {
  return ScoreBatchGroup(rep, items, sw,
                         model_->item_embedding().table()->value(),
                         sw.attn_item_prefix);
}

std::vector<double> InferenceEngine::ScoreBatchGroup(
    const GroupRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw, const tensor::Matrix& table,
    const tensor::Matrix& attn_prefix) const {
  std::vector<double> scores;
  scores.reserve(items.size());
  if (items.empty()) return scores;
  Workspace& ws = GetWorkspace();

  const Matrix& item_table = table;
  const Matrix& reps = rep.member_reps;  // l x d
  const int l = reps.rows();
  const int d = reps.cols();
  const int h = attn_prefix.cols();
  const nn::AttentionPool& pool = model_->voting().group_pool();
  const nn::Linear& proj = model_->voting().group_proj();
  const bool fused = h <= kMaxFusedHidden;

  if (fused) {
    // Precompute, per member, the addend rows rep_i[k] * W_bot[k][:] for the
    // nonzero rep_i[k] (k ascending — the same terms, in the same order,
    // with the same zero-skip the Gemm kernel applies to the member half of
    // the per-item concat row).
    EnsureShape(&ws.addends, l * d, h);
    ws.nz.clear();
    ws.nz_begin.assign(static_cast<size_t>(l) + 1, 0);
    for (int i = 0; i < l; ++i) {
      for (int k = 0; k < d; ++k) {
        const float r = reps.At(i, k);
        if (r == 0.0f) continue;
        float* dst = ws.addends.RowPtr(i * d + k);
        const float* wrow = sw.attn_w_bot.RowPtr(k);
        for (int j = 0; j < h; ++j) dst[j] = r * wrow[j];
        ws.nz.push_back(i * d + k);
      }
      ws.nz_begin[i + 1] = static_cast<int>(ws.nz.size());
    }
  }

  const bool has_hb = pool.score_hidden().bias() != nullptr;
  const float* hb = has_hb ? pool.score_hidden().bias()->value().data()
                           : nullptr;
  const float* wout = pool.score_out().weight()->value().data();  // h x 1
  const bool has_ob = pool.score_out().bias() != nullptr;
  const float out_b = has_ob ? pool.score_out().bias()->value().At(0, 0)
                             : 0.0f;

  const int n = static_cast<int>(items.size());
  const int max_items = std::max(1, kMaxAttentionRows / l);
  // Tracks the chunk height ws.cont currently holds; the tiled member reps
  // are call-local state, so the buffer is rebuilt at least once per call.
  int cont_rows = -1;
  for (int begin = 0; begin < n; begin += max_items) {
    const int c = std::min(max_items, n - begin);
    const int* ids = items.data() + begin;
    GatherRowsInto(item_table, ids, c, &ws.embs);  // c x d

    // Eq. 8-10: attention logits for every (item, member) pair, one softmax
    // row per item. The per-item path feeds row [emb_t^V (+) x_{t,i}^U]
    // through score_hidden / ReLU / score_out; both paths below run the
    // identical per-element chains — seed with the cached item-side partial
    // sum (equal to the per-item k < d partial, see BuildSplitWeights),
    // continue with the member-side terms k ascending, then bias, ReLU and
    // the zero-skipping j-ascending logit dot, with biases applied only
    // after each full accumulation as in nn::Linear.
    EnsureShape(&ws.weights, c, l);
    if (fused) {
      switch (h) {
        case 32:
          FusedAttentionLogits<32>(attn_prefix, ids, c, l, ws.addends,
                                   ws.nz, ws.nz_begin, hb, wout, has_ob,
                                   out_b, &ws.weights);
          break;
        case 64:
          FusedAttentionLogits<64>(attn_prefix, ids, c, l, ws.addends,
                                   ws.nz, ws.nz_begin, hb, wout, has_ob,
                                   out_b, &ws.weights);
          break;
        default:
          FusedAttentionLogitsRuntime(attn_prefix, ids, c, l, h,
                                      ws.addends, ws.nz, ws.nz_begin, hb,
                                      wout, has_ob, out_b, &ws.weights);
      }
    } else {
      // Buffered fallback for wide attention layers: seed rows with the item
      // prefix, continue via Gemm(accumulate) over the tiled member reps.
      EnsureShape(&ws.hidden, c * l, h);
      for (int t = 0; t < c; ++t) {
        const float* p = attn_prefix.RowPtr(ids[t]);
        for (int i = 0; i < l; ++i)
          std::memcpy(ws.hidden.RowPtr(t * l + i), p, sizeof(float) * h);
      }
      if (cont_rows != c * l) {
        EnsureShape(&ws.cont, c * l, d);
        for (int t = 0; t < c; ++t)
          for (int i = 0; i < l; ++i)
            ws.cont.SetRow(t * l + i, reps.RowPtr(i));
        cont_rows = c * l;
      }
      tensor::Gemm(ws.cont, /*transpose_a=*/false, sw.attn_w_bot,
                   /*transpose_b=*/false, 1.0f, &ws.hidden,
                   /*accumulate=*/true);
      if (has_hb)
        tensor::AddRowBroadcastInPlace(&ws.hidden,
                                       pool.score_hidden().bias()->value());
      ActivateInPlace(&ws.hidden, nn::Activation::kRelu);
      tensor::Gemm(ws.hidden, /*transpose_a=*/false,
                   pool.score_out().weight()->value(), /*transpose_b=*/false,
                   1.0f, &ws.logits);  // c*l x 1
      if (has_ob)
        tensor::AddRowBroadcastInPlace(&ws.logits,
                                       pool.score_out().bias()->value());
      // The (c*l) x 1 logit column is, row-major, already the c x l logit
      // matrix (the per-item path's Transpose is a pure relayout).
      std::memcpy(ws.weights.data(), ws.logits.data(),
                  sizeof(float) * static_cast<size_t>(c) * l);
    }
    tensor::SoftmaxRowsInPlace(&ws.weights);  // Eq. 10, one row per item

    // Eq. 7-8: pooled_t = gamma_t . X^U, then the outer projection + ReLU.
    tensor::Gemm(ws.weights, /*transpose_a=*/false, reps,
                 /*transpose_b=*/false, 1.0f, &ws.pooled);  // c x d
    tensor::Gemm(ws.pooled, /*transpose_a=*/false, proj.weight()->value(),
                 /*transpose_b=*/false, 1.0f, &ws.group_rep);
    if (proj.bias() != nullptr)
      tensor::AddRowBroadcastInPlace(&ws.group_rep, proj.bias()->value());
    ActivateInPlace(&ws.group_rep, nn::Activation::kRelu);

    // Eq. 20 tower over [x_t^G (+) emb_t^V], via the same split-weight
    // seed/continue rewrite (both halves are full c-row matrices here, so
    // the seed is itself a Gemm and no row tiling is needed).
    tensor::Gemm(ws.group_rep, /*transpose_a=*/false, sw.group_w_top,
                 /*transpose_b=*/false, 1.0f, &ws.t1);
    tensor::Gemm(ws.embs, /*transpose_a=*/false, sw.group_w_bot,
                 /*transpose_b=*/false, 1.0f, &ws.t1, /*accumulate=*/true);
    const Matrix* out =
        MlpTailInPlace(model_->group_tower().tower(), &ws.t1, &ws.t2);
    for (int t = 0; t < c; ++t)
      scores.push_back(static_cast<double>(out->At(t, 0)));
  }
  return scores;
}

std::vector<double> InferenceEngine::ScoreItemsForUser(
    data::UserId user, const std::vector<data::ItemId>& items) {
  const UserRep rep = GetUserRep(user);
  return ScoreBatchUser(rep, items, *GetSplitWeights());
}

std::vector<double> InferenceEngine::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items) {
  const GroupRep rep = GetGroupRep(group);
  return ScoreBatchGroup(rep, items, *GetSplitWeights());
}

std::vector<double> InferenceEngine::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) {
  // Ad-hoc (cold) member lists have no stable key; build the reps per
  // request and batch only the per-item work.
  Revalidate();
  const GroupRep rep = BuildMembersRep(members);
  return ScoreBatchGroup(rep, items, *GetSplitWeights());
}

std::vector<std::vector<double>> InferenceEngine::MemberItemScores(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) {
  std::vector<std::vector<double>> scores;
  scores.reserve(members.size());
  for (data::UserId member : members)
    scores.push_back(ScoreItemsForUser(member, items));
  return scores;
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::RecommendForUser(
    data::UserId user, int k, const data::InteractionMatrix* exclude) {
  const auto skip = [&](data::ItemId item) {
    return exclude != nullptr && exclude->Has(user, item);
  };
  if (topk_mode() == TopKMode::kIvf)
    return IvfTopKUser(GetUserRep(user), k, skip);
  const std::vector<double> scores =
      ScoreItemsForUser(user, AllItems(model_->num_items()));
  return TopKItems(scores, k, skip);
}

std::vector<std::pair<data::ItemId, double>>
InferenceEngine::RecommendForGroup(data::GroupId group, int k,
                                   const data::InteractionMatrix* exclude) {
  const auto skip = [&](data::ItemId item) {
    return exclude != nullptr && exclude->Has(group, item);
  };
  if (topk_mode() == TopKMode::kIvf)
    return IvfTopKGroup(GetGroupRep(group), k, skip);
  const std::vector<double> scores =
      ScoreItemsForGroup(group, AllItems(model_->num_items()));
  return TopKItems(scores, k, skip);
}

std::vector<std::pair<data::ItemId, double>>
InferenceEngine::RecommendForMembers(const std::vector<data::UserId>& members,
                                     int k,
                                     const data::InteractionMatrix* exclude) {
  const auto skip = [&](data::ItemId item) {
    if (exclude == nullptr) return false;
    for (data::UserId member : members)
      if (exclude->Has(member, item)) return true;
    return false;
  };
  if (topk_mode() == TopKMode::kIvf) {
    Revalidate();
    return IvfTopKGroup(BuildMembersRep(members), k, skip);
  }
  const std::vector<double> scores =
      ScoreItemsForMembers(members, AllItems(model_->num_items()));
  return TopKItems(scores, k, skip);
}

// ---------------- Validated (Status) serving entry points ----------------

Status InferenceEngine::ValidateUser(data::UserId user) const {
  if (user < 0 || user >= model_->num_users()) {
    return Status::Error(StrFormat("user id %d out of range [0, %d)", user,
                                   model_->num_users()));
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateGroup(data::GroupId group) const {
  const data::GroupTable* groups = model_->model_data().groups;
  if (groups == nullptr)
    return Status::Error("model has no group table");
  if (group < 0 || group >= groups->num_groups()) {
    return Status::Error(StrFormat("group id %d out of range [0, %d)", group,
                                   groups->num_groups()));
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateMembers(
    const std::vector<data::UserId>& members) const {
  if (members.empty()) return Status::Error("empty member list");
  for (data::UserId member : members) {
    GROUPSA_RETURN_IF_ERROR_CTX(ValidateUser(member), "member");
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateItems(
    const std::vector<data::ItemId>& items) const {
  for (data::ItemId item : items) {
    if (item < 0 || item >= model_->num_items()) {
      return Status::Error(StrFormat("item id %d out of range [0, %d)", item,
                                     model_->num_items()));
    }
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateK(int k) const {
  if (k < 1) return Status::Error(StrFormat("k must be positive, got %d", k));
  return Status::Ok();
}

Status InferenceEngine::ScoreItemsForUser(data::UserId user,
                                          const std::vector<data::ItemId>& items,
                                          std::vector<double>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateUser(user));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = ScoreItemsForUser(user, items);
  return Status::Ok();
}

Status InferenceEngine::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items,
    std::vector<double>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateGroup(group));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = ScoreItemsForGroup(group, items);
  return Status::Ok();
}

Status InferenceEngine::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items, std::vector<double>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = ScoreItemsForMembers(members, items);
  return Status::Ok();
}

Status InferenceEngine::MemberItemScores(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items,
    std::vector<std::vector<double>>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = MemberItemScores(members, items);
  return Status::Ok();
}

Status InferenceEngine::RecommendForUser(
    data::UserId user, int k, const data::InteractionMatrix* exclude,
    std::vector<std::pair<data::ItemId, double>>* out) {
  GROUPSA_RETURN_IF_ERROR(ValidateUser(user));
  GROUPSA_RETURN_IF_ERROR(ValidateK(k));
  *out = RecommendForUser(user, k, exclude);
  return Status::Ok();
}

Status InferenceEngine::RecommendForGroup(
    data::GroupId group, int k, const data::InteractionMatrix* exclude,
    std::vector<std::pair<data::ItemId, double>>* out) {
  GROUPSA_RETURN_IF_ERROR(ValidateGroup(group));
  GROUPSA_RETURN_IF_ERROR(ValidateK(k));
  *out = RecommendForGroup(group, k, exclude);
  return Status::Ok();
}

Status InferenceEngine::RecommendForMembers(
    const std::vector<data::UserId>& members, int k,
    const data::InteractionMatrix* exclude,
    std::vector<std::pair<data::ItemId, double>>* out) {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  GROUPSA_RETURN_IF_ERROR(ValidateK(k));
  *out = RecommendForMembers(members, k, exclude);
  return Status::Ok();
}

}  // namespace groupsa::core
