#include "core/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>

#include "common/string_util.h"
#include "core/topk.h"
#include "tensor/backend.h"
#include "tensor/ops.h"

namespace groupsa::core {
namespace {

using tensor::Matrix;

// Every helper below replays, float for float, the op sequence the per-item
// autograd path runs at inference (tape == nullptr). tensor::Gemm computes
// each output row with the same inner-loop order at any batch height and any
// thread count, so feeding it input rows that are byte-identical to the
// per-item rows yields byte-identical output rows — the engine's 0-ULP
// contract reduces to constructing the right input rows (or, for the split
// paths, the right partial sums: seeding an output row with the accumulation
// over the first k weight rows and continuing over the rest reproduces the
// full-width k-ascending chain exactly).

// Same stable formulation as ag::Sigmoid.
float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

// Element-wise identical to nn::Activate on the matching ag op.
void ActivateInPlace(Matrix* x, nn::Activation act) {
  switch (act) {
    case nn::Activation::kNone:
      return;
    case nn::Activation::kRelu:
      for (int i = 0; i < x->size(); ++i)
        x->data()[i] = std::max(0.0f, x->data()[i]);
      return;
    case nn::Activation::kSigmoid:
      for (int i = 0; i < x->size(); ++i)
        x->data()[i] = StableSigmoid(x->data()[i]);
      return;
    case nn::Activation::kTanh:
      for (int i = 0; i < x->size(); ++i)
        x->data()[i] = std::tanh(x->data()[i]);
      return;
  }
  GROUPSA_CHECK(false, "unknown activation");
}

// Derivative of nn::Activation at a pre-activation value — the frozen-mask
// linearization factor used by TowerInputGradient.
float ActDeriv(nn::Activation act, float pre) {
  switch (act) {
    case nn::Activation::kNone:
      return 1.0f;
    case nn::Activation::kRelu:
      return pre > 0.0f ? 1.0f : 0.0f;
    case nn::Activation::kSigmoid: {
      const float s = StableSigmoid(pre);
      return s * (1.0f - s);
    }
    case nn::Activation::kTanh: {
      const float t = std::tanh(pre);
      return 1.0f - t * t;
    }
  }
  GROUPSA_CHECK(false, "unknown activation");
  return 0.0f;
}

// Column means as a 1 x cols row — the reference pseudo-item the int8 scan
// linearizes the towers at.
Matrix ColMeans(const Matrix& m) {
  Matrix out;
  tensor::SumRowsInto(m, &out);
  if (m.rows() > 0) out.ScaleInPlace(1.0f / static_cast<float>(m.rows()));
  return out;
}

// Resizes without the zero-fill Matrix::Resize performs when the shape
// already matches. Callers overwrite every element they read, so stale
// contents are never observed; skipping the clear keeps reused workspace
// buffers a pure capacity cache.
void EnsureShape(Matrix* m, int rows, int cols) {
  if (m->rows() != rows || m->cols() != cols) m->Resize(rows, cols);
}

// Applies layer-0 bias and activation to `*x` (which holds the layer-0
// pre-activation produced by the split-weight path), then runs the remaining
// layers exactly as nn::Mlp::Forward would, ping-ponging between the two
// buffers. Returns the buffer holding the output.
Matrix* MlpTailInPlace(const nn::Mlp& mlp, Matrix* x, Matrix* tmp) {
  if (mlp.layer(0).bias() != nullptr)
    tensor::AddRowBroadcastInPlace(x, mlp.layer(0).bias()->value());
  for (int i = 0; i < mlp.num_layers(); ++i) {
    if (i > 0) {
      tensor::Gemm(*x, /*transpose_a=*/false, mlp.layer(i).weight()->value(),
                   /*transpose_b=*/false, 1.0f, tmp);
      if (mlp.layer(i).bias() != nullptr)
        tensor::AddRowBroadcastInPlace(tmp, mlp.layer(i).bias()->value());
      std::swap(x, tmp);
    }
    ActivateInPlace(x, i + 1 == mlp.num_layers() ? mlp.output_activation()
                                                 : mlp.hidden_activation());
  }
  return x;
}

// Copies rows [0, split) and [split, rows) of `w` into two dense halves.
// The halves are float-for-float the same weight rows, so running the bottom
// half as a Gemm(accumulate=true) continuation after seeding with the top
// half's partial sums reproduces the full-width accumulation chain exactly.
void SplitRows(const Matrix& w, int split, Matrix* top, Matrix* bot) {
  GROUPSA_CHECK(split > 0 && split < w.rows(),
                "SplitRows: split outside weight rows");
  top->Resize(split, w.cols());
  bot->Resize(w.rows() - split, w.cols());
  for (int r = 0; r < split; ++r) top->SetRow(r, w.RowPtr(r));
  for (int r = split; r < w.rows(); ++r)
    bot->SetRow(r - split, w.RowPtr(r));
}

// Copies item-table rows for a chunk into a reused buffer (GatherRows minus
// the allocation).
void GatherRowsInto(const Matrix& table, const int* ids, int count,
                    Matrix* out) {
  EnsureShape(out, count, table.cols());
  for (int i = 0; i < count; ++i) {
    GROUPSA_CHECK(ids[i] >= 0 && ids[i] < table.rows(),
                  "item id out of range");
    out->SetRow(i, table.RowPtr(ids[i]));
  }
}

// The fused attention-logit kernels live in tensor/backends/kernels.inc and
// are compiled once per ISA; tensor::ActiveBackend().attention_logits picks
// the variant for this machine. Hidden widths up to tensor::kMaxFusedHidden
// take that fused path; wider configs take the buffered Gemm path below.

// Per-chunk row caps keeping intermediate buffers modest at catalog scale;
// chunking is row-wise and therefore invisible to the scores.
constexpr int kMaxPredictorRows = 4096;
constexpr int kMaxAttentionRows = 16384;

// Per-call scratch buffers. Reused across requests on the same thread so the
// steady serving state performs no large allocations (a fresh multi-MB
// buffer per request costs more in page faults than the math it holds).
// Thread-local because scoring entry points run concurrently.
struct Workspace {
  Matrix embs, latents;           // gathered item rows
  Matrix addends;                 // fused path: (l*d) x h member addend rows
  std::vector<int> nz, nz_begin;  // fused path: nonzero (member, k) indices
  Matrix hidden, cont, logits;    // buffered attention fallback
  Matrix weights, pooled, group_rep;
  Matrix t1, t2;                  // group tower ping-pong
  Matrix r1a, r1b, r2a, r2b;      // user tower ping-pong pairs
  Matrix x0;                      // int8 path: linearization point
  std::vector<int8_t> q1, q2;     // int8 path: quantized scan directions
  std::vector<int32_t> i8dots;    // int8 path: raw scan accumulators
};
Workspace& GetWorkspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace

InferenceEngine::InferenceEngine(GroupSaModel* model) : model_(model) {
  GROUPSA_CHECK(model_ != nullptr, "InferenceEngine requires a model");
  for (const nn::ParamEntry& p : model_->Parameters())
    params_.push_back(p.tensor);
  cache_version_ = params_version();
}

uint64_t InferenceEngine::params_version() const {
  uint64_t version = 0;
  for (const ag::TensorPtr& p : params_) version += p->value_version();
  return version;
}

uint64_t InferenceEngine::Revalidate() {
  const uint64_t version = params_version();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    if (cache_version_ == version) return version;
  }
  std::unique_lock<DebugSharedMutex> lock(mu_);
  if (cache_version_ != version) {
    user_cache_.clear();
    group_cache_.clear();
    user_q_cache_.clear();
    group_q_cache_.clear();
    split_.reset();
    ivf_.reset();
    quant_.reset();
    cache_version_ = version;
  }
  return version;
}

void InferenceEngine::InvalidateAll() {
  std::unique_lock<DebugSharedMutex> lock(mu_);
  user_cache_.clear();
  group_cache_.clear();
  user_q_cache_.clear();
  group_q_cache_.clear();
  split_.reset();
  ivf_.reset();
  quant_.reset();
}

void InferenceEngine::set_topk_mode(TopKMode mode) {
  std::unique_lock<DebugSharedMutex> lock(mu_);
  topk_mode_ = mode;
}

TopKMode InferenceEngine::topk_mode() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return topk_mode_;
}

void InferenceEngine::set_index_config(const ItemIndexConfig& config) {
  std::unique_lock<DebugSharedMutex> lock(mu_);
  index_config_ = config;
  ivf_.reset();
}

ItemIndexConfig InferenceEngine::index_config() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return index_config_;
}

size_t InferenceEngine::cached_users() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return user_cache_.size();
}

size_t InferenceEngine::cached_groups() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return group_cache_.size();
}

size_t InferenceEngine::cached_quant_users() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return user_q_cache_.size();
}

size_t InferenceEngine::cached_quant_groups() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return group_q_cache_.size();
}

size_t InferenceEngine::QuantUserCacheBytes() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  size_t total = 0;
  for (const auto& entry : user_q_cache_) {
    total += entry.second.embedding.MemoryBytes() +
             entry.second.latent.MemoryBytes();
  }
  return total;
}

size_t InferenceEngine::Fp32UserCacheBytes() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  size_t total = 0;
  for (const auto& entry : user_cache_) {
    total += sizeof(float) *
             (static_cast<size_t>(entry.second.embedding.size()) +
              static_cast<size_t>(entry.second.latent.size()));
  }
  // The quantized cache's reps at 4 bytes per element: what the same users
  // would cost had they been cached in FP32 (int8 mode leaves user_cache_
  // cold, so this term is the denominator-free half of the memory ratio).
  for (const auto& entry : user_q_cache_) {
    total += sizeof(float) * (entry.second.embedding.values.size() +
                              entry.second.latent.values.size());
  }
  return total;
}

void InferenceEngine::set_score_mode(ScoreMode mode) {
  std::unique_lock<DebugSharedMutex> lock(mu_);
  score_mode_ = mode;
}

ScoreMode InferenceEngine::score_mode() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return score_mode_;
}

void InferenceEngine::set_int8_config(const Int8Config& config) {
  GROUPSA_CHECK(config.rerank_k >= 1, "int8 rerank_k must be positive");
  std::unique_lock<DebugSharedMutex> lock(mu_);
  int8_config_ = config;
}

Int8Config InferenceEngine::int8_config() const {
  std::shared_lock<DebugSharedMutex> lock(mu_);
  return int8_config_;
}

InferenceEngine::UserRep InferenceEngine::BuildUserRep(
    data::UserId user) const {
  GroupSaModel::UserForward fwd = model_->BuildUserForward(
      /*tape=*/nullptr, user, /*training=*/false, /*rng=*/nullptr);
  UserRep rep;
  rep.embedding = fwd.embedding->value();
  if (fwd.latent != nullptr) rep.latent = fwd.latent->value();
  return rep;
}

InferenceEngine::GroupRep InferenceEngine::BuildMembersRep(
    const std::vector<data::UserId>& members) const {
  GroupSaModel::GroupForward fwd = model_->BuildGroupForwardFromMembers(
      /*tape=*/nullptr, members, /*training=*/false, /*rng=*/nullptr);
  GroupRep rep;
  rep.member_reps = fwd.reps.reps->value();
  return rep;
}

InferenceEngine::SplitWeights InferenceEngine::BuildSplitWeights() const {
  SplitWeights sw;
  const Matrix& item_table = model_->item_embedding().table()->value();
  const int d = item_table.cols();
  SplitRows(model_->voting().group_pool().score_hidden().weight()->value(), d,
            &sw.attn_w_top, &sw.attn_w_bot);
  // Item-side attention partial sums for the whole catalog. The kernel runs
  // the same k-ascending, zero-skipping accumulation over row [emb_t^V] that
  // the per-item path runs over the first d terms of [emb_t^V (+) x^U], so
  // each prefix row equals the per-item partial sum bit for bit. Rebuilt at
  // most once per parameter version and shared by every group.
  tensor::Gemm(item_table, /*transpose_a=*/false, sw.attn_w_top,
               /*transpose_b=*/false, 1.0f, &sw.attn_item_prefix);
  SplitRows(model_->user_tower().tower().layer(0).weight()->value(), d,
            &sw.user_w_top, &sw.user_w_bot);
  SplitRows(model_->latent_tower().tower().layer(0).weight()->value(), d,
            &sw.latent_w_top, &sw.latent_w_bot);
  SplitRows(model_->group_tower().tower().layer(0).weight()->value(), d,
            &sw.group_w_top, &sw.group_w_bot);
  return sw;
}

std::shared_ptr<const InferenceEngine::SplitWeights>
InferenceEngine::GetSplitWeights() {
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    if (split_ != nullptr) return split_;
  }
  auto sw = std::make_shared<const SplitWeights>(BuildSplitWeights());
  std::unique_lock<DebugSharedMutex> lock(mu_);
  // Concurrent misses build identical splits; the first insert wins.
  if (split_ == nullptr) split_ = std::move(sw);
  return split_;
}

InferenceEngine::IvfState InferenceEngine::BuildIvfState(
    const ItemIndexConfig& config, const SplitWeights& sw) const {
  IvfState state;
  const Matrix& item_table = model_->item_embedding().table()->value();
  state.index = ItemIndex::Build(item_table, config);
  if (state.index.nlist() == 0) return state;
  // Scoring representatives: the empirical mean of each list's rows in the
  // LIVE tables (not the trained quantizer centroids — those only define the
  // assignment). The coarse stage then scores these pseudo-items through the
  // exact towers, so probe selection follows the model's own scoring
  // surface, attention and all, rather than raw embedding distance.
  state.centroid_table = state.index.ListMeans(item_table);
  tensor::Gemm(state.centroid_table, /*transpose_a=*/false, sw.attn_w_top,
               /*transpose_b=*/false, 1.0f, &state.centroid_prefix);
  const Matrix* latent_table = ModelLatentTable();
  if (latent_table != nullptr)
    state.centroid_latents = state.index.ListMeans(*latent_table);
  return state;
}

std::shared_ptr<const InferenceEngine::IvfState>
InferenceEngine::GetIvfState() {
  Revalidate();
  ItemIndexConfig config;
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    if (ivf_ != nullptr) return ivf_;
    config = index_config_;
  }
  auto sw = GetSplitWeights();
  auto state =
      std::make_shared<const IvfState>(BuildIvfState(config, *sw));
  std::unique_lock<DebugSharedMutex> lock(mu_);
  // Concurrent misses build identical states; the first insert wins.
  if (ivf_ == nullptr) ivf_ = std::move(state);
  return ivf_;
}

std::shared_ptr<const ItemIndex> InferenceEngine::GetOrBuildIndex() {
  std::shared_ptr<const IvfState> state = GetIvfState();
  return std::shared_ptr<const ItemIndex>(state, &state->index);
}

std::vector<double> InferenceEngine::ScoreCentroidsForUser(
    data::UserId user) {
  const UserRep rep = GetUserRep(user);
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  return ScoreBatchUser(
      rep, AllItems(ivf->index.nlist()), *sw, ivf->centroid_table,
      ivf->centroid_latents.empty() ? nullptr : &ivf->centroid_latents);
}

std::vector<double> InferenceEngine::ScoreCentroidsForGroup(
    data::GroupId group) {
  const GroupRep rep = GetGroupRep(group);
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  return ScoreBatchGroup(rep, AllItems(ivf->index.nlist()), *sw,
                         ivf->centroid_table, ivf->centroid_prefix);
}

std::vector<double> InferenceEngine::ScoreCentroidsForMembers(
    const std::vector<data::UserId>& members) {
  Revalidate();
  const GroupRep rep = BuildMembersRep(members);
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  return ScoreBatchGroup(rep, AllItems(ivf->index.nlist()), *sw,
                         ivf->centroid_table, ivf->centroid_prefix);
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::IvfTopKUser(
    const UserRep& rep, int k,
    const std::function<bool(data::ItemId)>& skip) {
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  const ItemIndex& index = ivf->index;
  if (index.nlist() == 0) return {};
  const std::vector<double> coarse = ScoreBatchUser(
      rep, AllItems(index.nlist()), *sw, ivf->centroid_table,
      ivf->centroid_latents.empty() ? nullptr : &ivf->centroid_latents);
  const std::vector<data::ItemId> candidates =
      index.Candidates(index.SelectProbes(coarse, /*nprobe=*/0));
  const std::vector<double> scores = ScoreBatchUser(rep, candidates, *sw);
  return TopKItems(candidates, scores, k, skip);
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::IvfTopKGroup(
    const GroupRep& rep, int k,
    const std::function<bool(data::ItemId)>& skip) {
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  const ItemIndex& index = ivf->index;
  if (index.nlist() == 0) return {};
  const std::vector<double> coarse =
      ScoreBatchGroup(rep, AllItems(index.nlist()), *sw, ivf->centroid_table,
                      ivf->centroid_prefix);
  const std::vector<data::ItemId> candidates =
      index.Candidates(index.SelectProbes(coarse, /*nprobe=*/0));
  const std::vector<double> scores = ScoreBatchGroup(rep, candidates, *sw);
  return TopKItems(candidates, scores, k, skip);
}

// ---------------- int8 internals (ScoreMode::kInt8) ----------------------

InferenceEngine::QuantState InferenceEngine::BuildQuantState() const {
  QuantState qs;
  const Matrix& item_table = model_->item_embedding().table()->value();
  qs.items = QuantizeRows(item_table);
  qs.ref_item = ColMeans(item_table);
  const Matrix* latent_table = ModelLatentTable();
  if (latent_table != nullptr) {
    qs.latents = QuantizeRows(*latent_table);
    qs.ref_latent = ColMeans(*latent_table);
  } else {
    // Latent concat rows fall back to the item embedding (the Group-I
    // behaviour in ScoreBatchUser), so the linearization point does too.
    qs.ref_latent = qs.ref_item;
  }
  return qs;
}

std::shared_ptr<const InferenceEngine::QuantState>
InferenceEngine::GetQuantState() {
  Revalidate();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    if (quant_ != nullptr) return quant_;
  }
  auto state = std::make_shared<const QuantState>(BuildQuantState());
  std::unique_lock<DebugSharedMutex> lock(mu_);
  // Concurrent misses build identical states; the first insert wins.
  if (quant_ == nullptr) quant_ = std::move(state);
  return quant_;
}

InferenceEngine::QuantUserRep InferenceEngine::GetQuantUserRep(
    data::UserId user) {
  Revalidate();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    auto it = user_q_cache_.find(user);
    if (it != user_q_cache_.end()) return it->second;
  }
  const UserRep fp = BuildUserRep(user);
  QuantUserRep rep;
  rep.embedding = QuantizeRows(fp.embedding);
  if (!fp.latent.empty()) rep.latent = QuantizeRows(fp.latent);
  {
    std::unique_lock<DebugSharedMutex> lock(mu_);
    // Concurrent misses build identical reps; the first insert wins.
    user_q_cache_.emplace(user, rep);
  }
  return rep;
}

InferenceEngine::QuantGroupRep InferenceEngine::GetQuantGroupRep(
    data::GroupId group) {
  Revalidate();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    auto it = group_q_cache_.find(group);
    if (it != group_q_cache_.end()) return it->second;
  }
  const GroupRep fp =
      BuildMembersRep(model_->model_data().groups->Members(group));
  QuantGroupRep rep;
  rep.member_reps = QuantizeRows(fp.member_reps);
  {
    std::unique_lock<DebugSharedMutex> lock(mu_);
    group_q_cache_.emplace(group, rep);
  }
  return rep;
}

InferenceEngine::UserRep InferenceEngine::DequantizeUserRep(
    const QuantUserRep& q) {
  UserRep rep;
  rep.embedding = q.embedding.Dequantize();
  if (!q.latent.empty()) rep.latent = q.latent.Dequantize();
  return rep;
}

InferenceEngine::GroupRep InferenceEngine::DequantizeGroupRep(
    const QuantGroupRep& q) {
  GroupRep rep;
  rep.member_reps = q.member_reps.Dequantize();
  return rep;
}

tensor::Matrix InferenceEngine::TowerInputGradient(const nn::Mlp& mlp,
                                                   const tensor::Matrix& x0) {
  const int num_layers = mlp.num_layers();
  // Forward, recording each layer's pre-activation: the backward pass below
  // evaluates every activation derivative there (the frozen-mask
  // linearization — for ReLU towers this is exactly "gradient with the ReLU
  // masks frozen at x0").
  std::vector<Matrix> pre(static_cast<size_t>(num_layers));
  Matrix x = x0;
  for (int i = 0; i < num_layers; ++i) {
    Matrix y;
    tensor::Gemm(x, /*transpose_a=*/false, mlp.layer(i).weight()->value(),
                 /*transpose_b=*/false, 1.0f, &y);
    if (mlp.layer(i).bias() != nullptr)
      tensor::AddRowBroadcastInPlace(&y, mlp.layer(i).bias()->value());
    pre[static_cast<size_t>(i)] = y;
    ActivateInPlace(&y, i + 1 == num_layers ? mlp.output_activation()
                                            : mlp.hidden_activation());
    x = y;
  }
  // Backward: v <- (v . act'(pre_i)) * W_i^T, starting from d(out)/d(out)=1.
  Matrix v(1, 1);
  v.At(0, 0) = 1.0f;
  for (int i = num_layers - 1; i >= 0; --i) {
    const nn::Activation act = i + 1 == num_layers ? mlp.output_activation()
                                                   : mlp.hidden_activation();
    const Matrix& p = pre[static_cast<size_t>(i)];
    for (int j = 0; j < v.cols(); ++j) v.At(0, j) *= ActDeriv(act, p.At(0, j));
    Matrix prev;
    tensor::Gemm(v, /*transpose_a=*/false, mlp.layer(i).weight()->value(),
                 /*transpose_b=*/true, 1.0f, &prev);
    v = prev;
  }
  return v;  // 1 x in_dim
}

void InferenceEngine::ApproxScoresUser(const UserRep& rep,
                                       const QuantState& qs,
                                       const std::vector<data::ItemId>& items,
                                       std::vector<double>* out) const {
  out->assign(items.size(), 0.0);
  const int n = static_cast<int>(items.size());
  if (n == 0 || qs.items.empty()) return;
  const int d = qs.items.cols;
  Workspace& ws = GetWorkspace();
  const tensor::KernelBackend& kb = tensor::ActiveBackend();
  const float blend = model_->config().effective_user_blend();
  const bool blended = !rep.latent.empty() && blend > 0.0f;

  // r^R1 direction: d(tower)/d(emb_t) at [emb_j (+) ref_item]; the item half
  // is cols [d, 2d) of the input gradient.
  tensor::ConcatColsInto({&rep.embedding, &qs.ref_item}, &ws.x0);
  const Matrix g1 = TowerInputGradient(model_->user_tower().tower(), ws.x0);
  ws.q1.resize(static_cast<size_t>(d));
  const float s1 = QuantizeRow(g1.RowPtr(0) + d, d, ws.q1.data());
  ws.i8dots.resize(items.size());
  kb.dot_i8_rows(ws.q1.data(), qs.items.values.data(), items.data(), n, d,
                 ws.i8dots.data());
  const double w1 = blended ? 1.0 - static_cast<double>(blend) : 1.0;
  for (int i = 0; i < n; ++i) {
    (*out)[static_cast<size_t>(i)] =
        w1 * static_cast<double>(s1) *
        static_cast<double>(qs.items.scale(items[static_cast<size_t>(i)])) *
        static_cast<double>(ws.i8dots[static_cast<size_t>(i)]);
  }
  if (!blended) return;

  // r^R2 direction over the latent table (items fall back when absent).
  const QuantizedRows& lat = qs.latents.empty() ? qs.items : qs.latents;
  tensor::ConcatColsInto({&rep.latent, &qs.ref_latent}, &ws.x0);
  const Matrix g2 = TowerInputGradient(model_->latent_tower().tower(), ws.x0);
  ws.q2.resize(static_cast<size_t>(d));
  const float s2 = QuantizeRow(g2.RowPtr(0) + d, d, ws.q2.data());
  kb.dot_i8_rows(ws.q2.data(), lat.values.data(), items.data(), n, d,
                 ws.i8dots.data());
  const double w2 = static_cast<double>(blend);
  for (int i = 0; i < n; ++i) {
    (*out)[static_cast<size_t>(i)] +=
        w2 * static_cast<double>(s2) *
        static_cast<double>(lat.scale(items[static_cast<size_t>(i)])) *
        static_cast<double>(ws.i8dots[static_cast<size_t>(i)]);
  }
}

void InferenceEngine::ApproxScoresGroup(const GroupRep& rep,
                                        const QuantState& qs,
                                        const std::vector<data::ItemId>& items,
                                        std::vector<double>* out) const {
  out->assign(items.size(), 0.0);
  const int n = static_cast<int>(items.size());
  if (n == 0 || qs.items.empty()) return;
  const int d = qs.items.cols;
  Workspace& ws = GetWorkspace();
  const Matrix& reps = rep.member_reps;  // l x d
  const int l = reps.rows();
  const nn::AttentionPool& pool = model_->voting().group_pool();
  const nn::Linear& proj = model_->voting().group_proj();

  // Group representation at the reference item, attention softmax frozen
  // there: one [ref_item (+) rep_i] row per member through score_hidden /
  // ReLU / score_out, softmax over members, pool, project.
  EnsureShape(&ws.cont, l, 2 * d);
  for (int i = 0; i < l; ++i) {
    std::memcpy(ws.cont.RowPtr(i), qs.ref_item.RowPtr(0),
                sizeof(float) * static_cast<size_t>(d));
    std::memcpy(ws.cont.RowPtr(i) + d, reps.RowPtr(i),
                sizeof(float) * static_cast<size_t>(d));
  }
  tensor::Gemm(ws.cont, /*transpose_a=*/false,
               pool.score_hidden().weight()->value(), /*transpose_b=*/false,
               1.0f, &ws.hidden);
  if (pool.score_hidden().bias() != nullptr)
    tensor::AddRowBroadcastInPlace(&ws.hidden,
                                   pool.score_hidden().bias()->value());
  ActivateInPlace(&ws.hidden, nn::Activation::kRelu);
  tensor::Gemm(ws.hidden, /*transpose_a=*/false,
               pool.score_out().weight()->value(), /*transpose_b=*/false, 1.0f,
               &ws.logits);  // l x 1
  if (pool.score_out().bias() != nullptr)
    tensor::AddRowBroadcastInPlace(&ws.logits, pool.score_out().bias()->value());
  EnsureShape(&ws.weights, 1, l);  // the l x 1 column, relaid out as a row
  std::memcpy(ws.weights.data(), ws.logits.data(),
              sizeof(float) * static_cast<size_t>(l));
  tensor::SoftmaxRowsInPlace(&ws.weights);
  tensor::Gemm(ws.weights, /*transpose_a=*/false, reps, /*transpose_b=*/false,
               1.0f, &ws.pooled);  // 1 x d
  tensor::Gemm(ws.pooled, /*transpose_a=*/false, proj.weight()->value(),
               /*transpose_b=*/false, 1.0f, &ws.group_rep);
  if (proj.bias() != nullptr)
    tensor::AddRowBroadcastInPlace(&ws.group_rep, proj.bias()->value());
  ActivateInPlace(&ws.group_rep, nn::Activation::kRelu);

  // r^G direction: d(tower)/d(emb_t) at [x^G(ref) (+) ref_item].
  tensor::ConcatColsInto({&ws.group_rep, &qs.ref_item}, &ws.x0);
  const Matrix g = TowerInputGradient(model_->group_tower().tower(), ws.x0);
  ws.q1.resize(static_cast<size_t>(d));
  const float s = QuantizeRow(g.RowPtr(0) + d, d, ws.q1.data());
  ws.i8dots.resize(items.size());
  tensor::ActiveBackend().dot_i8_rows(ws.q1.data(), qs.items.values.data(),
                                      items.data(), n, d, ws.i8dots.data());
  for (int i = 0; i < n; ++i) {
    (*out)[static_cast<size_t>(i)] =
        static_cast<double>(s) *
        static_cast<double>(qs.items.scale(items[static_cast<size_t>(i)])) *
        static_cast<double>(ws.i8dots[static_cast<size_t>(i)]);
  }
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::Int8TopKUser(
    const UserRep& rep, int k,
    const std::function<bool(data::ItemId)>& skip) {
  const auto sw = GetSplitWeights();
  const auto qs = GetQuantState();
  std::vector<data::ItemId> candidates;
  if (topk_mode() == TopKMode::kIvf) {
    const auto ivf = GetIvfState();
    if (ivf->index.nlist() == 0) return {};
    const std::vector<double> coarse = ScoreBatchUser(
        rep, AllItems(ivf->index.nlist()), *sw, ivf->centroid_table,
        ivf->centroid_latents.empty() ? nullptr : &ivf->centroid_latents);
    candidates =
        ivf->index.Candidates(ivf->index.SelectProbes(coarse, /*nprobe=*/0));
  } else {
    candidates = AllItems(model_->num_items());
  }
  std::vector<double> approx;
  ApproxScoresUser(rep, *qs, candidates, &approx);
  const int rerank = std::max(k, int8_config().rerank_k);
  const std::vector<std::pair<data::ItemId, double>> shortlist =
      TopKItems(candidates, approx, rerank, skip);
  std::vector<data::ItemId> ids;
  ids.reserve(shortlist.size());
  for (const auto& entry : shortlist) ids.push_back(entry.first);
  const std::vector<double> exact = ScoreBatchUser(rep, ids, *sw);
  return TopKItems(ids, exact, k, nullptr);  // shortlist already skip-filtered
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::Int8TopKGroup(
    const GroupRep& rep, int k,
    const std::function<bool(data::ItemId)>& skip) {
  const auto sw = GetSplitWeights();
  const auto qs = GetQuantState();
  std::vector<data::ItemId> candidates;
  if (topk_mode() == TopKMode::kIvf) {
    const auto ivf = GetIvfState();
    if (ivf->index.nlist() == 0) return {};
    const std::vector<double> coarse =
        ScoreBatchGroup(rep, AllItems(ivf->index.nlist()), *sw,
                        ivf->centroid_table, ivf->centroid_prefix);
    candidates =
        ivf->index.Candidates(ivf->index.SelectProbes(coarse, /*nprobe=*/0));
  } else {
    candidates = AllItems(model_->num_items());
  }
  std::vector<double> approx;
  ApproxScoresGroup(rep, *qs, candidates, &approx);
  const int rerank = std::max(k, int8_config().rerank_k);
  const std::vector<std::pair<data::ItemId, double>> shortlist =
      TopKItems(candidates, approx, rerank, skip);
  std::vector<data::ItemId> ids;
  ids.reserve(shortlist.size());
  for (const auto& entry : shortlist) ids.push_back(entry.first);
  const std::vector<double> exact = ScoreBatchGroup(rep, ids, *sw);
  return TopKItems(ids, exact, k, nullptr);  // shortlist already skip-filtered
}

std::vector<double> InferenceEngine::ApproxScoreItemsForUser(
    data::UserId user, const std::vector<data::ItemId>& items) {
  const UserRep rep = DequantizeUserRep(GetQuantUserRep(user));
  const auto qs = GetQuantState();
  std::vector<double> out;
  ApproxScoresUser(rep, *qs, items, &out);
  return out;
}

std::vector<double> InferenceEngine::QuantScoreItemsForUser(
    data::UserId user, const std::vector<data::ItemId>& items) {
  const UserRep rep = DequantizeUserRep(GetQuantUserRep(user));
  return ScoreBatchUser(rep, items, *GetSplitWeights());
}

std::vector<double> InferenceEngine::QuantScoreCentroidsForUser(
    data::UserId user) {
  const UserRep rep = DequantizeUserRep(GetQuantUserRep(user));
  const auto sw = GetSplitWeights();
  const auto ivf = GetIvfState();
  return ScoreBatchUser(
      rep, AllItems(ivf->index.nlist()), *sw, ivf->centroid_table,
      ivf->centroid_latents.empty() ? nullptr : &ivf->centroid_latents);
}

InferenceEngine::UserRep InferenceEngine::GetUserRep(data::UserId user) {
  Revalidate();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    auto it = user_cache_.find(user);
    if (it != user_cache_.end()) return it->second;
  }
  UserRep rep = BuildUserRep(user);
  {
    std::unique_lock<DebugSharedMutex> lock(mu_);
    // Concurrent misses build identical reps (the forward is deterministic
    // and pure); the first insert wins and the rest are dropped.
    user_cache_.emplace(user, rep);
  }
  return rep;
}

InferenceEngine::GroupRep InferenceEngine::GetGroupRep(data::GroupId group) {
  Revalidate();
  {
    std::shared_lock<DebugSharedMutex> lock(mu_);
    auto it = group_cache_.find(group);
    if (it != group_cache_.end()) return it->second;
  }
  GroupRep rep =
      BuildMembersRep(model_->model_data().groups->Members(group));
  {
    std::unique_lock<DebugSharedMutex> lock(mu_);
    group_cache_.emplace(group, rep);
  }
  return rep;
}

const tensor::Matrix* InferenceEngine::ModelLatentTable() const {
  const UserModeling* um = model_->user_modeling();
  if (um == nullptr || !um->has_item_space()) return nullptr;
  return &um->item_space()->table()->value();
}

std::vector<double> InferenceEngine::ScoreBatchUser(
    const UserRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw) const {
  return ScoreBatchUser(rep, items, sw,
                        model_->item_embedding().table()->value(),
                        ModelLatentTable());
}

std::vector<double> InferenceEngine::ScoreBatchUser(
    const UserRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw, const tensor::Matrix& table,
    const tensor::Matrix* latent_table) const {
  std::vector<double> scores;
  scores.reserve(items.size());
  if (items.empty()) return scores;
  Workspace& ws = GetWorkspace();

  const Matrix& item_table = table;
  const float blend = model_->config().effective_user_blend();
  // Mirrors the r1-only early-out of GroupSaModel::ScoreUserItem.
  const bool blended = !rep.latent.empty() && blend > 0.0f;

  // Layer-0 user-side partial sums: the left half of the concat row
  // [emb_j^U (+) emb_t^V] is the same for every candidate, so its partial
  // sum is computed once and seeds every batch row; the item-side weight
  // half then continues the same k-ascending accumulation the per-item
  // full-width kernel runs. Bias and activation land in MlpTailInPlace after
  // the full continuation, matching the MatMul -> AddBias -> activation
  // order of the per-item path.
  Matrix prefix1;
  tensor::Gemm(rep.embedding, /*transpose_a=*/false, sw.user_w_top,
               /*transpose_b=*/false, 1.0f, &prefix1);
  Matrix prefix2;
  if (blended)
    tensor::Gemm(rep.latent, /*transpose_a=*/false, sw.latent_w_top,
                 /*transpose_b=*/false, 1.0f, &prefix2);

  const int h = prefix1.cols();
  const int n = static_cast<int>(items.size());
  for (int begin = 0; begin < n; begin += kMaxPredictorRows) {
    const int c = std::min(kMaxPredictorRows, n - begin);
    const int* ids = items.data() + begin;
    GatherRowsInto(item_table, ids, c, &ws.embs);  // c x d

    EnsureShape(&ws.r1a, c, h);
    for (int t = 0; t < c; ++t)
      std::memcpy(ws.r1a.RowPtr(t), prefix1.RowPtr(0), sizeof(float) * h);
    tensor::Gemm(ws.embs, /*transpose_a=*/false, sw.user_w_bot,
                 /*transpose_b=*/false, 1.0f, &ws.r1a, /*accumulate=*/true);
    Matrix* r1 = MlpTailInPlace(model_->user_tower().tower(), &ws.r1a,
                                &ws.r1b);

    if (blended) {
      // r^R2 over [h_j (+) x_t^V] (x^V falls back to emb^V for Group-I).
      const Matrix* latents = &ws.embs;
      if (latent_table != nullptr) {
        GatherRowsInto(*latent_table, ids, c, &ws.latents);
        latents = &ws.latents;
      }
      EnsureShape(&ws.r2a, c, h);
      for (int t = 0; t < c; ++t)
        std::memcpy(ws.r2a.RowPtr(t), prefix2.RowPtr(0), sizeof(float) * h);
      tensor::Gemm(*latents, /*transpose_a=*/false, sw.latent_w_bot,
                   /*transpose_b=*/false, 1.0f, &ws.r2a, /*accumulate=*/true);
      Matrix* r2 = MlpTailInPlace(model_->latent_tower().tower(), &ws.r2a,
                                  &ws.r2b);
      // Eq. 23 blend via the same in-place ops as ag::Scale / ag::Add.
      r1->ScaleInPlace(1.0f - blend);
      r2->ScaleInPlace(blend);
      r1->AddInPlace(*r2);
    }
    for (int t = 0; t < c; ++t)
      scores.push_back(static_cast<double>(r1->At(t, 0)));
  }
  return scores;
}

std::vector<double> InferenceEngine::ScoreBatchGroup(
    const GroupRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw) const {
  return ScoreBatchGroup(rep, items, sw,
                         model_->item_embedding().table()->value(),
                         sw.attn_item_prefix);
}

std::vector<double> InferenceEngine::ScoreBatchGroup(
    const GroupRep& rep, const std::vector<data::ItemId>& items,
    const SplitWeights& sw, const tensor::Matrix& table,
    const tensor::Matrix& attn_prefix) const {
  std::vector<double> scores;
  scores.reserve(items.size());
  if (items.empty()) return scores;
  Workspace& ws = GetWorkspace();

  const Matrix& item_table = table;
  const Matrix& reps = rep.member_reps;  // l x d
  const int l = reps.rows();
  const int d = reps.cols();
  const int h = attn_prefix.cols();
  const nn::AttentionPool& pool = model_->voting().group_pool();
  const nn::Linear& proj = model_->voting().group_proj();
  const bool fused = h <= tensor::kMaxFusedHidden;

  if (fused) {
    // Precompute, per member, the addend rows rep_i[k] * W_bot[k][:] for the
    // nonzero rep_i[k] (k ascending — the same terms, in the same order,
    // with the same zero-skip the Gemm kernel applies to the member half of
    // the per-item concat row).
    EnsureShape(&ws.addends, l * d, h);
    ws.nz.clear();
    ws.nz_begin.assign(static_cast<size_t>(l) + 1, 0);
    for (int i = 0; i < l; ++i) {
      for (int k = 0; k < d; ++k) {
        const float r = reps.At(i, k);
        if (r == 0.0f) continue;
        float* dst = ws.addends.RowPtr(i * d + k);
        const float* wrow = sw.attn_w_bot.RowPtr(k);
        for (int j = 0; j < h; ++j) dst[j] = r * wrow[j];
        ws.nz.push_back(i * d + k);
      }
      ws.nz_begin[i + 1] = static_cast<int>(ws.nz.size());
    }
  }

  const bool has_hb = pool.score_hidden().bias() != nullptr;
  const float* hb = has_hb ? pool.score_hidden().bias()->value().data()
                           : nullptr;
  const float* wout = pool.score_out().weight()->value().data();  // h x 1
  const bool has_ob = pool.score_out().bias() != nullptr;
  const float out_b = has_ob ? pool.score_out().bias()->value().At(0, 0)
                             : 0.0f;

  const int n = static_cast<int>(items.size());
  const int max_items = std::max(1, kMaxAttentionRows / l);
  // Tracks the chunk height ws.cont currently holds; the tiled member reps
  // are call-local state, so the buffer is rebuilt at least once per call.
  int cont_rows = -1;
  for (int begin = 0; begin < n; begin += max_items) {
    const int c = std::min(max_items, n - begin);
    const int* ids = items.data() + begin;
    GatherRowsInto(item_table, ids, c, &ws.embs);  // c x d

    // Eq. 8-10: attention logits for every (item, member) pair, one softmax
    // row per item. The per-item path feeds row [emb_t^V (+) x_{t,i}^U]
    // through score_hidden / ReLU / score_out; both paths below run the
    // identical per-element chains — seed with the cached item-side partial
    // sum (equal to the per-item k < d partial, see BuildSplitWeights),
    // continue with the member-side terms k ascending, then bias, ReLU and
    // the zero-skipping j-ascending logit dot, with biases applied only
    // after each full accumulation as in nn::Linear.
    EnsureShape(&ws.weights, c, l);
    if (fused) {
      tensor::ActiveBackend().attention_logits(attn_prefix, ids, c, l, h,
                                               ws.addends, ws.nz, ws.nz_begin,
                                               hb, wout, has_ob, out_b,
                                               &ws.weights);
    } else {
      // Buffered fallback for wide attention layers: seed rows with the item
      // prefix, continue via Gemm(accumulate) over the tiled member reps.
      EnsureShape(&ws.hidden, c * l, h);
      for (int t = 0; t < c; ++t) {
        const float* p = attn_prefix.RowPtr(ids[t]);
        for (int i = 0; i < l; ++i)
          std::memcpy(ws.hidden.RowPtr(t * l + i), p, sizeof(float) * h);
      }
      if (cont_rows != c * l) {
        EnsureShape(&ws.cont, c * l, d);
        for (int t = 0; t < c; ++t)
          for (int i = 0; i < l; ++i)
            ws.cont.SetRow(t * l + i, reps.RowPtr(i));
        cont_rows = c * l;
      }
      tensor::Gemm(ws.cont, /*transpose_a=*/false, sw.attn_w_bot,
                   /*transpose_b=*/false, 1.0f, &ws.hidden,
                   /*accumulate=*/true);
      if (has_hb)
        tensor::AddRowBroadcastInPlace(&ws.hidden,
                                       pool.score_hidden().bias()->value());
      ActivateInPlace(&ws.hidden, nn::Activation::kRelu);
      tensor::Gemm(ws.hidden, /*transpose_a=*/false,
                   pool.score_out().weight()->value(), /*transpose_b=*/false,
                   1.0f, &ws.logits);  // c*l x 1
      if (has_ob)
        tensor::AddRowBroadcastInPlace(&ws.logits,
                                       pool.score_out().bias()->value());
      // The (c*l) x 1 logit column is, row-major, already the c x l logit
      // matrix (the per-item path's Transpose is a pure relayout).
      std::memcpy(ws.weights.data(), ws.logits.data(),
                  sizeof(float) * static_cast<size_t>(c) * l);
    }
    tensor::SoftmaxRowsInPlace(&ws.weights);  // Eq. 10, one row per item

    // Eq. 7-8: pooled_t = gamma_t . X^U, then the outer projection + ReLU.
    tensor::Gemm(ws.weights, /*transpose_a=*/false, reps,
                 /*transpose_b=*/false, 1.0f, &ws.pooled);  // c x d
    tensor::Gemm(ws.pooled, /*transpose_a=*/false, proj.weight()->value(),
                 /*transpose_b=*/false, 1.0f, &ws.group_rep);
    if (proj.bias() != nullptr)
      tensor::AddRowBroadcastInPlace(&ws.group_rep, proj.bias()->value());
    ActivateInPlace(&ws.group_rep, nn::Activation::kRelu);

    // Eq. 20 tower over [x_t^G (+) emb_t^V], via the same split-weight
    // seed/continue rewrite (both halves are full c-row matrices here, so
    // the seed is itself a Gemm and no row tiling is needed).
    tensor::Gemm(ws.group_rep, /*transpose_a=*/false, sw.group_w_top,
                 /*transpose_b=*/false, 1.0f, &ws.t1);
    tensor::Gemm(ws.embs, /*transpose_a=*/false, sw.group_w_bot,
                 /*transpose_b=*/false, 1.0f, &ws.t1, /*accumulate=*/true);
    const Matrix* out =
        MlpTailInPlace(model_->group_tower().tower(), &ws.t1, &ws.t2);
    for (int t = 0; t < c; ++t)
      scores.push_back(static_cast<double>(out->At(t, 0)));
  }
  return scores;
}

std::vector<double> InferenceEngine::ScoreItemsForUser(
    data::UserId user, const std::vector<data::ItemId>& items) {
  const UserRep rep = GetUserRep(user);
  return ScoreBatchUser(rep, items, *GetSplitWeights());
}

std::vector<double> InferenceEngine::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items) {
  const GroupRep rep = GetGroupRep(group);
  return ScoreBatchGroup(rep, items, *GetSplitWeights());
}

std::vector<double> InferenceEngine::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) {
  // Ad-hoc (cold) member lists have no stable key; build the reps per
  // request and batch only the per-item work.
  Revalidate();
  const GroupRep rep = BuildMembersRep(members);
  return ScoreBatchGroup(rep, items, *GetSplitWeights());
}

std::vector<std::vector<double>> InferenceEngine::MemberItemScores(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) {
  std::vector<std::vector<double>> scores;
  scores.reserve(members.size());
  for (data::UserId member : members)
    scores.push_back(ScoreItemsForUser(member, items));
  return scores;
}

std::vector<std::pair<data::ItemId, double>> InferenceEngine::RecommendForUser(
    data::UserId user, int k, const data::InteractionMatrix* exclude) {
  const auto skip = [&](data::ItemId item) {
    return exclude != nullptr && exclude->Has(user, item);
  };
  if (score_mode() == ScoreMode::kInt8)
    return Int8TopKUser(DequantizeUserRep(GetQuantUserRep(user)), k, skip);
  if (topk_mode() == TopKMode::kIvf)
    return IvfTopKUser(GetUserRep(user), k, skip);
  const std::vector<double> scores =
      ScoreItemsForUser(user, AllItems(model_->num_items()));
  return TopKItems(scores, k, skip);
}

std::vector<std::pair<data::ItemId, double>>
InferenceEngine::RecommendForGroup(data::GroupId group, int k,
                                   const data::InteractionMatrix* exclude) {
  const auto skip = [&](data::ItemId item) {
    return exclude != nullptr && exclude->Has(group, item);
  };
  if (score_mode() == ScoreMode::kInt8)
    return Int8TopKGroup(DequantizeGroupRep(GetQuantGroupRep(group)), k, skip);
  if (topk_mode() == TopKMode::kIvf)
    return IvfTopKGroup(GetGroupRep(group), k, skip);
  const std::vector<double> scores =
      ScoreItemsForGroup(group, AllItems(model_->num_items()));
  return TopKItems(scores, k, skip);
}

std::vector<std::pair<data::ItemId, double>>
InferenceEngine::RecommendForMembers(const std::vector<data::UserId>& members,
                                     int k,
                                     const data::InteractionMatrix* exclude) {
  const auto skip = [&](data::ItemId item) {
    if (exclude == nullptr) return false;
    for (data::UserId member : members)
      if (exclude->Has(member, item)) return true;
    return false;
  };
  if (score_mode() == ScoreMode::kInt8) {
    // Ad-hoc member lists have no cache key: the voting-stack rep is built
    // in FP32 per request (as in exact mode); the int8 scan still replaces
    // the full-catalog FP32 pass.
    Revalidate();
    return Int8TopKGroup(BuildMembersRep(members), k, skip);
  }
  if (topk_mode() == TopKMode::kIvf) {
    Revalidate();
    return IvfTopKGroup(BuildMembersRep(members), k, skip);
  }
  const std::vector<double> scores =
      ScoreItemsForMembers(members, AllItems(model_->num_items()));
  return TopKItems(scores, k, skip);
}

// ---------------- Validated (Status) serving entry points ----------------

Status InferenceEngine::ValidateUser(data::UserId user) const {
  if (user < 0 || user >= model_->num_users()) {
    return Status::Error(StrFormat("user id %d out of range [0, %d)", user,
                                   model_->num_users()));
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateGroup(data::GroupId group) const {
  const data::GroupTable* groups = model_->model_data().groups;
  if (groups == nullptr)
    return Status::Error("model has no group table");
  if (group < 0 || group >= groups->num_groups()) {
    return Status::Error(StrFormat("group id %d out of range [0, %d)", group,
                                   groups->num_groups()));
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateMembers(
    const std::vector<data::UserId>& members) const {
  if (members.empty()) return Status::Error("empty member list");
  for (data::UserId member : members) {
    GROUPSA_RETURN_IF_ERROR_CTX(ValidateUser(member), "member");
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateItems(
    const std::vector<data::ItemId>& items) const {
  for (data::ItemId item : items) {
    if (item < 0 || item >= model_->num_items()) {
      return Status::Error(StrFormat("item id %d out of range [0, %d)", item,
                                     model_->num_items()));
    }
  }
  return Status::Ok();
}

Status InferenceEngine::ValidateK(int k) const {
  if (k < 1) return Status::Error(StrFormat("k must be positive, got %d", k));
  return Status::Ok();
}

Status InferenceEngine::ScoreItemsForUser(data::UserId user,
                                          const std::vector<data::ItemId>& items,
                                          std::vector<double>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateUser(user));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = ScoreItemsForUser(user, items);
  return Status::Ok();
}

Status InferenceEngine::ScoreItemsForGroup(
    data::GroupId group, const std::vector<data::ItemId>& items,
    std::vector<double>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateGroup(group));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = ScoreItemsForGroup(group, items);
  return Status::Ok();
}

Status InferenceEngine::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items, std::vector<double>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = ScoreItemsForMembers(members, items);
  return Status::Ok();
}

Status InferenceEngine::MemberItemScores(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items,
    std::vector<std::vector<double>>* scores) {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  GROUPSA_RETURN_IF_ERROR(ValidateItems(items));
  *scores = MemberItemScores(members, items);
  return Status::Ok();
}

Status InferenceEngine::RecommendForUser(
    data::UserId user, int k, const data::InteractionMatrix* exclude,
    std::vector<std::pair<data::ItemId, double>>* out) {
  GROUPSA_RETURN_IF_ERROR(ValidateUser(user));
  GROUPSA_RETURN_IF_ERROR(ValidateK(k));
  *out = RecommendForUser(user, k, exclude);
  return Status::Ok();
}

Status InferenceEngine::RecommendForGroup(
    data::GroupId group, int k, const data::InteractionMatrix* exclude,
    std::vector<std::pair<data::ItemId, double>>* out) {
  GROUPSA_RETURN_IF_ERROR(ValidateGroup(group));
  GROUPSA_RETURN_IF_ERROR(ValidateK(k));
  *out = RecommendForGroup(group, k, exclude);
  return Status::Ok();
}

Status InferenceEngine::RecommendForMembers(
    const std::vector<data::UserId>& members, int k,
    const data::InteractionMatrix* exclude,
    std::vector<std::pair<data::ItemId, double>>* out) {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  GROUPSA_RETURN_IF_ERROR(ValidateK(k));
  *out = RecommendForMembers(members, k, exclude);
  return Status::Ok();
}

}  // namespace groupsa::core
