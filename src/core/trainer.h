#ifndef GROUPSA_CORE_TRAINER_H_
#define GROUPSA_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/grad_shard.h"
#include "autograd/pool.h"
#include "autograd/tape.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/groupsa_model.h"
#include "data/negative_sampler.h"
#include "nn/optimizer.h"

namespace groupsa::core {

// Two-stage joint training (Sec. II-E): stage 1 optimizes the user-item BPR
// loss L_R (Eq. 24) over the user-item interactions (user modeling pulls in
// the social data); stage 2 fine-tunes the group task by optimizing L_G
// (Eq. 21) over the group-item interactions, starting from the stage-1
// embeddings (shared tables make the hand-off implicit).
//
// Every epoch runs the sharded minibatch path: each batch is cut into
// fixed-size shards, each shard builds its forward graph and runs its
// backward pass on a pool thread with a shard-local gradient sink
// (ag::GradShard) and a shard-local Rng stream keyed off (batch, shard).
// Shard gradients and losses are then reduced in shard order on the calling
// thread before the optimizer step. Because the shard structure, RNG
// streams and reduction order depend only on the data and the seed — never
// on the thread count — training is bit-identical at any pool width,
// including width 1.
//
// The per-shard machinery (tape, gradient sink, tensor pool, loss list) is
// persistent: each shard index owns a ShardContext reused batch after
// batch, so a steady-state batch performs no tensor, gradient-buffer or
// tape allocations (see DESIGN.md "Training memory architecture"). Pooling
// can be disabled per trainer (set_tensor_pooling) for parity testing and
// benchmarking; results are bit-identical either way.
class Trainer {
 public:
  // `user_train` / `group_train` are the training edges; `ui_observed` /
  // `gi_observed` the train-time interaction matrices used for negative
  // sampling. All referenced structures must outlive the trainer.
  Trainer(GroupSaModel* model, const data::EdgeList& user_train,
          const data::EdgeList& group_train,
          const data::InteractionMatrix* ui_observed,
          const data::InteractionMatrix* gi_observed, Rng* rng);

  struct EpochStats {
    double avg_loss = 0.0;
    double seconds = 0.0;
    int num_samples = 0;
    // Batches dropped by the divergence guard (non-finite loss/gradients).
    int skipped_batches = 0;
  };

  // One pass over the user-item training edges (L_R).
  EpochStats RunUserEpoch();
  // One pass over the group-item training edges (L_G).
  EpochStats RunGroupEpoch();
  // One pass over the social edges (the user-user term of stage 1; see
  // GroupSaConfig::use_social_objective).
  EpochStats RunSocialEpoch();

  struct FitReport {
    std::vector<EpochStats> user_epochs;
    std::vector<EpochStats> group_epochs;
    double total_seconds = 0.0;
    int64_t skipped_batches = 0;  // total across all epochs
    int rollbacks = 0;            // snapshot rollbacks taken by the guard
    bool resumed = false;         // this Fit continued a ResumeFrom cursor
  };

  // Fault-tolerance knobs of Fit. Defaults run exactly the historical
  // schedule with the divergence guard armed and no snapshotting.
  struct FitOptions {
    bool verbose = false;

    // Crash-safe snapshotting: when non-empty, Fit atomically writes a full
    // TrainingState snapshot (parameters, Adam moments + step counters, RNG
    // stream, schedule cursor, config fingerprint) to this path after every
    // epoch unit, and additionally every `snapshot_every` batches when
    // snapshot_every > 0. A run killed at any point resumes from the last
    // snapshot via ResumeFrom() and finishes bit-identical to an
    // uninterrupted run — at any thread count.
    std::string snapshot_path;
    int snapshot_every = 0;

    // Divergence guard: a batch whose loss or merged gradients are
    // non-finite is skipped (gradients dropped, no optimizer step, counted
    // in skipped_batches). After more than `max_consecutive_bad`
    // consecutive bad batches Fit rolls back to the last snapshot (when
    // snapshot_path is set) at most `max_rollbacks` times, then fails.
    bool divergence_guard = true;
    int max_consecutive_bad = 3;
    int max_rollbacks = 2;
  };

  // Runs the full two-stage schedule from the model's config. Group-G
  // (use_user_task == false) skips stage 1 entirely. Continues from a
  // pending ResumeFrom() cursor when one is loaded.
  Status Fit(const FitOptions& options, FitReport* report);

  // Legacy entry point: no snapshotting, guard armed; CHECK-fails on the
  // (snapshot-less) divergence-abort path.
  FitReport Fit(bool verbose = false);

  // Loads a TrainingState snapshot written by Fit: restores parameters,
  // optimizer state and the RNG stream, verifies the config fingerprint,
  // and primes the next Fit call to continue from the saved cursor.
  //
  // Resume invariant: the snapshot stores the RNG state at the start of the
  // interrupted epoch unit plus the next batch ordinal. Fit re-derives the
  // epoch's shuffle from that state and fast-forwards the per-batch seed
  // draws, so the resumed stream — shuffle order, shard RNG streams,
  // negative samples, dropout — is the exact continuation of the
  // interrupted one, and the final checkpoint is byte-identical to an
  // uninterrupted run's.
  Status ResumeFrom(const std::string& path);

  // Tensor pooling toggle (default on). Off: every op output and workspace
  // is heap-allocated as before; training results are bit-identical either
  // way, which the parity test asserts.
  void set_tensor_pooling(bool on) { pooling_enabled_ = on; }
  bool tensor_pooling() const { return pooling_enabled_; }

  // Aggregate tensor-pool counters across all shard contexts; all monotone.
  // The steady-state allocation test asserts the created/bytes counters
  // stop moving once every shard has warmed its shapes.
  ag::TensorPool::Stats PoolStats() const;
  size_t num_shard_contexts() const { return shard_ctx_.size(); }

  // Fingerprint of everything a snapshot must agree on to be resumable:
  // the model config (minus the thread count — resume at any width is
  // bit-identical), dataset dimensions, training-edge counts and the
  // parameter inventory. Stored in every snapshot and verified by
  // ResumeFrom.
  uint64_t ConfigFingerprint() const;

 private:
  // Appends the loss tensor(s) of one training sample to `losses`, building
  // the forward graph on `tape` and drawing all randomness (negative
  // sampling, dropout) from `rng`.
  using SampleLossFn =
      std::function<void(ag::Tape* tape, int index, Rng* rng,
                         std::vector<ag::TensorPtr>* losses)>;

  // Shared sharded-minibatch engine behind the three epoch kinds.
  // `losses_per_sample` is the fixed number of loss terms `fn` appends per
  // sample (needed upfront to seed each shard's backward with 1/batch_loss
  // so per-sample gradients match the historical batch-mean scaling).
  EpochStats RunShardedEpoch(int num_samples, int losses_per_sample,
                             const SampleLossFn& fn);

  // The two-stage schedule flattened into a linear sequence of epoch units;
  // the snapshot cursor is an index into this sequence. `record` marks the
  // main user/group epochs that land in FitReport (social and interleaved
  // user passes do not, matching the historical report shape).
  struct ScheduleUnit {
    enum Kind { kSocial, kUser, kGroup };
    Kind kind;
    int display;  // 1-based epoch number within its stage, for logging
    bool record;
  };
  std::vector<ScheduleUnit> BuildSchedule() const;

  // Atomically writes a full TrainingState snapshot: sections "params"
  // (model parameters), "adam" (optimizer moments + step counters) and
  // "trainer" (config fingerprint, schedule cursor, in-epoch loss
  // accumulators, unit-start RNG state).
  Status WriteSnapshot(const std::string& path, int unit, int next_batch,
                       double acc_loss, int acc_losses,
                       const Rng::State& unit_start) const;

  // Divergence guard helpers: scan the merged gradients of the current
  // batch / drop them without stepping (dense grads zeroed, touched-row sets
  // cleared).
  bool GradientsFinite() const;
  void DropBatchGradients();

  // Everything one shard index needs across batches. Only the thread
  // running the shard touches it during the parallel region (the same
  // lock-free discipline GradShard always had); the calling thread reduces
  // the sink afterwards. Tape::Reset re-binds tape ownership to whichever
  // pool thread picks the shard up next batch.
  struct ShardContext {
    ag::Tape tape;
    std::unique_ptr<ag::GradShard> sink;
    ag::TensorPool pool;
    std::vector<ag::TensorPtr> losses;
  };

  GroupSaModel* model_;
  const data::EdgeList& user_train_;
  const data::EdgeList& group_train_;
  data::NegativeSampler user_negatives_;
  data::NegativeSampler group_negatives_;
  Rng* rng_;
  std::unique_ptr<nn::Adam> optimizer_;
  // GradShard registration of the model's parameters, built once.
  std::vector<ag::GradShard::ParamSlot> grad_slots_;
  // Persistent shard contexts, grown to the widest batch seen; index ==
  // shard index. shard_loss_ is the per-batch loss staging area, reused.
  std::vector<std::unique_ptr<ShardContext>> shard_ctx_;
  std::vector<float> shard_loss_;
  bool pooling_enabled_ = true;

  // Per-Fit context consumed by RunShardedEpoch (null outside Fit: direct
  // Run*Epoch calls run the plain path with the guard off).
  const FitOptions* fit_options_ = nullptr;
  int current_unit_ = 0;
  Rng::State unit_start_rng_{};
  // Resume fast-forward for the first unit after ResumeFrom: completed
  // batches whose RNG draws are burned without running them, plus the saved
  // in-epoch loss accumulators.
  int start_batch_ = 0;
  double start_loss_ = 0.0;
  int start_losses_ = 0;
  // Epoch -> Fit signals from the divergence guard.
  bool rollback_requested_ = false;
  Status epoch_error_;

  // Cursor loaded by ResumeFrom, consumed by the next Fit.
  bool has_resume_ = false;
  int resume_unit_ = 0;
  int resume_batch_ = 0;
  double resume_loss_ = 0.0;
  int resume_losses_ = 0;
  Rng::State resume_rng_{};
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_TRAINER_H_
