#ifndef GROUPSA_CORE_TRAINER_H_
#define GROUPSA_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/grad_shard.h"
#include "core/groupsa_model.h"
#include "data/negative_sampler.h"
#include "nn/optimizer.h"

namespace groupsa::core {

// Two-stage joint training (Sec. II-E): stage 1 optimizes the user-item BPR
// loss L_R (Eq. 24) over the user-item interactions (user modeling pulls in
// the social data); stage 2 fine-tunes the group task by optimizing L_G
// (Eq. 21) over the group-item interactions, starting from the stage-1
// embeddings (shared tables make the hand-off implicit).
//
// Every epoch runs the sharded minibatch path: each batch is cut into
// fixed-size shards, each shard builds its forward graph and runs its
// backward pass on a pool thread with a shard-local gradient sink
// (ag::GradShard) and a shard-local Rng stream keyed off (batch, shard).
// Shard gradients and losses are then reduced in shard order on the calling
// thread before the optimizer step. Because the shard structure, RNG
// streams and reduction order depend only on the data and the seed — never
// on the thread count — training is bit-identical at any pool width,
// including width 1.
class Trainer {
 public:
  // `user_train` / `group_train` are the training edges; `ui_observed` /
  // `gi_observed` the train-time interaction matrices used for negative
  // sampling. All referenced structures must outlive the trainer.
  Trainer(GroupSaModel* model, const data::EdgeList& user_train,
          const data::EdgeList& group_train,
          const data::InteractionMatrix* ui_observed,
          const data::InteractionMatrix* gi_observed, Rng* rng);

  struct EpochStats {
    double avg_loss = 0.0;
    double seconds = 0.0;
    int num_samples = 0;
  };

  // One pass over the user-item training edges (L_R).
  EpochStats RunUserEpoch();
  // One pass over the group-item training edges (L_G).
  EpochStats RunGroupEpoch();
  // One pass over the social edges (the user-user term of stage 1; see
  // GroupSaConfig::use_social_objective).
  EpochStats RunSocialEpoch();

  struct FitReport {
    std::vector<EpochStats> user_epochs;
    std::vector<EpochStats> group_epochs;
    double total_seconds = 0.0;
  };

  // Runs the full two-stage schedule from the model's config. Group-G
  // (use_user_task == false) skips stage 1 entirely.
  FitReport Fit(bool verbose = false);

 private:
  // Appends the loss tensor(s) of one training sample to `losses`, building
  // the forward graph on `tape` and drawing all randomness (negative
  // sampling, dropout) from `rng`.
  using SampleLossFn =
      std::function<void(ag::Tape* tape, int index, Rng* rng,
                         std::vector<ag::TensorPtr>* losses)>;

  // Shared sharded-minibatch engine behind the three epoch kinds.
  // `losses_per_sample` is the fixed number of loss terms `fn` appends per
  // sample (needed upfront to seed each shard's backward with 1/batch_loss
  // so per-sample gradients match the historical batch-mean scaling).
  EpochStats RunShardedEpoch(int num_samples, int losses_per_sample,
                             const SampleLossFn& fn);

  GroupSaModel* model_;
  const data::EdgeList& user_train_;
  const data::EdgeList& group_train_;
  data::NegativeSampler user_negatives_;
  data::NegativeSampler group_negatives_;
  Rng* rng_;
  std::unique_ptr<nn::Adam> optimizer_;
  // GradShard registration of the model's parameters, built once.
  std::vector<ag::GradShard::ParamSlot> grad_slots_;
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_TRAINER_H_
