#ifndef GROUPSA_CORE_FALLBACK_RECOMMENDER_H_
#define GROUPSA_CORE_FALLBACK_RECOMMENDER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/inference_engine.h"
#include "data/interaction_matrix.h"
#include "data/types.h"

namespace groupsa::core {

// Gracefully degrading serving front-end: answers through the model's
// InferenceEngine when one is available and the request is valid, and falls
// back to a popularity baseline (training-interaction counts) when the model
// path fails — engine absent (e.g. the checkpoint would not load), invalid
// group id, any engine-side error Status. A degraded response is still a
// ranked list over valid items; callers that must distinguish inspect
// `Response::degraded` / `Response::error` and the aggregate counters.
//
// Requests with no valid interpretation at all (k < 1, every exclude filter
// matching) degrade to an empty ranking rather than an error: the serving
// path never aborts the process.
class FallbackRecommender {
 public:
  // `engine` may be null (model unavailable: every response degrades) and
  // must outlive the recommender otherwise. `popularity` are training
  // interactions counted per item (user-item edges work; group-item edges
  // work too) over a catalog of `num_items` items; out-of-range items are
  // ignored rather than trusted.
  FallbackRecommender(InferenceEngine* engine,
                      const data::EdgeList& popularity, int num_items);

  struct Response {
    std::vector<std::pair<data::ItemId, double>> items;
    bool degraded = false;  // served by the popularity baseline
    std::string error;      // why the model path was bypassed, when degraded
    // What produced (or pre-empted) this answer. Callers that react to
    // model *health* — the serving daemon's circuit breaker — need to tell
    // an engine that errored (kEngineError: evidence against the model)
    // from an engine that is absent by design (kNoEngine) or was never
    // consulted (kBypassed: shed / injected-fault / breaker-open paths).
    enum class Source {
      kModel = 0,        // healthy engine answer
      kNoEngine = 1,     // permanently degraded: no engine at all
      kEngineError = 2,  // engine returned an error Status
      kBypassed = 3,     // caller chose the popularity path outright
    };
    Source source = Source::kModel;
  };

  // Top-K serving entry points, mirroring the engine's recommenders.
  // `exclude` follows each engine call's row semantics (user row / group row
  // / any-member row) and is applied on the popularity path too.
  Response RecommendForUser(data::UserId user, int k,
                            const data::InteractionMatrix* exclude);
  Response RecommendForGroup(data::GroupId group, int k,
                             const data::InteractionMatrix* exclude);
  Response RecommendForMembers(const std::vector<data::UserId>& members,
                               int k,
                               const data::InteractionMatrix* exclude);

  // Popularity-path response with the same per-row exclude semantics as the
  // model path, without attempting the model at all. The serving daemon's
  // admission-control shed and fault-injection degrade paths answer through
  // this: a full queue or an injected worker fault still yields a ranked
  // list. Counts as one (degraded) request in the aggregate counters.
  Response ServeDegraded(std::string reason, int k,
                         const data::InteractionMatrix* exclude,
                         const std::vector<int32_t>& rows);

  // Ops counters: total requests served and how many of them degraded.
  int64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  int64_t degraded_responses() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  // The popularity ranking itself (most-interacted first), with items whose
  // `skip(item)` is true filtered out. Exposed for tests.
  template <typename Skip>
  std::vector<std::pair<data::ItemId, double>> PopularityTopK(
      int k, const Skip& skip) const {
    std::vector<std::pair<data::ItemId, double>> ranked;
    if (k < 1) return ranked;
    for (data::ItemId item = 0;
         item < static_cast<data::ItemId>(counts_.size()); ++item) {
      if (!skip(item)) ranked.emplace_back(item, counts_[item]);
    }
    // Stable total order: count descending, id ascending.
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second != b.second) return a.second > b.second;
                       return a.first < b.first;
                     });
    if (ranked.size() > static_cast<size_t>(k)) ranked.resize(k);
    return ranked;
  }

 private:
  // Serves the popularity ranking with per-row exclude semantics matching
  // the failed model call; `rows` are the entity rows of `exclude` to
  // consult (bounds-guarded — this path must not crash on the very inputs
  // that made the model path fail).
  Response Degrade(std::string error, int k,
                   const data::InteractionMatrix* exclude,
                   const std::vector<int32_t>& rows,
                   Response::Source source);

  // Concurrency contract (DESIGN.md §14): this class owns no mutex. The
  // engine pointer and popularity counts are immutable after construction;
  // the ops counters are atomics.
  InferenceEngine* const engine_;  // null = permanently degraded
  std::vector<double> counts_ GROUPSA_NOT_GUARDED("immutable after ctor");
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> degraded_{0};
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_FALLBACK_RECOMMENDER_H_
