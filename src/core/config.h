#ifndef GROUPSA_CORE_CONFIG_H_
#define GROUPSA_CORE_CONFIG_H_

#include <string>
#include <vector>

namespace groupsa::core {

// Choice of the f(i,j) closeness function behind the social bias matrix
// (Eq. 5). The paper's experiments use the direct-connection indicator but
// explicitly allow "any real-valued score function (such as PageRank,
// closeness and betweeness)"; the graph-proximity variants unmask member
// pairs whose proximity exceeds `closeness_threshold` (a direct edge always
// unmasks).
enum class SocialCloseness {
  kDirectEdge,
  kCommonNeighbors,  // |N(i) ∩ N(j)| > threshold
  kJaccard,          // Jaccard coefficient > threshold
  kAdamicAdar,       // Adamic-Adar score > threshold
};

const char* ToString(SocialCloseness closeness);

// Hyper-parameters and component switches of GroupSA. Defaults follow the
// paper's Sec. III-E (d = 32, dropout 0.1, Adam) with epoch/batch settings
// sized for CPU-scale synthetic data. The boolean switches express the
// paper's ablation variants (Sec. V-A/V-B); presets below configure them.
struct GroupSaConfig {
  std::string variant = "GroupSA";

  // Dimensions (the paper sets d_model = d_k = d_v = 32 everywhere).
  int embedding_dim = 32;
  int attention_hidden = 32;  // hidden width of the vanilla attention nets
  int ffn_hidden = 32;        // FFN width inside the voting blocks
  // Predictor MLP hidden widths (input is 2*embedding_dim).
  std::vector<int> predictor_hidden = {32, 16};
  // Fusion MLP hidden widths for the final user latent factor (Eq. 19).
  std::vector<int> fusion_hidden = {32};

  // Paper hyper-parameters.
  int num_voting_layers = 1;      // N_X (Table VI; 1 for Yelp, 2 for Douban)
  int top_h = 4;                  // H, TF-IDF neighbourhood size (Sec. II-D)
  int num_negatives = 1;          // N, negatives per positive (Table VIII)
  // w^u (Eq. 23, Table VII). The paper's sweep peaks at 0.9 on Yelp; our
  // CPU-scale sweep (bench_table7_wu) peaks at 0.5 with the same interior-
  // optimum shape, so that is the default here.
  float user_score_blend = 0.5f;

  // Optimization.
  float learning_rate = 0.005f;
  float weight_decay = 1e-6f;  // lambda of Eq. 21/24, as coupled L2
  float dropout_ratio = 0.1f;
  int user_epochs = 10;   // stage 1 (L_R)
  int group_epochs = 10;  // stage 2 (L_G)
  int batch_size = 64;
  // Width of the global thread pool (common/thread_pool.h) used by the
  // tensor kernels, the sharded trainer and the evaluator. 0 leaves the
  // pool as-is (GROUPSA_THREADS env or a prior SetGlobalThreads call);
  // values >= 1 resize it when the Trainer is constructed. Results are
  // bit-identical at any width — see the determinism contract in
  // common/thread_pool.h.
  int threads = 0;

  // Component switches (true = paper's full GroupSA).
  bool use_voting_scheme = true;       // stacked self-attention (Sec. II-C)
  bool use_social_mask = true;         // social bias matrix S (Eq. 4-5)
  bool use_item_aggregation = true;    // Eq. 11-14
  bool use_social_aggregation = true;  // Eq. 15-18
  bool use_user_task = true;           // joint training stage 1 (Sec. II-E)
  // Share one prediction tower between Eq. 20 and Eq. 22. The paper writes
  // the two MLPs separately but trains them jointly over shared embeddings;
  // with the group representation living in the user-embedding space
  // (residual voting blocks), sharing the tower is what lets the abundant
  // user-item signal reach the group head through sparse group data. The
  // `bench_ablation_design` bench quantifies this choice.
  bool share_predictors = true;
  // During stage 2, alternate each group-item pass with a user-item pass so
  // the shared embeddings/tower stay anchored to the dense signal while the
  // group head fine-tunes ("joint model optimization ... simultaneously",
  // Sec. II-E). Ignored when use_user_task is false.
  bool interleave_user_in_stage2 = true;
  // Feed the voting scheme enhanced member representations emb_j + h_j
  // instead of the bare embeddings (the paper's footnote 2 names emb^U as
  // the first-layer input). Off by default: empirically the ReLU-shaped h_j
  // pollutes the embedding space the shared tower was trained on and hurts
  // the group head; bench_ablation_design quantifies this.
  bool use_enhanced_member_reps = false;
  // Score the latent channel r^R2 (Eq. 23) with its own tower instead of
  // reusing the Eq. 22 MLP. The paper feeds [h_j (+) x_h^V] into "the same
  // MLP network", but the ReLU-shaped latents live in a different input
  // distribution than the embeddings; one tower serving both degrades its
  // response on the embedding manifold that the (shared) group head relies
  // on. bench_ablation_design quantifies this.
  bool separate_latent_tower = true;
  // Stop the gradient flowing from the user-modeling attention guides back
  // into the shared user embedding. The embedding serves two roles — tower
  // input (Eq. 20/22) and attention query (Eq. 13/17) — and at small scale
  // the query role visibly degrades the tower role, which the (shared)
  // group head depends on. Detaching keeps the paper's forward pass
  // unchanged while decoupling the roles during training.
  bool detach_attention_guides = true;
  // Also train the group head on user-item interactions by treating each
  // user as a one-member group (AGREE trains exactly this way). The
  // singleton pass drives the dense user-item signal through the voting
  // blocks, the group attention and the prediction tower, which the sparse
  // group-item data alone cannot train well.
  bool train_group_head_on_singletons = true;
  // Use the shared user/item embedding tables as the social-space and
  // item-space latent factors (x^S := emb^U, x^V := emb^V) instead of
  // learning two separate cold tables. The paper introduces x^S/x^V as
  // their own latent spaces, but at small scale separate tables never
  // mature; tying them routes the dense user-item signal through the
  // aggregation networks (and is how the social graph actually helps).
  bool tie_latent_spaces = true;
  // Add a user-user BPR term to stage 1: for each social edge (u, v),
  // sigmoid(emb_u . emb_v) is pushed above sampled non-neighbors. Sec. II-E
  // says stage 1 learns the embeddings "by utilizing the user-item and
  // user-user interaction data"; this is the user-user part, and it is what
  // makes the homophilous social structure reach the embeddings directly.
  bool use_social_objective = true;
  // f(i,j) for the Eq. 5 mask; see SocialCloseness above.
  SocialCloseness social_closeness = SocialCloseness::kDirectEdge;
  double closeness_threshold = 0.0;

  bool user_modeling_enabled() const {
    return use_item_aggregation || use_social_aggregation;
  }
  // Effective w^u: without user modeling the blended latent-factor score
  // r^R2 does not exist, so Eq. 23 degenerates to r^R1.
  float effective_user_blend() const {
    return user_modeling_enabled() ? user_score_blend : 0.0f;
  }

  // Paper variants.
  static GroupSaConfig Default();
  // Group-A: no voting scheme, no user modeling; vanilla attention only.
  static GroupSaConfig GroupA();
  // Group-S: no (social) self-attention network; vanilla attention
  // aggregation over user-modeling-enhanced embeddings.
  static GroupSaConfig GroupS();
  // Group-I: no item aggregation.
  static GroupSaConfig GroupI();
  // Group-F: no social aggregation.
  static GroupSaConfig GroupF();
  // Group-G: no user-item task; group-item interactions only.
  static GroupSaConfig GroupG();
  // Extension ablation (not in the paper's table): self-attention without
  // the social mask, isolating the contribution of Eq. 4-5.
  static GroupSaConfig NoSocialMask();
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_CONFIG_H_
