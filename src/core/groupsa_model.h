#ifndef GROUPSA_CORE_GROUPSA_MODEL_H_
#define GROUPSA_CORE_GROUPSA_MODEL_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/predictor.h"
#include "core/user_modeling.h"
#include "core/voting_scheme.h"
#include "data/group_table.h"
#include "data/interaction_matrix.h"
#include "data/social_graph.h"
#include "nn/embedding.h"

namespace groupsa::core {

class InferenceEngine;

// Dataset-derived context the model needs at forward time: group membership,
// social connectivity for the voting mask, and the TF-IDF Top-H
// neighbourhoods for user modeling. The pointed-to structures must outlive
// the model.
struct ModelData {
  const data::GroupTable* groups = nullptr;
  const data::SocialGraph* social = nullptr;
  std::vector<std::vector<data::ItemId>> top_items;     // per user
  std::vector<std::vector<data::UserId>> top_friends;   // per user
};

// The GroupSA network (Fig. 1): shared user/item embeddings, the user
// modeling component, the voting scheme, and the two ranking predictors.
// Every ablation variant of the paper is a GroupSaConfig away.
class GroupSaModel : public nn::Module {
 public:
  GroupSaModel(const GroupSaConfig& config, int num_users, int num_items,
               ModelData data, Rng* rng);
  ~GroupSaModel();

  const GroupSaConfig& config() const { return config_; }
  int num_users() const { return user_emb_->count(); }
  int num_items() const { return item_emb_->count(); }

  // ---------------- Training-time graph builders ----------------

  // Per-user forward state shared across the positive and negative items of
  // one training triple.
  struct UserForward {
    data::UserId user = 0;
    ag::TensorPtr embedding;  // emb_j^U, 1 x d
    ag::TensorPtr latent;     // h_j (Eq. 19); null when user modeling is off
  };
  UserForward BuildUserForward(ag::Tape* tape, data::UserId user,
                               bool training, Rng* rng);

  // Blended user-item ranking score r^R (Eq. 22-23).
  ag::TensorPtr ScoreUserItem(ag::Tape* tape, const UserForward& user,
                              data::ItemId item, bool training, Rng* rng);

  // Per-group forward state (voting rounds are item-independent and shared
  // across the candidate items of one triple / ranking case).
  struct GroupForward {
    std::vector<data::UserId> members;
    VotingScheme::MemberReps reps;
  };
  GroupForward BuildGroupForward(ag::Tape* tape, data::GroupId group,
                                 bool training, Rng* rng);
  // Ad-hoc (cold) groups given directly by member list — the OGR setting.
  GroupForward BuildGroupForwardFromMembers(
      ag::Tape* tape, const std::vector<data::UserId>& members, bool training,
      Rng* rng);

  // Group-item ranking score r^G (Eq. 20) plus the member attention weights
  // gamma (Eq. 10) for introspection.
  struct GroupItemScore {
    ag::TensorPtr score;            // 1 x 1
    tensor::Matrix member_weights;  // 1 x l
  };
  GroupItemScore ScoreGroupItem(ag::Tape* tape, const GroupForward& group,
                                data::ItemId item, bool training, Rng* rng);

  // ---------------- Inference (no-tape) scoring ----------------

  // Scores `items` for a user / group; higher = more preferred. These
  // delegate to the batched InferenceEngine (see inference_engine.h): one
  // cached representation per entity, one GEMM pass over all candidates.
  std::vector<double> ScoreItemsForUser(data::UserId user,
                                        const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForGroup(
      data::GroupId group, const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForMembers(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items);

  // Per-item reference implementations (one tape-free autograd forward per
  // candidate). The engine's batched scores are bit-identical to these; they
  // stay as the parity oracle and as the direct analogue of the training
  // graph. O(items) scalar forwards — use the batched entry points above for
  // anything catalog-sized.
  std::vector<double> ScoreItemsForUserPerItem(
      data::UserId user, const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForGroupPerItem(
      data::GroupId group, const std::vector<data::ItemId>& items);
  std::vector<double> ScoreItemsForMembersPerItem(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items);

  // Per-member score matrix [member][item] via the blended user score; the
  // substrate of the fast recommender (Sec. II-F) and the static score
  // aggregation baselines (Group+avg/lm/ms).
  std::vector<std::vector<double>> MemberItemScores(
      const std::vector<data::UserId>& members,
      const std::vector<data::ItemId>& items);

  // Detailed single-pair scoring for the Table IV case study.
  GroupItemScore ScoreGroupItemDetailed(data::GroupId group,
                                        data::ItemId item);

  // Full-catalog Top-K recommendation; items observed in `exclude` (pass the
  // all-interactions matrix) are skipped. Returns (item, score) sorted by
  // descending score.
  std::vector<std::pair<data::ItemId, double>> RecommendForGroup(
      data::GroupId group, int k, const data::InteractionMatrix* exclude);
  std::vector<std::pair<data::ItemId, double>> RecommendForUser(
      data::UserId user, int k, const data::InteractionMatrix* exclude);

  // ---------------- Static validation ----------------

  // Builds a representative combined user+group training graph on a probe
  // tape with structure recording forced on and runs the graph validator
  // (analysis/graph_lint.h) over it: every op must pass shape inference, no
  // tensor may be written twice, no parameter may be overwritten, and every
  // registered parameter must be reachable backward from the loss — i.e. the
  // wiring the optimizer assumes actually exists. Returns Ok on a
  // well-formed graph, otherwise an error with op-by-op diagnostics. Cheap
  // (one tiny forward pass); never mutates parameters or RNG state reachable
  // from training.
  Status ValidateGraph();

  nn::Embedding& user_embedding() { return *user_emb_; }
  nn::Embedding& item_embedding() { return *item_emb_; }
  const ModelData& model_data() const { return data_; }

  // The batched serving path; owned by the model so every consumer of the
  // inference entry points above shares one representation cache.
  InferenceEngine& inference() { return *inference_; }

  // ---------------- Component access (inference engine) ----------------
  const VotingScheme& voting() const { return *voting_; }
  // Null when user modeling is disabled.
  const UserModeling* user_modeling() const { return user_modeling_.get(); }
  // Tower scoring r^R1 (Eq. 22).
  const RankPredictor& user_tower() const { return *user_predictor_; }
  // Tower scoring r^R2 (Eq. 23): the dedicated tower when configured,
  // otherwise shared with r^R1.
  const RankPredictor& latent_tower() const {
    return latent_predictor_ != nullptr ? *latent_predictor_
                                        : *user_predictor_;
  }
  // Tower scoring r^G (Eq. 20): shared with r^R1 unless share_predictors is
  // off.
  const RankPredictor& group_tower() const {
    return config_.share_predictors ? *user_predictor_ : *group_predictor_;
  }

 private:
  GroupSaConfig config_;
  ModelData data_;
  std::unique_ptr<nn::Embedding> user_emb_;
  std::unique_ptr<nn::Embedding> item_emb_;
  std::unique_ptr<UserModeling> user_modeling_;  // null when disabled
  std::unique_ptr<VotingScheme> voting_;
  std::unique_ptr<RankPredictor> user_predictor_;
  std::unique_ptr<RankPredictor> latent_predictor_;  // r^R2 tower (config)
  std::unique_ptr<RankPredictor> group_predictor_;
  std::unique_ptr<InferenceEngine> inference_;
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_GROUPSA_MODEL_H_
