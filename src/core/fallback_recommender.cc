#include "core/fallback_recommender.h"

namespace groupsa::core {
namespace {

// Bounds-guarded exclude check: any in-range row that observed `item` skips
// it; out-of-range rows (the degraded path may be serving the very ids that
// failed validation) are simply ignored.
bool AnyRowHas(const data::InteractionMatrix* exclude,
               const std::vector<int32_t>& rows, data::ItemId item) {
  if (exclude == nullptr) return false;
  for (int32_t row : rows) {
    if (row < 0 || row >= exclude->num_rows()) continue;
    if (exclude->Has(row, item)) return true;
  }
  return false;
}

}  // namespace

FallbackRecommender::FallbackRecommender(InferenceEngine* engine,
                                         const data::EdgeList& popularity,
                                         int num_items)
    : engine_(engine), counts_(num_items > 0 ? num_items : 0, 0.0) {
  for (const data::Edge& edge : popularity) {
    if (edge.item >= 0 && edge.item < static_cast<data::ItemId>(counts_.size()))
      counts_[edge.item] += 1.0;
  }
}

FallbackRecommender::Response FallbackRecommender::Degrade(
    std::string error, int k, const data::InteractionMatrix* exclude,
    const std::vector<int32_t>& rows, Response::Source source) {
  degraded_.fetch_add(1, std::memory_order_relaxed);
  Response response;
  response.degraded = true;
  response.error = std::move(error);
  response.source = source;
  response.items = PopularityTopK(k, [&](data::ItemId item) {
    return AnyRowHas(exclude, rows, item);
  });
  return response;
}

FallbackRecommender::Response FallbackRecommender::ServeDegraded(
    std::string reason, int k, const data::InteractionMatrix* exclude,
    const std::vector<int32_t>& rows) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  return Degrade(std::move(reason), k, exclude, rows,
                 Response::Source::kBypassed);
}

FallbackRecommender::Response FallbackRecommender::RecommendForUser(
    data::UserId user, int k, const data::InteractionMatrix* exclude) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (engine_ == nullptr)
    return Degrade("model unavailable", k, exclude, {user},
                   Response::Source::kNoEngine);
  Response response;
  Status s = engine_->RecommendForUser(user, k, exclude, &response.items);
  if (!s.ok())
    return Degrade(s.message(), k, exclude, {user},
                   Response::Source::kEngineError);
  return response;
}

FallbackRecommender::Response FallbackRecommender::RecommendForGroup(
    data::GroupId group, int k, const data::InteractionMatrix* exclude) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (engine_ == nullptr)
    return Degrade("model unavailable", k, exclude, {group},
                   Response::Source::kNoEngine);
  Response response;
  Status s = engine_->RecommendForGroup(group, k, exclude, &response.items);
  if (!s.ok())
    return Degrade(s.message(), k, exclude, {group},
                   Response::Source::kEngineError);
  return response;
}

FallbackRecommender::Response FallbackRecommender::RecommendForMembers(
    const std::vector<data::UserId>& members, int k,
    const data::InteractionMatrix* exclude) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (engine_ == nullptr)
    return Degrade("model unavailable", k, exclude, members,
                   Response::Source::kNoEngine);
  Response response;
  Status s =
      engine_->RecommendForMembers(members, k, exclude, &response.items);
  if (!s.ok())
    return Degrade(s.message(), k, exclude, members,
                   Response::Source::kEngineError);
  return response;
}

}  // namespace groupsa::core
