#ifndef GROUPSA_CORE_TOPK_H_
#define GROUPSA_CORE_TOPK_H_

#include <functional>
#include <utility>
#include <vector>

#include "data/types.h"

namespace groupsa::core {

// Top-K selection over a full-catalog score vector (scores[v] is the score
// of item v). Items for which `skip` returns true are dropped before
// ranking; pass nullptr to keep everything. Returns (item, score) sorted by
// descending score, ties broken by ascending item id.
//
// Selection uses std::nth_element to cut the candidate set to K before the
// final sort, so full-catalog ranking costs O(n + k log k) instead of
// O(n log n). Because the comparator is a strict total order (the item-id
// tie-break), the result is identical to sorting everything and truncating.
std::vector<std::pair<data::ItemId, double>> TopKItems(
    const std::vector<double>& scores, int k,
    const std::function<bool(data::ItemId)>& skip = nullptr);

// The 0..num_items-1 identity catalog used by every full-catalog ranking
// entry point.
std::vector<data::ItemId> AllItems(int num_items);

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_TOPK_H_
