#ifndef GROUPSA_CORE_TOPK_H_
#define GROUPSA_CORE_TOPK_H_

#include <functional>
#include <utility>
#include <vector>

#include "data/types.h"

namespace groupsa::core {

// The single strict-total-order comparator behind every ranking path in the
// library: higher score first, equal scores broken by ascending item id.
// Exact scoring, IVF re-rank and probe selection all rank through this one
// function, which is what lets tied scores come out byte-identical across
// paths (and across the nth_element cut vs full-sort code paths below).
bool BetterRanked(const std::pair<data::ItemId, double>& a,
                  const std::pair<data::ItemId, double>& b);

// Top-K selection over a full-catalog score vector (scores[v] is the score
// of item v). Items for which `skip` returns true are dropped before
// ranking; pass nullptr to keep everything. Returns (item, score) sorted by
// BetterRanked: descending score, ties broken by ascending item id.
//
// Selection uses std::nth_element to cut the candidate set to K before the
// final sort, so full-catalog ranking costs O(n + k log k) instead of
// O(n log n). Because the comparator is a strict total order (the item-id
// tie-break), the result is identical to sorting everything and truncating.
std::vector<std::pair<data::ItemId, double>> TopKItems(
    const std::vector<double>& scores, int k,
    const std::function<bool(data::ItemId)>& skip = nullptr);

// Subset variant for candidate re-ranking: scores[i] is the score of
// items[i] (any order, no duplicates expected). Same comparator, same
// nth_element-then-sort selection, so ranking a subset that happens to cover
// the whole catalog returns exactly what the full-catalog overload would.
std::vector<std::pair<data::ItemId, double>> TopKItems(
    const std::vector<data::ItemId>& items, const std::vector<double>& scores,
    int k, const std::function<bool(data::ItemId)>& skip = nullptr);

// The 0..num_items-1 identity catalog used by every full-catalog ranking
// entry point.
std::vector<data::ItemId> AllItems(int num_items);

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_TOPK_H_
