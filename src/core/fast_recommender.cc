#include "core/fast_recommender.h"

#include <algorithm>
#include <memory>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/inference_engine.h"
#include "core/topk.h"

namespace groupsa::core {

std::vector<double> FastGroupRecommender::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) const {
  GROUPSA_CHECK(!members.empty(), "fast recommender needs members");
  const std::vector<std::vector<double>> per_member =
      model_->MemberItemScores(members, items);
  std::vector<double> averaged(items.size(), 0.0);
  for (const auto& member_scores : per_member) {
    for (size_t i = 0; i < items.size(); ++i)
      averaged[i] += member_scores[i];
  }
  for (double& s : averaged) s /= static_cast<double>(members.size());
  return averaged;
}

std::vector<std::pair<data::ItemId, double>>
FastGroupRecommender::RecommendForMembers(
    const std::vector<data::UserId>& members, int k,
    const data::InteractionMatrix* exclude) const {
  const auto skip = [&](data::ItemId item) {
    if (exclude == nullptr) return false;
    for (data::UserId member : members)
      if (exclude->Has(member, item)) return true;
    return false;
  };
  if (score_ == ScoreMode::kInt8) {
    GROUPSA_CHECK(!members.empty(), "fast recommender needs members");
    InferenceEngine& engine = model_->inference();
    const double inv_members = 1.0 / static_cast<double>(members.size());
    std::vector<data::ItemId> candidates;
    if (mode_ == TopKMode::kIvf) {
      // Coarse stage over the quantized member reps, averaged exactly like
      // the fine stage.
      const std::shared_ptr<const ItemIndex> index = engine.GetOrBuildIndex();
      if (index->nlist() == 0) return {};
      std::vector<double> coarse(static_cast<size_t>(index->nlist()), 0.0);
      for (data::UserId member : members) {
        const std::vector<double> member_scores =
            engine.QuantScoreCentroidsForUser(member);
        for (size_t j = 0; j < coarse.size(); ++j)
          coarse[j] += member_scores[j];
      }
      for (double& s : coarse) s *= inv_members;
      candidates = index->Candidates(index->SelectProbes(coarse, /*nprobe=*/0));
    } else {
      candidates = AllItems(model_->num_items());
    }
    // int8 scan: mean of the members' approximate scores.
    std::vector<double> approx(candidates.size(), 0.0);
    for (data::UserId member : members) {
      const std::vector<double> member_scores =
          engine.ApproxScoreItemsForUser(member, candidates);
      for (size_t j = 0; j < approx.size(); ++j) approx[j] += member_scores[j];
    }
    for (double& s : approx) s *= inv_members;
    const int rerank = std::max(k, engine.int8_config().rerank_k);
    const std::vector<std::pair<data::ItemId, double>> shortlist =
        TopKItems(candidates, approx, rerank, skip);
    std::vector<data::ItemId> ids;
    ids.reserve(shortlist.size());
    for (const auto& entry : shortlist) ids.push_back(entry.first);
    // Exact FP32 re-rank over the dequantized cached member reps.
    std::vector<double> exact(ids.size(), 0.0);
    for (data::UserId member : members) {
      const std::vector<double> member_scores =
          engine.QuantScoreItemsForUser(member, ids);
      for (size_t j = 0; j < exact.size(); ++j) exact[j] += member_scores[j];
    }
    for (double& s : exact) s *= inv_members;
    return TopKItems(ids, exact, k, nullptr);  // shortlist already filtered
  }
  if (mode_ == TopKMode::kIvf) {
    GROUPSA_CHECK(!members.empty(), "fast recommender needs members");
    InferenceEngine& engine = model_->inference();
    const std::shared_ptr<const ItemIndex> index = engine.GetOrBuildIndex();
    if (index->nlist() == 0) return {};
    // Coarse stage under the same averaging contract as the fine stage: a
    // list's score is the members' mean exact score of its pseudo-item.
    std::vector<double> coarse(static_cast<size_t>(index->nlist()), 0.0);
    for (data::UserId member : members) {
      const std::vector<double> member_scores =
          engine.ScoreCentroidsForUser(member);
      for (size_t j = 0; j < coarse.size(); ++j)
        coarse[j] += member_scores[j];
    }
    for (double& s : coarse) s /= static_cast<double>(members.size());
    const std::vector<data::ItemId> candidates =
        index->Candidates(index->SelectProbes(coarse, /*nprobe=*/0));
    const std::vector<double> scores =
        ScoreItemsForMembers(members, candidates);
    return TopKItems(candidates, scores, k, skip);
  }
  const std::vector<double> scores =
      ScoreItemsForMembers(members, AllItems(model_->num_items()));
  return TopKItems(scores, k, skip);
}

Status FastGroupRecommender::ValidateMembers(
    const std::vector<data::UserId>& members) const {
  if (members.empty()) return Status::Error("empty member list");
  for (data::UserId member : members) {
    if (member < 0 || member >= model_->num_users()) {
      return Status::Error(StrFormat("member id %d out of range [0, %d)",
                                     member, model_->num_users()));
    }
  }
  return Status::Ok();
}

Status FastGroupRecommender::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items,
    std::vector<double>* scores) const {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  for (data::ItemId item : items) {
    if (item < 0 || item >= model_->num_items()) {
      return Status::Error(StrFormat("item id %d out of range [0, %d)", item,
                                     model_->num_items()));
    }
  }
  *scores = ScoreItemsForMembers(members, items);
  return Status::Ok();
}

Status FastGroupRecommender::RecommendForMembers(
    const std::vector<data::UserId>& members, int k,
    const data::InteractionMatrix* exclude,
    std::vector<std::pair<data::ItemId, double>>* out) const {
  GROUPSA_RETURN_IF_ERROR(ValidateMembers(members));
  if (k < 1) return Status::Error(StrFormat("k must be positive, got %d", k));
  *out = RecommendForMembers(members, k, exclude);
  return Status::Ok();
}

}  // namespace groupsa::core
