#include "core/fast_recommender.h"

#include "common/macros.h"
#include "core/topk.h"

namespace groupsa::core {

std::vector<double> FastGroupRecommender::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) const {
  GROUPSA_CHECK(!members.empty(), "fast recommender needs members");
  const std::vector<std::vector<double>> per_member =
      model_->MemberItemScores(members, items);
  std::vector<double> averaged(items.size(), 0.0);
  for (const auto& member_scores : per_member) {
    for (size_t i = 0; i < items.size(); ++i)
      averaged[i] += member_scores[i];
  }
  for (double& s : averaged) s /= static_cast<double>(members.size());
  return averaged;
}

std::vector<std::pair<data::ItemId, double>>
FastGroupRecommender::RecommendForMembers(
    const std::vector<data::UserId>& members, int k,
    const data::InteractionMatrix* exclude) const {
  const std::vector<double> scores =
      ScoreItemsForMembers(members, AllItems(model_->num_items()));
  return TopKItems(scores, k, [&](data::ItemId item) {
    if (exclude == nullptr) return false;
    for (data::UserId member : members)
      if (exclude->Has(member, item)) return true;
    return false;
  });
}

}  // namespace groupsa::core
