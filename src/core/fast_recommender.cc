#include "core/fast_recommender.h"

#include <algorithm>

#include "common/macros.h"

namespace groupsa::core {

std::vector<double> FastGroupRecommender::ScoreItemsForMembers(
    const std::vector<data::UserId>& members,
    const std::vector<data::ItemId>& items) const {
  GROUPSA_CHECK(!members.empty(), "fast recommender needs members");
  const std::vector<std::vector<double>> per_member =
      model_->MemberItemScores(members, items);
  std::vector<double> averaged(items.size(), 0.0);
  for (const auto& member_scores : per_member) {
    for (size_t i = 0; i < items.size(); ++i)
      averaged[i] += member_scores[i];
  }
  for (double& s : averaged) s /= static_cast<double>(members.size());
  return averaged;
}

std::vector<std::pair<data::ItemId, double>>
FastGroupRecommender::RecommendForMembers(
    const std::vector<data::UserId>& members, int k) const {
  std::vector<data::ItemId> all_items(model_->num_items());
  for (int v = 0; v < model_->num_items(); ++v) all_items[v] = v;
  const std::vector<double> scores =
      ScoreItemsForMembers(members, all_items);
  std::vector<std::pair<data::ItemId, double>> ranked;
  ranked.reserve(scores.size());
  for (size_t v = 0; v < scores.size(); ++v)
    ranked.emplace_back(static_cast<data::ItemId>(v), scores[v]);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (static_cast<int>(ranked.size()) > k) ranked.resize(k);
  return ranked;
}

}  // namespace groupsa::core
