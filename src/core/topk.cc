#include "core/topk.h"

#include <algorithm>

#include "common/macros.h"

namespace groupsa::core {
namespace {

// Cuts `ranked` to its top k under BetterRanked and sorts the survivors.
// The nth_element cut and the final sort share the comparator, so the two
// code paths (k < size vs k >= size) produce identical orderings on ties.
void CutAndSort(std::vector<std::pair<data::ItemId, double>>* ranked, int k) {
  if (static_cast<int>(ranked->size()) > k) {
    std::nth_element(ranked->begin(), ranked->begin() + k, ranked->end(),
                     BetterRanked);
    ranked->resize(static_cast<size_t>(k));
  }
  std::sort(ranked->begin(), ranked->end(), BetterRanked);
}

}  // namespace

bool BetterRanked(const std::pair<data::ItemId, double>& a,
                  const std::pair<data::ItemId, double>& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

std::vector<std::pair<data::ItemId, double>> TopKItems(
    const std::vector<double>& scores, int k,
    const std::function<bool(data::ItemId)>& skip) {
  std::vector<std::pair<data::ItemId, double>> ranked;
  if (k <= 0) return ranked;
  ranked.reserve(scores.size());
  for (size_t v = 0; v < scores.size(); ++v) {
    const auto item = static_cast<data::ItemId>(v);
    if (skip != nullptr && skip(item)) continue;
    ranked.emplace_back(item, scores[v]);
  }
  CutAndSort(&ranked, k);
  return ranked;
}

std::vector<std::pair<data::ItemId, double>> TopKItems(
    const std::vector<data::ItemId>& items, const std::vector<double>& scores,
    int k, const std::function<bool(data::ItemId)>& skip) {
  GROUPSA_CHECK(items.size() == scores.size(),
                "TopKItems subset: items/scores size mismatch");
  std::vector<std::pair<data::ItemId, double>> ranked;
  if (k <= 0) return ranked;
  ranked.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (skip != nullptr && skip(items[i])) continue;
    ranked.emplace_back(items[i], scores[i]);
  }
  CutAndSort(&ranked, k);
  return ranked;
}

std::vector<data::ItemId> AllItems(int num_items) {
  std::vector<data::ItemId> items(num_items);
  for (int v = 0; v < num_items; ++v) items[v] = v;
  return items;
}

}  // namespace groupsa::core
