#include "core/topk.h"

#include <algorithm>

namespace groupsa::core {

std::vector<std::pair<data::ItemId, double>> TopKItems(
    const std::vector<double>& scores, int k,
    const std::function<bool(data::ItemId)>& skip) {
  std::vector<std::pair<data::ItemId, double>> ranked;
  if (k <= 0) return ranked;
  ranked.reserve(scores.size());
  for (size_t v = 0; v < scores.size(); ++v) {
    const auto item = static_cast<data::ItemId>(v);
    if (skip != nullptr && skip(item)) continue;
    ranked.emplace_back(item, scores[v]);
  }
  const auto better = [](const std::pair<data::ItemId, double>& a,
                         const std::pair<data::ItemId, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (static_cast<int>(ranked.size()) > k) {
    std::nth_element(ranked.begin(), ranked.begin() + k, ranked.end(), better);
    ranked.resize(k);
  }
  std::sort(ranked.begin(), ranked.end(), better);
  return ranked;
}

std::vector<data::ItemId> AllItems(int num_items) {
  std::vector<data::ItemId> items(num_items);
  for (int v = 0; v < num_items; ++v) items[v] = v;
  return items;
}

}  // namespace groupsa::core
