#ifndef GROUPSA_CORE_USER_MODELING_H_
#define GROUPSA_CORE_USER_MODELING_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "data/types.h"
#include "nn/attention_pool.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace groupsa::core {

// User modeling component (Sec. II-D): learns the final user latent factor
// h_j by attention-aggregating the item-space latent factors of the user's
// TF-IDF Top-H items (Eq. 11-14) and the social-space latent factors of her
// Top-H friends (Eq. 15-18), then fusing both with an MLP (Eq. 19).
//
// Depending on config.tie_latent_spaces the component either owns separate
// x^V / x^S tables (the paper's literal reading) or backs them with the
// model's shared embedding tables; the shared user embedding emb^U guides
// the attention in both cases.
class UserModeling : public nn::Module {
 public:
  // `shared_user` / `shared_item` are the model's embedding tables; they
  // back x^S / x^V when config.tie_latent_spaces is set (pass non-null in
  // that case) and are otherwise unused.
  UserModeling(const GroupSaConfig& config, int num_users, int num_items,
               Rng* rng, nn::Embedding* shared_user = nullptr,
               nn::Embedding* shared_item = nullptr);

  // Builds h_j for `user`. `user_embedding` is the 1 x d shared embedding
  // emb_j^U (attention guide); `top_items` / `top_friends` are the
  // pre-computed TF-IDF Top-H lists (either may be empty, in which case the
  // corresponding side contributes a zero vector). Returns a 1 x d tensor.
  ag::TensorPtr BuildUserLatent(ag::Tape* tape,
                                const ag::TensorPtr& user_embedding,
                                const std::vector<data::ItemId>& top_items,
                                const std::vector<data::UserId>& top_friends,
                                bool training, Rng* rng);

  // Item-space latent factor lookup x_h^V (used as the item side of the
  // blended prediction r^R2, Eq. 23).
  ag::TensorPtr ItemLatent(ag::Tape* tape, data::ItemId item);

  const GroupSaConfig& config() const { return config_; }
  // False for Group-I, whose blended score uses the shared item embedding
  // in place of x^V.
  bool has_item_space() const { return item_space_ != nullptr; }
  // The x^V table (null for Group-I); the inference engine gathers candidate
  // latents from it in bulk.
  const nn::Embedding* item_space() const { return item_space_; }

 private:
  GroupSaConfig config_;
  std::unique_ptr<nn::Embedding> owned_item_space_;
  std::unique_ptr<nn::Embedding> owned_social_space_;
  nn::Embedding* item_space_ = nullptr;    // x^V, items x d
  nn::Embedding* social_space_ = nullptr;  // x^S, users x d
  std::unique_ptr<nn::AttentionPool> item_pool_;
  std::unique_ptr<nn::AttentionPool> social_pool_;
  std::unique_ptr<nn::Linear> item_proj_;    // outer sigma(W . + b), Eq. 11
  std::unique_ptr<nn::Linear> social_proj_;  // Eq. 15
  std::unique_ptr<nn::Mlp> fusion_;          // Eq. 19
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_USER_MODELING_H_
