#ifndef GROUPSA_CORE_VOTING_SCHEME_H_
#define GROUPSA_CORE_VOTING_SCHEME_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "data/social_graph.h"
#include "data/types.h"
#include "nn/attention_pool.h"
#include "nn/transformer_block.h"

namespace groupsa::core {

// Voting scheme modeling (Sec. II-C): a stack of N_X social self-attention
// blocks simulates repeated voting rounds over the group members; a vanilla
// attention network guided by the target item then aggregates the per-member
// sub-group representations into the group representation x_t^G (Eq. 7-10).
class VotingScheme : public nn::Module {
 public:
  VotingScheme(const GroupSaConfig& config, Rng* rng);

  // Result of running the voting rounds for one group.
  struct MemberReps {
    ag::TensorPtr reps;  // l x d: x_{t,i}^U for each member
    // Post-softmax attention of each voting round (empty when the voting
    // scheme is disabled). Used by the Table IV case study.
    std::vector<tensor::Matrix> round_attention;
  };

  // `member_embeddings` is l x d (emb^U rows of the group members; footnote 1
  // of the paper). `social` provides the f(i,j) connectivity for the bias
  // matrix; ignored when the config disables the mask.
  MemberReps BuildMemberReps(ag::Tape* tape,
                             const ag::TensorPtr& member_embeddings,
                             const std::vector<data::UserId>& members,
                             const data::SocialGraph& social) const;

  // Group aggregation for a target item.
  struct GroupRep {
    ag::TensorPtr rep;              // 1 x d: x_t^G (Eq. 7)
    tensor::Matrix member_weights;  // 1 x l: gamma_{t,i} (Eq. 10)
  };
  GroupRep AggregateGroup(ag::Tape* tape, const MemberReps& member_reps,
                          const ag::TensorPtr& item_embedding) const;

  // Aggregation layers, exposed so the batched inference engine can run
  // AggregateGroup for every candidate item in one pass.
  const nn::AttentionPool& group_pool() const { return *group_pool_; }
  const nn::Linear& group_proj() const { return *group_proj_; }

 private:
  GroupSaConfig config_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  std::unique_ptr<nn::AttentionPool> group_pool_;
  std::unique_ptr<nn::Linear> group_proj_;  // outer sigma(W . + b), Eq. 7
};

}  // namespace groupsa::core

#endif  // GROUPSA_CORE_VOTING_SCHEME_H_
