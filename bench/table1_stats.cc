// Table I: statistics of the two synthetic evaluation worlds, printed in the
// paper's row layout. Absolute counts are CPU-scale; the quantities the
// reproduction matches are the ratios (group size, interactions per
// user/group, friends per user).

#include <cstdio>

#include "data/synthetic.h"

int main() {
  using groupsa::data::GenerateWorld;
  using groupsa::data::SyntheticWorldConfig;

  for (const SyntheticWorldConfig& config :
       {SyntheticWorldConfig::YelpLike(),
        SyntheticWorldConfig::DoubanEventLike()}) {
    const auto world = GenerateWorld(config);
    std::printf("=== Table I — %s ===\n%s\n\n", config.name.c_str(),
                world.dataset.ComputeStats().ToString().c_str());
  }
  std::printf(
      "Paper reference (Yelp / Douban-Event): group size 4.45 / 4.84, "
      "interactions per user 13.98 / 25.22,\nfriends per user 20.77 / 40.86, "
      "interactions per group 1.12 / 1.47.\n");
  return 0;
}
