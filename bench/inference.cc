// Batched inference engine benchmark: full-catalog ranking through the
// per-item reference path (one tape-free autograd forward per candidate,
// GroupSaModel::Score*PerItem) vs the batched InferenceEngine path that every
// production entry point now uses. The two paths are bit-identical by
// contract (see src/core/inference_engine.h); this driver re-verifies the
// 0-ULP claim on every run and exits non-zero on any mismatch, so the timing
// numbers can never silently drift away from the semantics they claim to
// measure.
//
// Flags: --items=N --groups=N --users=N --threads=N --k=N --quick
//        --json=path   (machine-readable result record, see tools/bench.sh)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/groupsa_model.h"
#include "core/inference_engine.h"
#include "core/topk.h"
#include "data/synthetic.h"
#include "data/tfidf.h"

using namespace groupsa;

namespace {

struct Flags {
  int items = 2000;
  int groups = 20;
  int users = 40;
  int threads = 1;
  int k = 10;
  bool quick = false;
  std::string json;
};

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::atoi(arg + n + 1);
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      f.quick = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      f.json = arg + 7;
    } else if (!ParseIntFlag(arg, "--items", &f.items) &&
               !ParseIntFlag(arg, "--groups", &f.groups) &&
               !ParseIntFlag(arg, "--users", &f.users) &&
               !ParseIntFlag(arg, "--threads", &f.threads) &&
               !ParseIntFlag(arg, "--k", &f.k)) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (f.quick) {
    f.items = std::min(f.items, 300);
    f.groups = std::min(f.groups, 3);
    f.users = std::min(f.users, 5);
  }
  return f;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  parallel::SetGlobalThreads(std::max(1, flags.threads));

  // An untrained model scores the same arithmetic as a trained one; the
  // catalog size is what matters here.
  data::SyntheticWorldConfig wc;
  wc.name = "bench_inference";
  wc.num_items = flags.items;
  wc.num_users = 400;
  wc.num_groups = std::max(flags.groups, 100);
  const data::SyntheticWorld world = data::GenerateWorld(wc);
  const data::InteractionMatrix ui_all = world.dataset.UserItemMatrix();

  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  core::ModelData model_data;
  model_data.groups = &world.dataset.groups;
  model_data.social = &world.dataset.social;
  model_data.top_items = data::TopItemsPerUser(ui_all, config.top_h);
  model_data.top_friends =
      data::TopFriendsPerUser(world.dataset.social, config.top_h);
  Rng rng(13);
  core::GroupSaModel model(config, world.dataset.num_users,
                           world.dataset.num_items, model_data, &rng);
  const std::vector<data::ItemId> catalog = core::AllItems(model.num_items());

  std::vector<data::GroupId> groups(flags.groups);
  for (int i = 0; i < flags.groups; ++i)
    groups[i] = i % world.dataset.groups.num_groups();
  std::vector<data::UserId> users(flags.users);
  for (int i = 0; i < flags.users; ++i)
    users[i] = (i * 7) % world.dataset.num_users;

  std::printf("bench_inference: %d items, %d groups, %d users, %d thread(s)\n",
              flags.items, flags.groups, flags.users,
              parallel::GlobalThreads());

  // ---- group tower ----
  Stopwatch sw;
  std::vector<std::vector<double>> group_ref(groups.size());
  for (size_t i = 0; i < groups.size(); ++i)
    group_ref[i] = model.ScoreItemsForGroupPerItem(groups[i], catalog);
  const double group_per_item_s = sw.ElapsedSeconds();

  model.inference().InvalidateAll();  // time cold rep builds too
  sw.Reset();
  std::vector<std::vector<double>> group_batched(groups.size());
  for (size_t i = 0; i < groups.size(); ++i)
    group_batched[i] = model.ScoreItemsForGroup(groups[i], catalog);
  const double group_batched_s = sw.ElapsedSeconds();

  bool identical = true;
  for (size_t i = 0; i < groups.size(); ++i)
    identical = identical && BitIdentical(group_ref[i], group_batched[i]);

  // ---- user tower ----
  sw.Reset();
  std::vector<std::vector<double>> user_ref(users.size());
  for (size_t i = 0; i < users.size(); ++i)
    user_ref[i] = model.ScoreItemsForUserPerItem(users[i], catalog);
  const double user_per_item_s = sw.ElapsedSeconds();

  model.inference().InvalidateAll();
  sw.Reset();
  std::vector<std::vector<double>> user_batched(users.size());
  for (size_t i = 0; i < users.size(); ++i)
    user_batched[i] = model.ScoreItemsForUser(users[i], catalog);
  const double user_batched_s = sw.ElapsedSeconds();

  for (size_t i = 0; i < users.size(); ++i)
    identical = identical && BitIdentical(user_ref[i], user_batched[i]);

  // ---- warm-cache top-K (the serving steady state) ----
  sw.Reset();
  for (data::GroupId g : groups) {
    const auto top = model.RecommendForGroup(g, flags.k, nullptr);
    if (top.empty()) std::abort();
  }
  const double topk_warm_s = sw.ElapsedSeconds();

  const double group_speedup = group_per_item_s / group_batched_s;
  const double user_speedup = user_per_item_s / user_batched_s;
  std::printf("  group full-catalog: per-item %8.3fs  batched %8.3fs  "
              "speedup %6.2fx\n",
              group_per_item_s, group_batched_s, group_speedup);
  std::printf("  user  full-catalog: per-item %8.3fs  batched %8.3fs  "
              "speedup %6.2fx\n",
              user_per_item_s, user_batched_s, user_speedup);
  std::printf("  warm top-%d over %zu groups: %.3fs (%.2f ms/group)\n",
              flags.k, groups.size(), topk_warm_s,
              topk_warm_s * 1000.0 / groups.size());
  std::printf("  bit-identical: %s\n", identical ? "yes" : "NO");

  if (!flags.json.empty()) {
    FILE* out = std::fopen(flags.json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
      return 2;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"inference\",\n"
        "  \"items\": %d,\n"
        "  \"groups\": %d,\n"
        "  \"users\": %d,\n"
        "  \"threads\": %d,\n"
        "  \"group_per_item_seconds\": %.6f,\n"
        "  \"group_batched_seconds\": %.6f,\n"
        "  \"group_speedup\": %.3f,\n"
        "  \"user_per_item_seconds\": %.6f,\n"
        "  \"user_batched_seconds\": %.6f,\n"
        "  \"user_speedup\": %.3f,\n"
        "  \"warm_topk_ms_per_group\": %.4f,\n"
        "  \"bit_identical\": %s\n"
        "}\n",
        flags.items, flags.groups, flags.users, parallel::GlobalThreads(),
        group_per_item_s, group_batched_s, group_speedup, user_per_item_s,
        user_batched_s, user_speedup, topk_warm_s * 1000.0 / groups.size(),
        identical ? "true" : "false");
    std::fclose(out);
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: batched scores diverged from the per-item path\n");
    return 1;
  }
  return 0;
}
