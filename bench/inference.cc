// Batched inference engine benchmark: full-catalog ranking through the
// per-item reference path (one tape-free autograd forward per candidate,
// GroupSaModel::Score*PerItem) vs the batched InferenceEngine path that every
// production entry point now uses. The two paths are bit-identical by
// contract (see src/core/inference_engine.h); this driver re-verifies the
// 0-ULP claim on every run and exits non-zero on any mismatch, so the timing
// numbers can never silently drift away from the semantics they claim to
// measure.
//
// Flags: --items=N --groups=N --users=N --threads=N --k=N --quick
//        --sweep       (catalog-size sweep: exact vs IVF retrieval, below)
//        --json=path   (machine-readable result record, see tools/bench.sh)
//
// --sweep additionally runs the sublinear-retrieval sweep: for each catalog
// size in {2k, 100k, 1M} it builds a fresh world + model, times the
// auto-configured IVF index build (cold), then times warm top-10 requests
// through TopKMode::kExact vs TopKMode::kIvf — and, since schema 3, through
// ScoreMode::kInt8 (quantized scan + exact re-rank) both as a full-catalog
// scan and composed with IVF — and measures recall@10 of every approximate
// answer against the exact ones, all single-thread. Results land in the
// "sweep" array of the JSON record.
//
// Schema 3 also records the selected kernel backend and the int8 memory
// story: bytes per cached user rep in the quantized cache vs the FP32 cost
// of the same reps (the >= 3.5x gate from tests/core/int8_mode_test.cc).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/groupsa_model.h"
#include "core/inference_engine.h"
#include "core/topk.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/tfidf.h"
#include "tensor/backend.h"

using namespace groupsa;

namespace {

struct Flags {
  int items = 2000;
  int groups = 20;
  int users = 40;
  int threads = 1;
  int k = 10;
  bool quick = false;
  bool sweep = false;
  std::string json;
};

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::atoi(arg + n + 1);
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      f.quick = true;
    } else if (std::strcmp(arg, "--sweep") == 0) {
      f.sweep = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      f.json = arg + 7;
    } else if (!ParseIntFlag(arg, "--items", &f.items) &&
               !ParseIntFlag(arg, "--groups", &f.groups) &&
               !ParseIntFlag(arg, "--users", &f.users) &&
               !ParseIntFlag(arg, "--threads", &f.threads) &&
               !ParseIntFlag(arg, "--k", &f.k)) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (f.quick) {
    f.items = std::min(f.items, 300);
    f.groups = std::min(f.groups, 3);
    f.users = std::min(f.users, 5);
  }
  return f;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// Sublinear-retrieval sweep (--sweep)
// ---------------------------------------------------------------------------

struct SweepPoint {
  int items = 0;
  int nlist = 0;
  int nprobe = 0;
  double build_seconds = 0.0;     // cold IVF index build (auto config)
  double exact_ms_per_query = 0.0;  // warm top-10, TopKMode::kExact
  double ivf_ms_per_query = 0.0;    // warm top-10, TopKMode::kIvf
  double speedup = 0.0;
  double recall_at_10 = 0.0;      // IVF top-10 vs exact top-10
  // int8 scan (ScoreMode::kInt8): full-catalog quantized scan + exact
  // re-rank, and the same composed with IVF candidate retrieval.
  double int8_ms_per_query = 0.0;
  double int8_speedup = 0.0;  // vs exact_ms_per_query
  double int8_recall_at_10 = 0.0;
  double ivf_int8_ms_per_query = 0.0;
  double ivf_int8_speedup = 0.0;  // vs exact_ms_per_query
  double ivf_int8_recall_at_10 = 0.0;
};

double Overlap(const std::vector<std::pair<data::ItemId, double>>& exact,
               const std::vector<std::pair<data::ItemId, double>>& approx) {
  if (exact.empty()) return 1.0;
  int hit = 0;
  for (const auto& [item, score] : approx) {
    for (const auto& [want, wscore] : exact) {
      if (want == item) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

SweepPoint RunSweepPoint(int items, int k) {
  data::SyntheticWorldConfig wc;
  wc.name = "bench_sweep";
  wc.num_items = items;
  wc.num_users = 200;
  wc.num_groups = 100;
  const data::SyntheticWorld world = data::GenerateWorld(wc);
  const data::InteractionMatrix ui_all = world.dataset.UserItemMatrix();

  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  core::ModelData model_data;
  model_data.groups = &world.dataset.groups;
  model_data.social = &world.dataset.social;
  model_data.top_items = data::TopItemsPerUser(ui_all, config.top_h);
  model_data.top_friends =
      data::TopFriendsPerUser(world.dataset.social, config.top_h);
  Rng rng(13);
  core::GroupSaModel model(config, world.dataset.num_users,
                           world.dataset.num_items, model_data, &rng);
  core::InferenceEngine& engine = model.inference();

  // Recall is a property of the scoring surface, so measure it in the state
  // the index actually serves: a trained model, whose top items concentrate
  // in few clusters. A random-init surface is uncorrelated with any
  // clustering and would report near-worst-case recall for every index.
  // A few epochs over the (small, fixed-size) edge sets are enough to
  // structure the surface; the timing numbers are arithmetic-identical
  // either way.
  {
    const data::InteractionMatrix gi_all = world.dataset.GroupItemMatrix();
    Rng train_rng(17);
    core::Trainer trainer(&model, world.dataset.user_item,
                          world.dataset.group_item, &ui_all, &gi_all,
                          &train_rng);
    for (int epoch = 0; epoch < 2; ++epoch) {
      trainer.RunUserEpoch();
      trainer.RunGroupEpoch();
    }
  }

  // A fixed mixed workload: 8 group queries + 8 user queries.
  const int kEach = 8;
  std::vector<data::GroupId> groups;
  std::vector<data::UserId> users;
  for (int i = 0; i < kEach; ++i) {
    groups.push_back(i % world.dataset.groups.num_groups());
    users.push_back((i * 7) % world.dataset.num_users);
  }
  const auto run_all = [&] {
    std::vector<std::vector<std::pair<data::ItemId, double>>> out;
    for (data::GroupId g : groups) {
      out.push_back(engine.RecommendForGroup(g, k, nullptr));
      if (out.back().empty()) std::abort();
    }
    for (data::UserId u : users) {
      out.push_back(engine.RecommendForUser(u, k, nullptr));
      if (out.back().empty()) std::abort();
    }
    return out;
  };
  const int num_queries = 2 * kEach;

  SweepPoint point;
  point.items = items;

  // Exact: one warming pass (rep caches, split weights), then the timed one.
  engine.set_topk_mode(core::TopKMode::kExact);
  const auto exact_top = run_all();
  Stopwatch sw;
  run_all();
  point.exact_ms_per_query = sw.ElapsedSeconds() * 1000.0 / num_queries;

  // IVF with the auto-derived (nlist, nprobe): cold build, then warm
  // queries.
  engine.set_index_config(core::ItemIndexConfig{});
  engine.set_topk_mode(core::TopKMode::kIvf);
  sw.Reset();
  const auto index = engine.GetOrBuildIndex();
  point.build_seconds = sw.ElapsedSeconds();
  point.nlist = index->nlist();
  point.nprobe = index->default_nprobe();

  const auto ivf_top = run_all();  // warm the candidate path
  sw.Reset();
  run_all();
  point.ivf_ms_per_query = sw.ElapsedSeconds() * 1000.0 / num_queries;
  point.speedup = point.ivf_ms_per_query > 0.0
                      ? point.exact_ms_per_query / point.ivf_ms_per_query
                      : 0.0;

  double recall = 0.0;
  for (size_t i = 0; i < exact_top.size(); ++i)
    recall += Overlap(exact_top[i], ivf_top[i]);
  point.recall_at_10 = recall / static_cast<double>(exact_top.size());

  const auto mean_overlap =
      [&](const std::vector<std::vector<std::pair<data::ItemId, double>>>&
              approx) {
        double sum = 0.0;
        for (size_t i = 0; i < exact_top.size(); ++i)
          sum += Overlap(exact_top[i], approx[i]);
        return sum / static_cast<double>(exact_top.size());
      };

  // int8 full-catalog scan: quantized reps + integer dots over the whole
  // catalog, exact FP32 re-rank of the surviving rerank_k.
  engine.set_topk_mode(core::TopKMode::kExact);
  engine.set_score_mode(core::ScoreMode::kInt8);
  const auto int8_top = run_all();  // warm the quantized caches
  sw.Reset();
  run_all();
  point.int8_ms_per_query = sw.ElapsedSeconds() * 1000.0 / num_queries;
  point.int8_speedup = point.int8_ms_per_query > 0.0
                           ? point.exact_ms_per_query / point.int8_ms_per_query
                           : 0.0;
  point.int8_recall_at_10 = mean_overlap(int8_top);

  // int8 composed with IVF: candidate retrieval prunes the catalog, the
  // quantized scan ranks the candidates, exact re-rank on top.
  engine.set_topk_mode(core::TopKMode::kIvf);
  const auto ivf_int8_top = run_all();  // warm the candidate path
  sw.Reset();
  run_all();
  point.ivf_int8_ms_per_query = sw.ElapsedSeconds() * 1000.0 / num_queries;
  point.ivf_int8_speedup =
      point.ivf_int8_ms_per_query > 0.0
          ? point.exact_ms_per_query / point.ivf_int8_ms_per_query
          : 0.0;
  point.ivf_int8_recall_at_10 = mean_overlap(ivf_int8_top);
  return point;
}

std::vector<SweepPoint> RunSweep(int k) {
  std::vector<SweepPoint> points;
  for (int items : {2000, 100000, 1000000}) {
    std::printf("  sweep: %d items...\n", items);
    std::fflush(stdout);
    points.push_back(RunSweepPoint(items, k));
    const SweepPoint& p = points.back();
    std::printf(
        "    nlist %4d nprobe %3d  build %6.2fs  warm top-%d: exact "
        "%8.3f ms/q  ivf %8.3f ms/q  speedup %5.2fx  recall@%d %.3f\n",
        p.nlist, p.nprobe, p.build_seconds, k, p.exact_ms_per_query,
        p.ivf_ms_per_query, p.speedup, k, p.recall_at_10);
    std::printf(
        "    int8 scan %8.3f ms/q (%5.2fx, recall@%d %.3f)  ivf+int8 "
        "%8.3f ms/q (%5.2fx, recall@%d %.3f)\n",
        p.int8_ms_per_query, p.int8_speedup, k, p.int8_recall_at_10,
        p.ivf_int8_ms_per_query, p.ivf_int8_speedup, k,
        p.ivf_int8_recall_at_10);
    std::fflush(stdout);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  parallel::SetGlobalThreads(std::max(1, flags.threads));

  // An untrained model scores the same arithmetic as a trained one; the
  // catalog size is what matters here.
  data::SyntheticWorldConfig wc;
  wc.name = "bench_inference";
  wc.num_items = flags.items;
  wc.num_users = 400;
  wc.num_groups = std::max(flags.groups, 100);
  const data::SyntheticWorld world = data::GenerateWorld(wc);
  const data::InteractionMatrix ui_all = world.dataset.UserItemMatrix();

  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  core::ModelData model_data;
  model_data.groups = &world.dataset.groups;
  model_data.social = &world.dataset.social;
  model_data.top_items = data::TopItemsPerUser(ui_all, config.top_h);
  model_data.top_friends =
      data::TopFriendsPerUser(world.dataset.social, config.top_h);
  Rng rng(13);
  core::GroupSaModel model(config, world.dataset.num_users,
                           world.dataset.num_items, model_data, &rng);
  const std::vector<data::ItemId> catalog = core::AllItems(model.num_items());

  std::vector<data::GroupId> groups(flags.groups);
  for (int i = 0; i < flags.groups; ++i)
    groups[i] = i % world.dataset.groups.num_groups();
  std::vector<data::UserId> users(flags.users);
  for (int i = 0; i < flags.users; ++i)
    users[i] = (i * 7) % world.dataset.num_users;

  std::printf(
      "bench_inference: %d items, %d groups, %d users, %d thread(s), "
      "kernel backend %s\n",
      flags.items, flags.groups, flags.users, parallel::GlobalThreads(),
      tensor::ActiveBackendName());

  // ---- group tower ----
  Stopwatch sw;
  std::vector<std::vector<double>> group_ref(groups.size());
  for (size_t i = 0; i < groups.size(); ++i)
    group_ref[i] = model.ScoreItemsForGroupPerItem(groups[i], catalog);
  const double group_per_item_s = sw.ElapsedSeconds();

  model.inference().InvalidateAll();  // time cold rep builds too
  sw.Reset();
  std::vector<std::vector<double>> group_batched(groups.size());
  for (size_t i = 0; i < groups.size(); ++i)
    group_batched[i] = model.ScoreItemsForGroup(groups[i], catalog);
  const double group_batched_s = sw.ElapsedSeconds();

  bool identical = true;
  for (size_t i = 0; i < groups.size(); ++i)
    identical = identical && BitIdentical(group_ref[i], group_batched[i]);

  // ---- user tower ----
  sw.Reset();
  std::vector<std::vector<double>> user_ref(users.size());
  for (size_t i = 0; i < users.size(); ++i)
    user_ref[i] = model.ScoreItemsForUserPerItem(users[i], catalog);
  const double user_per_item_s = sw.ElapsedSeconds();

  model.inference().InvalidateAll();
  sw.Reset();
  std::vector<std::vector<double>> user_batched(users.size());
  for (size_t i = 0; i < users.size(); ++i)
    user_batched[i] = model.ScoreItemsForUser(users[i], catalog);
  const double user_batched_s = sw.ElapsedSeconds();

  for (size_t i = 0; i < users.size(); ++i)
    identical = identical && BitIdentical(user_ref[i], user_batched[i]);

  // ---- warm-cache top-K (the serving steady state) ----
  sw.Reset();
  for (data::GroupId g : groups) {
    const auto top = model.RecommendForGroup(g, flags.k, nullptr);
    if (top.empty()) std::abort();
  }
  const double topk_warm_s = sw.ElapsedSeconds();

  // ---- int8 rep-cache memory (quantized vs FP32-equivalent bytes) ----
  // Serve the same user workload in int8 mode: the engine then caches
  // quantized reps only, and Fp32UserCacheBytes reports what the same reps
  // would cost in FP32 — the ratio is the bytes-per-user gate.
  core::InferenceEngine& engine = model.inference();
  engine.InvalidateAll();
  engine.set_score_mode(core::ScoreMode::kInt8);
  for (data::UserId u : users) {
    const auto top = engine.RecommendForUser(u, flags.k, nullptr);
    if (top.empty()) std::abort();
  }
  const size_t int8_cached_users = engine.cached_quant_users();
  const size_t quant_bytes = engine.QuantUserCacheBytes();
  const size_t fp32_bytes = engine.Fp32UserCacheBytes();
  const double int8_memory_ratio =
      quant_bytes > 0 ? static_cast<double>(fp32_bytes) /
                            static_cast<double>(quant_bytes)
                      : 0.0;
  const double int8_bytes_per_user =
      int8_cached_users > 0 ? static_cast<double>(quant_bytes) /
                                  static_cast<double>(int8_cached_users)
                            : 0.0;
  const double fp32_bytes_per_user =
      int8_cached_users > 0 ? static_cast<double>(fp32_bytes) /
                                  static_cast<double>(int8_cached_users)
                            : 0.0;
  engine.set_score_mode(core::ScoreMode::kExact);
  engine.InvalidateAll();

  const double group_speedup = group_per_item_s / group_batched_s;
  const double user_speedup = user_per_item_s / user_batched_s;
  std::printf("  group full-catalog: per-item %8.3fs  batched %8.3fs  "
              "speedup %6.2fx\n",
              group_per_item_s, group_batched_s, group_speedup);
  std::printf("  user  full-catalog: per-item %8.3fs  batched %8.3fs  "
              "speedup %6.2fx\n",
              user_per_item_s, user_batched_s, user_speedup);
  std::printf("  warm top-%d over %zu groups: %.3fs (%.2f ms/group)\n",
              flags.k, groups.size(), topk_warm_s,
              topk_warm_s * 1000.0 / groups.size());
  std::printf("  bit-identical: %s\n", identical ? "yes" : "NO");
  std::printf(
      "  int8 rep cache: %zu users, %.1f bytes/user vs %.1f FP32 "
      "(%.2fx smaller)\n",
      int8_cached_users, int8_bytes_per_user, fp32_bytes_per_user,
      int8_memory_ratio);

  std::vector<SweepPoint> sweep;
  if (flags.sweep) {
    std::printf("catalog sweep (single-thread, auto IVF config):\n");
    sweep = RunSweep(flags.k);
  }

  if (!flags.json.empty()) {
    FILE* out = std::fopen(flags.json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
      return 2;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"inference\",\n"
        "  \"schema\": 3,\n"
        "  \"backend\": \"%s\",\n"
        "  \"items\": %d,\n"
        "  \"groups\": %d,\n"
        "  \"users\": %d,\n"
        "  \"threads\": %d,\n"
        "  \"group_per_item_seconds\": %.6f,\n"
        "  \"group_batched_seconds\": %.6f,\n"
        "  \"group_speedup\": %.3f,\n"
        "  \"user_per_item_seconds\": %.6f,\n"
        "  \"user_batched_seconds\": %.6f,\n"
        "  \"user_speedup\": %.3f,\n"
        "  \"warm_topk_ms_per_group\": %.4f,\n"
        "  \"int8_cached_users\": %zu,\n"
        "  \"int8_bytes_per_user\": %.2f,\n"
        "  \"fp32_bytes_per_user\": %.2f,\n"
        "  \"int8_memory_ratio\": %.3f,\n"
        "  \"bit_identical\": %s",
        tensor::ActiveBackendName(), flags.items, flags.groups, flags.users,
        parallel::GlobalThreads(), group_per_item_s, group_batched_s,
        group_speedup, user_per_item_s, user_batched_s, user_speedup,
        topk_warm_s * 1000.0 / groups.size(), int8_cached_users,
        int8_bytes_per_user, fp32_bytes_per_user, int8_memory_ratio,
        identical ? "true" : "false");
    if (!sweep.empty()) {
      std::fprintf(out, ",\n  \"sweep\": [\n");
      for (size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint& p = sweep[i];
        std::fprintf(
            out,
            "    {\"items\": %d, \"nlist\": %d, \"nprobe\": %d, "
            "\"build_seconds\": %.4f, \"exact_ms_per_query\": %.4f, "
            "\"ivf_ms_per_query\": %.4f, \"speedup\": %.3f, "
            "\"recall_at_10\": %.4f,\n"
            "     \"int8_ms_per_query\": %.4f, \"int8_speedup\": %.3f, "
            "\"int8_recall_at_10\": %.4f,\n"
            "     \"ivf_int8_ms_per_query\": %.4f, "
            "\"ivf_int8_speedup\": %.3f, "
            "\"ivf_int8_recall_at_10\": %.4f}%s\n",
            p.items, p.nlist, p.nprobe, p.build_seconds, p.exact_ms_per_query,
            p.ivf_ms_per_query, p.speedup, p.recall_at_10,
            p.int8_ms_per_query, p.int8_speedup, p.int8_recall_at_10,
            p.ivf_int8_ms_per_query, p.ivf_int8_speedup,
            p.ivf_int8_recall_at_10, i + 1 < sweep.size() ? "," : "");
      }
      std::fprintf(out, "  ]\n}\n");
    } else {
      std::fprintf(out, "\n}\n");
    }
    std::fclose(out);
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: batched scores diverged from the per-item path\n");
    return 1;
  }
  return 0;
}
