// Micro-benchmarks for the tensor/autograd/nn kernels on shapes
// representative of GroupSA (d = 32, group size ~5, Top-H ~4).

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "nn/self_attention.h"
#include "nn/transformer_block.h"
#include "tensor/ops.h"

namespace {

using groupsa::Rng;
using groupsa::tensor::Matrix;
namespace ag = groupsa::ag;
namespace nn = groupsa::nn;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a(n, n);
  Matrix b(n, n);
  a.FillGaussian(&rng, 0.0f, 1.0f);
  b.FillGaussian(&rng, 0.0f, 1.0f);
  Matrix out;
  for (auto _ : state) {
    groupsa::tensor::Gemm(a, false, b, false, 1.0f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRowsMasked(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Rng rng(2);
  Matrix logits(l, l);
  logits.FillGaussian(&rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Matrix m = logits;
    groupsa::tensor::SoftmaxRowsInPlace(&m);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SoftmaxRowsMasked)->Arg(5)->Arg(12);

void BM_SelfAttentionForward(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::SocialSelfAttention attn("a", 32, 32, 32, &rng);
  Matrix x(l, 32);
  x.FillGaussian(&rng, 0.0f, 0.1f);
  ag::TensorPtr input = ag::Constant(x);
  Matrix bias = nn::MakeSocialBias(l, [](int i, int j) {
    return (i + j) % 2 == 0;
  });
  for (auto _ : state) {
    auto out = attn.Forward(nullptr, input, &bias);
    benchmark::DoNotOptimize(out.values->value().data());
  }
}
BENCHMARK(BM_SelfAttentionForward)->Arg(3)->Arg(5)->Arg(10);

void BM_TransformerBlockForwardBackward(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Rng rng(4);
  nn::TransformerBlock block("b", 32, 32, &rng);
  Matrix x_m(l, 32);
  x_m.FillGaussian(&rng, 0.0f, 0.1f);
  for (auto _ : state) {
    ag::TensorPtr x = ag::Variable(x_m);
    ag::Tape tape;
    auto out = block.Forward(&tape, x, nullptr);
    ag::TensorPtr loss = ag::SumAll(&tape, out.values);
    tape.Backward(loss);
    benchmark::DoNotOptimize(x->grad().data());
    block.ZeroGrad();
  }
}
BENCHMARK(BM_TransformerBlockForwardBackward)->Arg(5)->Arg(10);

void BM_LayerNormOp(benchmark::State& state) {
  Rng rng(5);
  Matrix x_m(8, 32);
  x_m.FillGaussian(&rng, 0.0f, 1.0f);
  ag::TensorPtr x = ag::Constant(x_m);
  ag::TensorPtr gain = ag::Constant(Matrix(1, 32, 1.0f));
  ag::TensorPtr bias = ag::Constant(Matrix(1, 32, 0.0f));
  for (auto _ : state) {
    ag::TensorPtr y = ag::LayerNorm(nullptr, x, gain, bias);
    benchmark::DoNotOptimize(y->value().data());
  }
}
BENCHMARK(BM_LayerNormOp);

void BM_BprLossForwardBackward(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    ag::TensorPtr pos = ag::Variable(Matrix(1, 1, 0.5f));
    Matrix negs_m(4, 1);
    negs_m.FillGaussian(&rng, 0.0f, 1.0f);
    ag::TensorPtr negs = ag::Variable(negs_m);
    ag::Tape tape;
    ag::TensorPtr loss = ag::BprLoss(&tape, pos, negs);
    tape.Backward(loss);
    benchmark::DoNotOptimize(pos->grad().data());
  }
}
BENCHMARK(BM_BprLossForwardBackward);

}  // namespace
