// Micro-benchmarks for the tensor/autograd/nn kernels on shapes
// representative of GroupSA (d = 32, group size ~5, Top-H ~4).

#include <benchmark/benchmark.h>

#include <map>

#include "autograd/ops.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "nn/self_attention.h"
#include "nn/transformer_block.h"
#include "tensor/ops.h"

namespace {

using groupsa::Rng;
using groupsa::tensor::Matrix;
namespace ag = groupsa::ag;
namespace nn = groupsa::nn;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a(n, n);
  Matrix b(n, n);
  a.FillGaussian(&rng, 0.0f, 1.0f);
  b.FillGaussian(&rng, 0.0f, 1.0f);
  Matrix out;
  for (auto _ : state) {
    groupsa::tensor::Gemm(a, false, b, false, 1.0f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
  state.counters["threads"] =
      static_cast<double>(groupsa::parallel::GlobalThreads());
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(512);

// Wall-clock of the serial reference kernel at size n, measured once per
// size and cached; the denominator of the parallel speedup counters below.
double SerialGemmSecondsPerIter(int n) {
  static std::map<int, double> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Rng rng(1);
  Matrix a(n, n);
  Matrix b(n, n);
  a.FillGaussian(&rng, 0.0f, 1.0f);
  b.FillGaussian(&rng, 0.0f, 1.0f);
  Matrix out;
  groupsa::tensor::GemmSerial(a, false, b, false, 1.0f, &out);  // warm-up
  const int iters = n >= 512 ? 3 : 20;
  groupsa::Stopwatch timer;
  for (int i = 0; i < iters; ++i)
    groupsa::tensor::GemmSerial(a, false, b, false, 1.0f, &out);
  const double seconds = timer.ElapsedSeconds() / iters;
  cache[n] = seconds;
  return seconds;
}

// Tiled parallel Gemm at a given pool width; range(0) = matrix size,
// range(1) = threads. Emits threads and speedup-vs-serial counters, which
// land in the JSON report under "threads" / "speedup" when run with
// --benchmark_format=json.
void BM_GemmParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  groupsa::parallel::SetGlobalThreads(threads);
  Rng rng(1);
  Matrix a(n, n);
  Matrix b(n, n);
  a.FillGaussian(&rng, 0.0f, 1.0f);
  b.FillGaussian(&rng, 0.0f, 1.0f);
  Matrix out;
  for (auto _ : state) {
    groupsa::tensor::Gemm(a, false, b, false, 1.0f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
  state.counters["threads"] = threads;
  // A manual timing pass at this width against the cached serial baseline;
  // both land in the JSON report as plain counters.
  const double serial = SerialGemmSecondsPerIter(n);
  const int iters = n >= 512 ? 3 : 20;
  groupsa::Stopwatch timer;
  for (int i = 0; i < iters; ++i)
    groupsa::tensor::Gemm(a, false, b, false, 1.0f, &out);
  const double seconds = timer.ElapsedSeconds() / iters;
  state.counters["serial_seconds"] = serial;
  state.counters["speedup"] = seconds > 0 ? serial / seconds : 0.0;
  groupsa::parallel::SetGlobalThreads(1);
}
BENCHMARK(BM_GemmParallel)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->UseRealTime();

void BM_SoftmaxRowsMasked(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Rng rng(2);
  Matrix logits(l, l);
  logits.FillGaussian(&rng, 0.0f, 1.0f);
  for (auto _ : state) {
    Matrix m = logits;
    groupsa::tensor::SoftmaxRowsInPlace(&m);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SoftmaxRowsMasked)->Arg(5)->Arg(12);

void BM_SelfAttentionForward(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::SocialSelfAttention attn("a", 32, 32, 32, &rng);
  Matrix x(l, 32);
  x.FillGaussian(&rng, 0.0f, 0.1f);
  ag::TensorPtr input = ag::Constant(x);
  Matrix bias = nn::MakeSocialBias(l, [](int i, int j) {
    return (i + j) % 2 == 0;
  });
  for (auto _ : state) {
    auto out = attn.Forward(nullptr, input, &bias);
    benchmark::DoNotOptimize(out.values->value().data());
  }
}
BENCHMARK(BM_SelfAttentionForward)->Arg(3)->Arg(5)->Arg(10);

void BM_TransformerBlockForwardBackward(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Rng rng(4);
  nn::TransformerBlock block("b", 32, 32, &rng);
  Matrix x_m(l, 32);
  x_m.FillGaussian(&rng, 0.0f, 0.1f);
  for (auto _ : state) {
    ag::TensorPtr x = ag::Variable(x_m);
    ag::Tape tape;
    auto out = block.Forward(&tape, x, nullptr);
    ag::TensorPtr loss = ag::SumAll(&tape, out.values);
    tape.Backward(loss);
    benchmark::DoNotOptimize(x->grad().data());
    block.ZeroGrad();
  }
}
BENCHMARK(BM_TransformerBlockForwardBackward)->Arg(5)->Arg(10);

void BM_LayerNormOp(benchmark::State& state) {
  Rng rng(5);
  Matrix x_m(8, 32);
  x_m.FillGaussian(&rng, 0.0f, 1.0f);
  ag::TensorPtr x = ag::Constant(x_m);
  ag::TensorPtr gain = ag::Constant(Matrix(1, 32, 1.0f));
  ag::TensorPtr bias = ag::Constant(Matrix(1, 32, 0.0f));
  for (auto _ : state) {
    ag::TensorPtr y = ag::LayerNorm(nullptr, x, gain, bias);
    benchmark::DoNotOptimize(y->value().data());
  }
}
BENCHMARK(BM_LayerNormOp);

void BM_BprLossForwardBackward(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    ag::TensorPtr pos = ag::Variable(Matrix(1, 1, 0.5f));
    Matrix negs_m(4, 1);
    negs_m.FillGaussian(&rng, 0.0f, 1.0f);
    ag::TensorPtr negs = ag::Variable(negs_m);
    ag::Tape tape;
    ag::TensorPtr loss = ag::BprLoss(&tape, pos, negs);
    tape.Backward(loss);
    benchmark::DoNotOptimize(pos->grad().data());
  }
}
BENCHMARK(BM_BprLossForwardBackward);

}  // namespace
