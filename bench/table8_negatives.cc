// Table VIII: impact of the number of negative samples N per positive.
// Expected shape (paper): a few negatives suffice; quality saturates (or
// mildly peaks) at small N, so N = 1 is used for training efficiency.

#include "common/string_util.h"
#include "sweep_common.h"

using namespace groupsa;

int main(int argc, char** argv) {
  const pipeline::RunOptions options = bench::SweepOptions(argc, argv);
  std::vector<std::pair<std::string, core::GroupSaConfig>> points;
  for (int n = 1; n <= 5; ++n) {
    core::GroupSaConfig config = core::GroupSaConfig::Default();
    config.num_negatives = n;
    points.emplace_back(StrFormat("N=%d", n), config);
  }
  return bench::RunSweep("Table VIII — impact of N (negatives per positive)",
                         points, options);
}
