// Design-choice ablations (DESIGN.md §4): quantifies the implementation
// decisions this reproduction makes on top of the paper's equations. Each
// row disables exactly one choice from the tuned default.

#include "sweep_common.h"

using namespace groupsa;

int main(int argc, char** argv) {
  const pipeline::RunOptions options = bench::SweepOptions(argc, argv);
  std::vector<std::pair<std::string, core::GroupSaConfig>> points;

  points.emplace_back("default", core::GroupSaConfig::Default());

  core::GroupSaConfig no_social_loss = core::GroupSaConfig::Default();
  no_social_loss.use_social_objective = false;
  points.emplace_back("-social-objective", no_social_loss);

  core::GroupSaConfig no_singletons = core::GroupSaConfig::Default();
  no_singletons.train_group_head_on_singletons = false;
  points.emplace_back("-singleton-training", no_singletons);

  core::GroupSaConfig untied = core::GroupSaConfig::Default();
  untied.tie_latent_spaces = false;
  points.emplace_back("-tied-latent-spaces", untied);

  core::GroupSaConfig separate_towers = core::GroupSaConfig::Default();
  separate_towers.share_predictors = false;
  points.emplace_back("-shared-tower", separate_towers);

  points.emplace_back("-social-mask", core::GroupSaConfig::NoSocialMask());

  core::GroupSaConfig no_interleave = core::GroupSaConfig::Default();
  no_interleave.interleave_user_in_stage2 = false;
  points.emplace_back("-stage2-interleave", no_interleave);

  // f(i,j) alternatives (the paper allows any real-valued closeness score).
  core::GroupSaConfig common_neighbors = core::GroupSaConfig::Default();
  common_neighbors.social_closeness =
      core::SocialCloseness::kCommonNeighbors;
  points.emplace_back("f=common-neighbors", common_neighbors);

  core::GroupSaConfig adamic = core::GroupSaConfig::Default();
  adamic.social_closeness = core::SocialCloseness::kAdamicAdar;
  adamic.closeness_threshold = 0.5;
  points.emplace_back("f=adamic-adar>0.5", adamic);

  return bench::RunSweep(
      "Design ablations — each row disables one implementation choice",
      points, options);
}
