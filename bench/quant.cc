// Kernel-backend benchmark: times every compiled-and-runnable dispatch
// backend (scalar, and avx2/avx512 when present) on the three kernels in
// the dispatch table — the GEMM row kernel at a serving-shaped problem, the
// fused attention-logit loop at the model's hidden widths, and the int8 row
// dot over a catalog-sized table. Every timed output is byte-compared
// against the scalar backend's first (the bit-identity contract from
// tensor/backend.h); the driver exits non-zero on any divergence, so a
// recorded speedup always describes bit-identical arithmetic.
//
// Flags: --quick        (shrink problem sizes and repetition counts)
//        --json=path    (machine-readable record, see tools/bench.sh)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "tensor/backend.h"
#include "tensor/matrix.h"

using namespace groupsa;
using tensor::KernelBackend;
using tensor::Matrix;

namespace {

struct Flags {
  bool quick = false;
  std::string json;
};

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      f.quick = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      f.json = arg + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  return f;
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillGaussian(&rng, 0.0f, 1.0f);
  return m;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.rows()) *
                         static_cast<size_t>(a.cols())) == 0;
}

struct BackendResult {
  const char* name;
  double gemm_ms = 0.0;       // one full GEMM pass, best-of-reps
  double attention_ms = 0.0;  // one attention-logit pass
  double dot_i8_ms = 0.0;     // one catalog-sized int8 dot pass
  bool parity = true;         // byte-identical to scalar on every kernel
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  // Serving-shaped problems: the catalog scan is (items x d) * (d x d)-ish
  // work, attention runs at the model's h = 32 over member lists, and the
  // int8 dot scans a full quantized catalog per query.
  const int gemm_m = flags.quick ? 256 : 2048;
  const int gemm_k = 32;
  const int gemm_n = flags.quick ? 64 : 256;
  const int att_c = flags.quick ? 64 : 512;  // candidates
  const int att_l = 8;                       // members
  const int att_h = 32;                      // model hidden width
  const int dot_rows = flags.quick ? 10000 : 200000;
  const int dot_d = 32;
  const int reps = flags.quick ? 3 : 10;

  const Matrix gemm_a = RandomMatrix(gemm_m, gemm_k, 11);
  const Matrix gemm_b = RandomMatrix(gemm_k, gemm_n, 22);

  const int att_rows = att_c + 3;
  const Matrix att_prefix = RandomMatrix(att_rows, att_h, 33);
  const Matrix att_addends = RandomMatrix(att_l + 2, att_h, 44);
  const Matrix att_hb = RandomMatrix(1, att_h, 55);
  const Matrix att_wout = RandomMatrix(1, att_h, 66);
  std::vector<int> att_ids(static_cast<size_t>(att_c));
  for (int t = 0; t < att_c; ++t)
    att_ids[static_cast<size_t>(t)] = (t * 7 + 3) % att_rows;
  std::vector<int> nz;
  std::vector<int> nz_begin{0};
  for (int i = 0; i < att_l; ++i) {
    for (int j = 0; j <= i % 3; ++j) nz.push_back((i + j) % (att_l + 2));
    nz_begin.push_back(static_cast<int>(nz.size()));
  }

  Rng rng(77);
  std::vector<int8_t> dot_q(static_cast<size_t>(dot_d));
  std::vector<int8_t> dot_table(static_cast<size_t>(dot_rows) *
                                static_cast<size_t>(dot_d));
  for (int8_t& v : dot_q)
    v = static_cast<int8_t>(static_cast<int>(rng.NextU64() % 255) - 127);
  for (int8_t& v : dot_table)
    v = static_cast<int8_t>(static_cast<int>(rng.NextU64() % 255) - 127);

  std::printf("bench_quant: host features [%s], active backend %s\n",
              tensor::DetectedCpuFeatures().c_str(),
              tensor::ActiveBackendName());
  std::printf(
      "  gemm %dx%dx%d, attention c=%d l=%d h=%d, int8 dot %d rows x d=%d, "
      "best of %d reps\n",
      gemm_m, gemm_k, gemm_n, att_c, att_l, att_h, dot_rows, dot_d, reps);

  std::vector<BackendResult> results;
  Matrix gemm_ref, att_ref;
  std::vector<int32_t> dot_ref;
  bool all_parity = true;

  for (const KernelBackend* backend : tensor::CompiledBackends()) {
    if (!backend->runnable()) {
      std::printf("  %-7s compiled but not runnable on this host; skipped\n",
                  backend->name);
      continue;
    }
    BackendResult r;
    r.name = backend->name;

    Matrix gemm_out(gemm_m, gemm_n);
    Matrix att_out(att_c, att_l);
    std::vector<int32_t> dot_out(static_cast<size_t>(dot_rows));
    Stopwatch sw;
    double best;

    best = 1e30;
    for (int i = 0; i < reps; ++i) {
      gemm_out.Fill(0.0f);
      sw.Reset();
      backend->gemm_rows(gemm_a, false, gemm_b, false, 1.0f, &gemm_out,
                         gemm_k, gemm_n, 0, gemm_m);
      best = std::min(best, sw.ElapsedSeconds());
    }
    r.gemm_ms = best * 1000.0;

    best = 1e30;
    for (int i = 0; i < reps; ++i) {
      sw.Reset();
      backend->attention_logits(att_prefix, att_ids.data(), att_c, att_l,
                                att_h, att_addends, nz, nz_begin,
                                att_hb.data(), att_wout.data(), true, 0.125f,
                                &att_out);
      best = std::min(best, sw.ElapsedSeconds());
    }
    r.attention_ms = best * 1000.0;

    best = 1e30;
    for (int i = 0; i < reps; ++i) {
      sw.Reset();
      backend->dot_i8_rows(dot_q.data(), dot_table.data(), nullptr, dot_rows,
                           dot_d, dot_out.data());
      best = std::min(best, sw.ElapsedSeconds());
    }
    r.dot_i8_ms = best * 1000.0;

    if (results.empty()) {
      gemm_ref = gemm_out;
      att_ref = att_out;
      dot_ref = dot_out;
    } else {
      r.parity = BitIdentical(gemm_ref, gemm_out) &&
                 BitIdentical(att_ref, att_out) &&
                 std::memcmp(dot_ref.data(), dot_out.data(),
                             dot_out.size() * sizeof(int32_t)) == 0;
      all_parity = all_parity && r.parity;
    }

    std::printf(
        "  %-7s gemm %8.3f ms  attention %8.3f ms  int8 dot %8.3f ms  "
        "parity %s\n",
        r.name, r.gemm_ms, r.attention_ms, r.dot_i8_ms,
        r.parity ? "ok" : "DIVERGED");
    results.push_back(r);
  }

  if (!flags.json.empty()) {
    FILE* out = std::fopen(flags.json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
      return 2;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"quant\",\n"
                 "  \"schema\": 1,\n"
                 "  \"host_features\": \"%s\",\n"
                 "  \"active_backend\": \"%s\",\n"
                 "  \"gemm\": {\"m\": %d, \"k\": %d, \"n\": %d},\n"
                 "  \"attention\": {\"c\": %d, \"l\": %d, \"h\": %d},\n"
                 "  \"dot_i8\": {\"rows\": %d, \"d\": %d},\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"backends\": [\n",
                 tensor::DetectedCpuFeatures().c_str(),
                 tensor::ActiveBackendName(), gemm_m, gemm_k, gemm_n, att_c,
                 att_l, att_h, dot_rows, dot_d,
                 all_parity ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
      const BackendResult& r = results[i];
      const BackendResult& s = results[0];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"gemm_ms\": %.4f, "
                   "\"attention_ms\": %.4f, \"dot_i8_ms\": %.4f, "
                   "\"gemm_speedup_vs_scalar\": %.3f, "
                   "\"dot_i8_speedup_vs_scalar\": %.3f}%s\n",
                   r.name, r.gemm_ms, r.attention_ms, r.dot_i8_ms,
                   r.gemm_ms > 0.0 ? s.gemm_ms / r.gemm_ms : 0.0,
                   r.dot_i8_ms > 0.0 ? s.dot_i8_ms / r.dot_i8_ms : 0.0,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }

  if (!all_parity) {
    std::fprintf(stderr, "FATAL: a backend diverged from scalar\n");
    return 1;
  }
  return 0;
}
