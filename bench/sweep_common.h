#ifndef GROUPSA_BENCH_SWEEP_COMMON_H_
#define GROUPSA_BENCH_SWEEP_COMMON_H_

// Shared driver for the hyper-parameter sweep tables (VI, VII, VIII) and the
// design-choice ablations: trains one GroupSA per configuration point on the
// Yelp-like world and prints group-task rows. Sweeps default to slightly
// shorter training than the headline tables (each point is a full fit).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "pipeline/experiment.h"

namespace groupsa::bench {

inline pipeline::RunOptions SweepOptions(int argc, char** argv) {
  pipeline::RunOptions defaults;
  defaults.user_epochs = 5;
  defaults.group_epochs = 6;
  return pipeline::ParseBenchArgs(argc, argv, defaults);
}

inline int RunSweep(
    const std::string& title,
    const std::vector<std::pair<std::string, core::GroupSaConfig>>& points,
    const pipeline::RunOptions& options) {
  Stopwatch total;
  pipeline::ExperimentData data = pipeline::PrepareData(
      data::SyntheticWorldConfig::YelpLike(), options);
  std::vector<pipeline::ModelScores> rows;
  for (const auto& [label, config] : points) {
    std::printf("training %s...\n", label.c_str());
    Rng rng(options.seed + 1);
    const core::ModelData model_data = pipeline::BuildModelData(data, config);
    auto model =
        pipeline::TrainGroupSa(config, data, options, &rng, model_data);
    pipeline::ModelScores scores =
        pipeline::ScoreGroupSa(model.get(), data, options, label);
    rows.push_back(std::move(scores));
  }
  pipeline::PrintGroupTable(title, rows, options);
  std::printf("\ntotal %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace groupsa::bench

#endif  // GROUPSA_BENCH_SWEEP_COMMON_H_
