// Figure 3: importance of the social self-attention and user-modeling
// components. Trains GroupSA and its four paper ablations (Group-A, Group-S,
// Group-I, Group-F) and prints group-task HR/NDCG at K = 5, 10. Expected
// shape (paper): GroupSA above every ablation. Pass --douban for the second
// dataset.

#include <cstdio>
#include <cstring>

#include "common/stopwatch.h"
#include "pipeline/experiment.h"

using namespace groupsa;

int main(int argc, char** argv) {
  bool douban = false;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--douban") == 0) {
      douban = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  pipeline::RunOptions options = pipeline::ParseBenchArgs(
      static_cast<int>(rest.size()), rest.data(), pipeline::RunOptions{});
  const auto world_config = douban
                                ? data::SyntheticWorldConfig::DoubanEventLike()
                                : data::SyntheticWorldConfig::YelpLike();
  Stopwatch total;
  pipeline::ExperimentData data = pipeline::PrepareData(world_config, options);

  std::vector<pipeline::ModelScores> rows;
  const std::vector<core::GroupSaConfig> variants = {
      core::GroupSaConfig::GroupA(), core::GroupSaConfig::GroupS(),
      core::GroupSaConfig::GroupI(), core::GroupSaConfig::GroupF(),
      core::GroupSaConfig::Default()};
  for (const core::GroupSaConfig& config : variants) {
    std::printf("training %s...\n", config.variant.c_str());
    Rng rng(options.seed + 1);
    const core::ModelData model_data = pipeline::BuildModelData(data, config);
    auto model =
        pipeline::TrainGroupSa(config, data, options, &rng, model_data);
    pipeline::ModelScores scores =
        pipeline::ScoreGroupSa(model.get(), data, options, config.variant);
    rows.push_back(std::move(scores));
  }
  pipeline::PrintGroupTable(
      std::string("Figure 3 — component ablations (") + world_config.name +
          ", group task)",
      rows, options);
  // Also report the user task, which the figure shows for Group-A/S.
  std::printf("\nUser task:\n");
  for (const auto& row : rows) {
    std::printf("%-10s user HR@5=%.4f NDCG@5=%.4f HR@10=%.4f NDCG@10=%.4f\n",
                row.name.c_str(), row.user.HitRatio(5), row.user.Ndcg(5),
                row.user.HitRatio(10), row.user.Ndcg(10));
  }
  std::printf("\ntotal %.1fs\n", total.ElapsedSeconds());
  return 0;
}
