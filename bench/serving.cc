// Serving pipeline benchmark: open-loop load against the groupsa_serve
// request pipeline (src/serve/server.h), measuring QPS and latency tails
// under a steady paced arrival process and under admission-control-saturating
// bursts. Before any timing, the driver parity-gates the pipeline: every
// response of a seeded schedule must match a direct InferenceEngine call
// exactly — same top-K ids, bit-identical (0 ULP) scores — so the recorded
// throughput always describes the same answers the library gives. Exits
// non-zero on any parity violation.
//
// Open-loop means arrivals are scheduled on a clock, not gated on
// completions: request i is submitted at its arrival time whether or not
// earlier requests finished, which is what exposes queueing delay and the
// shed path. Latency is measured from scheduled arrival to response
// completion; completions are collected by a dedicated waiter thread in
// submission (FIFO) order, so a tail estimate is conservative by at most
// one in-flight service time.
//
// A final "chaos" scenario re-runs a burst against a separate server with
// the resilience layer armed (deadlines, retries, circuit breaker) and a
// seeded chaos overlay, recording deadline-miss rate, retry volume and the
// wall latency to the first breaker trip (schema 2 of the JSON report).
// The parity gate always runs with resilience off.
//
// Flags: --items=N --users=N --groups=N --workers=N --queue=N --threads=N
//        --requests=N --seconds=S --quick --json=PATH

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/inference_engine.h"
#include "data/synthetic.h"
#include "data/tfidf.h"
#include "serve/harness.h"
#include "serve/server.h"

using namespace groupsa;

namespace {

struct Flags {
  int items = 2000;
  int users = 400;
  int groups = 100;
  int workers = 2;
  int queue = 32;
  int threads = 1;
  int requests = 400;
  double seconds = 2.0;  // per steady scenario
  bool quick = false;
  std::string json;
};

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::atoi(arg + n + 1);
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      f.quick = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      f.json = arg + 7;
    } else if (std::strncmp(arg, "--seconds=", 10) == 0) {
      f.seconds = std::atof(arg + 10);
    } else if (!ParseIntFlag(arg, "--items", &f.items) &&
               !ParseIntFlag(arg, "--users", &f.users) &&
               !ParseIntFlag(arg, "--groups", &f.groups) &&
               !ParseIntFlag(arg, "--workers", &f.workers) &&
               !ParseIntFlag(arg, "--queue", &f.queue) &&
               !ParseIntFlag(arg, "--threads", &f.threads) &&
               !ParseIntFlag(arg, "--requests", &f.requests)) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (f.quick) {
    f.items = std::min(f.items, 300);
    f.users = std::min(f.users, 60);
    f.groups = std::min(f.groups, 30);
    f.requests = std::min(f.requests, 80);
    f.seconds = std::min(f.seconds, 0.5);
  }
  return f;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct ScenarioResult {
  std::string name;
  int requests = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  long long shed = 0;
  long long rejected = 0;
  long long degraded = 0;
  // Resilience fields (schema 2); zero for the plain scenarios.
  long long expired = 0;
  long long retries = 0;
  long long breaker_trips = 0;
  double deadline_miss_rate = 0.0;
  double breaker_trip_ms = -1.0;  // wall ms from burst start to first trip
};

// Open-loop run: submit schedule[i] at arrival_s[i] (relative to start), a
// waiter thread collects completions in submission order and records
// per-request latency.
ScenarioResult RunOpenLoop(serve::Server* server, const std::string& name,
                           const std::vector<serve::Request>& schedule,
                           const std::vector<double>& arrival_s) {
  using Clock = std::chrono::steady_clock;
  const size_t n = schedule.size();
  std::vector<std::future<serve::Response>> futures(n);
  std::vector<double> latencies_ms(n, 0.0);
  std::vector<Clock::time_point> arrivals(n);

  const serve::ServerStats before = server->stats();
  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    arrivals[i] = start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(arrival_s[i]));
  }

  // The waiter may only touch futures[i] once the submitter has filled the
  // slot; `published` is the watermark that hands slots over.
  std::mutex pub_mu;
  std::condition_variable pub_cv;
  size_t published = 0;
  std::thread waiter([&] {
    for (size_t i = 0; i < n; ++i) {
      {
        std::unique_lock<std::mutex> lock(pub_mu);
        pub_cv.wait(lock, [&] { return published > i; });
      }
      futures[i].wait();
      const Clock::time_point done = Clock::now();
      latencies_ms[i] =
          std::chrono::duration<double, std::milli>(done - arrivals[i])
              .count();
    }
  });

  for (size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(arrivals[i]);
    futures[i] = server->Submit(schedule[i]);
    {
      std::lock_guard<std::mutex> lock(pub_mu);
      published = i + 1;
    }
    pub_cv.notify_one();
  }
  waiter.join();

  const Clock::time_point end = Clock::now();
  const serve::ServerStats after = server->stats();

  ScenarioResult r;
  r.name = name;
  r.requests = static_cast<int>(n);
  const double elapsed = std::chrono::duration<double>(end - start).count();
  r.qps = elapsed > 0 ? static_cast<double>(n) / elapsed : 0.0;
  r.p50_ms = Percentile(latencies_ms, 0.50);
  r.p99_ms = Percentile(latencies_ms, 0.99);
  r.shed = after.shed - before.shed;
  r.rejected = after.rejected - before.rejected;
  r.degraded = after.degraded - before.degraded;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  parallel::SetGlobalThreads(std::max(1, flags.threads));

  data::SyntheticWorldConfig wc;
  wc.name = "bench_serving";
  wc.num_items = flags.items;
  wc.num_users = flags.users;
  wc.num_groups = flags.groups;
  const data::SyntheticWorld world = data::GenerateWorld(wc);
  const data::InteractionMatrix ui_all = world.dataset.UserItemMatrix();
  const data::InteractionMatrix gi_all = world.dataset.GroupItemMatrix();

  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  core::ModelData model_data;
  model_data.groups = &world.dataset.groups;
  model_data.social = &world.dataset.social;
  model_data.top_items = data::TopItemsPerUser(ui_all, config.top_h);
  model_data.top_friends =
      data::TopFriendsPerUser(world.dataset.social, config.top_h);

  // A parity oracle outside the daemon: same construction seed as the
  // factory below, so both models hold identical parameters (an untrained
  // model scores the same arithmetic as a trained one).
  Rng oracle_rng(13);
  core::GroupSaModel oracle(config, world.dataset.num_users,
                            world.dataset.num_items, model_data, &oracle_rng);

  serve::Server::ModelFactory factory =
      [&](const std::string&,
          std::unique_ptr<core::GroupSaModel>* out) -> Status {
    Rng rng(13);
    *out = std::make_unique<core::GroupSaModel>(config,
                                                world.dataset.num_users,
                                                world.dataset.num_items,
                                                model_data, &rng);
    return Status::Ok();
  };

  serve::ServeConfig sc;
  sc.workers = std::max(1, flags.workers);
  sc.queue_depth = std::max(1, flags.queue);
  serve::Server server(sc, factory, "<in-memory>", world.dataset.user_item,
                       world.dataset.num_users,
                       world.dataset.groups.num_groups(),
                       world.dataset.num_items, &ui_all, &gi_all);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.message().c_str());
    return 1;
  }

  std::printf(
      "bench_serving: %d items, %d users, %d groups, %d workers, queue %d, "
      "%d thread(s)\n",
      flags.items, flags.users, flags.groups, sc.workers, sc.queue_depth,
      parallel::GlobalThreads());

  // ---- parity gate: pipeline answers == direct engine answers, 0 ULP ----
  serve::ScheduleConfig parity_sc;
  parity_sc.num_requests = std::min(flags.requests, 60);
  parity_sc.seed = 71;
  parity_sc.num_users = world.dataset.num_users;
  parity_sc.num_groups = world.dataset.groups.num_groups();
  const std::vector<serve::Request> parity_schedule =
      serve::BuildSchedule(parity_sc);
  core::InferenceEngine& engine = oracle.inference();
  int parity_failures = 0;
  for (const serve::Request& request : parity_schedule) {
    const serve::Response got = server.Call(request);
    std::vector<std::pair<data::ItemId, double>> want;
    const data::InteractionMatrix* user_ex =
        request.exclude_seen ? &ui_all : nullptr;
    const data::InteractionMatrix* group_ex =
        request.exclude_seen ? &gi_all : nullptr;
    switch (request.kind) {
      case serve::Request::Kind::kUser:
        want = engine.RecommendForUser(request.user, request.k, user_ex);
        break;
      case serve::Request::Kind::kGroup:
        want = engine.RecommendForGroup(request.group, request.k, group_ex);
        break;
      case serve::Request::Kind::kMembers:
        want = engine.RecommendForMembers(request.members, request.k,
                                          user_ex);
        break;
    }
    bool same = !got.degraded && !got.shed && !got.rejected &&
                got.items.size() == want.size();
    for (size_t i = 0; same && i < want.size(); ++i) {
      same = got.items[i].first == want[i].first &&
             std::memcmp(&got.items[i].second, &want[i].second,
                         sizeof(double)) == 0;
    }
    if (!same) {
      ++parity_failures;
      std::fprintf(stderr, "PARITY FAIL: %s\n",
                   serve::FormatRequest(request).c_str());
    }
  }
  if (parity_failures > 0) {
    std::fprintf(stderr, "%d parity failure(s); refusing to record timings\n",
                 parity_failures);
    return 1;
  }
  std::printf("parity gate OK (%zu requests, top-K ids + 0 ULP scores)\n",
              parity_schedule.size());

  // ---- calibrate per-request service time (warm caches) ----
  serve::ScheduleConfig warm_sc = parity_sc;
  warm_sc.seed = 72;
  warm_sc.num_requests = std::min(flags.requests, 40);
  const std::vector<serve::Request> warm = serve::BuildSchedule(warm_sc);
  Stopwatch sw;
  for (const serve::Request& request : warm) server.Call(request);
  const double service_s =
      sw.ElapsedSeconds() / static_cast<double>(warm.size());
  std::printf("calibration: %.3f ms/request warm\n", service_s * 1000.0);

  std::vector<ScenarioResult> results;

  // ---- steady: paced arrivals at half the measured serial capacity ----
  {
    serve::ScheduleConfig ssc = parity_sc;
    ssc.seed = 73;
    // Deliberately sized off serial capacity (1/service_s), not workers x
    // that: on a single-core container the worker loops time-slice, so
    // multiplying by workers would overload the "steady" scenario. Half of
    // serial capacity stays genuinely under capacity everywhere.
    const double rate = 0.5 / std::max(1e-6, service_s);
    ssc.num_requests = std::min(
        flags.requests, std::max(10, static_cast<int>(rate * flags.seconds)));
    const std::vector<serve::Request> schedule = serve::BuildSchedule(ssc);
    std::vector<double> arrivals(schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i)
      arrivals[i] = static_cast<double>(i) / rate;
    results.push_back(RunOpenLoop(&server, "steady", schedule, arrivals));
  }

  // ---- burst: back-to-back volleys of 3x the queue depth ----
  {
    serve::ScheduleConfig bsc = parity_sc;
    bsc.seed = 74;
    const int burst = 3 * sc.queue_depth;
    const int volleys =
        std::max(1, std::min(flags.requests, 4 * burst) / burst);
    bsc.num_requests = volleys * burst;
    const std::vector<serve::Request> schedule = serve::BuildSchedule(bsc);
    std::vector<double> arrivals(schedule.size());
    // Each volley arrives instantaneously; volleys are spaced far enough
    // apart (burst * service time) for the queue to drain between them.
    for (size_t i = 0; i < schedule.size(); ++i) {
      const size_t volley = i / static_cast<size_t>(burst);
      arrivals[i] =
          static_cast<double>(volley) * static_cast<double>(burst) * service_s;
    }
    results.push_back(RunOpenLoop(&server, "burst", schedule, arrivals));
  }

  server.Stop();
  const serve::ServerStats stats = server.stats();
  if (stats.submitted !=
      stats.admitted + stats.shed + stats.rejected + stats.expired) {
    std::fprintf(stderr,
                 "conservation violated: %lld != %lld + %lld + %lld + %lld\n",
                 static_cast<long long>(stats.submitted),
                 static_cast<long long>(stats.admitted),
                 static_cast<long long>(stats.shed),
                 static_cast<long long>(stats.rejected),
                 static_cast<long long>(stats.expired));
    return 1;
  }

  // ---- resilience: chaos burst against a breaker-armed server ----
  // A separate server so the parity-gated scenarios above always run with
  // resilience off. Deadlines, retries and the breaker are all active; the
  // seeded chaos overlay injects transient faults (some absorbed by retry,
  // some deep enough to register as failures and trip the breaker) and
  // deadline budgets tight enough that a burst's queue tail expires.
  {
    serve::ServeConfig rcfg = sc;
    rcfg.deadline_ticks = 4 * static_cast<uint64_t>(sc.queue_depth);
    rcfg.backoff.max_retries = 2;
    rcfg.breaker.enabled = true;
    // Sized so the chaos burst actually trips under --quick loads: the
    // point of the scenario is to measure trip latency, not to avoid it.
    rcfg.breaker.window = 8;
    rcfg.breaker.threshold = 3;
    serve::Server rserver(rcfg, factory, "<in-memory>",
                          world.dataset.user_item, world.dataset.num_users,
                          world.dataset.groups.num_groups(),
                          world.dataset.num_items, &ui_all, &gi_all);
    if (Status s = rserver.Start(); !s.ok()) {
      std::fprintf(stderr, "resilience start failed: %s\n",
                   s.message().c_str());
      return 1;
    }
    serve::ScheduleConfig rsc = parity_sc;
    rsc.seed = 75;
    rsc.num_requests =
        std::max(2 * sc.queue_depth, std::min(flags.requests, 200));
    std::vector<serve::Request> schedule = serve::BuildSchedule(rsc);
    serve::ChaosConfig chaos;
    chaos.seed = 75;
    chaos.fault_fraction = 0.5;
    chaos.max_fault_attempts = 4;  // 1-2 absorbed by retry, 3-4 hard-fail
    chaos.deadline_fraction = 0.5;
    chaos.min_deadline_ticks = 4;
    chaos.max_deadline_ticks = rcfg.deadline_ticks;
    serve::ApplyChaos(chaos, &schedule);

    using Clock = std::chrono::steady_clock;
    const size_t n = schedule.size();
    std::vector<std::future<serve::Response>> futures(n);
    const Clock::time_point start = Clock::now();
    double trip_ms = -1.0;
    for (size_t i = 0; i < n; ++i) {
      futures[i] = rserver.Submit(schedule[i]);
      if (trip_ms < 0 && rserver.stats().breaker_trips > 0) {
        trip_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            start)
                      .count();
      }
    }
    long long expired = 0, retries = 0;
    std::vector<double> latencies_ms(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const serve::Response r = futures[i].get();
      latencies_ms[i] =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (r.expired) ++expired;
      retries += r.retries;
      if (trip_ms < 0 && rserver.stats().breaker_trips > 0) {
        trip_ms = latencies_ms[i];
      }
    }
    const Clock::time_point end = Clock::now();
    rserver.Stop();
    const serve::ServerStats rs = rserver.stats();
    if (rs.submitted != rs.admitted + rs.shed + rs.rejected + rs.expired) {
      std::fprintf(
          stderr, "resilience conservation violated: %lld != %lld+%lld+%lld+%lld\n",
          static_cast<long long>(rs.submitted),
          static_cast<long long>(rs.admitted),
          static_cast<long long>(rs.shed),
          static_cast<long long>(rs.rejected),
          static_cast<long long>(rs.expired));
      return 1;
    }
    ScenarioResult r;
    r.name = "chaos";
    r.requests = static_cast<int>(n);
    const double elapsed = std::chrono::duration<double>(end - start).count();
    r.qps = elapsed > 0 ? static_cast<double>(n) / elapsed : 0.0;
    r.p50_ms = Percentile(latencies_ms, 0.50);
    r.p99_ms = Percentile(latencies_ms, 0.99);
    r.shed = rs.shed;
    r.rejected = rs.rejected;
    r.degraded = rs.degraded;
    r.expired = rs.expired + rs.expired_queue;
    r.retries = rs.retries;
    r.breaker_trips = rs.breaker_trips;
    r.deadline_miss_rate =
        static_cast<double>(r.expired) / static_cast<double>(n);
    r.breaker_trip_ms = trip_ms;
    results.push_back(r);
  }

  for (const ScenarioResult& r : results) {
    std::printf(
        "%-7s %5d req  %8.1f qps  p50 %7.3f ms  p99 %7.3f ms  shed %lld  "
        "degraded %lld\n",
        r.name.c_str(), r.requests, r.qps, r.p50_ms, r.p99_ms, r.shed,
        r.degraded);
    if (r.name == "chaos") {
      std::printf(
          "        expired %lld (miss rate %.3f)  retries %lld  "
          "breaker trips %lld  first trip %.3f ms\n",
          r.expired, r.deadline_miss_rate, r.retries, r.breaker_trips,
          r.breaker_trip_ms);
    }
  }

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serving\",\n  \"schema\": 2,\n"
                 "  \"items\": %d,\n"
                 "  \"users\": %d,\n  \"groups\": %d,\n  \"workers\": %d,\n"
                 "  \"queue_depth\": %d,\n  \"threads\": %d,\n"
                 "  \"service_ms_warm\": %.6f,\n  \"parity\": \"ok\",\n"
                 "  \"scenarios\": [\n",
                 flags.items, flags.users, flags.groups, sc.workers,
                 sc.queue_depth, parallel::GlobalThreads(),
                 service_s * 1000.0);
    for (size_t i = 0; i < results.size(); ++i) {
      const ScenarioResult& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"requests\": %d, \"qps\": %.2f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"shed\": %lld, "
                   "\"rejected\": %lld, \"degraded\": %lld, "
                   "\"expired\": %lld, \"deadline_miss_rate\": %.4f, "
                   "\"retries\": %lld, \"breaker_trips\": %lld, "
                   "\"breaker_trip_ms\": %.4f}%s\n",
                   r.name.c_str(), r.requests, r.qps, r.p50_ms, r.p99_ms,
                   r.shed, r.rejected, r.degraded, r.expired,
                   r.deadline_miss_rate, r.retries, r.breaker_trips,
                   r.breaker_trip_ms, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}
