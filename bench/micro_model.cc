// Model-level micro-benchmarks: forward/score/training-step costs and the
// Sec. II-F fast-recommendation trade-off (full voting path vs averaged
// member scores) as a function of group size.

#include <benchmark/benchmark.h>

#include "core/fast_recommender.h"
#include "core/trainer.h"
#include "pipeline/experiment.h"

namespace {

using namespace groupsa;

struct BenchWorld {
  pipeline::ExperimentData data;
  core::GroupSaConfig config;
  core::ModelData model_data;
  std::unique_ptr<core::GroupSaModel> model;

  BenchWorld() {
    pipeline::RunOptions options;
    options.seed = 13;
    data = pipeline::PrepareData(data::SyntheticWorldConfig::Tiny(), options);
    config = core::GroupSaConfig::Default();
    model_data = pipeline::BuildModelData(data, config);
    Rng rng(7);
    model = std::make_unique<core::GroupSaModel>(
        config, data.num_users(), data.num_items(), model_data, &rng);
  }
};

BenchWorld& World() {
  static BenchWorld* world = new BenchWorld();
  return *world;
}

std::vector<data::UserId> MembersOfSize(int l) {
  std::vector<data::UserId> members;
  for (int i = 0; i < l; ++i)
    members.push_back((i * 13) % World().data.num_users());
  return members;
}

void BM_UserForward(benchmark::State& state) {
  auto& w = World();
  for (auto _ : state) {
    auto fwd = w.model->BuildUserForward(nullptr, 3, false, nullptr);
    benchmark::DoNotOptimize(fwd.embedding->value().data());
  }
}
BENCHMARK(BM_UserForward);

void BM_GroupForward(benchmark::State& state) {
  auto& w = World();
  const auto members = MembersOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto fwd =
        w.model->BuildGroupForwardFromMembers(nullptr, members, false,
                                              nullptr);
    benchmark::DoNotOptimize(fwd.reps.reps->value().data());
  }
}
BENCHMARK(BM_GroupForward)->Arg(3)->Arg(6)->Arg(12);

// The Sec. II-F comparison: scoring 100 candidates through the full voting
// path vs the fast average-of-member-scores path.
void BM_FullGroupScoring100(benchmark::State& state) {
  auto& w = World();
  const auto members = MembersOfSize(static_cast<int>(state.range(0)));
  std::vector<data::ItemId> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i % w.data.num_items();
  for (auto _ : state) {
    auto scores = w.model->ScoreItemsForMembers(members, items);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_FullGroupScoring100)->Arg(3)->Arg(6)->Arg(12);

void BM_FastGroupScoring100(benchmark::State& state) {
  auto& w = World();
  core::FastGroupRecommender fast(w.model.get());
  const auto members = MembersOfSize(static_cast<int>(state.range(0)));
  std::vector<data::ItemId> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i % w.data.num_items();
  for (auto _ : state) {
    auto scores = fast.ScoreItemsForMembers(members, items);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_FastGroupScoring100)->Arg(3)->Arg(6)->Arg(12);

void BM_GroupTrainingStep(benchmark::State& state) {
  auto& w = World();
  Rng rng(11);
  nn::Adam optimizer(w.model->Parameters(), 0.005f);
  data::NegativeSampler sampler(&w.data.gi_train);
  const auto& edges = w.data.gi.train;
  size_t idx = 0;
  for (auto _ : state) {
    const data::Edge& edge = edges[idx++ % edges.size()];
    ag::Tape tape;
    auto fwd = w.model->BuildGroupForward(&tape, edge.row, true, &rng);
    auto pos = w.model->ScoreGroupItem(&tape, fwd, edge.item, true, &rng);
    auto neg = w.model->ScoreGroupItem(&tape, fwd,
                                       sampler.Sample(edge.row, &rng), true,
                                       &rng);
    ag::TensorPtr loss = ag::BprLoss(&tape, pos.score, neg.score);
    tape.Backward(loss);
    optimizer.Step();
  }
}
BENCHMARK(BM_GroupTrainingStep);

}  // namespace
