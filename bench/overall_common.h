#ifndef GROUPSA_BENCH_OVERALL_COMMON_H_
#define GROUPSA_BENCH_OVERALL_COMMON_H_

// Shared driver for the Table II / Table III overall comparisons: trains
// NCF, Pop, AGREE, SIGR and GroupSA, derives Group+avg/lm/ms from the
// trained GroupSA, and prints the paper-shaped table.

#include <cstdio>

#include "common/stopwatch.h"
#include "pipeline/experiment.h"

namespace groupsa::bench {

inline int RunOverallComparison(const data::SyntheticWorldConfig& world_config,
                                const std::string& title, int argc,
                                char** argv) {
  pipeline::RunOptions options =
      pipeline::ParseBenchArgs(argc, argv, pipeline::RunOptions{});
  Stopwatch total;
  std::printf("Preparing %s (seed %llu)...\n", world_config.name.c_str(),
              static_cast<unsigned long long>(options.seed));
  pipeline::ExperimentData data = pipeline::PrepareData(world_config, options);
  std::printf("train: %zu user-item, %zu group-item; test cases: %zu user, "
              "%zu group\n",
              data.ui.train.size(), data.gi.train.size(),
              data.user_cases.size(), data.group_cases.size());

  std::vector<pipeline::ModelScores> rows;
  Rng rng(options.seed + 1);

  std::printf("[1/5] NCF...\n");
  rows.push_back(pipeline::RunNcf(data, options, &rng));
  std::printf("[2/5] Pop...\n");
  rows.push_back(pipeline::RunPopularity(data, options));
  std::printf("[3/5] AGREE...\n");
  rows.push_back(pipeline::RunAgree(data, options, &rng));
  std::printf("[4/5] SIGR...\n");
  rows.push_back(pipeline::RunSigr(data, options, &rng));

  std::printf("[5/5] GroupSA (+ static aggregations)...\n");
  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  const core::ModelData model_data = pipeline::BuildModelData(data, config);
  auto model =
      pipeline::TrainGroupSa(config, data, options, &rng, model_data);
  rows.push_back(pipeline::RunStaticAgg(
      model.get(), data, options, baselines::ScoreAggregation::kAverage));
  rows.push_back(pipeline::RunStaticAgg(
      model.get(), data, options, baselines::ScoreAggregation::kLeastMisery));
  rows.push_back(pipeline::RunStaticAgg(
      model.get(), data, options,
      baselines::ScoreAggregation::kMaxSatisfaction));
  rows.push_back(pipeline::ScoreGroupSa(model.get(), data, options,
                                        "GroupSA"));

  pipeline::PrintOverallTable(title, rows, options);
  std::printf("\ntotal %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace groupsa::bench

#endif  // GROUPSA_BENCH_OVERALL_COMMON_H_
