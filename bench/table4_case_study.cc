// Table IV: case study of the social self-attention effect. Trains GroupSA
// and Group-S, picks a test group, and prints each model's member attention
// weights (gamma, Eq. 10) and sigmoid-squashed group scores for two positive
// (held-out) and two negative items. Expected shape (paper): GroupSA's
// scores closer to 1 on positives and closer to 0 on negatives, with
// visibly different member weights per item.

#include <cmath>
#include <cstdio>

#include "common/stopwatch.h"
#include "data/candidates.h"
#include "pipeline/experiment.h"

using namespace groupsa;

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void PrintCase(const char* model_name, core::GroupSaModel* model,
               data::GroupId group, data::ItemId item, bool positive) {
  const auto detail = model->ScoreGroupItemDetailed(group, item);
  std::printf("  %-12s item#%-4d (%s)  weights:", model_name, item,
              positive ? "pos" : "neg");
  for (int c = 0; c < detail.member_weights.cols(); ++c)
    std::printf(" %.4f", detail.member_weights.At(0, c));
  std::printf("  r^G=%.4f\n", Sigmoid(detail.score->scalar()));
}

}  // namespace

int main(int argc, char** argv) {
  pipeline::RunOptions options =
      pipeline::ParseBenchArgs(argc, argv, pipeline::RunOptions{});
  Stopwatch total;
  pipeline::ExperimentData data = pipeline::PrepareData(
      data::SyntheticWorldConfig::YelpLike(), options);

  // Find a test group with at least two held-out positives and 3+ members.
  data::GroupId group = -1;
  std::vector<data::ItemId> positives;
  for (const auto& c : data.group_cases) {
    if (data.world.dataset.groups.GroupSize(c.entity) < 3) continue;
    std::vector<data::ItemId> pos;
    for (const auto& c2 : data.group_cases)
      if (c2.entity == c.entity) pos.push_back(c2.positive);
    if (pos.size() >= 2) {
      group = c.entity;
      positives = {pos[0], pos[1]};
      break;
    }
  }
  if (group < 0) {
    // Fall back to a single-positive group.
    group = data.group_cases[0].entity;
    positives = {data.group_cases[0].positive};
  }
  Rng neg_rng(options.seed + 7);
  const data::InteractionMatrix gi_all = data.gi_all;
  std::vector<data::ItemId> negatives =
      data::SampleCandidates(gi_all, group, 2, &neg_rng);

  std::printf("case-study group #%d, members:", group);
  for (data::UserId u : data.world.dataset.groups.Members(group))
    std::printf(" user#%d", u);
  std::printf("\n\n");

  std::vector<std::pair<std::string, core::GroupSaConfig>> models = {
      {"Group-S", core::GroupSaConfig::GroupS()},
      {"GroupSA", core::GroupSaConfig::Default()}};
  for (auto& [name, config] : models) {
    std::printf("training %s...\n", name.c_str());
    Rng rng(options.seed + 1);
    const core::ModelData model_data = pipeline::BuildModelData(data, config);
    auto model =
        pipeline::TrainGroupSa(config, data, options, &rng, model_data);
    std::printf("=== Table IV rows — %s ===\n", name.c_str());
    for (data::ItemId item : positives)
      PrintCase(name.c_str(), model.get(), group, item, /*positive=*/true);
    for (data::ItemId item : negatives)
      PrintCase(name.c_str(), model.get(), group, item, /*positive=*/false);
    std::printf("\n");
  }
  std::printf("total %.1fs\n", total.ElapsedSeconds());
  return 0;
}
