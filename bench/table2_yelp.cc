// Table II: Top-K recommendation performance on the Yelp-like world, user
// and group tasks, for NCF / Pop / AGREE / SIGR / Group+{avg,lm,ms} /
// GroupSA at K = 5 and 10. Expected shape (paper): GroupSA best on both
// tasks; static aggregations above AGREE/SIGR on the group task; NCF and Pop
// weakest.

#include "overall_common.h"

int main(int argc, char** argv) {
  return groupsa::bench::RunOverallComparison(
      groupsa::data::SyntheticWorldConfig::YelpLike(),
      "Table II — overall comparison (yelp-like)", argc, argv);
}
