// Table V: importance of the user-item interaction data. Compares NCF
// (group-as-virtual-user), Group-G (GroupSA without the user-item task) and
// full GroupSA on the group task for both worlds. Expected shape (paper):
// GroupSA >> Group-G > NCF, demonstrating the joint training's value under
// group-item sparsity.

#include <cstdio>

#include "common/stopwatch.h"
#include "pipeline/experiment.h"

using namespace groupsa;

int main(int argc, char** argv) {
  pipeline::RunOptions options =
      pipeline::ParseBenchArgs(argc, argv, pipeline::RunOptions{});
  Stopwatch total;
  for (const auto& world_config :
       {data::SyntheticWorldConfig::YelpLike(),
        data::SyntheticWorldConfig::DoubanEventLike()}) {
    pipeline::ExperimentData data =
        pipeline::PrepareData(world_config, options);
    std::vector<pipeline::ModelScores> rows;

    Rng rng(options.seed + 1);
    std::printf("[%s] NCF (group rows only)...\n", world_config.name.c_str());
    pipeline::ModelScores ncf = pipeline::RunNcf(data, options, &rng);
    ncf.user = eval::EvalResult{};  // Table V reports the group task only
    rows.push_back(std::move(ncf));

    for (auto config :
         {core::GroupSaConfig::GroupG(), core::GroupSaConfig::Default()}) {
      std::printf("[%s] %s...\n", world_config.name.c_str(),
                  config.variant.c_str());
      Rng model_rng(options.seed + 2);
      const core::ModelData model_data =
          pipeline::BuildModelData(data, config);
      auto model = pipeline::TrainGroupSa(config, data, options, &model_rng,
                                          model_data);
      pipeline::ModelScores scores = pipeline::ScoreGroupSa(
          model.get(), data, options, config.variant);
      scores.user = eval::EvalResult{};
      rows.push_back(std::move(scores));
    }
    pipeline::PrintGroupTable(
        std::string("Table V — importance of user-item data (") +
            world_config.name + ")",
        rows, options);
  }
  std::printf("\ntotal %.1fs\n", total.ElapsedSeconds());
  return 0;
}
