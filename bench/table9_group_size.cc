// Table IX: group-task performance by group size bin (< 3, 3-7, > 7) for a
// single trained GroupSA. Expected shape (paper): larger groups are easier —
// the voting scheme has more member structure to exploit.

#include <cstdio>

#include "common/stopwatch.h"
#include "pipeline/experiment.h"

using namespace groupsa;

int main(int argc, char** argv) {
  pipeline::RunOptions options =
      pipeline::ParseBenchArgs(argc, argv, pipeline::RunOptions{});
  Stopwatch total;
  pipeline::ExperimentData data = pipeline::PrepareData(
      data::SyntheticWorldConfig::YelpLike(), options);

  Rng rng(options.seed + 1);
  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  const core::ModelData model_data = pipeline::BuildModelData(data, config);
  std::printf("training GroupSA...\n");
  auto model =
      pipeline::TrainGroupSa(config, data, options, &rng, model_data);

  const eval::Scorer scorer = [&](int32_t entity,
                                  const std::vector<data::ItemId>& items) {
    return model->ScoreItemsForGroup(entity, items);
  };
  struct Bin {
    const char* label;
    int lo;
    int hi;  // inclusive
  };
  const Bin bins[] = {{"l < 3", 0, 2}, {"3 <= l <= 7", 3, 7},
                      {"7 < l", 8, 1 << 30}};
  std::printf("\n=== Table IX — performance by group size ===\n");
  std::printf("%-12s %6s %8s %8s %8s %8s\n", "bin", "cases", "HR@5", "HR@10",
              "NDCG@5", "NDCG@10");
  for (const Bin& bin : bins) {
    const eval::EvalResult result = eval::EvaluateRankingFiltered(
        data.group_cases, scorer, options.ks, [&](int32_t group) {
          const int l = data.world.dataset.groups.GroupSize(group);
          return l >= bin.lo && l <= bin.hi;
        });
    std::printf("%-12s %6d %8.4f %8.4f %8.4f %8.4f\n", bin.label,
                result.num_cases, result.HitRatio(5), result.HitRatio(10),
                result.Ndcg(5), result.Ndcg(10));
  }
  std::printf("\ntotal %.1fs\n", total.ElapsedSeconds());
  return 0;
}
