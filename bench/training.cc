// Training hot-loop benchmark: the full two-stage Fit() schedule with the
// tensor pool on vs off, at one and four threads. Pooled and unpooled
// training are bit-identical by contract (see src/core/trainer.h); this
// driver re-verifies that claim on every run by comparing the encoded
// parameter blobs of all four configurations and exits non-zero on any
// mismatch, so the timing numbers can never silently drift away from the
// semantics they claim to measure.
//
// Reported per configuration: seconds per epoch (mean over the recorded
// user+group epochs), batches per second, and — for the pooled runs — the
// pool's allocation counters, which show the steady state recycling
// instead of allocating.
//
// Flags: --users=N --items=N --groups=N --epochs=N --quick
//        --json=path   (machine-readable result record, see tools/bench.sh)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "autograd/pool.h"
#include "common/stopwatch.h"
#include "core/groupsa_model.h"
#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tfidf.h"
#include "nn/checkpoint.h"

using namespace groupsa;

namespace {

struct Flags {
  int users = 300;
  int items = 200;
  int groups = 120;
  int epochs = 4;  // per stage; enough steady-state to amortize warm-up
  bool quick = false;
  std::string json;
};

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::atoi(arg + n + 1);
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      f.quick = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      f.json = arg + 7;
    } else if (!ParseIntFlag(arg, "--users", &f.users) &&
               !ParseIntFlag(arg, "--items", &f.items) &&
               !ParseIntFlag(arg, "--groups", &f.groups) &&
               !ParseIntFlag(arg, "--epochs", &f.epochs)) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (f.quick) {
    f.users = std::min(f.users, 80);
    f.items = std::min(f.items, 60);
    f.groups = std::min(f.groups, 40);
    f.epochs = 1;
  }
  return f;
}

// The shared training problem: one synthetic world, one split, one set of
// precomputed model inputs. Every benchmark run re-derives its model and
// trainer from the same seeds so the four configurations are exact
// replicas of each other except for the thread count and the pool toggle.
struct Workload {
  data::SyntheticWorld world;
  data::Split ui;
  data::Split gi;
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  core::ModelData model_data;
};

core::GroupSaConfig BenchConfig(const Flags& flags, int threads) {
  core::GroupSaConfig config = core::GroupSaConfig::Default();
  config.user_epochs = flags.epochs;
  config.group_epochs = flags.epochs;
  config.threads = threads;
  return config;
}

Workload BuildWorkload(const Flags& flags) {
  data::SyntheticWorldConfig wc;
  wc.name = "bench_training";
  wc.num_users = flags.users;
  wc.num_items = flags.items;
  wc.num_groups = flags.groups;
  wc.seed = 7;
  Workload w{data::GenerateWorld(wc), {}, {}, {}, {}, {}};

  Rng split_rng(11);
  w.ui = data::SplitEdges(w.world.dataset.user_item, 0.2, 0.1, &split_rng);
  w.gi = data::GlobalSplitEdges(w.world.dataset.group_item, 0.2, 0.1,
                                &split_rng);
  w.ui_train = data::InteractionMatrix(w.world.dataset.num_users,
                                       w.world.dataset.num_items, w.ui.train);
  w.gi_train =
      data::InteractionMatrix(w.world.dataset.groups.num_groups(),
                              w.world.dataset.num_items, w.gi.train);

  const core::GroupSaConfig config = BenchConfig(flags, 1);
  w.model_data.groups = &w.world.dataset.groups;
  w.model_data.social = &w.world.dataset.social;
  w.model_data.top_items = data::TopItemsPerUser(w.ui_train, config.top_h);
  w.model_data.top_friends =
      data::TopFriendsPerUser(w.world.dataset.social, config.top_h);
  return w;
}

struct RunResult {
  double total_seconds = 0.0;
  double seconds_per_epoch = 0.0;
  double batches_per_second = 0.0;
  ag::TensorPool::Stats pool;
  std::string params;  // encoded blob, for the bit-identity check
};

RunResult RunTraining(const Workload& w, const Flags& flags, int threads,
                      bool pooling) {
  const core::GroupSaConfig config = BenchConfig(flags, threads);
  Rng rng(13);
  core::GroupSaModel model(config, w.world.dataset.num_users,
                           w.world.dataset.num_items, w.model_data, &rng);
  core::Trainer trainer(&model, w.ui.train, w.gi.train, &w.ui_train,
                        &w.gi_train, &rng);
  trainer.set_tensor_pooling(pooling);

  Stopwatch sw;
  const core::Trainer::FitReport report = trainer.Fit();
  RunResult r;
  r.total_seconds = sw.ElapsedSeconds();

  double epoch_seconds = 0.0;
  int64_t batches = 0;
  int epochs = 0;
  for (const auto* stage : {&report.user_epochs, &report.group_epochs}) {
    for (const core::Trainer::EpochStats& e : *stage) {
      epoch_seconds += e.seconds;
      batches += (e.num_samples + config.batch_size - 1) / config.batch_size;
      ++epochs;
    }
  }
  r.seconds_per_epoch = epochs > 0 ? epoch_seconds / epochs : 0.0;
  r.batches_per_second =
      epoch_seconds > 0.0 ? static_cast<double>(batches) / epoch_seconds : 0.0;
  r.pool = trainer.PoolStats();
  r.params = nn::EncodeParameters(model.Parameters());
  return r;
}

void PrintRun(const char* label, const RunResult& r) {
  std::printf("  %-12s total %7.3fs  %7.3fs/epoch  %8.2f batches/s", label,
              r.total_seconds, r.seconds_per_epoch, r.batches_per_second);
  if (r.pool.batches > 0) {
    std::printf("  pool: %llu created / %llu reused, %llu escaped",
                static_cast<unsigned long long>(r.pool.tensors_created),
                static_cast<unsigned long long>(r.pool.tensors_reused),
                static_cast<unsigned long long>(r.pool.escaped));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const Workload w = BuildWorkload(flags);

  std::printf(
      "bench_training: %d users, %d items, %d groups, %d+%d epochs, "
      "batch %d\n",
      flags.users, flags.items, flags.groups, flags.epochs, flags.epochs,
      core::GroupSaConfig::Default().batch_size);

  const RunResult t1_unpooled = RunTraining(w, flags, 1, /*pooling=*/false);
  const RunResult t1_pooled = RunTraining(w, flags, 1, /*pooling=*/true);
  const RunResult t4_unpooled = RunTraining(w, flags, 4, /*pooling=*/false);
  const RunResult t4_pooled = RunTraining(w, flags, 4, /*pooling=*/true);

  PrintRun("t1 unpooled", t1_unpooled);
  PrintRun("t1 pooled", t1_pooled);
  PrintRun("t4 unpooled", t4_unpooled);
  PrintRun("t4 pooled", t4_pooled);

  const bool identical = t1_pooled.params == t1_unpooled.params &&
                         t4_unpooled.params == t1_unpooled.params &&
                         t4_pooled.params == t1_unpooled.params;
  const double speedup_t1 =
      t1_unpooled.seconds_per_epoch / t1_pooled.seconds_per_epoch;
  const double speedup_t4 =
      t4_unpooled.seconds_per_epoch / t4_pooled.seconds_per_epoch;
  std::printf("  pooled speedup: %.2fx at 1 thread, %.2fx at 4 threads\n",
              speedup_t1, speedup_t4);
  std::printf("  bit-identical: %s\n", identical ? "yes" : "NO");

  if (!flags.json.empty()) {
    FILE* out = std::fopen(flags.json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json.c_str());
      return 2;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"training\",\n"
        "  \"users\": %d,\n"
        "  \"items\": %d,\n"
        "  \"groups\": %d,\n"
        "  \"epochs_per_stage\": %d,\n"
        "  \"t1_unpooled_seconds_per_epoch\": %.6f,\n"
        "  \"t1_pooled_seconds_per_epoch\": %.6f,\n"
        "  \"t1_unpooled_batches_per_second\": %.3f,\n"
        "  \"t1_pooled_batches_per_second\": %.3f,\n"
        "  \"t4_unpooled_seconds_per_epoch\": %.6f,\n"
        "  \"t4_pooled_seconds_per_epoch\": %.6f,\n"
        "  \"t4_unpooled_batches_per_second\": %.3f,\n"
        "  \"t4_pooled_batches_per_second\": %.3f,\n"
        "  \"pooled_speedup_t1\": %.3f,\n"
        "  \"pooled_speedup_t4\": %.3f,\n"
        "  \"pool_tensors_created\": %llu,\n"
        "  \"pool_tensors_reused\": %llu,\n"
        "  \"pool_workspaces_created\": %llu,\n"
        "  \"pool_workspaces_reused\": %llu,\n"
        "  \"pool_escaped\": %llu,\n"
        "  \"pool_bytes\": %llu,\n"
        "  \"bit_identical\": %s\n"
        "}\n",
        flags.users, flags.items, flags.groups, flags.epochs,
        t1_unpooled.seconds_per_epoch, t1_pooled.seconds_per_epoch,
        t1_unpooled.batches_per_second, t1_pooled.batches_per_second,
        t4_unpooled.seconds_per_epoch, t4_pooled.seconds_per_epoch,
        t4_unpooled.batches_per_second, t4_pooled.batches_per_second,
        speedup_t1, speedup_t4,
        static_cast<unsigned long long>(t1_pooled.pool.tensors_created),
        static_cast<unsigned long long>(t1_pooled.pool.tensors_reused),
        static_cast<unsigned long long>(t1_pooled.pool.workspaces_created),
        static_cast<unsigned long long>(t1_pooled.pool.workspaces_reused),
        static_cast<unsigned long long>(t1_pooled.pool.escaped),
        static_cast<unsigned long long>(t1_pooled.pool.bytes),
        identical ? "true" : "false");
    std::fclose(out);
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: pooled training diverged from the unpooled path\n");
    return 1;
  }
  return 0;
}
