// Statistical significance (Sec. III-E): the paper repeats every setting
// five times and verifies improvements with a paired t-test at p < 0.01.
// This bench runs GroupSA and the strongest baselines over several seeds on
// the Yelp-like world and reports mean ± std plus the paired t-test of
// GroupSA against each.

#include <cstdio>

#include "common/stopwatch.h"
#include "eval/experiment.h"
#include "pipeline/experiment.h"

using namespace groupsa;

int main(int argc, char** argv) {
  pipeline::RunOptions defaults;
  defaults.user_epochs = 5;
  defaults.group_epochs = 6;
  pipeline::RunOptions options =
      pipeline::ParseBenchArgs(argc, argv, defaults);
  const int num_seeds = options.user_epochs <= 2 ? 2 : 3;

  Stopwatch total;
  eval::MultiSeedResult results = eval::RunSeeds(
      num_seeds, options.seed,
      [&](int index, uint64_t seed, eval::MultiSeedResult* out) {
        pipeline::RunOptions run = options;
        run.seed = seed;
        std::printf("seed %d/%d...\n", index + 1, num_seeds);
        pipeline::ExperimentData data = pipeline::PrepareData(
            data::SyntheticWorldConfig::YelpLike(), run);
        Rng rng(seed + 1);

        const pipeline::ModelScores agree =
            pipeline::RunAgree(data, run, &rng);
        out->Add("AGREE", agree.group.HitRatio(5));

        const core::GroupSaConfig config = core::GroupSaConfig::Default();
        const core::ModelData model_data =
            pipeline::BuildModelData(data, config);
        auto model =
            pipeline::TrainGroupSa(config, data, run, &rng, model_data);
        out->Add("GroupSA",
                 pipeline::ScoreGroupSa(model.get(), data, run, "GroupSA")
                     .group.HitRatio(5));
        out->Add("Group+avg",
                 pipeline::RunStaticAgg(model.get(), data, run,
                                        baselines::ScoreAggregation::kAverage)
                     .group.HitRatio(5));
      });

  std::printf("\n=== Significance — group HR@5 over %d seeds ===\n",
              num_seeds);
  for (const std::string& name : results.MetricNames()) {
    std::printf("%-10s %.4f ± %.4f\n", name.c_str(), results.MeanOf(name),
                results.StdDevOf(name));
  }
  for (const std::string& other : {std::string("AGREE"),
                                   std::string("Group+avg")}) {
    const eval::TTestResult t = results.Compare("GroupSA", other);
    std::printf("GroupSA vs %-10s mean diff %+0.4f, t=%.2f, p=%.4f%s\n",
                other.c_str(), t.mean_difference, t.t_statistic, t.p_value,
                t.p_value < 0.05 ? "  (significant at 0.05)" : "");
  }
  std::printf("\ntotal %.1fs\n", total.ElapsedSeconds());
  return 0;
}
