// Table VI: impact of the number of stacked self-attention layers N_X
// (voting rounds) on the group task. Expected shape (paper): shallow stacks
// already work, with a mild interior optimum and no monotone gain from
// depth.

#include "common/string_util.h"
#include "sweep_common.h"

using namespace groupsa;

int main(int argc, char** argv) {
  const pipeline::RunOptions options = bench::SweepOptions(argc, argv);
  std::vector<std::pair<std::string, core::GroupSaConfig>> points;
  for (int n_x = 1; n_x <= 5; ++n_x) {
    core::GroupSaConfig config = core::GroupSaConfig::Default();
    config.num_voting_layers = n_x;
    points.emplace_back(StrFormat("N_X=%d", n_x), config);
  }
  return bench::RunSweep("Table VI — impact of N_X (voting rounds)", points,
                         options);
}
