// Table VII: impact of the blend weight w^u between the shared-embedding
// score r^R1 and the latent-factor score r^R2 (Eq. 23). Expected shape
// (paper): an interior optimum — performance rises with w^u, peaks, and
// drops sharply at w^u = 1.0 where the shared embeddings stop receiving the
// direct user-item signal. (The paper's peak is 0.9; this reproduction
// peaks near 0.5 — see EXPERIMENTS.md.)

#include "common/string_util.h"
#include "sweep_common.h"

using namespace groupsa;

int main(int argc, char** argv) {
  const pipeline::RunOptions options = bench::SweepOptions(argc, argv);
  std::vector<std::pair<std::string, core::GroupSaConfig>> points;
  for (float wu : {0.1f, 0.3f, 0.5f, 0.7f, 0.9f, 1.0f}) {
    core::GroupSaConfig config = core::GroupSaConfig::Default();
    config.user_score_blend = wu;
    points.emplace_back(StrFormat("w^u=%.1f", static_cast<double>(wu)),
                        config);
  }
  return bench::RunSweep("Table VII — impact of w^u (Eq. 23 blend)", points,
                         options);
}
