// Table III: Top-K recommendation performance on the Douban-Event-like
// world; same grid and expected shape as Table II.

#include "overall_common.h"

int main(int argc, char** argv) {
  auto config = groupsa::data::SyntheticWorldConfig::DoubanEventLike();
  // Paper tunes N_X = 2 for Douban-Event (Sec. V-C).
  return groupsa::bench::RunOverallComparison(
      config, "Table III — overall comparison (douban-event-like)", argc,
      argv);
}
