// Thread-count determinism of the full stack: training through the sharded
// minibatch path and ranking evaluation through the case fan-out must be
// bit-identical at any global pool width. These tests run the same seeded
// experiment at width 1 and width 4 and compare exact values — EXPECT_EQ on
// doubles, not EXPECT_NEAR — because the determinism contract in
// common/thread_pool.h promises identical bits, not merely close ones.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/test_fixtures.h"
#include "core/trainer.h"
#include "eval/evaluator.h"

namespace groupsa {
namespace {

using core::testing::TinyFixture;

core::GroupSaConfig SmallConfig() {
  core::GroupSaConfig c = core::GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  c.user_epochs = 2;
  c.group_epochs = 2;
  return c;
}

// Everything one seeded training run produces that could diverge across
// thread counts: the per-epoch losses and the final group-task metrics.
struct RunOutcome {
  std::vector<double> user_losses;
  std::vector<double> group_losses;
  eval::EvalResult group_eval;
};

RunOutcome TrainAndEvaluate(int threads) {
  core::GroupSaConfig config = SmallConfig();
  config.threads = threads;
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(17);
  core::Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                        &f.gi_train, &rng);
  const auto report = trainer.Fit();

  RunOutcome outcome;
  for (const auto& e : report.user_epochs)
    outcome.user_losses.push_back(e.avg_loss);
  for (const auto& e : report.group_epochs)
    outcome.group_losses.push_back(e.avg_loss);

  Rng eval_rng(23);
  const data::InteractionMatrix gi_all = f.world.dataset.GroupItemMatrix();
  const auto cases =
      eval::BuildRankingCases(f.gi.test, gi_all, /*num_candidates=*/20,
                              &eval_rng);
  outcome.group_eval = eval::EvaluateRanking(
      cases,
      [&](int32_t g, const std::vector<data::ItemId>& items) {
        return model->ScoreItemsForGroup(g, items);
      },
      {5, 10});
  parallel::SetGlobalThreads(1);
  return outcome;
}

void ExpectIdentical(const RunOutcome& a, const RunOutcome& b) {
  ASSERT_EQ(a.user_losses.size(), b.user_losses.size());
  for (size_t i = 0; i < a.user_losses.size(); ++i)
    EXPECT_EQ(a.user_losses[i], b.user_losses[i]) << "user epoch " << i;
  ASSERT_EQ(a.group_losses.size(), b.group_losses.size());
  for (size_t i = 0; i < a.group_losses.size(); ++i)
    EXPECT_EQ(a.group_losses[i], b.group_losses[i]) << "group epoch " << i;
  EXPECT_EQ(a.group_eval.num_cases, b.group_eval.num_cases);
  ASSERT_EQ(a.group_eval.at_k.size(), b.group_eval.at_k.size());
  for (size_t i = 0; i < a.group_eval.at_k.size(); ++i) {
    const auto& ma = a.group_eval.at_k[i];
    const auto& mb = b.group_eval.at_k[i];
    EXPECT_EQ(ma.k, mb.k);
    EXPECT_EQ(ma.hit_ratio, mb.hit_ratio) << "HR@" << ma.k;
    EXPECT_EQ(ma.ndcg, mb.ndcg) << "NDCG@" << ma.k;
    EXPECT_EQ(ma.mrr, mb.mrr) << "MRR@" << ma.k;
  }
}

TEST(DeterminismTest, TrainingIdenticalAtOneAndFourThreads) {
  const RunOutcome serial = TrainAndEvaluate(/*threads=*/1);
  const RunOutcome parallel = TrainAndEvaluate(/*threads=*/4);
  ExpectIdentical(serial, parallel);
  // Sanity: training actually ran and produced a finite, nonzero loss.
  ASSERT_FALSE(serial.user_losses.empty());
  EXPECT_GT(serial.user_losses.front(), 0.0);
}

TEST(DeterminismTest, SameSeedSameThreadsReproduces) {
  const RunOutcome first = TrainAndEvaluate(/*threads=*/2);
  const RunOutcome second = TrainAndEvaluate(/*threads=*/2);
  ExpectIdentical(first, second);
}

TEST(DeterminismTest, EvaluationIdenticalAcrossThreadCounts) {
  const core::GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);  // untrained weights are fine here
  Rng eval_rng(31);
  const data::InteractionMatrix gi_all = f.world.dataset.GroupItemMatrix();
  const auto cases = eval::BuildRankingCases(f.gi.test, gi_all,
                                             /*num_candidates=*/20, &eval_rng);
  ASSERT_FALSE(cases.empty());
  const eval::Scorer scorer = [&](int32_t g,
                                  const std::vector<data::ItemId>& items) {
    return model->ScoreItemsForGroup(g, items);
  };

  parallel::SetGlobalThreads(1);
  const eval::EvalResult baseline =
      eval::EvaluateRanking(cases, scorer, {5, 10});
  for (int threads : {2, 4, 8}) {
    parallel::SetGlobalThreads(threads);
    const eval::EvalResult result =
        eval::EvaluateRanking(cases, scorer, {5, 10});
    EXPECT_EQ(result.num_cases, baseline.num_cases) << threads << " threads";
    ASSERT_EQ(result.at_k.size(), baseline.at_k.size());
    for (size_t i = 0; i < result.at_k.size(); ++i) {
      EXPECT_EQ(result.at_k[i].hit_ratio, baseline.at_k[i].hit_ratio)
          << threads << " threads, HR@" << result.at_k[i].k;
      EXPECT_EQ(result.at_k[i].ndcg, baseline.at_k[i].ndcg)
          << threads << " threads, NDCG@" << result.at_k[i].k;
    }
  }
  parallel::SetGlobalThreads(1);
}

TEST(DeterminismTest, FilteredEvaluationIdenticalAcrossThreadCounts) {
  const core::GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng eval_rng(37);
  const data::InteractionMatrix gi_all = f.world.dataset.GroupItemMatrix();
  const auto cases = eval::BuildRankingCases(f.gi.test, gi_all,
                                             /*num_candidates=*/20, &eval_rng);
  const eval::Scorer scorer = [&](int32_t g,
                                  const std::vector<data::ItemId>& items) {
    return model->ScoreItemsForGroup(g, items);
  };
  const auto keep = [](int32_t g) { return g % 2 == 0; };

  parallel::SetGlobalThreads(1);
  const eval::EvalResult baseline =
      eval::EvaluateRankingFiltered(cases, scorer, {5}, keep);
  parallel::SetGlobalThreads(4);
  const eval::EvalResult result =
      eval::EvaluateRankingFiltered(cases, scorer, {5}, keep);
  parallel::SetGlobalThreads(1);
  EXPECT_EQ(result.num_cases, baseline.num_cases);
  EXPECT_EQ(result.HitRatio(5), baseline.HitRatio(5));
  EXPECT_EQ(result.Ndcg(5), baseline.Ndcg(5));
}

}  // namespace
}  // namespace groupsa
