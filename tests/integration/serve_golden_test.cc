// Serve-mode golden test: train on the tiny world, write a real checkpoint,
// then serve it through the daemon's checkpoint-loading factory — the same
// shape as `groupsa_cli train` followed by `groupsa_serve`. The drive
// transcript over a fixed seeded schedule must be byte-identical across
// every (server workers) x (global pool threads) combination, and every
// response must bit-match a direct InferenceEngine call on a separately
// restored model. This is the end-to-end determinism claim: checkpoint
// round-trip + concurrent pipeline + engine threading are all invisible in
// the output bytes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/test_fixtures.h"
#include "core/trainer.h"
#include "nn/checkpoint.h"
#include "serve/harness.h"
#include "serve/server.h"

namespace groupsa::serve {
namespace {

using core::testing::TinyFixture;

core::GroupSaConfig GoldenConfig() {
  core::GroupSaConfig c = core::GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  c.user_epochs = 1;
  c.group_epochs = 1;
  return c;
}

class ServeGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::GroupSaConfig(GoldenConfig());
    fixture_ = new TinyFixture(TinyFixture::Make(*config_));
    // TinyFixture::Make returns by value; re-point the ModelData pointers at
    // the object we actually keep.
    fixture_->model_data.groups = &fixture_->world.dataset.groups;
    fixture_->model_data.social = &fixture_->world.dataset.social;

    // Train briefly and checkpoint — the "groupsa_cli train" half.
    auto model = fixture_->MakeModel(*config_, /*seed=*/11);
    Rng rng(29);
    core::Trainer trainer(model.get(), fixture_->ui.train, fixture_->gi.train,
                          &fixture_->ui_train, &fixture_->gi_train, &rng);
    trainer.Fit();
    // Per-process path: ctest runs each TEST of this suite as its own
    // process, concurrently; a shared fixed path would race the checkpoint
    // writer's tmp file across processes.
    checkpoint_path_ = new std::string(
        std::string(::testing::TempDir()) + "/serve_golden_" +
        std::to_string(::getpid()) + ".ckpt");
    ASSERT_TRUE(nn::SaveParameters(model->Parameters(), *checkpoint_path_).ok());

    // The oracle: a fresh model restored from the same checkpoint, queried
    // directly (no daemon) for the parity half of the test.
    oracle_ = RestoreModel().release();
    ASSERT_NE(oracle_, nullptr);
  }

  static void TearDownTestSuite() {
    delete oracle_;
    delete checkpoint_path_;
    delete fixture_;
    delete config_;
    parallel::SetGlobalThreads(1);
  }

  // The daemon's factory path: construct at a fixed seed, load the
  // checkpoint (strict), exactly what groupsa_serve does per generation.
  static std::unique_ptr<core::GroupSaModel> RestoreModel() {
    auto model = fixture_->MakeModel(*config_, /*seed=*/99);
    if (!nn::LoadParameters(model->Parameters(), *checkpoint_path_).ok())
      return nullptr;
    return model;
  }

  static Server MakeServer(int workers) {
    ServeConfig sc;
    sc.workers = workers;
    sc.queue_depth = 64;
    Server::ModelFactory factory =
        [](const std::string&,
           std::unique_ptr<core::GroupSaModel>* out) -> Status {
      *out = RestoreModel();
      if (*out == nullptr) return Status::Error("checkpoint load failed");
      return Status::Ok();
    };
    return Server(sc, std::move(factory), *checkpoint_path_,
                  fixture_->ui.train, fixture_->world.dataset.num_users,
                  fixture_->world.dataset.groups.num_groups(),
                  fixture_->world.dataset.num_items, &fixture_->ui_train,
                  &fixture_->gi_train);
  }

  static std::vector<Request> GoldenSchedule() {
    ScheduleConfig sc;
    sc.num_requests = 60;
    sc.seed = 7;
    sc.num_users = fixture_->world.dataset.num_users;
    sc.num_groups = fixture_->world.dataset.groups.num_groups();
    return BuildSchedule(sc);
  }

  static core::GroupSaConfig* config_;
  static TinyFixture* fixture_;
  static std::string* checkpoint_path_;
  static core::GroupSaModel* oracle_;
};

core::GroupSaConfig* ServeGoldenTest::config_ = nullptr;
TinyFixture* ServeGoldenTest::fixture_ = nullptr;
std::string* ServeGoldenTest::checkpoint_path_ = nullptr;
core::GroupSaModel* ServeGoldenTest::oracle_ = nullptr;

TEST_F(ServeGoldenTest, TranscriptIsByteIdenticalAcrossWorkersAndThreads) {
  const std::vector<Request> schedule = GoldenSchedule();
  std::string golden;
  for (int threads : {1, 4}) {
    parallel::SetGlobalThreads(threads);
    for (int workers : {1, 4}) {
      Server server = MakeServer(workers);
      ASSERT_TRUE(server.Start().ok());
      DriveOptions options;
      options.client_lanes = workers;
      const DriveReport report = DriveSchedule(&server, schedule, options);
      server.Stop();
      ASSERT_EQ(CheckConservation(report, server.stats(), /*stopped=*/true),
                "");
      const std::string transcript = FormatDrive(schedule, report);
      if (golden.empty()) {
        golden = transcript;
        ASSERT_FALSE(golden.empty());
      } else {
        EXPECT_EQ(transcript, golden)
            << "threads=" << threads << " workers=" << workers;
      }
    }
  }
  parallel::SetGlobalThreads(1);
  // Healthy end to end: the trained checkpoint serves the model path, not
  // the popularity fallback.
  EXPECT_EQ(golden.find("deg=1"), std::string::npos);
}

TEST_F(ServeGoldenTest, ServedScoresBitMatchARestoredEngine) {
  parallel::SetGlobalThreads(1);
  Server server = MakeServer(/*workers=*/2);
  ASSERT_TRUE(server.Start().ok());
  core::InferenceEngine& engine = oracle_->inference();
  for (const Request& request : GoldenSchedule()) {
    const Response response = server.Call(request);
    ASSERT_FALSE(response.degraded) << FormatRequest(request);
    std::vector<std::pair<data::ItemId, double>> want;
    const data::InteractionMatrix* user_ex =
        request.exclude_seen ? &fixture_->ui_train : nullptr;
    const data::InteractionMatrix* group_ex =
        request.exclude_seen ? &fixture_->gi_train : nullptr;
    switch (request.kind) {
      case Request::Kind::kUser:
        want = engine.RecommendForUser(request.user, request.k, user_ex);
        break;
      case Request::Kind::kGroup:
        want = engine.RecommendForGroup(request.group, request.k, group_ex);
        break;
      case Request::Kind::kMembers:
        want = engine.RecommendForMembers(request.members, request.k,
                                          user_ex);
        break;
    }
    EXPECT_EQ(response.items, want) << FormatRequest(request);
  }
  server.Stop();
}

TEST_F(ServeGoldenTest, ReloadFromTheSameCheckpointKeepsTheTranscript) {
  parallel::SetGlobalThreads(1);
  const std::vector<Request> schedule = GoldenSchedule();
  Server server = MakeServer(/*workers=*/2);
  ASSERT_TRUE(server.Start().ok());
  DriveOptions options;
  options.client_lanes = 2;
  const DriveReport before = DriveSchedule(&server, schedule, options);
  ASSERT_TRUE(server.Reload(*checkpoint_path_).ok());
  const DriveReport after = DriveSchedule(&server, schedule, options);
  server.Stop();
  // Scores are a pure function of the checkpoint: generation 2 must render
  // the same items and scores (only the generation number differs, which
  // FormatDrive includes — so compare the item payloads directly).
  ASSERT_EQ(before.responses.size(), after.responses.size());
  for (size_t i = 0; i < before.responses.size(); ++i) {
    EXPECT_EQ(before.responses[i].items, after.responses[i].items)
        << FormatRequest(schedule[i]);
    EXPECT_EQ(before.responses[i].generation, 1u);
    EXPECT_EQ(after.responses[i].generation, 2u);
  }
}

}  // namespace
}  // namespace groupsa::serve
