// End-to-end integration tests: generate a world, train GroupSA, and verify
// the qualitative properties the paper claims, at smoke scale.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/popularity.h"
#include "baselines/static_agg.h"
#include "core/fast_recommender.h"
#include "nn/checkpoint.h"
#include "pipeline/experiment.h"

namespace groupsa {
namespace {

pipeline::RunOptions SmokeOptions() {
  pipeline::RunOptions options;
  options.user_epochs = 4;
  options.group_epochs = 4;
  options.baseline_epochs = 2;
  options.num_candidates = 50;
  options.seed = 3;
  return options;
}

data::SyntheticWorldConfig SmokeWorld() {
  data::SyntheticWorldConfig config = data::SyntheticWorldConfig::Tiny();
  config.num_users = 250;
  config.num_items = 150;
  config.num_groups = 180;
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    options_ = new pipeline::RunOptions(SmokeOptions());
    data_ = new pipeline::ExperimentData(
        pipeline::PrepareData(SmokeWorld(), *options_));
    rng_ = new Rng(17);
    config_ = new core::GroupSaConfig(core::GroupSaConfig::Default());
    model_data_ = new core::ModelData(
        pipeline::BuildModelData(*data_, *config_));
    model_ = pipeline::TrainGroupSa(*config_, *data_, *options_, rng_,
                                    *model_data_)
                 .release();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete model_data_;
    delete config_;
    delete rng_;
    delete data_;
    delete options_;
  }

  static pipeline::RunOptions* options_;
  static pipeline::ExperimentData* data_;
  static Rng* rng_;
  static core::GroupSaConfig* config_;
  static core::ModelData* model_data_;
  static core::GroupSaModel* model_;
};

pipeline::RunOptions* EndToEndTest::options_ = nullptr;
pipeline::ExperimentData* EndToEndTest::data_ = nullptr;
Rng* EndToEndTest::rng_ = nullptr;
core::GroupSaConfig* EndToEndTest::config_ = nullptr;
core::ModelData* EndToEndTest::model_data_ = nullptr;
core::GroupSaModel* EndToEndTest::model_ = nullptr;

TEST_F(EndToEndTest, UserTaskBeatsRandomByWideMargin) {
  const auto result = pipeline::ScoreGroupSa(model_, *data_, *options_, "m");
  // Random would give HR@10 ~ 10/51 ~ 0.196.
  EXPECT_GT(result.user.HitRatio(10), 0.35);
}

TEST_F(EndToEndTest, GroupTaskBeatsRandomByWideMargin) {
  const auto result = pipeline::ScoreGroupSa(model_, *data_, *options_, "m");
  EXPECT_GT(result.group.HitRatio(10), 0.30);
}

TEST_F(EndToEndTest, GroupTaskAtLeastMatchesPopularity) {
  const auto model_scores =
      pipeline::ScoreGroupSa(model_, *data_, *options_, "m");
  const auto pop = pipeline::RunPopularity(*data_, *options_);
  EXPECT_GE(model_scores.group.HitRatio(10) + 0.05,
            pop.group.HitRatio(10));
}

TEST_F(EndToEndTest, StaticAggregatorsProduceReasonableScores) {
  for (auto agg :
       {baselines::ScoreAggregation::kAverage,
        baselines::ScoreAggregation::kLeastMisery,
        baselines::ScoreAggregation::kMaxSatisfaction}) {
    const auto result =
        pipeline::RunStaticAgg(model_, *data_, *options_, agg);
    EXPECT_GT(result.group.HitRatio(10), 0.2)
        << baselines::ToString(agg);
  }
}

TEST_F(EndToEndTest, FastRecommenderCorrelatesWithFullPath) {
  core::FastGroupRecommender fast(model_);
  const auto& members = data_->world.dataset.groups.Members(0);
  std::vector<data::ItemId> items;
  for (int v = 0; v < 60; ++v) items.push_back(v);
  const auto full = model_->ScoreItemsForGroup(0, items);
  const auto quick = fast.ScoreItemsForMembers(members, items);
  // Rank correlation proxy: the top-scoring item of the fast path should be
  // in the upper half of the full ranking.
  int best_fast = 0;
  for (size_t i = 1; i < quick.size(); ++i)
    if (quick[i] > quick[best_fast]) best_fast = static_cast<int>(i);
  int better = 0;
  for (size_t i = 0; i < full.size(); ++i)
    better += full[i] > full[best_fast];
  EXPECT_LT(better, 30);
}

TEST_F(EndToEndTest, CheckpointRoundTripPreservesScores) {
  const std::string path =
      std::string(::testing::TempDir()) + "/e2e_model.ckpt";
  ASSERT_TRUE(nn::SaveParameters(model_->Parameters(), path).ok());
  Rng rng(99);
  core::GroupSaModel restored(*config_, data_->num_users(),
                              data_->num_items(), *model_data_, &rng);
  ASSERT_TRUE(nn::LoadParameters(restored.Parameters(), path).ok());
  const std::vector<data::ItemId> items = {0, 3, 7, 11};
  EXPECT_EQ(model_->ScoreItemsForUser(5, items),
            restored.ScoreItemsForUser(5, items));
  EXPECT_EQ(model_->ScoreItemsForGroup(2, items),
            restored.ScoreItemsForGroup(2, items));
}

TEST_F(EndToEndTest, ColdGroupScoringWorksForUnseenMemberCombos) {
  // The OGR promise: a brand-new ad-hoc group can be scored directly.
  const std::vector<data::UserId> ad_hoc = {3, 77, 141};
  const auto scores = model_->ScoreItemsForMembers(ad_hoc, {0, 1, 2, 3});
  EXPECT_EQ(scores.size(), 4u);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

}  // namespace
}  // namespace groupsa
