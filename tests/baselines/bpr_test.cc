#include "baselines/bpr.h"

#include <gtest/gtest.h>

#include "nn/embedding.h"
#include "tensor/ops.h"

namespace groupsa::baselines {
namespace {

// A trivially learnable world: row r prefers item r.
TEST(FitBprTest, LearnsDiagonalPreference) {
  Rng rng(1);
  const int n = 8;
  nn::Embedding rows("rows", n, 4, &rng);
  nn::Embedding items("items", n, 4, &rng);
  data::EdgeList train;
  for (int r = 0; r < n; ++r) train.push_back({r, r});
  data::InteractionMatrix observed(n, n, train);

  auto score = [&](ag::Tape* tape, int row, data::ItemId item) {
    return ag::MatMul(tape, rows.Lookup(tape, row), items.Lookup(tape, item),
                      false, /*transpose_b=*/true);
  };
  std::vector<nn::ParamEntry> params = rows.Parameters();
  for (const auto& p : items.Parameters()) params.push_back(p);

  BprFitOptions options;
  options.epochs = 60;
  options.learning_rate = 0.05f;
  options.num_negatives = 2;
  const double final_loss = FitBpr(
      [&](ag::Tape* tape, int row, data::ItemId pos,
          const std::vector<data::ItemId>& negs, Rng* rng) {
        (void)rng;
        std::vector<ag::TensorPtr> neg_scores;
        for (data::ItemId neg : negs)
          neg_scores.push_back(score(tape, row, neg));
        return ag::BprLoss(tape, score(tape, row, pos),
                           ag::ConcatRows(tape, neg_scores));
      },
      params, train, &observed, options, &rng);

  EXPECT_LT(final_loss, 0.3);
  // The diagonal item must outrank the others for every row.
  for (int r = 0; r < n; ++r) {
    const float own = tensor::Dot(rows.Row(r), items.Row(r));
    for (int v = 0; v < n; ++v) {
      if (v == r) continue;
      EXPECT_GT(own, tensor::Dot(rows.Row(r), items.Row(v)))
          << "row " << r << " item " << v;
    }
  }
}

TEST(FitBprTest, EmptyTrainSetIsNoOp) {
  Rng rng(2);
  nn::Embedding rows("rows", 2, 2, &rng);
  data::EdgeList train;
  data::InteractionMatrix observed(2, 2, {});
  BprFitOptions options;
  const double loss = FitBpr(
      [&](ag::Tape*, int, data::ItemId, const std::vector<data::ItemId>&,
          Rng*) -> ag::TensorPtr {
        ADD_FAILURE() << "triple loss must not be called";
        return nullptr;
      },
      rows.Parameters(), train, &observed, options, &rng);
  EXPECT_EQ(loss, 0.0);
}

TEST(FitBprEpochTest, KeepsOptimizerStateAcrossCalls) {
  Rng rng(3);
  nn::Embedding rows("rows", 4, 2, &rng);
  nn::Embedding items("items", 4, 2, &rng);
  data::EdgeList train;
  for (int r = 0; r < 4; ++r) train.push_back({r, r});
  data::InteractionMatrix observed(4, 4, train);
  std::vector<nn::ParamEntry> params = rows.Parameters();
  for (const auto& p : items.Parameters()) params.push_back(p);
  nn::Adam optimizer(params, 0.05f);
  data::NegativeSampler sampler(&observed);
  BprFitOptions options;
  const TripleLossFn loss_fn =
      [&](ag::Tape* tape, int row, data::ItemId pos,
          const std::vector<data::ItemId>& negs, Rng*) {
        std::vector<ag::TensorPtr> neg_scores;
        for (data::ItemId neg : negs) {
          neg_scores.push_back(ag::MatMul(tape, rows.Lookup(tape, row),
                                          items.Lookup(tape, neg), false,
                                          true));
        }
        return ag::BprLoss(
            tape,
            ag::MatMul(tape, rows.Lookup(tape, row), items.Lookup(tape, pos),
                       false, true),
            ag::ConcatRows(tape, neg_scores));
      };
  double first = 0.0;
  double last = 0.0;
  for (int e = 0; e < 30; ++e) {
    const double loss =
        FitBprEpoch(loss_fn, &optimizer, train, sampler, options, &rng);
    if (e == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace groupsa::baselines
