#include <cmath>

#include "baselines/agree.h"

#include <gtest/gtest.h>

namespace groupsa::baselines {
namespace {

Agree::Options SmallOptions() {
  Agree::Options o;
  o.embedding_dim = 8;
  o.attention_hidden = 8;
  o.predictor_hidden = {8};
  o.dropout_ratio = 0.0f;
  return o;
}

data::GroupTable SmallGroups() {
  return data::GroupTable({{0, 1}, {2, 3, 4}, {1, 4}});
}

TEST(AgreeTest, ScoresAreFiniteAndItemDependent) {
  Rng rng(1);
  data::GroupTable groups = SmallGroups();
  Agree agree(SmallOptions(), 5, 6, groups.num_groups(), &groups, &rng);
  const auto scores = agree.ScoreItemsForGroup(1, {0, 1, 2});
  EXPECT_EQ(scores.size(), 3u);
  EXPECT_TRUE(scores[0] != scores[1] || scores[1] != scores[2]);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(AgreeTest, UserScoresIndependentOfGroups) {
  Rng rng(2);
  data::GroupTable groups = SmallGroups();
  Agree agree(SmallOptions(), 5, 6, groups.num_groups(), &groups, &rng);
  const auto scores = agree.ScoreItemsForUser(3, {0, 5});
  EXPECT_EQ(scores.size(), 2u);
}

TEST(AgreeTest, JointFitImprovesBothTasks) {
  Rng rng(3);
  // Users 0/1 like items 0/1; users 2/3 like items 2/3; the group {0,1}
  // consumes item 0 and the group {2,3} consumes item 2.
  data::GroupTable groups({{0, 1}, {2, 3}});
  Agree agree(SmallOptions(), 4, 4, 2, &groups, &rng);
  data::EdgeList user_train = {{0, 0}, {0, 1}, {1, 0}, {1, 1},
                               {2, 2}, {2, 3}, {3, 2}, {3, 3}};
  data::EdgeList group_train = {{0, 0}, {1, 2}};
  data::InteractionMatrix ui(4, 4, user_train);
  data::InteractionMatrix gi(2, 4, group_train);
  BprFitOptions fit;
  fit.epochs = 60;
  fit.learning_rate = 0.02f;
  agree.Fit(user_train, group_train, &ui, &gi, fit, &rng);
  // Group 0 must prefer item 0 over item 3 (never touched by its members).
  const auto g0 = agree.ScoreItemsForGroup(0, {0, 3});
  EXPECT_GT(g0[0], g0[1]);
  const auto g1 = agree.ScoreItemsForGroup(1, {2, 1});
  EXPECT_GT(g1[0], g1[1]);
  // User task learned too.
  const auto u0 = agree.ScoreItemsForUser(0, {0, 3});
  EXPECT_GT(u0[0], u0[1]);
}

}  // namespace
}  // namespace groupsa::baselines
