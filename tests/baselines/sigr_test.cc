#include <cmath>

#include "baselines/sigr.h"

#include <gtest/gtest.h>

namespace groupsa::baselines {
namespace {

Sigr::Options SmallOptions() {
  Sigr::Options o;
  o.embedding_dim = 8;
  o.attention_hidden = 8;
  o.predictor_hidden = {8};
  o.dropout_ratio = 0.0f;
  o.graph_epochs = 10;
  return o;
}

TEST(SigrTest, SocialPretrainingClustersConnectedUsers) {
  Rng rng(1);
  // Two cliques: {0,1,2} and {3,4,5}.
  data::SocialGraph social(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  data::GroupTable groups({{0, 1}, {3, 4}});
  Sigr sigr(SmallOptions(), 6, 4, &groups, &social, &rng);
  sigr.PretrainSocial(&rng);
  // After pretraining, within-clique similarity must exceed cross-clique.
  auto dot = [&](int, int) { return 0.0; };
  (void)dot;
  const auto& table = sigr.Parameters();
  tensor::Matrix emb;
  for (const auto& p : table) {
    if (p.name.find("user_emb") != std::string::npos) emb = p.tensor->value();
  }
  ASSERT_EQ(emb.rows(), 6);
  auto sim = [&](int a, int b) {
    double s = 0;
    for (int c = 0; c < emb.cols(); ++c) s += emb.At(a, c) * emb.At(b, c);
    return s;
  };
  EXPECT_GT(sim(0, 1), sim(0, 3));
  EXPECT_GT(sim(3, 4), sim(4, 0));
}

TEST(SigrTest, GroupScoresFinite) {
  Rng rng(2);
  data::SocialGraph social(5, {{0, 1}, {2, 3}});
  data::GroupTable groups({{0, 1, 2}});
  Sigr sigr(SmallOptions(), 5, 6, &groups, &social, &rng);
  const auto scores = sigr.ScoreItemsForGroup(0, {0, 1, 2, 3});
  EXPECT_EQ(scores.size(), 4u);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(SigrTest, FitLearnsSimpleGroupPreference) {
  Rng rng(3);
  data::SocialGraph social(4, {{0, 1}, {2, 3}});
  data::GroupTable groups({{0, 1}, {2, 3}});
  Sigr::Options options = SmallOptions();
  options.graph_epochs = 3;
  Sigr sigr(options, 4, 4, &groups, &social, &rng);
  data::EdgeList user_train = {{0, 0}, {1, 0}, {2, 2}, {3, 2}};
  data::EdgeList group_train = {{0, 0}, {1, 2}};
  data::InteractionMatrix ui(4, 4, user_train);
  data::InteractionMatrix gi(2, 4, group_train);
  BprFitOptions fit;
  fit.epochs = 50;
  fit.learning_rate = 0.02f;
  sigr.Fit(user_train, group_train, &ui, &gi, fit, &rng);
  const auto g0 = sigr.ScoreItemsForGroup(0, {0, 3});
  EXPECT_GT(g0[0], g0[1]);
}

}  // namespace
}  // namespace groupsa::baselines
