#include "baselines/popularity.h"

#include <gtest/gtest.h>

namespace groupsa::baselines {
namespace {

TEST(PopularityTest, CountsAcrossSources) {
  data::EdgeList a = {{0, 1}, {1, 1}, {2, 0}};
  data::EdgeList b = {{0, 1}};
  Popularity pop;
  pop.Fit({&a, &b}, 3);
  EXPECT_EQ(pop.CountOf(1), 3);
  EXPECT_EQ(pop.CountOf(0), 1);
  EXPECT_EQ(pop.CountOf(2), 0);
}

TEST(PopularityTest, ScoresMatchCounts) {
  data::EdgeList edges = {{0, 0}, {1, 0}, {2, 1}};
  Popularity pop;
  pop.Fit({&edges}, 3);
  const auto scores = pop.ScoreItems({0, 1, 2});
  EXPECT_DOUBLE_EQ(scores[0], 2.0);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(PopularityTest, RefitResetsCounts) {
  data::EdgeList a = {{0, 0}};
  Popularity pop;
  pop.Fit({&a}, 2);
  data::EdgeList b = {{0, 1}};
  pop.Fit({&b}, 2);
  EXPECT_EQ(pop.CountOf(0), 0);
  EXPECT_EQ(pop.CountOf(1), 1);
}

}  // namespace
}  // namespace groupsa::baselines
