#include "baselines/ncf.h"

#include <gtest/gtest.h>

namespace groupsa::baselines {
namespace {

Ncf::Options SmallOptions() {
  Ncf::Options o;
  o.embedding_dim = 8;
  o.mlp_hidden = {8};
  o.dropout_ratio = 0.0f;
  return o;
}

TEST(NcfTest, ScoreIsScalarAndDeterministic) {
  Rng rng(1);
  Ncf ncf(SmallOptions(), 5, 6, &rng);
  const auto scores = ncf.ScoreItems(2, {0, 1, 2});
  EXPECT_EQ(scores.size(), 3u);
  const auto again = ncf.ScoreItems(2, {0, 1, 2});
  EXPECT_EQ(scores, again);
}

TEST(NcfTest, DifferentRowsDifferentScores) {
  Rng rng(2);
  Ncf ncf(SmallOptions(), 5, 6, &rng);
  EXPECT_NE(ncf.ScoreItems(0, {3})[0], ncf.ScoreItems(1, {3})[0]);
}

TEST(NcfTest, OverfitsDiagonalPreference) {
  Rng rng(3);
  const int n = 8;
  Ncf ncf(SmallOptions(), n, n, &rng);
  data::EdgeList train;
  for (int r = 0; r < n; ++r) train.push_back({r, r});
  data::InteractionMatrix observed(n, n, train);
  BprFitOptions fit;
  fit.epochs = 80;
  fit.learning_rate = 0.02f;
  fit.num_negatives = 2;
  const double loss = ncf.Fit(train, &observed, fit, &rng);
  EXPECT_LT(loss, 0.35);
  int correct = 0;
  for (int r = 0; r < n; ++r) {
    std::vector<data::ItemId> all(n);
    for (int v = 0; v < n; ++v) all[v] = v;
    const auto scores = ncf.ScoreItems(r, all);
    int best = 0;
    for (int v = 1; v < n; ++v)
      if (scores[v] > scores[best]) best = v;
    correct += best == r;
  }
  EXPECT_GE(correct, n - 2);
}

TEST(NcfTest, ParameterTreeHasFourTablesAndTowers) {
  Rng rng(4);
  Ncf ncf(SmallOptions(), 5, 6, &rng);
  int tables = 0;
  for (const auto& p : ncf.Parameters())
    tables += p.touched_rows != nullptr;
  EXPECT_EQ(tables, 4);  // gmf+mlp tables for rows and items
}

}  // namespace
}  // namespace groupsa::baselines
