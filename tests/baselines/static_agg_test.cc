#include "baselines/static_agg.h"

#include <gtest/gtest.h>

namespace groupsa::baselines {
namespace {

TEST(StaticAggTest, AverageIsMean) {
  const std::vector<std::vector<double>> scores = {{1, 4}, {3, 2}};
  const auto out = AggregateMemberScores(scores, ScoreAggregation::kAverage);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(StaticAggTest, LeastMiseryIsMin) {
  const std::vector<std::vector<double>> scores = {{1, 4}, {3, 2}};
  const auto out =
      AggregateMemberScores(scores, ScoreAggregation::kLeastMisery);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(StaticAggTest, MaxSatisfactionIsMax) {
  const std::vector<std::vector<double>> scores = {{1, 4}, {3, 2}};
  const auto out =
      AggregateMemberScores(scores, ScoreAggregation::kMaxSatisfaction);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
}

TEST(StaticAggTest, SingleMemberIsIdentityForAllStrategies) {
  const std::vector<std::vector<double>> scores = {{5, -2, 0}};
  for (auto agg : {ScoreAggregation::kAverage, ScoreAggregation::kLeastMisery,
                   ScoreAggregation::kMaxSatisfaction}) {
    const auto out = AggregateMemberScores(scores, agg);
    EXPECT_EQ(out, scores[0]);
  }
}

TEST(StaticAggTest, NamesMatchPaper) {
  EXPECT_EQ(ToString(ScoreAggregation::kAverage), "Group+avg");
  EXPECT_EQ(ToString(ScoreAggregation::kLeastMisery), "Group+lm");
  EXPECT_EQ(ToString(ScoreAggregation::kMaxSatisfaction), "Group+ms");
}

TEST(StaticAggTest, OrderingInvariant) {
  // min <= avg <= max element-wise, always.
  const std::vector<std::vector<double>> scores = {
      {0.3, -1.0, 2.0}, {0.7, 0.0, -3.0}, {0.5, 0.5, 0.5}};
  const auto lo =
      AggregateMemberScores(scores, ScoreAggregation::kLeastMisery);
  const auto mid = AggregateMemberScores(scores, ScoreAggregation::kAverage);
  const auto hi =
      AggregateMemberScores(scores, ScoreAggregation::kMaxSatisfaction);
  for (size_t i = 0; i < lo.size(); ++i) {
    EXPECT_LE(lo[i], mid[i]);
    EXPECT_LE(mid[i], hi[i]);
  }
}

}  // namespace
}  // namespace groupsa::baselines
