// Finite-difference gradient checks for every differentiable op. Each test
// builds a scalar loss through the op under test and compares the analytic
// gradients against central differences via CheckGradients.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace groupsa::ag {
namespace {

using tensor::Matrix;

TensorPtr RandomVariable(int rows, int cols, Rng* rng, float scale = 0.5f) {
  Matrix m(rows, cols);
  m.FillUniform(rng, -scale, scale);
  return Variable(std::move(m));
}

// A generic scalarizer that mixes all entries with distinct weights so the
// gradient check exercises every output coordinate independently.
TensorPtr Scalarize(Tape* tape, const TensorPtr& x) {
  Matrix weights(x->rows(), x->cols());
  for (int i = 0; i < weights.size(); ++i)
    weights.data()[i] = 0.1f * static_cast<float>(i + 1);
  return SumAll(tape, Mul(tape, x, Constant(std::move(weights))));
}

TEST(GradCheckTest, MatMulPlain) {
  Rng rng(1);
  TensorPtr a = RandomVariable(3, 4, &rng);
  TensorPtr b = RandomVariable(4, 2, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) { return Scalarize(tape, MatMul(tape, a, b)); },
      {a, b});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

class MatMulTransposeGradTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(MatMulTransposeGradTest, AllTransposeCombos) {
  const auto [ta, tb] = GetParam();
  Rng rng(2);
  TensorPtr a = ta ? RandomVariable(4, 3, &rng) : RandomVariable(3, 4, &rng);
  TensorPtr b = tb ? RandomVariable(2, 4, &rng) : RandomVariable(4, 2, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        return Scalarize(tape, MatMul(tape, a, b, ta, tb));
      },
      {a, b});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, MatMulTransposeGradTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(GradCheckTest, AddSubMul) {
  Rng rng(3);
  TensorPtr a = RandomVariable(2, 3, &rng);
  TensorPtr b = RandomVariable(2, 3, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        TensorPtr s = Add(tape, a, b);
        TensorPtr d = Sub(tape, s, b);
        return Scalarize(tape, Mul(tape, d, s));
      },
      {a, b});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, ScaleAndBias) {
  Rng rng(4);
  TensorPtr x = RandomVariable(3, 2, &rng);
  TensorPtr bias = RandomVariable(1, 2, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        return Scalarize(tape, AddBias(tape, Scale(tape, x, -1.7f), bias));
      },
      {x, bias});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, BroadcastRow) {
  Rng rng(5);
  TensorPtr row = RandomVariable(1, 3, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) { return Scalarize(tape, BroadcastRow(tape, row, 4)); },
      {row});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, ConcatColsAndRows) {
  Rng rng(6);
  TensorPtr a = RandomVariable(2, 2, &rng);
  TensorPtr b = RandomVariable(2, 3, &rng);
  TensorPtr c = RandomVariable(1, 5, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        TensorPtr wide = ConcatCols(tape, {a, b});  // 2 x 5
        TensorPtr tall = ConcatRows(tape, {wide, c});  // 3 x 5
        return Scalarize(tape, tall);
      },
      {a, b, c});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, SliceRows) {
  Rng rng(7);
  TensorPtr x = RandomVariable(5, 3, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        return Scalarize(tape, SliceRows(tape, x, 1, 3));
      },
      {x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, GatherRowsWithRepeats) {
  Rng rng(8);
  TensorPtr table = RandomVariable(6, 3, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        return Scalarize(tape, GatherRows(tape, table, {0, 2, 2, 5}));
      },
      {table});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, Transpose) {
  Rng rng(9);
  TensorPtr x = RandomVariable(3, 4, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) { return Scalarize(tape, Transpose(tape, x)); }, {x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, ReluAwayFromKink) {
  Rng rng(10);
  // Keep values away from 0 so the finite difference does not straddle the
  // kink.
  Matrix m(3, 3);
  m.FillUniform(&rng, 0.2f, 1.0f);
  for (int i = 0; i < m.size(); i += 2) m.data()[i] *= -1.0f;
  TensorPtr x = Variable(std::move(m));
  auto result = CheckGradients(
      [&](Tape* tape) { return Scalarize(tape, Relu(tape, x)); }, {x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, SigmoidTanhLogSigmoid) {
  Rng rng(11);
  TensorPtr x = RandomVariable(2, 4, &rng, 1.5f);
  auto result = CheckGradients(
      [&](Tape* tape) {
        TensorPtr s = Sigmoid(tape, x);
        TensorPtr t = Tanh(tape, x);
        TensorPtr l = LogSigmoid(tape, x);
        return Scalarize(tape, Add(tape, Add(tape, s, t), l));
      },
      {x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, SoftmaxRowsUnmasked) {
  Rng rng(12);
  TensorPtr x = RandomVariable(3, 4, &rng, 1.0f);
  auto result = CheckGradients(
      [&](Tape* tape) { return Scalarize(tape, SoftmaxRows(tape, x)); }, {x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, SoftmaxRowsMasked) {
  Rng rng(13);
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  TensorPtr x = RandomVariable(2, 4, &rng, 1.0f);
  Matrix mask(2, 4);
  mask.At(0, 2) = kNegInf;
  mask.At(1, 0) = kNegInf;
  mask.At(1, 3) = kNegInf;
  auto result = CheckGradients(
      [&](Tape* tape) {
        return Scalarize(tape, SoftmaxRows(tape, x, &mask));
      },
      {x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, LayerNorm) {
  Rng rng(14);
  TensorPtr x = RandomVariable(3, 5, &rng, 1.0f);
  TensorPtr gain = RandomVariable(1, 5, &rng, 0.5f);
  TensorPtr bias = RandomVariable(1, 5, &rng, 0.5f);
  gain->mutable_value().AddInPlace(Matrix(1, 5, 1.0f));  // keep gain ~1
  auto result = CheckGradients(
      [&](Tape* tape) {
        return Scalarize(tape, LayerNorm(tape, x, gain, bias));
      },
      {x, gain, bias}, /*step=*/1e-2f, /*abs_tolerance=*/5e-3f,
      /*rel_tolerance=*/3e-2f);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, SumAllMeanAll) {
  Rng rng(15);
  TensorPtr x = RandomVariable(2, 3, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        return Add(tape, SumAll(tape, x), MeanAll(tape, Mul(tape, x, x)));
      },
      {x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, BprLoss) {
  Rng rng(16);
  TensorPtr pos = RandomVariable(1, 1, &rng, 1.0f);
  TensorPtr negs = RandomVariable(4, 1, &rng, 1.0f);
  auto result = CheckGradients(
      [&](Tape* tape) { return BprLoss(tape, pos, negs); }, {pos, negs});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(GradCheckTest, DeepComposition) {
  // A miniature network: relu(x W1 + b1) W2 summed -- closest to real use.
  Rng rng(17);
  TensorPtr x = RandomVariable(2, 4, &rng);
  TensorPtr w1 = RandomVariable(4, 5, &rng);
  TensorPtr b1 = RandomVariable(1, 5, &rng);
  TensorPtr w2 = RandomVariable(5, 1, &rng);
  auto result = CheckGradients(
      [&](Tape* tape) {
        TensorPtr h = Relu(tape, AddBias(tape, MatMul(tape, x, w1), b1));
        return SumAll(tape, MatMul(tape, h, w2));
      },
      {x, w1, b1, w2});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(DropoutTest, IdentityWhenNotTraining) {
  Rng rng(18);
  TensorPtr x = RandomVariable(3, 3, &rng);
  TensorPtr out = Dropout(nullptr, x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(AllClose(out->value(), x->value()));
}

TEST(DropoutTest, ZeroRatioIsIdentity) {
  Rng rng(19);
  TensorPtr x = RandomVariable(3, 3, &rng);
  Tape tape;
  TensorPtr out = Dropout(&tape, x, 0.0f, /*training=*/true, &rng);
  EXPECT_TRUE(AllClose(out->value(), x->value()));
}

TEST(DropoutTest, InvertedScalingPreservesExpectation) {
  Rng rng(20);
  TensorPtr x = Variable(Matrix(200, 200, 1.0f));
  Tape tape;
  TensorPtr out = Dropout(&tape, x, 0.3f, /*training=*/true, &rng);
  // E[out] == 1; the mean over 40k entries should be close.
  EXPECT_NEAR(out->value().Mean(), 1.0f, 0.02f);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(21);
  TensorPtr x = Variable(Matrix(1, 100, 1.0f));
  Tape tape;
  TensorPtr out = Dropout(&tape, x, 0.5f, /*training=*/true, &rng);
  TensorPtr loss = SumAll(&tape, out);
  tape.Backward(loss);
  // Gradient must be exactly the mask (scale where kept, 0 where dropped).
  for (int c = 0; c < 100; ++c)
    EXPECT_FLOAT_EQ(x->grad().At(0, c), out->value().At(0, c));
}

}  // namespace
}  // namespace groupsa::ag
