#include "autograd/tape.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace groupsa::ag {
namespace {

using tensor::Matrix;

TEST(TapeTest, ScalarChainBackward) {
  // loss = sum(3 * x) with x = [1, 2] -> dloss/dx = [3, 3].
  TensorPtr x = Variable(Matrix::FromRows({{1, 2}}));
  Tape tape;
  TensorPtr loss = SumAll(&tape, Scale(&tape, x, 3.0f));
  EXPECT_FLOAT_EQ(loss->scalar(), 9.0f);
  tape.Backward(loss);
  EXPECT_FLOAT_EQ(x->grad().At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(x->grad().At(0, 1), 3.0f);
}

TEST(TapeTest, GradientAccumulatesWhenTensorReused) {
  // loss = sum(x + x) -> dloss/dx = 2.
  TensorPtr x = Variable(Matrix::FromRows({{5}}));
  Tape tape;
  TensorPtr loss = SumAll(&tape, Add(&tape, x, x));
  tape.Backward(loss);
  EXPECT_FLOAT_EQ(x->grad().At(0, 0), 2.0f);
}

TEST(TapeTest, ConstantsReceiveNoGradient) {
  TensorPtr x = Variable(Matrix::FromRows({{1}}));
  TensorPtr c = Constant(Matrix::FromRows({{2}}));
  Tape tape;
  TensorPtr loss = SumAll(&tape, Mul(&tape, x, c));
  tape.Backward(loss);
  EXPECT_FLOAT_EQ(x->grad().At(0, 0), 2.0f);
  EXPECT_FALSE(c->has_grad());
}

TEST(TapeTest, RequiresGradPropagates) {
  TensorPtr a = Constant(Matrix(1, 2, 1.0f));
  TensorPtr b = Constant(Matrix(1, 2, 2.0f));
  TensorPtr v = Variable(Matrix(1, 2, 3.0f));
  Tape tape;
  EXPECT_FALSE(Add(&tape, a, b)->requires_grad());
  EXPECT_TRUE(Add(&tape, a, v)->requires_grad());
}

TEST(TapeTest, NoOpsRecordedForPureConstants) {
  TensorPtr a = Constant(Matrix(2, 2, 1.0f));
  Tape tape;
  Relu(&tape, MatMul(&tape, a, a));
  EXPECT_EQ(tape.num_ops(), 0u);
}

TEST(TapeTest, NullTapeRunsInferenceWithoutGradState) {
  TensorPtr v = Variable(Matrix(1, 2, 3.0f));
  TensorPtr out = Relu(nullptr, Scale(nullptr, v, -1.0f));
  EXPECT_FLOAT_EQ(out->value().At(0, 0), 0.0f);
  EXPECT_FALSE(out->requires_grad());
}

TEST(TapeTest, BackwardFromSeedsExplicitGradient) {
  TensorPtr x = Variable(Matrix::FromRows({{1, 2}}));
  Tape tape;
  TensorPtr y = Scale(&tape, x, 2.0f);
  Matrix seed = Matrix::FromRows({{10, 100}});
  tape.BackwardFrom(y, seed);
  EXPECT_FLOAT_EQ(x->grad().At(0, 0), 20.0f);
  EXPECT_FLOAT_EQ(x->grad().At(0, 1), 200.0f);
}

TEST(TapeTest, ClearDropsRecordedOps) {
  TensorPtr x = Variable(Matrix::FromRows({{1}}));
  Tape tape;
  Scale(&tape, x, 2.0f);
  EXPECT_GT(tape.num_ops(), 0u);
  tape.Clear();
  EXPECT_EQ(tape.num_ops(), 0u);
}

TEST(TapeTest, TwoBackwardPassesAccumulate) {
  TensorPtr x = Variable(Matrix::FromRows({{1}}));
  {
    Tape tape;
    TensorPtr loss = Scale(&tape, x, 3.0f);
    tape.Backward(loss);
  }
  {
    Tape tape;
    TensorPtr loss = Scale(&tape, x, 4.0f);
    tape.Backward(loss);
  }
  // Gradients accumulate until explicitly zeroed (optimizer contract).
  EXPECT_FLOAT_EQ(x->grad().At(0, 0), 7.0f);
  x->ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad().At(0, 0), 0.0f);
}

}  // namespace
}  // namespace groupsa::ag
