// Property-style gradient checks over randomly sampled composite networks:
// the same assembled graph (attention + layer norm + BPR) must pass the
// finite-difference check for every seed.

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace groupsa::ag {
namespace {

using tensor::Matrix;

class CompositeGradTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompositeGradTest, AttentionBprNetworkPassesGradCheck) {
  Rng rng(GetParam());
  const int l = 3 + rng.NextInt(3);  // group size 3..5
  const int d = 4;

  Matrix x_m(l, d);
  x_m.FillUniform(&rng, -0.5f, 0.5f);
  TensorPtr x = Variable(std::move(x_m));
  TensorPtr wq = Variable([&] {
    Matrix m(d, d);
    m.FillUniform(&rng, -0.4f, 0.4f);
    return m;
  }());
  TensorPtr wv = Variable([&] {
    Matrix m(d, d);
    m.FillUniform(&rng, -0.4f, 0.4f);
    return m;
  }());
  TensorPtr gain = Variable(Matrix(1, d, 1.0f));
  TensorPtr bias = Variable(Matrix(1, d, 0.1f));
  TensorPtr item = Variable([&] {
    Matrix m(1, d);
    m.FillUniform(&rng, -0.5f, 0.5f);
    return m;
  }());

  auto build = [&](Tape* tape) {
    // Self-attention with shared W for q and k, masked softmax.
    TensorPtr q = MatMul(tape, x, wq);
    TensorPtr logits = Scale(tape, MatMul(tape, q, q, false, true), 0.5f);
    TensorPtr att = SoftmaxRows(tape, logits);
    TensorPtr z = MatMul(tape, att, MatMul(tape, x, wv));
    TensorPtr normed = LayerNorm(tape, Add(tape, x, z), gain, bias);
    // Item-guided pooling scores -> BPR between the first two "candidates".
    TensorPtr scores = MatMul(tape, normed, item, false, true);  // l x 1
    TensorPtr pos = SliceRows(tape, scores, 0, 1);
    TensorPtr negs = SliceRows(tape, scores, 1, scores->rows() - 1);
    return BprLoss(tape, pos, negs);
  };

  auto result = CheckGradients(build, {x, wq, wv, gain, bias, item},
                               /*step=*/1e-2f, /*abs_tolerance=*/6e-3f,
                               /*rel_tolerance=*/4e-2f);
  EXPECT_TRUE(result.ok) << "seed " << GetParam() << ": "
                         << result.worst_entry;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeGradTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace groupsa::ag
