#include "autograd/pool.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/tape.h"

namespace groupsa::ag {
namespace {

TEST(TensorPoolTest, AcquireCreatesThenRecycles) {
  TensorPool pool;
  {
    TensorPtr t = pool.Acquire(2, 3, /*requires_grad=*/false);
    EXPECT_EQ(t->rows(), 2);
    EXPECT_EQ(t->cols(), 3);
  }
  pool.EndBatch();
  EXPECT_EQ(pool.stats().tensors_created, 1u);
  EXPECT_EQ(pool.stats().tensors_reused, 0u);

  { TensorPtr t = pool.Acquire(2, 3, false); }
  pool.EndBatch();
  EXPECT_EQ(pool.stats().tensors_created, 1u);
  EXPECT_EQ(pool.stats().tensors_reused, 1u);
  EXPECT_EQ(pool.stats().batches, 2u);
}

TEST(TensorPoolTest, BucketsAreKeyedOnShapeAndRequiresGrad) {
  TensorPool pool;
  {
    TensorPtr a = pool.Acquire(2, 3, false);
    TensorPtr b = pool.Acquire(3, 2, false);   // different shape
    TensorPtr c = pool.Acquire(2, 3, true);    // different grad flag
  }
  pool.EndBatch();
  { TensorPtr a = pool.Acquire(2, 3, false); }
  pool.EndBatch();
  EXPECT_EQ(pool.stats().tensors_created, 3u);
  EXPECT_EQ(pool.stats().tensors_reused, 1u);
}

TEST(TensorPoolTest, EscapedTensorIsNotRecycled) {
  TensorPool pool;
  TensorPtr kept = pool.Acquire(4, 4, false);
  pool.EndBatch();
  EXPECT_EQ(pool.stats().escaped, 1u);
  // The escaped tensor left the pool's books; the next request allocates.
  { TensorPtr t = pool.Acquire(4, 4, false); }
  pool.EndBatch();
  EXPECT_EQ(pool.stats().tensors_created, 2u);
  EXPECT_EQ(pool.stats().tensors_reused, 0u);
}

TEST(TensorPoolTest, RecycledTensorStartsWithZeroGradient) {
  TensorPool pool;
  {
    TensorPtr t = pool.Acquire(2, 2, /*requires_grad=*/true);
    t->mutable_value().Fill(1.0f);
    t->grad().At(0, 0) = 42.0f;  // simulate a backward pass
  }
  pool.EndBatch();
  TensorPtr t = pool.Acquire(2, 2, true);
  ASSERT_TRUE(t->has_grad());
  EXPECT_EQ(t->grad_view().MaxAbs(), 0.0f);
}

TEST(TensorPoolTest, WorkspacesRecycleLikeTensors) {
  TensorPool pool;
  { auto ws = pool.AcquireWorkspace(1, 8); }
  pool.EndBatch();
  { auto ws = pool.AcquireWorkspace(1, 8); }
  pool.EndBatch();
  EXPECT_EQ(pool.stats().workspaces_created, 1u);
  EXPECT_EQ(pool.stats().workspaces_reused, 1u);
}

TEST(TensorPoolTest, ActiveScopeInstallsAndClearsThePool) {
  EXPECT_EQ(TensorPool::Active(), nullptr);
  TensorPool pool;
  {
    TensorPool::ActiveScope scope(&pool);
    EXPECT_EQ(TensorPool::Active(), &pool);
  }
  EXPECT_EQ(TensorPool::Active(), nullptr);
  {
    // A null pool deactivates pooling for the scope.
    TensorPool::ActiveScope scope(nullptr);
    EXPECT_EQ(TensorPool::Active(), nullptr);
  }
}

TEST(TensorPoolTest, OpsDrawOutputsFromTheActivePool) {
  TensorPool pool;
  Tape tape;
  TensorPtr a = Constant(tensor::Matrix::FromRows({{1, 2}}));
  TensorPtr b = Constant(tensor::Matrix::FromRows({{3, 4}}));
  {
    TensorPool::ActiveScope scope(&pool);
    TensorPtr sum = Add(&tape, a, b);
    EXPECT_EQ(sum->value().At(0, 1), 6.0f);
  }
  tape.Reset();
  pool.EndBatch();
  EXPECT_GE(pool.stats().tensors_created, 1u);
  EXPECT_EQ(pool.stats().escaped, 0u);

  // The identical graph next batch is served entirely from the pool.
  const uint64_t created = pool.stats().tensors_created;
  {
    TensorPool::ActiveScope scope(&pool);
    TensorPtr sum = Add(&tape, a, b);
    EXPECT_EQ(sum->value().At(0, 0), 4.0f);
  }
  tape.Reset();
  pool.EndBatch();
  EXPECT_EQ(pool.stats().tensors_created, created);
  EXPECT_GE(pool.stats().tensors_reused, 1u);
}

TEST(TensorPoolTest, PooledBackwardMatchesUnpooledBitExactly) {
  // One small graph, run twice with a fresh Variable each way; gradients
  // must agree to the bit.
  auto run = [](TensorPool* pool) {
    Tape tape;
    TensorPtr x = Variable(tensor::Matrix::FromRows({{0.5f, -1.25f}}));
    tensor::Matrix gx;
    {
      TensorPool::ActiveScope scope(pool);
      TensorPtr h = Tanh(&tape, Scale(&tape, x, 3.0f));
      TensorPtr loss = SumAll(&tape, Mul(&tape, h, h));
      tape.Backward(loss);
      gx = x->grad();
    }
    tape.Reset();
    if (pool != nullptr) pool->EndBatch();
    return gx;
  };
  TensorPool pool;
  const tensor::Matrix unpooled = run(nullptr);
  const tensor::Matrix warm = run(&pool);      // batch 1: pool allocates
  const tensor::Matrix recycled = run(&pool);  // batch 2: pool recycles
  for (int c = 0; c < unpooled.cols(); ++c) {
    EXPECT_EQ(unpooled.At(0, c), warm.At(0, c));
    EXPECT_EQ(unpooled.At(0, c), recycled.At(0, c));
  }
}

}  // namespace
}  // namespace groupsa::ag
