#include "common/failpoint.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace groupsa::failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteIsNone) {
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  // Unarmed hits never even reach the registry, so nothing is counted.
  EXPECT_EQ(FireCount("test.site"), 0);
}

TEST_F(FailpointTest, ErrorFiresOnEveryHit) {
  ASSERT_TRUE(Arm("test.site=error"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kError);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kError);
  EXPECT_EQ(FireCount("test.site"), 2);
}

TEST_F(FailpointTest, UnrelatedSiteUnaffected) {
  ASSERT_TRUE(Arm("test.site=error"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.other"), Action::kNone);
  EXPECT_EQ(FireCount("test.other"), 0);
}

TEST_F(FailpointTest, OneShotFiresOnlyOnNthHit) {
  ASSERT_TRUE(Arm("test.site=corrupt@3"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kCorrupt);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  EXPECT_EQ(FireCount("test.site"), 1);
}

TEST_F(FailpointTest, PersistentFiresFromNthHitOn) {
  ASSERT_TRUE(Arm("test.site=error@2+"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kError);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kError);
  EXPECT_EQ(FireCount("test.site"), 2);
}

TEST_F(FailpointTest, RearmResetsCounters) {
  ASSERT_TRUE(Arm("test.site=error@2"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  ASSERT_TRUE(Arm("test.site=error@2"));  // replaces spec, resets hit count
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kError);
}

TEST_F(FailpointTest, DisarmStopsFiring) {
  ASSERT_TRUE(Arm("test.site=error"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kError);
  Disarm("test.site");
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
}

TEST_F(FailpointTest, ArmListArmsMultipleSites) {
  ASSERT_TRUE(ArmList("test.a=error;test.b=corrupt@1"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.a"), Action::kError);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.b"), Action::kCorrupt);
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_FALSE(Arm(""));
  EXPECT_FALSE(Arm("no_equals"));
  EXPECT_FALSE(Arm("test.site=explode"));
  EXPECT_FALSE(Arm("test.site=error@"));
  EXPECT_FALSE(Arm("test.site=error@zero"));
  EXPECT_FALSE(Arm("test.site=error@0"));
  EXPECT_FALSE(Arm("=error"));
  // A malformed entry in a list fails the call but keeps valid entries armed.
  EXPECT_FALSE(ArmList("test.good=error;test.bad=nope"));
  EXPECT_EQ(GROUPSA_FAILPOINT("test.good"), Action::kError);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.bad"), Action::kNone);
}

TEST_F(FailpointTest, ArmFromEnvReadsVariable) {
  ASSERT_EQ(setenv("GROUPSA_FAILPOINTS", "test.env=corrupt@2", 1), 0);
  EXPECT_TRUE(ArmFromEnv());
  EXPECT_EQ(GROUPSA_FAILPOINT("test.env"), Action::kNone);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.env"), Action::kCorrupt);
  ASSERT_EQ(unsetenv("GROUPSA_FAILPOINTS"), 0);
  // Unset variable is a clean no-op.
  DisarmAll();
  EXPECT_TRUE(ArmFromEnv());
  EXPECT_EQ(GROUPSA_FAILPOINT("test.env"), Action::kNone);
}

TEST_F(FailpointTest, DisarmAllRestoresFastPath) {
  ASSERT_TRUE(Arm("test.site=error"));
  DisarmAll();
  EXPECT_EQ(g_armed_count.load(), 0);
  EXPECT_EQ(GROUPSA_FAILPOINT("test.site"), Action::kNone);
  EXPECT_EQ(FireCount("test.site"), 0);  // counters reset too
}

}  // namespace
}  // namespace groupsa::failpoint
