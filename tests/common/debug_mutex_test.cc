#include "common/debug_mutex.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace groupsa {
namespace {

// The whole suite targets the lockdep detector, which compiles away in
// release builds (DebugMutex is then a bare std::mutex and there is nothing
// to observe). The skip is visible in the ctest output, and the sanitizer
// trees force the detector on, so the TSan lane always runs these for real.
class DebugMutexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lockdep::Enabled())
      GTEST_SKIP() << "lockdep disabled in this build";
    lockdep::ResetGraphForTest();
    lockdep::SetFailureHandlerForTest(
        [this](const std::string& report) { reports_.push_back(report); });
  }

  void TearDown() override {
    lockdep::SetFailureHandlerForTest(nullptr);
  }

  std::vector<std::string> reports_;
};

TEST_F(DebugMutexTest, HeldStackTracksLexicalScopes) {
  DebugMutex outer{"test.outer"};
  DebugMutex inner{"test.inner"};
  EXPECT_TRUE(lockdep::HeldLockNames().empty());
  {
    std::lock_guard<DebugMutex> lock_outer(outer);
    EXPECT_EQ(lockdep::HeldLockNames(),
              (std::vector<std::string>{"test.outer"}));
    {
      std::lock_guard<DebugMutex> lock_inner(inner);
      EXPECT_EQ(lockdep::HeldLockNames(),
                (std::vector<std::string>{"test.outer", "test.inner"}));
    }
  }
  EXPECT_TRUE(lockdep::HeldLockNames().empty());
  EXPECT_TRUE(reports_.empty());
  // The nesting left its evidence: one outer -> inner edge, two classes.
  const lockdep::GraphStats stats = lockdep::Stats();
  EXPECT_EQ(stats.classes, 2);
  EXPECT_EQ(stats.edges, 1);
}

TEST_F(DebugMutexTest, ConsistentOrderNeverReports) {
  DebugMutex a{"test.a"};
  DebugMutex b{"test.b"};
  for (int i = 0; i < 3; ++i) {
    std::lock_guard<DebugMutex> la(a);
    std::lock_guard<DebugMutex> lb(b);
  }
  EXPECT_TRUE(reports_.empty());
}

TEST_F(DebugMutexTest, InversionAcrossThreadsReportsBothStacks) {
  // The seeded inverted-order scenario: one thread nests A -> B (recording
  // the edge), another later nests B -> A. No interleaving actually
  // deadlocks here — the threads never overlap — which is exactly the
  // point: the detector flags the inversion on first sight, not only on
  // the unlucky schedule.
  DebugMutex a{"test.inv_a"};
  DebugMutex b{"test.inv_b"};
  std::thread recorder([&] {
    std::lock_guard<DebugMutex> la(a);
    std::lock_guard<DebugMutex> lb(b);
  });
  recorder.join();
  ASSERT_TRUE(reports_.empty());

  {
    std::lock_guard<DebugMutex> lb(b);
    std::lock_guard<DebugMutex> la(a);  // closes the cycle: reported
  }
  ASSERT_EQ(reports_.size(), 1u);
  const std::string& report = reports_[0];
  // Both sides of the conflict, by name and by stack.
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos);
  EXPECT_NE(report.find("this thread:"), std::string::npos);
  EXPECT_NE(report.find("holds {test.inv_b} acquiring test.inv_a"),
            std::string::npos);
  EXPECT_NE(report.find("recorded test.inv_a -> test.inv_b by:"),
            std::string::npos);
  // The recorded side carries the *other* thread's stack rendering.
  EXPECT_NE(report.find("holds {test.inv_a} acquiring test.inv_b"),
            std::string::npos);
}

TEST_F(DebugMutexTest, TransitiveInversionIsCaught) {
  // a -> b and b -> c recorded; acquiring a under c inverts transitively.
  DebugMutex a{"test.tr_a"};
  DebugMutex b{"test.tr_b"};
  DebugMutex c{"test.tr_c"};
  {
    std::lock_guard<DebugMutex> la(a);
    std::lock_guard<DebugMutex> lb(b);
  }
  {
    std::lock_guard<DebugMutex> lb(b);
    std::lock_guard<DebugMutex> lc(c);
  }
  ASSERT_TRUE(reports_.empty());
  {
    std::lock_guard<DebugMutex> lc(c);
    std::lock_guard<DebugMutex> la(a);
  }
  ASSERT_EQ(reports_.size(), 1u);
  // The report walks the whole recorded reverse path a -> b -> c.
  EXPECT_NE(reports_[0].find("recorded test.tr_a -> test.tr_b"),
            std::string::npos);
  EXPECT_NE(reports_[0].find("recorded test.tr_b -> test.tr_c"),
            std::string::npos);
}

TEST_F(DebugMutexTest, TryLockSkipsTheOrderCheck) {
  // try_lock is the sanctioned out-of-order idiom (back off on failure),
  // so the recorded a -> b order does not apply to it.
  DebugMutex a{"test.try_a"};
  DebugMutex b{"test.try_b"};
  {
    std::lock_guard<DebugMutex> la(a);
    std::lock_guard<DebugMutex> lb(b);
  }
  {
    std::lock_guard<DebugMutex> lb(b);
    ASSERT_TRUE(a.try_lock());
    a.unlock();
  }
  EXPECT_TRUE(reports_.empty());
}

TEST_F(DebugMutexTest, SharedAcquisitionsFollowTheSameOrder) {
  // A shared/exclusive inversion between two threads deadlocks just as
  // hard, so lock_shared participates in the graph like lock does.
  DebugMutex a{"test.sh_a"};
  DebugSharedMutex s{"test.sh_s"};
  {
    std::lock_guard<DebugMutex> la(a);
    std::shared_lock<DebugSharedMutex> ls(s);
  }
  ASSERT_TRUE(reports_.empty());
  {
    std::unique_lock<DebugSharedMutex> ls(s);
    std::lock_guard<DebugMutex> la(a);
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("test.sh_s"), std::string::npos);
}

TEST_F(DebugMutexTest, SameClassNestingIsReported) {
  // Two locks of one class (two serve.slot mutexes, say) have no defined
  // relative order, so some interleaving deadlocks; nesting them is an
  // error even though the instances differ.
  DebugMutex first{"test.same"};
  DebugMutex second{"test.same"};
  {
    std::lock_guard<DebugMutex> l1(first);
    std::lock_guard<DebugMutex> l2(second);
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("nested acquisition"), std::string::npos);
  EXPECT_NE(reports_[0].find("test.same"), std::string::npos);
}

TEST_F(DebugMutexTest, RecursionIsReportedViaTheHooks) {
  // Exercised through the raw hooks: resuming past the report and then
  // re-locking a real std::mutex on the same thread would be UB, which the
  // handler path must not commit.
  int dummy = 0;
  lockdep::OnAcquire(&dummy, "test.rec", lockdep::AcquireKind::kExclusive);
  lockdep::OnAcquire(&dummy, "test.rec", lockdep::AcquireKind::kTry);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("recursive acquisition"), std::string::npos);
  lockdep::OnRelease(&dummy);
  lockdep::OnRelease(&dummy);
  EXPECT_TRUE(lockdep::HeldLockNames().empty());
}

TEST_F(DebugMutexTest, UnheldReleaseIsReported) {
  int dummy = 0;
  lockdep::OnRelease(&dummy);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("release of a lock"), std::string::npos);
}

TEST_F(DebugMutexTest, CondVarWaitKeepsTheMutexOnTheHeldStack) {
  // The annotations describe the lexical scope; across a cv wait the
  // waiter still owns the DebugMutex as far as the contract is concerned,
  // and the detector agrees.
  DebugMutex mu{"test.cv"};
  DebugCondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::lock_guard<DebugMutex> lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock<DebugMutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
    EXPECT_EQ(lockdep::HeldLockNames(),
              (std::vector<std::string>{"test.cv"}));
  }
  waker.join();
  EXPECT_TRUE(reports_.empty());
}

// Without the test handler the detector aborts the process, stacks on
// stderr — the production behavior the EXPECT_DEATH child observes.
TEST(DebugMutexDeathTest, InversionAbortsWithBothStacks) {
  if (!lockdep::Enabled()) GTEST_SKIP() << "lockdep disabled in this build";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lockdep::SetFailureHandlerForTest(nullptr);
        lockdep::ResetGraphForTest();
        DebugMutex a{"death.a"};
        DebugMutex b{"death.b"};
        {
          std::lock_guard<DebugMutex> la(a);
          std::lock_guard<DebugMutex> lb(b);
        }
        std::lock_guard<DebugMutex> lb(b);
        std::lock_guard<DebugMutex> la(a);
      },
      "lock-order inversion.*death\\.a");
}

}  // namespace
}  // namespace groupsa
